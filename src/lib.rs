//! `hpcc` — umbrella crate for the reproduction of *High Performance
//! Computing and Communications Program* (Holcomb, 1992).
//!
//! The paper is a programmatic overview of the Federal HPCC Program; this
//! workspace rebuilds the systems it describes:
//!
//! | Component | Crate | What it is |
//! |---|---|---|
//! | HPCS | [`delta_mesh`] | Simulator of the Intel Touchstone Delta and its DARPA siblings |
//! | ASTA | [`hpcc_kernels`] | Grand Challenge kernels: LINPACK, CFD, shallow water, N-body, FFT, CG |
//! | NREN | [`nren_netsim`] | Flow-level simulator of the 1992 research WANs (NSFnet, CASA, consortium) |
//! | program | [`hpcc_core`] | Agencies, components, budgets, consortia, exhibit registry |
//! | substrate | [`des`] | Deterministic discrete-event engine + cooperative async executor |
//!
//! ```
//! // One line per layer: machine, program, network, workload.
//! use hpcc::prelude::*;
//!
//! let delta = Machine::new(presets::delta_528());
//! assert_eq!(delta.config().nodes(), 528);
//! assert_eq!(FundingTable::fy1992_93().total(FiscalYear::Fy1992).to_string(), "654.8");
//! ```

pub use delta_mesh;
pub use des;
pub use hpcc_core;
pub use hpcc_kernels;
pub use nren_netsim;

/// Most-used items across the workspace.
pub mod prelude {
    pub use delta_mesh::{presets, Comm, Kernel, Machine, Node, Payload, RunReport};
    pub use des::time::{Dur, SimTime};
    pub use hpcc_core::{Agency, Component, FiscalYear, FundingTable};
    pub use nren_netsim::{topologies, FlowSim, LinkClass, TransferSpec};
}
