//! Halo-exchange Jacobi on the simulated machine — the CAS/aerosciences
//! workload as the application software teams ran it: block-decomposed
//! grid, four-neighbour ghost exchange per sweep, periodic convergence
//! allreduces.
//!
//! `run_verified` moves real `f64` halos and gathers the final field to
//! node 0, where it is compared point-for-point against the sequential
//! [`crate::cfd::jacobi`] solver — the distributed code must match the
//! host code bit-for-bit (same arithmetic order). `run_model` is the
//! timing-only variant for paper-scale grids.

use crate::cfd::{jacobi_sweep_flops, Grid};
use delta_mesh::{Comm, Kernel, Machine, Node, Payload, RunReport};

/// Result of a simulated stencil run.
#[derive(Debug, Clone)]
pub struct StencilSimResult {
    pub g: usize,
    pub iterations: usize,
    pub grid: (usize, usize),
    pub seconds: f64,
    /// Sustained GFLOP rate over the run.
    pub gflops: f64,
    /// Max |distributed − sequential| (verified mode only).
    pub max_error: Option<f64>,
    pub report: RunReport,
}

/// Split `g` points into `p` nearly equal contiguous blocks; returns the
/// (start, len) of block `i`.
fn block(g: usize, p: usize, i: usize) -> (usize, usize) {
    let base = g / p;
    let rem = g % p;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    (start, len)
}

/// Boundary function shared by the distributed and sequential solves.
fn bc(x: f64, y: f64) -> f64 {
    x + y
}

async fn stencil_node(
    node: Node,
    g: usize,
    iters: usize,
    pr: usize,
    pc: usize,
    real: bool,
) -> Option<Vec<f64>> {
    let rank = node.rank();
    let (my_r, my_c) = (rank / pc, rank % pc);
    let world = Comm::world(&node);
    let (r0, lr) = block(g, pr, my_r);
    let (c0, lc) = block(g, pc, my_c);
    let h = 1.0 / (g + 1) as f64;
    let stride = lc + 2;

    // Local field with ghost ring; global interior point (gi, gj) in
    // 0..g maps to Grid coordinate (gi+1, gj+1), position x = (gi+1)h.
    let mut cur = vec![0.0f64; (lr + 2) * stride];
    let mut nxt = vec![0.0f64; (lr + 2) * stride];
    // Fixed physical-boundary ghosts (Dirichlet).
    let gx = |gi: isize| (gi + 1) as f64 * h;
    for li in 0..lr + 2 {
        let gi = r0 as isize + li as isize - 1;
        for lj in 0..lc + 2 {
            let gj = c0 as isize + lj as isize - 1;
            if gi < 0 || gi >= g as isize || gj < 0 || gj >= g as isize {
                cur[li * stride + lj] = bc(gx(gi), gx(gj));
                nxt[li * stride + lj] = bc(gx(gi), gx(gj));
            }
        }
    }

    let north = (my_r > 0).then(|| rank - pc);
    let south = (my_r + 1 < pr).then(|| rank + pc);
    let west = (my_c > 0).then(|| rank - 1);
    let east = (my_c + 1 < pc).then(|| rank + 1);

    for it in 0..iters {
        let tbase = (it as u64) * 8;
        // --- Halo exchange (sends first: sends never block). ---
        let payload_row = |row: &[f64]| {
            if real {
                Payload::from_f64s(row)
            } else {
                Payload::Virtual(8 * row.len() as u64)
            }
        };
        if let Some(n) = north {
            let row: Vec<f64> = cur[stride + 1..stride + 1 + lc].to_vec();
            node.send(n, tbase + 1, payload_row(&row)).await; // my top -> their bottom
        }
        if let Some(s) = south {
            let row: Vec<f64> = cur[lr * stride + 1..lr * stride + 1 + lc].to_vec();
            node.send(s, tbase, payload_row(&row)).await; // my bottom -> their top
        }
        if let Some(w) = west {
            let col: Vec<f64> = (1..=lr).map(|i| cur[i * stride + 1]).collect();
            node.send(w, tbase + 3, payload_row(&col)).await;
        }
        if let Some(e) = east {
            let col: Vec<f64> = (1..=lr).map(|i| cur[i * stride + lc]).collect();
            node.send(e, tbase + 2, payload_row(&col)).await;
        }
        if let Some(n) = north {
            let m = node.recv(Some(n), Some(tbase)).await;
            if real {
                let d = m.payload.as_f64s();
                cur[1..1 + lc].copy_from_slice(d);
            }
        }
        if let Some(s) = south {
            let m = node.recv(Some(s), Some(tbase + 1)).await;
            if real {
                let d = m.payload.as_f64s();
                cur[(lr + 1) * stride + 1..(lr + 1) * stride + 1 + lc].copy_from_slice(d);
            }
        }
        if let Some(w) = west {
            let m = node.recv(Some(w), Some(tbase + 2)).await;
            if real {
                let d = m.payload.as_f64s();
                for (i, v) in d.iter().enumerate() {
                    cur[(i + 1) * stride] = *v;
                }
            }
        }
        if let Some(e) = east {
            let m = node.recv(Some(e), Some(tbase + 3)).await;
            if real {
                let d = m.payload.as_f64s();
                for (i, v) in d.iter().enumerate() {
                    cur[(i + 1) * stride + lc + 1] = *v;
                }
            }
        }

        // --- Sweep (rhs = 0; same arithmetic order as cfd::jacobi). ---
        if real {
            for li in 1..=lr {
                for lj in 1..=lc {
                    nxt[li * stride + lj] = 0.25
                        * (cur[(li - 1) * stride + lj]
                            + cur[(li + 1) * stride + lj]
                            + cur[li * stride + lj - 1]
                            + cur[li * stride + lj + 1]);
                }
            }
        }
        node.compute(Kernel::Stencil, 6.0 * (lr * lc) as f64).await;
        std::mem::swap(&mut cur, &mut nxt);

        // Periodic convergence check (every 10 sweeps), as real codes do.
        if it % 10 == 9 {
            world.allreduce_virtual(8).await;
        }
    }

    if !real {
        return None;
    }
    // Gather interior blocks to node 0 (flattened rows with coordinates).
    let mut mine = Vec::with_capacity(lr * lc + 4);
    mine.extend_from_slice(&[r0 as f64, lr as f64, c0 as f64, lc as f64]);
    for li in 1..=lr {
        mine.extend_from_slice(&cur[li * stride + 1..li * stride + 1 + lc]);
    }
    if rank != 0 {
        node.send_f64s(0, 1 << 41, &mine).await;
        None
    } else {
        let mut field = vec![0.0f64; g * g];
        let mut place = |blk: &[f64]| {
            let (br0, blr, bc0, blc) = (
                blk[0] as usize,
                blk[1] as usize,
                blk[2] as usize,
                blk[3] as usize,
            );
            for i in 0..blr {
                for j in 0..blc {
                    field[(br0 + i) * g + bc0 + j] = blk[4 + i * blc + j];
                }
            }
        };
        place(&mine);
        for _ in 1..node.nranks() {
            let m = node.recv(None, Some(1 << 41)).await;
            place(m.payload.as_f64s());
        }
        Some(field)
    }
}

fn finish(
    g: usize,
    iters: usize,
    grid: (usize, usize),
    report: RunReport,
    max_error: Option<f64>,
) -> StencilSimResult {
    let seconds = report.elapsed.as_secs_f64();
    StencilSimResult {
        g,
        iterations: iters,
        grid,
        seconds,
        gflops: jacobi_sweep_flops(g) * iters as f64 / seconds / 1e9,
        max_error,
        report,
    }
}

/// Choose the process grid like the LU model does.
fn grid_for(machine: &Machine) -> (usize, usize) {
    super::lu2d::choose_grid(machine.config().nodes())
}

/// Real-data run, verified against the sequential Jacobi solver.
pub fn run_verified(machine: &Machine, g: usize, iters: usize) -> StencilSimResult {
    let (pr, pc) = grid_for(machine);
    let (outs, report) = machine.run(move |node| stencil_node(node, g, iters, pr, pc, true));
    let field = outs[0].clone().expect("node 0 gathers the field");

    // Sequential reference: same boundary, same iteration count.
    let mut u = Grid::new(g);
    u.set_boundary(bc);
    let rhs = Grid::new(g);
    crate::cfd::jacobi(&mut u, &rhs, 0.0, iters, false);
    let mut err = 0.0f64;
    for i in 0..g {
        for j in 0..g {
            err = err.max((field[i * g + j] - u.at(i + 1, j + 1)).abs());
        }
    }
    finish(g, iters, (pr, pc), report, Some(err))
}

/// Timing-only run for paper-scale grids.
pub fn run_model(machine: &Machine, g: usize, iters: usize) -> StencilSimResult {
    let (pr, pc) = grid_for(machine);
    let (_, report) = machine.run(move |node| stencil_node(node, g, iters, pr, pc, false));
    finish(g, iters, (pr, pc), report, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_mesh::presets;

    #[test]
    fn blocks_partition_exactly() {
        for (g, p) in [(10, 3), (16, 4), (7, 7), (100, 6), (5, 8)] {
            let mut total = 0;
            let mut next = 0;
            for i in 0..p {
                let (s, l) = block(g, p, i);
                assert_eq!(s, next, "contiguous");
                next = s + l;
                total += l;
            }
            assert_eq!(total, g, "g={g} p={p}");
        }
    }

    #[test]
    fn distributed_matches_sequential_bitwise() {
        let m = Machine::new(presets::delta(2, 3));
        let r = run_verified(&m, 20, 40);
        assert_eq!(r.max_error, Some(0.0), "same arithmetic order expected");
    }

    #[test]
    fn verified_on_single_node() {
        let m = Machine::new(presets::delta(1, 1));
        let r = run_verified(&m, 12, 25);
        assert_eq!(r.max_error, Some(0.0));
    }

    #[test]
    fn uneven_grid_split_still_correct() {
        // 17 is not divisible by the 2x3 process grid.
        let m = Machine::new(presets::delta(2, 3));
        let r = run_verified(&m, 17, 30);
        assert_eq!(r.max_error, Some(0.0));
    }

    #[test]
    fn model_time_scales_superlinearly_down_with_nodes() {
        let g = 512;
        let iters = 20;
        let t4 = run_model(&Machine::new(presets::delta(2, 2)), g, iters).seconds;
        let t16 = run_model(&Machine::new(presets::delta(4, 4)), g, iters).seconds;
        assert!(t16 < t4, "16 nodes {t16}s vs 4 nodes {t4}s");
        // But not perfectly: halo overheads eat some of the 4x.
        assert!(t16 > t4 / 4.0, "speedup beyond linear is impossible here");
    }

    #[test]
    fn model_gflops_positive() {
        let m = Machine::new(presets::delta(4, 4));
        let r = run_model(&m, 1024, 10);
        assert!(r.gflops > 0.0);
        assert!(r.report.messages > 0);
    }
}
