//! Distributed shallow-water model on the simulated machine, with real
//! arithmetic — the NOAA Grand Challenge code as an application team
//! would have ported it: 1-D row-block decomposition of the periodic
//! grid, two halo exchanges per leapfrog step, verified **bit-for-bit**
//! against the host implementation in [`crate::shallow`].

use crate::shallow::{step_flops, Shallow};
use delta_mesh::{Kernel, Machine, Node, RunReport};

/// Result of a verified distributed shallow-water run.
#[derive(Debug, Clone)]
pub struct ShallowSimResult {
    pub m: usize,
    pub steps: usize,
    pub nodes: usize,
    pub seconds: f64,
    pub gflops: f64,
    /// Max |distributed − host| over the final p/u/v fields.
    pub max_error: f64,
    pub report: RunReport,
}

/// Contiguous row block of node `i` out of `p` for an `m`-row grid.
fn block(m: usize, p: usize, i: usize) -> (usize, usize) {
    let base = m / p;
    let rem = m % p;
    let start = i * base + i.min(rem);
    (start, base + usize::from(i < rem))
}

struct Dist {
    // Fields with one ghost row above and below: (lr + 2) rows × m cols.
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<f64>,
    uold: Vec<f64>,
    vold: Vec<f64>,
    pold: Vec<f64>,
    cu: Vec<f64>,
    cv: Vec<f64>,
    z: Vec<f64>,
    h: Vec<f64>,
    dx: f64,
    dy: f64,
    alpha: f64,
    tdt: f64,
    first: bool,
}

impl Dist {
    /// Initialise my rows from the same formulas the host model uses.
    fn new(m: usize, r0: usize, lr: usize) -> Dist {
        // Borrow the host initialiser and slice my rows out — identical
        // bits by construction.
        let host = Shallow::new(m);
        let take = |field: &[f64]| {
            let mut out = vec![0.0; (lr + 2) * m];
            for li in 0..lr {
                let gi = r0 + li;
                out[(li + 1) * m..(li + 2) * m].copy_from_slice(&field[gi * m..(gi + 1) * m]);
            }
            out
        };
        Dist {
            u: take(&host.u),
            v: take(&host.v),
            p: take(&host.p),
            uold: take(&host.u),
            vold: take(&host.v),
            pold: take(&host.p),
            cu: vec![0.0; (lr + 2) * m],
            cv: vec![0.0; (lr + 2) * m],
            z: vec![0.0; (lr + 2) * m],
            h: vec![0.0; (lr + 2) * m],
            dx: 1.0e5,
            dy: 1.0e5,
            alpha: 0.001,
            tdt: 90.0,
            first: true,
        }
    }
}

/// Exchange ghost rows of the given fields with the periodic north and
/// south neighbours. Interior rows live at local indices 1..=lr; ghost
/// row 0 mirrors the neighbour's last row, ghost lr+1 its first.
async fn exchange(node: &Node, fields: &mut [&mut Vec<f64>], m: usize, lr: usize, tbase: u64) {
    let p = node.nranks();
    let me = node.rank();
    let north = (me + p - 1) % p;
    let south = (me + 1) % p;
    for (fi, field) in fields.iter().enumerate() {
        let t = tbase + 2 * fi as u64;
        // My first interior row goes to the north neighbour's bottom ghost.
        node.send_f64s(north, t, &field[m..2 * m]).await;
        // My last interior row goes to the south neighbour's top ghost.
        node.send_f64s(south, t + 1, &field[lr * m..(lr + 1) * m])
            .await;
    }
    for (fi, field) in fields.iter_mut().enumerate() {
        let t = tbase + 2 * fi as u64;
        // Top ghost from the north neighbour's last row.
        let from_north = node.recv_f64s(Some(north), Some(t + 1)).await;
        field[..m].copy_from_slice(&from_north);
        // Bottom ghost from the south neighbour's first row.
        let from_south = node.recv_f64s(Some(south), Some(t)).await;
        field[(lr + 1) * m..(lr + 2) * m].copy_from_slice(&from_south);
    }
}

async fn shallow_node(node: Node, m: usize, steps: usize) -> Option<Vec<f64>> {
    let p = node.nranks();
    let me = node.rank();
    let (r0, lr) = block(m, p, me);
    let mut d = Dist::new(m, r0, lr);
    let fsdx = 4.0 / d.dx;
    let fsdy = 4.0 / d.dy;

    for step in 0..steps {
        let tbase = (1u64 << 24) + (step as u64) * 64;

        // Phase 1 needs u, v, p from both neighbours.
        {
            let Dist { u, v, p, .. } = &mut d;
            exchange(&node, &mut [u, v, p], m, lr, tbase).await;
        }
        // cu, cv, z, h over my interior rows (ghosts supply im/ip).
        for li in 1..=lr {
            for j in 0..m {
                let jm = (j + m - 1) % m;
                let jp = (j + 1) % m;
                let at = |f: &Vec<f64>, i: usize, j: usize| f[i * m + j];
                let (im, i, ip) = (li - 1, li, li + 1);
                d.cu[i * m + j] = 0.5 * (at(&d.p, i, j) + at(&d.p, im, j)) * at(&d.u, i, j);
                d.cv[i * m + j] = 0.5 * (at(&d.p, i, j) + at(&d.p, i, jm)) * at(&d.v, i, j);
                d.z[i * m + j] = (fsdx * (at(&d.v, i, j) - at(&d.v, im, j))
                    - fsdy * (at(&d.u, i, j) - at(&d.u, i, jm)))
                    / (at(&d.p, im, jm) + at(&d.p, i, jm) + at(&d.p, i, j) + at(&d.p, im, j));
                d.h[i * m + j] = at(&d.p, i, j)
                    + 0.25
                        * (at(&d.u, ip, j) * at(&d.u, ip, j)
                            + at(&d.u, i, j) * at(&d.u, i, j)
                            + at(&d.v, i, jp) * at(&d.v, i, jp)
                            + at(&d.v, i, j) * at(&d.v, i, j));
            }
        }

        // Phase 2 needs cu, cv, z, h from both neighbours.
        {
            let Dist { cu, cv, z, h, .. } = &mut d;
            exchange(&node, &mut [cu, cv, z, h], m, lr, tbase + 16).await;
        }
        let tdts8 = d.tdt / 8.0;
        let tdtsdx = d.tdt / d.dx;
        let tdtsdy = d.tdt / d.dy;
        let mut unew = vec![0.0; (lr + 2) * m];
        let mut vnew = vec![0.0; (lr + 2) * m];
        let mut pnew = vec![0.0; (lr + 2) * m];
        for li in 1..=lr {
            for j in 0..m {
                let jm = (j + m - 1) % m;
                let jp = (j + 1) % m;
                let at = |f: &Vec<f64>, i: usize, j: usize| f[i * m + j];
                let (im, i, ip) = (li - 1, li, li + 1);
                unew[i * m + j] = at(&d.uold, i, j)
                    + tdts8
                        * (at(&d.z, i, jp) + at(&d.z, i, j))
                        * (at(&d.cv, i, jp)
                            + at(&d.cv, im, jp)
                            + at(&d.cv, im, j)
                            + at(&d.cv, i, j))
                    - tdtsdx * (at(&d.h, i, j) - at(&d.h, im, j));
                vnew[i * m + j] = at(&d.vold, i, j)
                    - tdts8
                        * (at(&d.z, ip, j) + at(&d.z, i, j))
                        * (at(&d.cu, ip, j)
                            + at(&d.cu, i, j)
                            + at(&d.cu, i, jm)
                            + at(&d.cu, ip, jm))
                    - tdtsdy * (at(&d.h, i, j) - at(&d.h, i, jm));
                pnew[i * m + j] = at(&d.pold, i, j)
                    - tdtsdx * (at(&d.cu, ip, j) - at(&d.cu, i, j))
                    - tdtsdy * (at(&d.cv, i, jp) - at(&d.cv, i, j));
            }
        }

        // Phase 3: Asselin filter (all local).
        if d.first {
            d.first = false;
            d.tdt += d.tdt;
            d.uold.copy_from_slice(&d.u);
            d.vold.copy_from_slice(&d.v);
            d.pold.copy_from_slice(&d.p);
        } else {
            let alpha = d.alpha;
            for k in m..(lr + 1) * m {
                d.uold[k] = d.u[k] + alpha * (unew[k] - 2.0 * d.u[k] + d.uold[k]);
                d.vold[k] = d.v[k] + alpha * (vnew[k] - 2.0 * d.v[k] + d.vold[k]);
                d.pold[k] = d.p[k] + alpha * (pnew[k] - 2.0 * d.p[k] + d.pold[k]);
            }
        }
        d.u = unew;
        d.v = vnew;
        d.p = pnew;

        // Charge the step's arithmetic on this node's share of points.
        node.compute(Kernel::Stencil, 65.0 * (lr * m) as f64).await;
    }

    // Gather final p rows to node 0: [r0, lr, p-rows...]
    let mut mine = Vec::with_capacity(2 + lr * m);
    mine.push(r0 as f64);
    mine.push(lr as f64);
    mine.extend_from_slice(&d.p[m..(lr + 1) * m]);
    if me != 0 {
        node.send_f64s(0, 1 << 42, &mine).await;
        None
    } else {
        let mut field = vec![0.0; m * m];
        let mut place = |blk: &[f64]| {
            let (br0, blr) = (blk[0] as usize, blk[1] as usize);
            field[br0 * m..(br0 + blr) * m].copy_from_slice(&blk[2..]);
        };
        place(&mine);
        for _ in 1..p {
            let msg = node.recv(None, Some(1 << 42)).await;
            place(msg.payload.as_f64s());
        }
        Some(field)
    }
}

/// Run `steps` leapfrog steps distributed over the machine and verify
/// the final height field bit-for-bit against the host model.
pub fn run_verified(machine: &Machine, m: usize, steps: usize) -> ShallowSimResult {
    let p = machine.config().nodes();
    assert!(m >= p, "need at least one grid row per node");
    let (outs, report) = machine.run(move |node| shallow_node(node, m, steps));
    let field = outs[0].clone().expect("node 0 gathers");

    let mut host = Shallow::new(m);
    host.run(steps, false);
    let max_error = field
        .iter()
        .zip(&host.p)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    let seconds = report.elapsed.as_secs_f64();
    ShallowSimResult {
        m,
        steps,
        nodes: p,
        seconds,
        gflops: step_flops(m) * steps as f64 / seconds / 1e9,
        max_error,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_mesh::presets;

    #[test]
    fn distributed_matches_host_bitwise() {
        let m = Machine::new(presets::delta(2, 2));
        let r = run_verified(&m, 16, 20);
        assert_eq!(r.max_error, 0.0, "same arithmetic, same bits");
    }

    #[test]
    fn uneven_rows_still_exact() {
        // 18 rows over 5 nodes: blocks of 4,4,4,3,3.
        let m = Machine::new(presets::delta(1, 5));
        let r = run_verified(&m, 18, 15);
        assert_eq!(r.max_error, 0.0);
    }

    #[test]
    fn single_node_degenerates() {
        let m = Machine::new(presets::delta(1, 1));
        let r = run_verified(&m, 12, 10);
        assert_eq!(r.max_error, 0.0);
    }

    #[test]
    fn time_scales_with_steps() {
        let m = Machine::new(presets::delta(2, 2));
        let t10 = run_verified(&m, 16, 10).seconds;
        let t20 = run_verified(&m, 16, 20).seconds;
        assert!(t20 > 1.8 * t10 && t20 < 2.2 * t10, "{t10} vs {t20}");
    }
}
