//! Distributed 1-D FFT timing model: the transpose (all-to-all)
//! algorithm, which on a 1992 mesh is *communication dominated* — the
//! classic ASTA lesson that not every Grand Challenge kernel scales
//! like dense linear algebra.
//!
//! Algorithm modelled: N points over P nodes; local FFT of N/P points,
//! all-to-all transpose exchanging N/P² points per pair, local FFT and
//! twiddle again.

use crate::fft::fft_flops;
use delta_mesh::{Comm, Kernel, Machine, RunReport};

/// Result of a modelled distributed FFT.
#[derive(Debug, Clone)]
pub struct FftSimResult {
    pub n: usize,
    pub nodes: usize,
    pub seconds: f64,
    pub gflops: f64,
    /// Fraction of the run spent computing (vs communicating).
    pub compute_fraction: f64,
    pub report: RunReport,
}

/// Run the model for an `n`-point complex transform (n a power of two,
/// n divisible by the node count squared for the clean transpose).
pub fn run(machine: &Machine, n: usize) -> FftSimResult {
    let p = machine.config().nodes();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    assert!(n >= p * p, "need n >= P^2 for the transpose algorithm");

    let (_, report) = machine.run(move |node| async move {
        let world = Comm::world(&node);
        let local = n / p;
        // Phase 1: local FFT on n/p points (16 bytes per complex point).
        node.compute(Kernel::Fft, fft_flops(local)).await;
        // Phase 2: transpose — each pair exchanges n/p² complex points.
        let chunk_bytes = (n / (p * p) * 16) as u64;
        world.alltoall_virtual(chunk_bytes).await;
        // Phase 3: twiddle multiply + second local FFT.
        node.compute(Kernel::Fft, 6.0 * local as f64 + fft_flops(local))
            .await;
    });

    let seconds = report.elapsed.as_secs_f64();
    FftSimResult {
        n,
        nodes: p,
        seconds,
        gflops: fft_flops(n) / seconds / 1e9,
        compute_fraction: report.compute_fraction,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_mesh::presets;

    #[test]
    fn runs_and_reports() {
        let m = Machine::new(presets::delta(2, 2));
        let r = run(&m, 1 << 14);
        assert!(r.seconds > 0.0);
        assert!(r.gflops > 0.0);
        assert!(r.compute_fraction > 0.0 && r.compute_fraction <= 1.0);
    }

    #[test]
    fn fft_is_communication_bound_on_the_delta() {
        // At high node counts the p−1 pairwise-exchange steps are
        // latency bound and dominate: compute fraction well under half —
        // the "not all codes scale" exhibit.
        let m = Machine::new(presets::delta(8, 8));
        let r = run(&m, 1 << 13);
        assert!(
            r.compute_fraction < 0.5,
            "compute fraction {}",
            r.compute_fraction
        );
    }

    #[test]
    fn deterministic() {
        let m = Machine::new(presets::delta(2, 4));
        let a = run(&m, 1 << 13);
        let b = run(&m, 1 << 13);
        assert_eq!(a.report.elapsed, b.report.elapsed);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let m = Machine::new(presets::delta(2, 2));
        run(&m, 1000);
    }
}
