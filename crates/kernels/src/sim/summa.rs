//! SUMMA matrix multiply on the simulated machine (timing model) —
//! the scalable matmul the 2-D-grid libraries of the era standardised
//! on, and the clean bandwidth-bound counterpoint to LU's mixed profile.
//!
//! Per panel step: the owning process column broadcasts its A panel
//! along process rows, the owning process row broadcasts its B panel
//! along process columns, and everyone does a local rank-`kb` update.

use delta_mesh::{Comm, Kernel, Machine, RunReport};

/// Result of a modelled SUMMA run.
#[derive(Debug, Clone)]
pub struct SummaResult {
    pub n: usize,
    pub kb: usize,
    pub grid: (usize, usize),
    pub seconds: f64,
    pub gflops: f64,
    pub efficiency: f64,
    pub report: RunReport,
}

/// Run C = A·B at order `n` with panel width `kb`.
pub fn run(machine: &Machine, n: usize, kb: usize) -> SummaResult {
    let p = machine.config().nodes();
    let (pr, pc) = super::lu2d::choose_grid(p);

    let (_, report) = machine.run(move |node| async move {
        let rank = node.rank();
        let my_prow = rank / pc;
        let my_pcol = rank % pc;
        let row_members: Vec<usize> = (0..pc).map(|c| my_prow * pc + c).collect();
        let row_comm = Comm::new(&node, row_members, 300 + my_prow as u64);
        let col_members: Vec<usize> = (0..pr).map(|r| r * pc + my_pcol).collect();
        let col_comm = Comm::new(&node, col_members, 2000 + my_pcol as u64);

        // Block-distributed dims (largest block; imbalance negligible
        // for the model's purposes).
        let m_loc = n.div_ceil(pr);
        let c_loc = n.div_ceil(pc);

        let steps = n.div_ceil(kb);
        for k in 0..steps {
            let kb_now = kb.min(n - k * kb);
            let a_owner = (k * kb / n.div_ceil(pc).max(1)).min(pc - 1);
            let b_owner = (k * kb / n.div_ceil(pr).max(1)).min(pr - 1);
            // A panel (m_loc × kb) along rows; B panel (kb × c_loc) down cols.
            row_comm
                .bcast_virtual(a_owner, (m_loc * kb_now * 8) as u64)
                .await;
            col_comm
                .bcast_virtual(b_owner, (kb_now * c_loc * 8) as u64)
                .await;
            node.compute(
                Kernel::Dgemm,
                2.0 * m_loc as f64 * c_loc as f64 * kb_now as f64,
            )
            .await;
        }
    });

    let seconds = report.elapsed.as_secs_f64();
    let flops = 2.0 * (n as f64).powi(3);
    let gflops = flops / seconds / 1e9;
    SummaResult {
        n,
        kb,
        grid: (pr, pc),
        seconds,
        gflops,
        efficiency: gflops / (machine.config().peak_flops() / 1e9),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_mesh::presets;

    #[test]
    fn summa_sustains_high_efficiency() {
        // Dense matmul is the best-case kernel: on the Delta model it
        // should clear 50% of (dgemm-efficiency-adjusted) peak easily.
        let m = Machine::new(presets::delta(4, 4));
        let r = run(&m, 4000, 64);
        assert!(r.efficiency > 0.35, "eff {}", r.efficiency);
        assert!(r.efficiency < 0.58, "cannot beat the dgemm kernel rate");
    }

    #[test]
    fn summa_beats_lu_in_efficiency() {
        // No pivot latency, no panel critical path: SUMMA > LU.
        let m = Machine::new(presets::delta(4, 4));
        let s = run(&m, 3000, 64);
        let l = super::super::lu2d::run(&m, 3000, 32);
        assert!(
            s.efficiency > l.efficiency,
            "SUMMA {} vs LU {}",
            s.efficiency,
            l.efficiency
        );
    }

    #[test]
    fn efficiency_falls_under_strong_scaling() {
        // Fixed n, more nodes: broadcasts stop amortising and efficiency
        // drops — SUMMA scales, but not for free.
        let small = run(&Machine::new(presets::delta(2, 2)), 2000, 64);
        let large = run(&Machine::new(presets::delta(8, 8)), 2000, 64);
        assert!(
            large.efficiency < small.efficiency,
            "{} vs {}",
            large.efficiency,
            small.efficiency
        );
        assert!(large.seconds < small.seconds, "it does still get faster");
    }

    #[test]
    fn deterministic() {
        let m = Machine::new(presets::delta(2, 4));
        assert_eq!(
            run(&m, 1000, 32).report.elapsed,
            run(&m, 1000, 32).report.elapsed
        );
    }
}
