//! Simulator-hosted kernels: the Grand Challenge workloads expressed as
//! `delta-mesh` node programs.
//!
//! * [`lu1d`] — real-arithmetic distributed LU (verified numerics),
//! * [`lu2d`] — paper-scale 2-D block-cyclic LINPACK timing model (the
//!   "13 GFLOPS at order 25,000" reproduction),
//! * [`stencil`] — halo-exchange Jacobi, verified bit-for-bit against
//!   the host solver, plus a timing-only variant,
//! * [`fftsim`] — transpose-based distributed FFT timing model,
//! * [`summa`] — SUMMA dense matmul timing model,
//! * [`cgsim`] — distributed conjugate gradient (the allreduce-tax story),
//! * [`shallow_sim`] — distributed shallow water with real arithmetic,
//!   verified bit-for-bit against the host model.

pub mod cgsim;
pub mod fftsim;
pub mod lu1d;
pub mod lu2d;
pub mod shallow_sim;
pub mod stencil;
pub mod summa;
