//! Distributed conjugate gradient on the simulated machine (timing
//! model) — the "allreduce tax" exhibit: two global dot products per
//! iteration make CG latency-bound at scale, the sharpest contrast to
//! dense LU among the Grand Challenge kernels.
//!
//! Model: the 5-point Poisson system on a g×g grid, row-block
//! distributed. Per iteration: one halo exchange (north/south rows),
//! one SpMV, two dot-product allreduces, three vector updates.

use delta_mesh::{Comm, Kernel, Machine, RunReport};

/// Result of a modelled distributed CG run.
#[derive(Debug, Clone)]
pub struct CgSimResult {
    pub g: usize,
    pub iterations: usize,
    pub nodes: usize,
    pub seconds: f64,
    pub gflops: f64,
    /// Fraction of the run the average node spent computing.
    pub compute_fraction: f64,
    pub report: RunReport,
}

/// Run `iters` CG iterations on the g×g Poisson system.
pub fn run(machine: &Machine, g: usize, iters: usize) -> CgSimResult {
    let p = machine.config().nodes();
    assert!(g >= p, "need at least one grid row per node");

    let (_, report) = machine.run(move |node| async move {
        let world = Comm::world(&node);
        let me = node.rank();
        let rows_loc = g / p + usize::from(me < g % p);
        let n_loc = rows_loc * g;
        let row_bytes = (g * 8) as u64;
        let north = (me > 0).then(|| me - 1);
        let south = (me + 1 < p).then(|| me + 1);

        for it in 0..iters {
            let tbase = (1 << 20) + (it as u64) * 4;
            // Halo exchange for the SpMV.
            if let Some(nb) = north {
                node.send_virtual(nb, tbase + 1, row_bytes).await;
            }
            if let Some(sb) = south {
                node.send_virtual(sb, tbase, row_bytes).await;
            }
            if let Some(nb) = north {
                node.recv(Some(nb), Some(tbase)).await;
            }
            if let Some(sb) = south {
                node.recv(Some(sb), Some(tbase + 1)).await;
            }
            // SpMV: 5-point stencil, ~10 flops/row-point.
            node.compute(Kernel::Spmv, 10.0 * n_loc as f64).await;
            // alpha = rs / (p' A p): local dot + allreduce.
            node.compute(Kernel::Daxpy, 2.0 * n_loc as f64).await;
            world.allreduce_virtual(8).await;
            // x += alpha p; r -= alpha Ap; rs' = r·r.
            node.compute(Kernel::Daxpy, 6.0 * n_loc as f64).await;
            world.allreduce_virtual(8).await;
            // p = r + beta p.
            node.compute(Kernel::Daxpy, 2.0 * n_loc as f64).await;
        }
    });

    let seconds = report.elapsed.as_secs_f64();
    let nnz = 5.0 * (g * g) as f64;
    let flops = iters as f64 * (2.0 * nnz + 10.0 * (g * g) as f64);
    CgSimResult {
        g,
        iterations: iters,
        nodes: p,
        seconds,
        gflops: flops / seconds / 1e9,
        compute_fraction: report.compute_fraction,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_mesh::presets;

    #[test]
    fn runs_and_reports() {
        let m = Machine::new(presets::delta(2, 4));
        let r = run(&m, 512, 20);
        assert!(r.gflops > 0.0);
        assert!(r.seconds > 0.0);
        assert_eq!(r.iterations, 20);
    }

    #[test]
    fn cg_is_latency_bound_at_scale() {
        // Fixed total problem, growing machine: the two allreduces per
        // iteration stop shrinking while the local work does — compute
        // fraction must fall hard.
        let g = 1024;
        let small = run(&Machine::new(presets::delta(2, 2)), g, 10);
        let large = run(&Machine::new(presets::delta(16, 33)), g, 10);
        assert!(
            large.compute_fraction < 0.75 * small.compute_fraction,
            "large {} vs small {}",
            large.compute_fraction,
            small.compute_fraction
        );
        assert!(small.compute_fraction > 0.9, "4 nodes: compute bound");
    }

    #[test]
    fn strong_scaling_saturates() {
        // Small enough that 256 nodes get one grid row each — the
        // allreduce latency then rivals the local work.
        let g = 256;
        let t4 = run(&Machine::new(presets::delta(2, 2)), g, 10).seconds;
        let t256 = run(&Machine::new(presets::delta(16, 16)), g, 10).seconds;
        let speedup = t4 / t256;
        assert!(speedup > 1.0, "more nodes still help a little");
        assert!(
            speedup < 32.0,
            "but nowhere near the 64x node ratio (got {speedup:.1}x)"
        );
    }

    #[test]
    fn deterministic() {
        let m = Machine::new(presets::delta(2, 3));
        assert_eq!(
            run(&m, 256, 5).report.elapsed,
            run(&m, 256, 5).report.elapsed
        );
    }
}
