//! Paper-scale LINPACK on the simulated Delta: a 2-D block-cyclic
//! right-looking LU **timing model**.
//!
//! At order 25,000 the matrix is 5 GB — the real Delta held it across
//! 528 × 16 MB nodes, and this process does not. So this variant moves
//! *virtual* payloads with the exact communication schedule of the
//! algorithm (panel broadcasts along process rows, U/swap broadcasts
//! along process columns, pivot allreduces) and charges the node compute
//! model for the BLAS kernels (panel = DAXPY-class, update = DGEMM-class).
//! The achieved GFLOPS that falls out is the quantity the exhibit quotes
//! ("13 GFLOPS ... OF ORDER 25,000 BY 25,000").
//!
//! Fidelity notes (documented substitutions):
//! * per-column pivot allreduces are charged analytically per panel
//!   (`nb` × the recursive-doubling latency) plus one real allreduce to
//!   keep contention in the picture — doing 25,000 real 16-byte
//!   allreduces would add nothing but host time;
//! * row swaps are folded into the column-comm broadcast volume, as
//!   HPL-style long-swap implementations do.

use crate::lu::linpack_flops;
use delta_mesh::{Comm, FaultPlan, Kernel, Machine, MachineConfig, RunReport};
use des::rng::Rng;
use des::time::Dur;
use hpcc_trace::{NullRecorder, Recorder};
use std::rc::Rc;

/// Result of a modelled run.
#[derive(Debug, Clone)]
pub struct Lu2dResult {
    pub n: usize,
    pub nb: usize,
    pub grid: (usize, usize),
    pub seconds: f64,
    pub gflops: f64,
    /// Fraction of machine peak achieved.
    pub efficiency: f64,
    pub report: RunReport,
}

/// Pick a near-square process grid pr×pc = p with pr ≤ pc.
pub fn choose_grid(p: usize) -> (usize, usize) {
    let mut best = (1, p);
    let mut r = 1;
    while r * r <= p {
        if p.is_multiple_of(r) {
            best = (r, p / r);
        }
        r += 1;
    }
    best
}

/// Number of global indices in `[from, n)` whose block `(i/nb) % p == coord`.
fn local_count(from: usize, n: usize, nb: usize, p: usize, coord: usize) -> usize {
    if from >= n {
        return 0;
    }
    let mut count = 0;
    let mut b = from / nb;
    loop {
        let blk_start = b * nb;
        if blk_start >= n {
            break;
        }
        if b % p == coord {
            let lo = blk_start.max(from);
            let hi = (blk_start + nb).min(n);
            count += hi - lo;
        }
        b += 1;
    }
    count
}

/// Latency of a `p`-way recursive-doubling allreduce of `bytes` on the
/// machine, approximated with average-distance hops.
fn allreduce_latency(cfg: &MachineConfig, p: usize, bytes: u64) -> Dur {
    if p <= 1 {
        return Dur::ZERO;
    }
    let rounds = (p as f64).log2().ceil() as u64;
    let avg_hops = (cfg.topology.diameter() / 2).max(1);
    let per_msg = cfg.net.send_overhead
        + cfg.net.wire_latency
        + cfg.net.per_hop * avg_hops as u64
        + Dur::from_secs_f64(bytes as f64 / cfg.net.bandwidth)
        + cfg.net.recv_overhead;
    per_msg * rounds
}

/// Run the timing model for order `n`, panel width `nb`.
pub fn run(machine: &Machine, n: usize, nb: usize) -> Lu2dResult {
    run_checkpointed(machine, n, nb, 0).result
}

/// A checkpointed run: the timing result plus where in the fault-free
/// timeline each checkpoint completed.
#[derive(Debug, Clone)]
pub struct CkptRun {
    pub result: Lu2dResult,
    /// Checkpoint cadence in panel steps (0 = no checkpoints).
    pub every_steps: usize,
    /// Completion time of each checkpoint, seconds into the run.
    pub ckpt_times_s: Vec<f64>,
}

/// Run the LU timing model, pausing every `every_steps` panel steps to
/// checkpoint: a world barrier, then every node drains its local matrix
/// share to stable storage at mesh link bandwidth. `every_steps == 0`
/// disables checkpointing and reproduces [`run`] exactly.
pub fn run_checkpointed(machine: &Machine, n: usize, nb: usize, every_steps: usize) -> CkptRun {
    run_impl(
        machine,
        n,
        nb,
        every_steps,
        &FaultPlan::none(),
        Rc::new(NullRecorder),
    )
}

/// [`run`] under a [`FaultPlan`] and a trace [`Recorder`]: the exhibit's
/// faulted, fully-instrumented LU-2D. Every mesh node's
/// compute/send/recv/blocked intervals, every channel occupancy window,
/// and the executor's queue depth land in the recorder; the timing
/// result is what the (identically seeded) unrecorded run would report.
pub fn run_traced(
    machine: &Machine,
    n: usize,
    nb: usize,
    plan: &FaultPlan,
    rec: Rc<dyn Recorder>,
) -> CkptRun {
    run_impl(machine, n, nb, 0, plan, rec)
}

fn run_impl(
    machine: &Machine,
    n: usize,
    nb: usize,
    every_steps: usize,
    plan: &FaultPlan,
    rec: Rc<dyn Recorder>,
) -> CkptRun {
    let p = machine.config().nodes();
    let (pr, pc) = choose_grid(p);
    let cfg = machine.config().clone();
    let pivot_cost = allreduce_latency(&cfg, pr, 16);
    let io_bw = cfg.net.bandwidth;

    let (mut times, report) = machine.run_recorded(plan, rec, move |node| {
        let pivot_cost = pivot_cost;
        async move {
            let world = (every_steps > 0).then(|| Comm::world(&node));
            let mut ckpts: Vec<f64> = Vec::new();
            let rank = node.rank();
            let my_prow = rank / pc;
            let my_pcol = rank % pc;
            // Row communicator: all ranks in my process row.
            let row_members: Vec<usize> = (0..pc).map(|c| my_prow * pc + c).collect();
            let row_comm = Comm::new(&node, row_members, 100 + my_prow as u64);
            // Column communicator: all ranks in my process column.
            let col_members: Vec<usize> = (0..pr).map(|r| r * pc + my_pcol).collect();
            let col_comm = Comm::new(&node, col_members, 1000 + my_pcol as u64);

            let steps = n.div_ceil(nb);
            for k in 0..steps {
                if let Some(w) = &world {
                    if k > 0 && k.is_multiple_of(every_steps) {
                        // Consistent checkpoint: quiesce, drain the local
                        // matrix share to stable storage at link speed,
                        // then agree the checkpoint is durable.
                        w.barrier().await;
                        let my_bytes = 8.0
                            * local_count(0, n, nb, pr, my_prow) as f64
                            * local_count(0, n, nb, pc, my_pcol) as f64;
                        node.delay(Dur::from_secs_f64(my_bytes / io_bw)).await;
                        w.barrier().await;
                        ckpts.push(node.now().as_secs_f64());
                    }
                }
                let kb = nb.min(n - k * nb);
                let diag = k * nb;
                let trail = diag + kb;
                let panel_col = k % pc; // process column owning the panel
                let panel_row = k % pr; // process row owning the U block

                // Local trailing extents.
                let m_loc = local_count(trail, n, nb, pr, my_prow); // rows
                let c_loc = local_count(trail, n, nb, pc, my_pcol); // cols
                                                                    // Panel rows at/below the diagonal block.
                let m_panel = local_count(diag, n, nb, pr, my_prow);

                // --- Panel factorisation in the owning process column. ---
                if my_pcol == panel_col {
                    // Factor kb columns over m_panel local rows. Blocked /
                    // recursive panel codes sustain BLAS-2.5-like rates,
                    // which the Panel kernel class models.
                    let flops = (m_panel as f64) * (kb as f64) * (kb as f64 + 1.0);
                    node.compute(Kernel::Panel, flops).await;
                    // kb pivot searches: one real allreduce for contention,
                    // the rest charged analytically.
                    col_comm.allreduce_virtual(16).await;
                    node.delay(pivot_cost * (kb.saturating_sub(1)) as u64).await;
                    // Row interchanges + U rows move inside the column.
                    let swap_bytes = (kb * c_loc * 8) as u64;
                    col_comm.bcast_virtual(panel_row, swap_bytes).await;
                }

                if trail >= n {
                    break;
                }

                // --- Broadcast the L panel along process rows. ---
                let l_bytes = (m_loc * kb * 8) as u64;
                row_comm.bcast_virtual(panel_col, l_bytes.max(8)).await;

                // --- Broadcast the U block along process columns. ---
                let u_bytes = (kb * c_loc * 8) as u64;
                col_comm.bcast_virtual(panel_row, u_bytes.max(8)).await;

                // --- Trailing update: the DGEMM. ---
                let flops = 2.0 * m_loc as f64 * c_loc as f64 * kb as f64;
                if flops > 0.0 {
                    node.compute(Kernel::Dgemm, flops).await;
                }
                // Triangular solve on the U rows (owning row only).
                if my_prow == panel_row {
                    let f = (kb * kb) as f64 * c_loc as f64;
                    node.compute(Kernel::Dtrsm, f).await;
                }
            }
            ckpts
        }
    });

    let seconds = report.elapsed.as_secs_f64();
    let gflops = linpack_flops(n) / seconds / 1e9;
    let peak = machine.config().peak_flops() / 1e9;
    CkptRun {
        result: Lu2dResult {
            n,
            nb,
            grid: (pr, pc),
            seconds,
            gflops,
            efficiency: gflops / peak,
            report,
        },
        every_steps,
        // Node 0's checkpoint log; empty if a fault killed node 0.
        ckpt_times_s: times.swap_remove(0).unwrap_or_default(),
    }
}

/// Young's approximation of the optimal checkpoint interval:
/// `sqrt(2 · MTBF · checkpoint_cost)`.
pub fn young_optimal_interval(mtbf_s: f64, ckpt_cost_s: f64) -> f64 {
    (2.0 * mtbf_s * ckpt_cost_s).sqrt()
}

/// One point of the checkpoint-interval sweep.
#[derive(Debug, Clone)]
pub struct ResiliencePoint {
    /// Requested checkpoint interval, seconds of fault-free progress.
    pub interval_s: f64,
    /// The panel-step cadence that interval maps to.
    pub every_steps: usize,
    /// Checkpoints taken in the fault-free run.
    pub checkpoints: usize,
    /// Fault-free runtime including checkpoint overhead.
    pub run_seconds: f64,
    /// Mean per-checkpoint cost (overhead / checkpoints taken).
    pub ckpt_cost_s: f64,
    /// Expected completion time under the MTBF, averaged over trials.
    pub mean_completion_s: f64,
    /// Mean failures hit per trial.
    pub mean_failures: f64,
}

/// Sweep checkpoint intervals against a machine MTBF for the LU run.
///
/// Each interval is mapped to a panel-step cadence, the checkpointed
/// run is simulated fault-free to price the checkpoints (cost comes out
/// of the mesh bandwidth model, not a hand-picked constant), and then a
/// deterministic Monte Carlo replay draws failure times from `seed` and
/// rolls the run back to its last durable checkpoint each time —
/// restart costs one checkpoint read. The resulting completion-time
/// curve has an interior minimum near [`young_optimal_interval`].
pub fn resilience_sweep(
    machine: &Machine,
    n: usize,
    nb: usize,
    mtbf_s: f64,
    intervals_s: &[f64],
    seed: u64,
    trials: usize,
) -> Vec<ResiliencePoint> {
    assert!(mtbf_s > 0.0 && trials > 0);
    let base = run_checkpointed(machine, n, nb, 0);
    let base_s = base.result.seconds;
    let steps = n.div_ceil(nb);
    let step_s = base_s / steps as f64;

    intervals_s
        .iter()
        .map(|&interval_s| {
            let every_steps = ((interval_s / step_s).round() as usize).clamp(1, steps);
            let ck = run_checkpointed(machine, n, nb, every_steps);
            let run_seconds = ck.result.seconds;
            let checkpoints = ck.ckpt_times_s.len();
            let ckpt_cost_s = if checkpoints > 0 {
                (run_seconds - base_s) / checkpoints as f64
            } else {
                0.0
            };
            // Restarting means reading the checkpoint back: same bytes,
            // same pipes, so the same cost as writing it.
            let restart_s = ckpt_cost_s;

            let mut total = 0.0f64;
            let mut failures = 0u64;
            let mut rng = Rng::new(seed ^ (every_steps as u64).wrapping_mul(0x9e37_79b9));
            for _ in 0..trials {
                let mut trial = rng.fork();
                // Progress position in the fault-free checkpointed
                // timeline; durable progress is the last checkpoint.
                let mut saved = 0.0f64;
                let mut wall = 0.0f64;
                loop {
                    let ttf = trial.exp(mtbf_s);
                    if saved + ttf >= run_seconds {
                        wall += run_seconds - saved;
                        break;
                    }
                    failures += 1;
                    wall += ttf + restart_s;
                    let failed_at = saved + ttf;
                    saved = ck
                        .ckpt_times_s
                        .iter()
                        .copied()
                        .rfind(|&c| c <= failed_at)
                        .unwrap_or(0.0);
                }
                total += wall;
            }
            ResiliencePoint {
                interval_s,
                every_steps,
                checkpoints,
                run_seconds,
                ckpt_cost_s,
                mean_completion_s: total / trials as f64,
                mean_failures: failures as f64 / trials as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_mesh::presets;

    #[test]
    fn grid_choice_near_square() {
        assert_eq!(choose_grid(528), (22, 24)); // nearest-square 528 grid
        assert_eq!(choose_grid(16), (4, 4));
        assert_eq!(choose_grid(13), (1, 13));
        assert_eq!(choose_grid(1), (1, 1));
    }

    #[test]
    fn local_count_partitions_everything() {
        let (n, nb, p) = (1000, 32, 7);
        for from in [0, 13, 500, 999, 1000] {
            let total: usize = (0..p).map(|c| local_count(from, n, nb, p, c)).sum();
            assert_eq!(total, n - from.min(n), "from={from}");
        }
    }

    #[test]
    fn local_count_simple_cases() {
        // n=8, nb=2, p=2: blocks 0..4 alternate owners.
        assert_eq!(local_count(0, 8, 2, 2, 0), 4);
        assert_eq!(local_count(0, 8, 2, 2, 1), 4);
        assert_eq!(local_count(2, 8, 2, 2, 0), 2);
        assert_eq!(local_count(3, 8, 2, 2, 1), 3);
    }

    #[test]
    fn efficiency_under_one_and_positive() {
        let m = Machine::new(presets::delta(4, 4));
        let r = run(&m, 2000, 64);
        assert!(r.gflops > 0.0);
        assert!(r.efficiency < 1.0, "eff {}", r.efficiency);
        assert!(r.efficiency > 0.02, "eff {}", r.efficiency);
    }

    #[test]
    fn efficiency_grows_with_problem_size() {
        let m = Machine::new(presets::delta(4, 4));
        let small = run(&m, 1000, 64);
        let large = run(&m, 4000, 64);
        assert!(
            large.efficiency > small.efficiency,
            "{} vs {}",
            large.efficiency,
            small.efficiency
        );
    }

    #[test]
    fn deterministic() {
        let m = Machine::new(presets::delta(2, 4));
        let a = run(&m, 1500, 32);
        let b = run(&m, 1500, 32);
        assert_eq!(a.report.elapsed, b.report.elapsed);
        assert_eq!(a.report.messages, b.report.messages);
    }

    #[test]
    fn checkpoints_cost_time_and_land_in_order() {
        let m = Machine::new(presets::delta(4, 4));
        let base = run(&m, 2000, 64);
        let ck = run_checkpointed(&m, 2000, 64, 5);
        // steps = ceil(2000/64) = 32; checkpoints at k = 5,10,...,30.
        assert_eq!(ck.ckpt_times_s.len(), 6);
        assert!(ck.result.seconds > base.seconds, "checkpoints are not free");
        assert!(ck
            .ckpt_times_s
            .windows(2)
            .all(|w| w[0] < w[1] && w[1] < ck.result.seconds));
        let again = run_checkpointed(&m, 2000, 64, 5);
        assert_eq!(ck.result.report.elapsed, again.result.report.elapsed);
        assert_eq!(ck.ckpt_times_s, again.ckpt_times_s);
    }

    #[test]
    fn zero_cadence_matches_plain_run() {
        let m = Machine::new(presets::delta(2, 4));
        let plain = run(&m, 1500, 32);
        let ck = run_checkpointed(&m, 1500, 32, 0);
        assert_eq!(plain.report.elapsed, ck.result.report.elapsed);
        assert_eq!(plain.report.events, ck.result.report.events);
        assert!(ck.ckpt_times_s.is_empty());
    }

    #[test]
    fn traced_run_is_bit_identical_and_captures_the_fault() {
        use delta_mesh::FaultKind;
        use des::time::SimTime;
        use hpcc_trace::{Event, MemRecorder};
        let m = Machine::new(presets::delta(2, 4));
        // A transient outage + a slow node: the run degrades but finishes.
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::from_secs_f64(0.01),
            FaultKind::LinkDown {
                link: 0,
                until: SimTime::from_secs_f64(0.05),
            },
        );
        plan.push(
            SimTime::from_secs_f64(0.02),
            FaultKind::NodeSlow {
                node: 3,
                factor: 4.0,
                until: SimTime::from_secs_f64(0.2),
            },
        );
        let silent = run_traced(&m, 1500, 32, &plan, Rc::new(NullRecorder));
        let rec = Rc::new(MemRecorder::new());
        let traced = run_traced(&m, 1500, 32, &plan, Rc::clone(&rec) as Rc<dyn Recorder>);
        assert_eq!(
            silent.result.report.elapsed, traced.result.report.elapsed,
            "recording must not perturb the faulted run"
        );
        assert_eq!(silent.result.report.events, traced.result.report.events);
        assert!(!rec.is_empty());
        let (mut computes, mut faults) = (0usize, 0usize);
        rec.with(|_, events| {
            for e in events {
                match e {
                    Event::Span { cat, .. } if *cat == "compute" => computes += 1,
                    Event::Instant { cat, .. } if *cat == "fault" => faults += 1,
                    _ => {}
                }
            }
        });
        assert!(computes > 0, "kernel compute spans recorded");
        assert!(faults >= 2, "down + slowdown instants recorded");
        // Fault-free traced run reproduces the plain model exactly.
        let plain = run(&m, 1500, 32);
        let clean = run_traced(&m, 1500, 32, &FaultPlan::none(), Rc::new(NullRecorder));
        assert_eq!(plain.report.elapsed, clean.result.report.elapsed);
    }

    #[test]
    fn young_interval_shape() {
        assert_eq!(
            young_optimal_interval(7200.0, 50.0),
            (2.0f64 * 7200.0 * 50.0).sqrt()
        );
        assert!(young_optimal_interval(3600.0, 10.0) < young_optimal_interval(3600.0, 40.0));
    }

    #[test]
    fn sweep_replays_from_seed_and_faults_cost_time() {
        let m = Machine::new(presets::delta(2, 4));
        let intervals = [5.0, 20.0, 80.0];
        let a = resilience_sweep(&m, 1500, 32, 60.0, &intervals, 42, 16);
        let b = resilience_sweep(&m, 1500, 32, 60.0, &intervals, 42, 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean_completion_s, y.mean_completion_s);
            assert_eq!(x.mean_failures, y.mean_failures);
        }
        for p in &a {
            assert!(p.mean_completion_s >= p.run_seconds);
            assert!(p.checkpoints == 0 || p.ckpt_cost_s > 0.0);
        }
        assert!(
            a.iter().any(|p| p.checkpoints > 0),
            "at least one interval fits inside the run"
        );
    }
}
