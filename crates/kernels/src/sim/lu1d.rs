//! Distributed LU with real arithmetic on the simulated machine —
//! a 1-D column block-cyclic factorisation in the style of the first
//! distributed-memory LINPACK codes (dgefa/dgesl split across nodes).
//!
//! Columns are dealt to nodes in blocks of `nb`; each elimination step
//! the owner of column `k` finds the pivot, scales the multipliers and
//! broadcasts them; every node applies the row interchange and the
//! rank-1 update to its own trailing columns. Real `f64` data moves
//! through the simulated mesh, so the result is *numerically verified*
//! while the clock advances by the modelled compute and message costs.

use delta_mesh::{Comm, Kernel, Machine, Node, RunReport};
use des::rng::Rng;
use std::sync::Arc;

/// Outcome of a verified simulated LINPACK run.
#[derive(Debug, Clone)]
pub struct Lu1dResult {
    pub n: usize,
    pub nb: usize,
    pub nodes: usize,
    /// Virtual (simulated) execution time, seconds.
    pub seconds: f64,
    /// Achieved GFLOPS on the simulated machine.
    pub gflops: f64,
    /// Scaled residual of the solve, computed on node 0.
    pub residual: f64,
    pub report: RunReport,
}

/// Which node owns global column `j`.
#[inline]
fn owner(j: usize, nb: usize, p: usize) -> usize {
    (j / nb) % p
}

/// Run the factor+solve at order `n` with column block `nb` on `machine`.
/// The matrix is generated per-column from `seed` so every node can build
/// its own columns without communication.
pub fn run(machine: &Machine, n: usize, nb: usize, seed: u64) -> Lu1dResult {
    let p = machine.config().nodes();
    let (outs, report) = machine.run(move |node| async move { lu1d_node(node, n, nb, seed).await });
    let residual = outs[0].expect("node 0 computes the residual");
    let seconds = report.elapsed.as_secs_f64();
    Lu1dResult {
        n,
        nb,
        nodes: p,
        seconds,
        gflops: crate::lu::linpack_flops(n) / seconds / 1e9,
        residual,
        report,
    }
}

/// Deterministic matrix entry a(i, j) — every node generates the same
/// values (a hashed generator, not a stream, so columns are independent).
fn entry(seed: u64, i: usize, j: usize) -> f64 {
    let mut r = Rng::new(seed ^ ((i as u64) << 32) ^ j as u64);
    r.range_f64(-1.0, 1.0)
}

async fn lu1d_node(node: Node, n: usize, nb: usize, seed: u64) -> Option<f64> {
    let p = node.nranks();
    let me = node.rank();
    let world = Comm::world(&node);

    // Build my columns.
    let mut my_cols: Vec<(usize, Vec<f64>)> = (0..n)
        .filter(|&j| owner(j, nb, p) == me)
        .map(|j| (j, (0..n).map(|i| entry(seed, i, j)).collect()))
        .collect();
    // Right-hand side, replicated (cheap at test scale).
    let b: Vec<f64> = (0..n).map(|i| entry(seed.wrapping_add(1), i, 0)).collect();

    let mut pivots = vec![0usize; n];

    for k in 0..n {
        let root = owner(k, nb, p);
        // Owner prepares the multiplier column.
        let col_msg: Option<Arc<[f64]>> = if me == root {
            let col = &mut my_cols
                .iter_mut()
                .find(|(j, _)| *j == k)
                .expect("owner holds column k")
                .1;
            // Pivot search below the diagonal.
            let mut l = k;
            let mut best = col[k].abs();
            for (i, v) in col.iter().enumerate().take(n).skip(k + 1) {
                if v.abs() > best {
                    best = v.abs();
                    l = i;
                }
            }
            assert!(best > 0.0, "singular at column {k}");
            col.swap(k, l);
            let inv = 1.0 / col[k];
            for v in &mut col[k + 1..n] {
                *v *= inv;
            }
            // Message: [pivot_row, m(k+1..n)...]
            let mut msg = Vec::with_capacity(n - k);
            msg.push(l as f64);
            msg.extend_from_slice(&col[k + 1..]);
            // Charge the pivot scan + scale.
            node.compute(Kernel::Daxpy, 2.0 * (n - k) as f64).await;
            Some(Arc::from(msg))
        } else {
            None
        };

        let msg = world.bcast(root, col_msg).await;
        let l = msg[0] as usize;
        pivots[k] = l;
        let mult = &msg[1..]; // multipliers for rows k+1..n

        // Apply interchange + rank-1 update to my trailing columns.
        let mut local_work = 0usize;
        for (j, col) in my_cols.iter_mut() {
            if *j <= k {
                continue;
            }
            col.swap(k, l);
            let t = col[k];
            if t != 0.0 {
                for (ci, mi) in col[k + 1..].iter_mut().zip(mult) {
                    *ci -= mi * t;
                }
            }
            local_work += n - k - 1;
        }
        if local_work > 0 {
            node.compute(Kernel::Daxpy, 2.0 * local_work as f64).await;
        }
    }

    // Gather all columns to node 0 for the verified solve.
    if me != 0 {
        for (j, col) in &my_cols {
            node.send_f64s(0, (1 << 40) | *j as u64, col).await;
        }
        None
    } else {
        let mut full = crate::mat::Mat::zeros(n, n);
        for (j, col) in &my_cols {
            for i in 0..n {
                full[(i, *j)] = col[i];
            }
        }
        for j in 0..n {
            if owner(j, nb, p) != 0 {
                let col = node
                    .recv_f64s(Some(owner(j, nb, p)), Some((1 << 40) | j as u64))
                    .await;
                for i in 0..n {
                    full[(i, j)] = col[i];
                }
            }
        }
        // dgesl-style solve with the recorded pivot sequence.
        let mut x = b.clone();
        for k in 0..n {
            x.swap(k, pivots[k]);
            let xk = x[k];
            if xk != 0.0 {
                for i in k + 1..n {
                    x[i] -= full[(i, k)] * xk;
                }
            }
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= full[(i, j)] * x[j];
            }
            x[i] = s / full[(i, i)];
        }
        node.compute(Kernel::Daxpy, 2.0 * (n * n) as f64).await;

        // Residual against the original matrix.
        let mut rmax = 0.0f64;
        let mut anorm = 0.0f64;
        let mut xnorm = 0.0f64;
        for &xi in &x {
            xnorm = xnorm.max(xi.abs());
        }
        for (i, &bi) in b.iter().enumerate() {
            let mut ax = 0.0;
            let mut arow = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                let a = entry(seed, i, j);
                ax += a * xj;
                arow += a.abs();
            }
            rmax = rmax.max((ax - bi).abs());
            anorm = anorm.max(arow);
        }
        Some(rmax / (anorm * xnorm * n as f64 * f64::EPSILON).max(1e-300))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_mesh::presets;

    #[test]
    fn verified_on_four_nodes() {
        let m = Machine::new(presets::delta(2, 2));
        let r = run(&m, 48, 4, 11);
        assert!(r.residual < 16.0, "scaled residual {}", r.residual);
        assert!(r.seconds > 0.0);
        assert!(r.gflops > 0.0);
    }

    #[test]
    fn verified_on_odd_node_count() {
        let m = Machine::new(presets::delta(1, 3));
        let r = run(&m, 30, 3, 5);
        assert!(r.residual < 16.0, "scaled residual {}", r.residual);
    }

    #[test]
    fn single_node_degenerates_to_sequential() {
        let m = Machine::new(presets::delta(1, 1));
        let r = run(&m, 24, 4, 7);
        assert!(r.residual < 16.0);
        // With one node there is no panel broadcast traffic beyond
        // self-sends of the gather phase.
        assert!(r.report.messages <= 24 * 2);
    }

    #[test]
    fn more_nodes_is_faster_at_fixed_size() {
        let small = Machine::new(presets::delta(1, 2));
        let big = Machine::new(presets::delta(2, 4));
        let n = 64;
        let t2 = run(&small, n, 4, 3).seconds;
        let t8 = run(&big, n, 4, 3).seconds;
        assert!(t8 < t2, "8 nodes {t8}s vs 2 nodes {t2}s");
    }

    #[test]
    fn deterministic_virtual_time() {
        let m1 = Machine::new(presets::delta(2, 2));
        let m2 = Machine::new(presets::delta(2, 2));
        let a = run(&m1, 32, 4, 9);
        let b = run(&m2, 32, 4, 9);
        assert_eq!(a.report.elapsed, b.report.elapsed);
        assert_eq!(a.report.messages, b.report.messages);
        assert_eq!(a.residual, b.residual);
    }
}
