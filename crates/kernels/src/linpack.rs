//! The LINPACK benchmark driver: generate, factor, solve, verify, and
//! report FLOP rate — the procedure behind the exhibit's "13 GFLOPS ...
//! ON A LINPAC BENCHMARK CODE OF ORDER 25,000 BY 25,000".
//!
//! On the host this runs real arithmetic (sequential or Rayon). The
//! simulated-Delta variant lives in [`crate::sim::lu2d`].

use crate::lu::{linpack_flops, lu_factor, lu_factor_par, lu_solve, Singular};
use crate::mat::vecops::norm_inf;
use crate::mat::Mat;
use des::rng::Rng;
use std::time::Instant;

/// How to run the factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Sequential,
    Rayon,
}

/// Result of one LINPACK run.
#[derive(Debug, Clone)]
pub struct LinpackResult {
    pub n: usize,
    pub block: usize,
    pub mode: Mode,
    pub seconds: f64,
    pub gflops: f64,
    /// Scaled residual ‖Ax−b‖∞ / (‖A‖∞ ‖x‖∞ n ε); must be O(1).
    pub residual: f64,
    pub passed: bool,
}

/// The standard LINPACK pass criterion on the scaled residual.
pub const RESIDUAL_THRESHOLD: f64 = 16.0;

/// Run the benchmark at order `n` with panel width `block`.
pub fn run(n: usize, block: usize, mode: Mode, seed: u64) -> Result<LinpackResult, Singular> {
    let mut rng = Rng::new(seed);
    let a = Mat::random(n, n, &mut rng);
    let b: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();

    let mut f = a.clone();
    let start = Instant::now();
    let piv = match mode {
        Mode::Sequential => lu_factor(&mut f, block)?,
        Mode::Rayon => lu_factor_par(&mut f, block)?,
    };
    let x = lu_solve(&f, &piv, &b);
    let seconds = start.elapsed().as_secs_f64();

    let ax = a.matvec(&x);
    let rinf = norm_inf(&ax.iter().zip(&b).map(|(p, q)| p - q).collect::<Vec<_>>());
    let residual = rinf / (a.inf_norm() * norm_inf(&x) * n as f64 * f64::EPSILON).max(1e-300);
    Ok(LinpackResult {
        n,
        block,
        mode,
        seconds,
        gflops: linpack_flops(n) / seconds / 1e9,
        residual,
        passed: residual < RESIDUAL_THRESHOLD,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_run_passes() {
        let r = run(120, 16, Mode::Sequential, 1).unwrap();
        assert!(r.passed, "residual {}", r.residual);
        assert!(r.gflops > 0.0);
        assert_eq!(r.n, 120);
    }

    #[test]
    fn rayon_run_passes() {
        let r = run(160, 32, Mode::Rayon, 2).unwrap();
        assert!(r.passed, "residual {}", r.residual);
    }

    #[test]
    fn residual_is_tiny_for_well_conditioned() {
        let r = run(64, 8, Mode::Sequential, 3).unwrap();
        assert!(r.residual < 1.0, "scaled residual {}", r.residual);
    }
}
