//! The shallow-water equations on a periodic staggered grid — the
//! canonical ocean/atmosphere Grand Challenge kernel (the paper's NOAA
//! "ocean and atmospheric computation research" line), after the classic
//! Sadourny (1975) scheme used by the SHALLOW benchmark.
//!
//! Leapfrog time stepping with a Robert–Asselin filter; the scheme
//! conserves total mass to round-off on the periodic domain, which the
//! tests assert.
//!
//! ## Engine v2 sweeps
//!
//! The seed sweeps ([`Shallow::step_baseline`]) evaluate a `% m`
//! wrap-around index inside every inner loop, which blocks
//! vectorisation. The v2 engine keeps the identical per-point
//! arithmetic but restructures each sweep so the compiler can use the
//! vector units:
//!
//! * **Hoisted periodicity** — each row kernel receives plain slices of
//!   the rows it reads (`i`, `i±1` resolved once per row); column
//!   wrap-around becomes a `j±1` slice shift with the single wrapping
//!   point peeled off, so every inner loop is branch-free contiguous
//!   code that auto-vectorises.
//! * **Fused per-row passes** — the four phase-1 fields (`cu`, `cv`,
//!   `z`, `h`) are produced in one pass over each row (one read of the
//!   `p`/`u`/`v` neighbourhoods instead of four), and likewise the
//!   three phase-2 leapfrog fields; rows fan out over Rayon exactly as
//!   before.
//! * **AVX2 dispatch** — the row kernels are compiled twice, once
//!   portable and once under `#[target_feature(avx2, fma)]`, selected
//!   at runtime via [`crate::simd::avx2_fma_available`]. Rust never
//!   contracts `a*b + c` into an FMA, so both clones (and the seed
//!   sweeps) are bit-identical — asserted by the tests, which run the
//!   v2 and baseline engines side by side.

use crate::simd;
use rayon::prelude::*;

/// Model state: velocity components `u`, `v` and pressure/height `p`
/// on an `m × m` periodic grid (flat row-major arrays).
#[derive(Debug, Clone)]
pub struct Shallow {
    m: usize,
    dx: f64,
    dy: f64,
    dt: f64,
    alpha: f64,
    tdt: f64,
    first: bool,
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    pub p: Vec<f64>,
    uold: Vec<f64>,
    vold: Vec<f64>,
    pold: Vec<f64>,
    // Work arrays.
    cu: Vec<f64>,
    cv: Vec<f64>,
    z: Vec<f64>,
    h: Vec<f64>,
    pub steps_taken: usize,
}

impl Shallow {
    /// Classic benchmark initial condition: a sinusoidal stream function
    /// over a 50 kPa background height field.
    pub fn new(m: usize) -> Shallow {
        assert!(m >= 4);
        let dx = 1.0e5;
        let dy = 1.0e5;
        let dt = 90.0;
        let a = 1.0e6;
        let el = m as f64 * dx;
        let pi = std::f64::consts::PI;
        let tpi = 2.0 * pi;
        let di = tpi / m as f64;
        let dj = tpi / m as f64;
        let pcf = pi * pi * a * a / (el * el);

        let idx = |i: usize, j: usize| i * m + j;
        // Stream function at cell corners (wrap-indexed).
        let psi =
            |i: usize, j: usize| a * ((i as f64 + 0.5) * di).sin() * ((j as f64 + 0.5) * dj).sin();
        let mut u = vec![0.0; m * m];
        let mut v = vec![0.0; m * m];
        let mut p = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                u[idx(i, j)] = -(psi(i, j + 1) - psi(i, j)) / dy;
                v[idx(i, j)] = (psi(i + 1, j) - psi(i, j)) / dx;
                p[idx(i, j)] =
                    pcf * ((2.0 * i as f64 * di).cos() + (2.0 * j as f64 * dj).cos()) + 50_000.0;
            }
        }
        Shallow {
            m,
            dx,
            dy,
            dt,
            alpha: 0.001,
            tdt: dt,
            first: true,
            uold: u.clone(),
            vold: v.clone(),
            pold: p.clone(),
            cu: vec![0.0; m * m],
            cv: vec![0.0; m * m],
            z: vec![0.0; m * m],
            h: vec![0.0; m * m],
            u,
            v,
            p,
            steps_taken: 0,
        }
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// The base (single) time step in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Simulated physical time elapsed, seconds.
    pub fn sim_time(&self) -> f64 {
        // Leapfrog: first step advances dt, every later one 2·dt worth of
        // state per pair; steps × dt is the conventional accounting.
        self.steps_taken as f64 * self.dt
    }

    /// Advance one leapfrog step. `parallel` uses Rayon row-parallel
    /// sweeps that are bit-identical to the sequential ones.
    pub fn step(&mut self, parallel: bool) {
        self.step_impl(parallel, simd::avx2_fma_available());
    }

    /// [`Self::step`] with the AVX2 row kernels pinned off — the
    /// portable engine (bit-identical; asserted by the tests).
    pub fn step_portable(&mut self, parallel: bool) {
        self.step_impl(parallel, false);
    }

    fn step_impl(&mut self, parallel: bool, use_simd: bool) {
        let m = self.m;
        let fsdx = 4.0 / self.dx;
        let fsdy = 4.0 / self.dy;

        // --- Phase 1: mass fluxes, vorticity, Bernoulli head (fused). ---
        {
            let (u, v, p) = (&self.u, &self.v, &self.p);
            let kernel =
                |i: usize, cu_r: &mut [f64], cv_r: &mut [f64], z_r: &mut [f64], h_r: &mut [f64]| {
                    let im = (i + m - 1) % m;
                    let ip = (i + 1) % m;
                    let row = |a, r| row_of(a, r, m);
                    let args = Phase1Rows {
                        fsdx,
                        fsdy,
                        p_im: row(p, im),
                        p_i: row(p, i),
                        u_i: row(u, i),
                        u_ip: row(u, ip),
                        v_im: row(v, im),
                        v_i: row(v, i),
                    };
                    if use_simd {
                        #[cfg(target_arch = "x86_64")]
                        {
                            // SAFETY: dispatch guarded by `avx2_fma_available`.
                            unsafe { phase1_row_avx2(&args, cu_r, cv_r, z_r, h_r) };
                            return;
                        }
                    }
                    phase1_row(&args, cu_r, cv_r, z_r, h_r);
                };
            let mut rows: Vec<_> = self
                .cu
                .chunks_mut(m)
                .zip(self.cv.chunks_mut(m))
                .zip(self.z.chunks_mut(m))
                .zip(self.h.chunks_mut(m))
                .enumerate()
                .map(|(i, (((cu_r, cv_r), z_r), h_r))| (i, cu_r, cv_r, z_r, h_r))
                .collect();
            if parallel {
                rows.par_iter_mut()
                    .for_each(|(i, cu_r, cv_r, z_r, h_r)| kernel(*i, cu_r, cv_r, z_r, h_r));
            } else {
                for (i, cu_r, cv_r, z_r, h_r) in rows.iter_mut() {
                    kernel(*i, cu_r, cv_r, z_r, h_r);
                }
            }
        }

        // --- Phase 2: leapfrog update (fused). ---
        let tdts8 = self.tdt / 8.0;
        let tdtsdx = self.tdt / self.dx;
        let tdtsdy = self.tdt / self.dy;
        let mut unew = vec![0.0; m * m];
        let mut vnew = vec![0.0; m * m];
        let mut pnew = vec![0.0; m * m];
        {
            let (cu, cv, z, h) = (&self.cu, &self.cv, &self.z, &self.h);
            let (uold, vold, pold) = (&self.uold, &self.vold, &self.pold);
            let kernel = |i: usize, un_r: &mut [f64], vn_r: &mut [f64], pn_r: &mut [f64]| {
                let im = (i + m - 1) % m;
                let ip = (i + 1) % m;
                let row = |a, r| row_of(a, r, m);
                let args = Phase2Rows {
                    tdts8,
                    tdtsdx,
                    tdtsdy,
                    uold_i: row(uold, i),
                    vold_i: row(vold, i),
                    pold_i: row(pold, i),
                    z_i: row(z, i),
                    z_ip: row(z, ip),
                    cu_i: row(cu, i),
                    cu_ip: row(cu, ip),
                    cv_i: row(cv, i),
                    cv_im: row(cv, im),
                    h_im: row(h, im),
                    h_i: row(h, i),
                };
                if use_simd {
                    #[cfg(target_arch = "x86_64")]
                    {
                        // SAFETY: dispatch guarded by `avx2_fma_available`.
                        unsafe { phase2_row_avx2(&args, un_r, vn_r, pn_r) };
                        return;
                    }
                }
                phase2_row(&args, un_r, vn_r, pn_r);
            };
            let mut rows: Vec<_> = unew
                .chunks_mut(m)
                .zip(vnew.chunks_mut(m))
                .zip(pnew.chunks_mut(m))
                .enumerate()
                .map(|(i, ((un_r, vn_r), pn_r))| (i, un_r, vn_r, pn_r))
                .collect();
            if parallel {
                rows.par_iter_mut()
                    .for_each(|(i, un_r, vn_r, pn_r)| kernel(*i, un_r, vn_r, pn_r));
            } else {
                for (i, un_r, vn_r, pn_r) in rows.iter_mut() {
                    kernel(*i, un_r, vn_r, pn_r);
                }
            }
        }

        // --- Phase 3: Robert–Asselin time filter and rotation. ---
        if self.first {
            self.first = false;
            self.tdt += self.tdt; // leapfrog doubles the step after start
            self.uold.copy_from_slice(&self.u);
            self.vold.copy_from_slice(&self.v);
            self.pold.copy_from_slice(&self.p);
        } else {
            let alpha = self.alpha;
            let filter = |old: &mut Vec<f64>, cur: &Vec<f64>, new: &Vec<f64>| {
                for k in 0..m * m {
                    old[k] = cur[k] + alpha * (new[k] - 2.0 * cur[k] + old[k]);
                }
            };
            filter(&mut self.uold, &self.u, &unew);
            filter(&mut self.vold, &self.v, &vnew);
            filter(&mut self.pold, &self.p, &pnew);
        }
        self.u = unew;
        self.v = vnew;
        self.p = pnew;
        self.steps_taken += 1;
    }

    /// The seed step: wrap-indexed, one sweep per field. Kept as the
    /// scalar bench baseline and the bit-identity reference for the v2
    /// sweeps. `parallel` uses Rayon row-parallel sweeps.
    pub fn step_baseline(&mut self, parallel: bool) {
        let m = self.m;
        let fsdx = 4.0 / self.dx;
        let fsdy = 4.0 / self.dy;

        // --- Phase 1: mass fluxes, vorticity, Bernoulli head. ---
        {
            let (u, v, p) = (&self.u, &self.v, &self.p);
            let row_cu = |i: usize, out: &mut [f64]| {
                let im = (i + m - 1) % m;
                for j in 0..m {
                    out[j] = 0.5 * (p[i * m + j] + p[im * m + j]) * u[i * m + j];
                }
            };
            let row_cv = |i: usize, out: &mut [f64]| {
                for j in 0..m {
                    let jm = (j + m - 1) % m;
                    out[j] = 0.5 * (p[i * m + j] + p[i * m + jm]) * v[i * m + j];
                }
            };
            let row_z = |i: usize, out: &mut [f64]| {
                let im = (i + m - 1) % m;
                for j in 0..m {
                    let jm = (j + m - 1) % m;
                    out[j] = (fsdx * (v[i * m + j] - v[im * m + j])
                        - fsdy * (u[i * m + j] - u[i * m + jm]))
                        / (p[im * m + jm] + p[i * m + jm] + p[i * m + j] + p[im * m + j]);
                }
            };
            let row_h = |i: usize, out: &mut [f64]| {
                let ip = (i + 1) % m;
                for j in 0..m {
                    let jp = (j + 1) % m;
                    out[j] = p[i * m + j]
                        + 0.25
                            * (u[ip * m + j] * u[ip * m + j]
                                + u[i * m + j] * u[i * m + j]
                                + v[i * m + jp] * v[i * m + jp]
                                + v[i * m + j] * v[i * m + j]);
                }
            };
            apply_rows(&mut self.cu, m, parallel, row_cu);
            apply_rows(&mut self.cv, m, parallel, row_cv);
            apply_rows(&mut self.z, m, parallel, row_z);
            apply_rows(&mut self.h, m, parallel, row_h);
        }

        // --- Phase 2: leapfrog update. ---
        let tdts8 = self.tdt / 8.0;
        let tdtsdx = self.tdt / self.dx;
        let tdtsdy = self.tdt / self.dy;
        let mut unew = vec![0.0; m * m];
        let mut vnew = vec![0.0; m * m];
        let mut pnew = vec![0.0; m * m];
        {
            let (cu, cv, z, h) = (&self.cu, &self.cv, &self.z, &self.h);
            let (uold, vold, pold) = (&self.uold, &self.vold, &self.pold);
            let row_u = |i: usize, out: &mut [f64]| {
                let im = (i + m - 1) % m;
                for j in 0..m {
                    let jp = (j + 1) % m;
                    out[j] = uold[i * m + j]
                        + tdts8
                            * (z[i * m + jp] + z[i * m + j])
                            * (cv[i * m + jp] + cv[im * m + jp] + cv[im * m + j] + cv[i * m + j])
                        - tdtsdx * (h[i * m + j] - h[im * m + j]);
                }
            };
            let row_v = |i: usize, out: &mut [f64]| {
                let ip = (i + 1) % m;
                for j in 0..m {
                    let jm = (j + m - 1) % m;
                    out[j] = vold[i * m + j]
                        - tdts8
                            * (z[ip * m + j] + z[i * m + j])
                            * (cu[ip * m + j] + cu[i * m + j] + cu[i * m + jm] + cu[ip * m + jm])
                        - tdtsdy * (h[i * m + j] - h[i * m + jm]);
                }
            };
            let row_p = |i: usize, out: &mut [f64]| {
                let ip = (i + 1) % m;
                for j in 0..m {
                    let jp = (j + 1) % m;
                    out[j] = pold[i * m + j]
                        - tdtsdx * (cu[ip * m + j] - cu[i * m + j])
                        - tdtsdy * (cv[i * m + jp] - cv[i * m + j]);
                }
            };
            apply_rows(&mut unew, m, parallel, row_u);
            apply_rows(&mut vnew, m, parallel, row_v);
            apply_rows(&mut pnew, m, parallel, row_p);
        }

        // --- Phase 3: Robert–Asselin time filter and rotation. ---
        if self.first {
            self.first = false;
            self.tdt += self.tdt; // leapfrog doubles the step after start
            self.uold.copy_from_slice(&self.u);
            self.vold.copy_from_slice(&self.v);
            self.pold.copy_from_slice(&self.p);
        } else {
            let alpha = self.alpha;
            let filter = |old: &mut Vec<f64>, cur: &Vec<f64>, new: &Vec<f64>| {
                for k in 0..m * m {
                    old[k] = cur[k] + alpha * (new[k] - 2.0 * cur[k] + old[k]);
                }
            };
            filter(&mut self.uold, &self.u, &unew);
            filter(&mut self.vold, &self.v, &vnew);
            filter(&mut self.pold, &self.p, &pnew);
        }
        self.u = unew;
        self.v = vnew;
        self.p = pnew;
        self.steps_taken += 1;
    }

    pub fn run(&mut self, steps: usize, parallel: bool) {
        for _ in 0..steps {
            self.step(parallel);
        }
    }

    /// Total mass Σp·dx·dy — conserved to round-off by the scheme.
    pub fn total_mass(&self) -> f64 {
        self.p.iter().sum::<f64>() * self.dx * self.dy
    }

    /// Kinetic energy diagnostic ½ Σ p·(u²+v²) (cell-centred average).
    pub fn kinetic_energy(&self) -> f64 {
        let m = self.m;
        let mut e = 0.0;
        for i in 0..m {
            let ip = (i + 1) % m;
            for j in 0..m {
                let jp = (j + 1) % m;
                let uu = 0.5 * (self.u[i * m + j] + self.u[ip * m + j]);
                let vv = 0.5 * (self.v[i * m + j] + self.v[i * m + jp]);
                e += 0.5 * self.p[i * m + j] * (uu * uu + vv * vv);
            }
        }
        e
    }
}

/// Row `r` of a flat row-major `m × m` array.
#[inline(always)]
fn row_of(a: &[f64], r: usize, m: usize) -> &[f64] {
    &a[r * m..r * m + m]
}

/// Shared row inputs for the fused phase-1 kernel: the `p`/`u`/`v` rows
/// the stencil touches, wrap-resolved by the caller.
struct Phase1Rows<'a> {
    fsdx: f64,
    fsdy: f64,
    p_im: &'a [f64],
    p_i: &'a [f64],
    u_i: &'a [f64],
    u_ip: &'a [f64],
    v_im: &'a [f64],
    v_i: &'a [f64],
}

/// Fused phase-1 row: `cu`, `cv`, `z`, `h` for row `i` in one pass.
/// Per-point arithmetic (and association) identical to the seed sweeps;
/// column wrap-around peeled to the loop edges so the interior loops
/// are contiguous and branch-free.
#[inline(always)]
#[allow(clippy::needless_range_loop)] // indexed loops mirror the seed sweeps at j/j±1 offsets
fn phase1_row(a: &Phase1Rows<'_>, cu: &mut [f64], cv: &mut [f64], z: &mut [f64], h: &mut [f64]) {
    let m = a.p_i.len();
    for j in 0..m {
        cu[j] = 0.5 * (a.p_i[j] + a.p_im[j]) * a.u_i[j];
    }
    cv[0] = 0.5 * (a.p_i[0] + a.p_i[m - 1]) * a.v_i[0];
    for j in 1..m {
        cv[j] = 0.5 * (a.p_i[j] + a.p_i[j - 1]) * a.v_i[j];
    }
    z[0] = (a.fsdx * (a.v_i[0] - a.v_im[0]) - a.fsdy * (a.u_i[0] - a.u_i[m - 1]))
        / (a.p_im[m - 1] + a.p_i[m - 1] + a.p_i[0] + a.p_im[0]);
    for j in 1..m {
        z[j] = (a.fsdx * (a.v_i[j] - a.v_im[j]) - a.fsdy * (a.u_i[j] - a.u_i[j - 1]))
            / (a.p_im[j - 1] + a.p_i[j - 1] + a.p_i[j] + a.p_im[j]);
    }
    for j in 0..m - 1 {
        h[j] = a.p_i[j]
            + 0.25
                * (a.u_ip[j] * a.u_ip[j]
                    + a.u_i[j] * a.u_i[j]
                    + a.v_i[j + 1] * a.v_i[j + 1]
                    + a.v_i[j] * a.v_i[j]);
    }
    h[m - 1] = a.p_i[m - 1]
        + 0.25
            * (a.u_ip[m - 1] * a.u_ip[m - 1]
                + a.u_i[m - 1] * a.u_i[m - 1]
                + a.v_i[0] * a.v_i[0]
                + a.v_i[m - 1] * a.v_i[m - 1]);
}

/// [`phase1_row`] compiled with AVX2+FMA enabled so the contiguous
/// interior loops vectorise 4-wide (no FP contraction in Rust, so this
/// clone is bit-identical to the portable one).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn phase1_row_avx2(
    a: &Phase1Rows<'_>,
    cu: &mut [f64],
    cv: &mut [f64],
    z: &mut [f64],
    h: &mut [f64],
) {
    phase1_row(a, cu, cv, z, h);
}

/// Shared row inputs for the fused phase-2 kernel.
struct Phase2Rows<'a> {
    tdts8: f64,
    tdtsdx: f64,
    tdtsdy: f64,
    uold_i: &'a [f64],
    vold_i: &'a [f64],
    pold_i: &'a [f64],
    z_i: &'a [f64],
    z_ip: &'a [f64],
    cu_i: &'a [f64],
    cu_ip: &'a [f64],
    cv_i: &'a [f64],
    cv_im: &'a [f64],
    h_im: &'a [f64],
    h_i: &'a [f64],
}

/// Fused phase-2 row: the leapfrog `u`/`v`/`p` updates for row `i` in
/// one pass, arithmetic identical to the seed sweeps.
#[inline(always)]
#[allow(clippy::needless_range_loop)] // indexed loops mirror the seed sweeps at j/j±1 offsets
fn phase2_row(a: &Phase2Rows<'_>, un: &mut [f64], vn: &mut [f64], pn: &mut [f64]) {
    let m = a.z_i.len();
    for j in 0..m - 1 {
        let jp = j + 1;
        un[j] = a.uold_i[j]
            + a.tdts8
                * (a.z_i[jp] + a.z_i[j])
                * (a.cv_i[jp] + a.cv_im[jp] + a.cv_im[j] + a.cv_i[j])
            - a.tdtsdx * (a.h_i[j] - a.h_im[j]);
    }
    un[m - 1] = a.uold_i[m - 1]
        + a.tdts8
            * (a.z_i[0] + a.z_i[m - 1])
            * (a.cv_i[0] + a.cv_im[0] + a.cv_im[m - 1] + a.cv_i[m - 1])
        - a.tdtsdx * (a.h_i[m - 1] - a.h_im[m - 1]);
    vn[0] = a.vold_i[0]
        - a.tdts8
            * (a.z_ip[0] + a.z_i[0])
            * (a.cu_ip[0] + a.cu_i[0] + a.cu_i[m - 1] + a.cu_ip[m - 1])
        - a.tdtsdy * (a.h_i[0] - a.h_i[m - 1]);
    for j in 1..m {
        let jm = j - 1;
        vn[j] = a.vold_i[j]
            - a.tdts8
                * (a.z_ip[j] + a.z_i[j])
                * (a.cu_ip[j] + a.cu_i[j] + a.cu_i[jm] + a.cu_ip[jm])
            - a.tdtsdy * (a.h_i[j] - a.h_i[jm]);
    }
    for j in 0..m - 1 {
        let jp = j + 1;
        pn[j] =
            a.pold_i[j] - a.tdtsdx * (a.cu_ip[j] - a.cu_i[j]) - a.tdtsdy * (a.cv_i[jp] - a.cv_i[j]);
    }
    pn[m - 1] = a.pold_i[m - 1]
        - a.tdtsdx * (a.cu_ip[m - 1] - a.cu_i[m - 1])
        - a.tdtsdy * (a.cv_i[0] - a.cv_i[m - 1]);
}

/// [`phase2_row`] compiled with AVX2+FMA enabled (bit-identical clone,
/// see [`phase1_row_avx2`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn phase2_row_avx2(a: &Phase2Rows<'_>, un: &mut [f64], vn: &mut [f64], pn: &mut [f64]) {
    phase2_row(a, un, vn, pn);
}

/// Fill `out` row by row with `f(i, row)`, optionally with Rayon.
fn apply_rows(out: &mut [f64], m: usize, parallel: bool, f: impl Fn(usize, &mut [f64]) + Sync) {
    if parallel {
        out.par_chunks_mut(m).enumerate().for_each(|(i, r)| f(i, r));
    } else {
        out.chunks_mut(m).enumerate().for_each(|(i, r)| f(i, r));
    }
}

/// FLOPs per time step of an m×m grid (the benchmark's own accounting:
/// ~65 floating-point operations per grid point).
pub fn step_flops(m: usize) -> f64 {
    65.0 * (m * m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_conserved_to_roundoff() {
        let mut sw = Shallow::new(32);
        let m0 = sw.total_mass();
        sw.run(100, false);
        let m1 = sw.total_mass();
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "mass drift {}",
            (m1 - m0) / m0
        );
    }

    #[test]
    fn fields_stay_finite_and_bounded() {
        let mut sw = Shallow::new(24);
        sw.run(200, false);
        assert!(sw.p.iter().all(|v| v.is_finite()));
        assert!(sw.u.iter().all(|v| v.is_finite()));
        // Height stays near the 50 kPa background.
        let (lo, hi) =
            sw.p.iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                    (l.min(v), h.max(v))
                });
        assert!(lo > 30_000.0 && hi < 70_000.0, "p in [{lo}, {hi}]");
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let mut a = Shallow::new(20);
        let mut b = Shallow::new(20);
        a.run(50, false);
        b.run(50, true);
        assert_eq!(a.p, b.p);
        assert_eq!(a.u, b.u);
        assert_eq!(a.v, b.v);
    }

    #[test]
    fn v2_sweeps_match_baseline_bitwise() {
        // The fused/vectorised engine against the seed sweeps, and the
        // portable clone against the dispatched one: every path must
        // produce the same bits (m = 20 exercises the wrap peels; 50
        // steps cross the leapfrog start-up and the Asselin filter).
        let mut v2 = Shallow::new(20);
        let mut base = Shallow::new(20);
        let mut portable = Shallow::new(20);
        for _ in 0..50 {
            v2.step(false);
            base.step_baseline(false);
            portable.step_portable(false);
        }
        assert_eq!(v2.p, base.p, "v2 vs seed sweeps");
        assert_eq!(v2.u, base.u);
        assert_eq!(v2.v, base.v);
        assert_eq!(v2.p, portable.p, "dispatched vs portable");
        assert_eq!(v2.u, portable.u);
        assert_eq!(v2.v, portable.v);
    }

    #[test]
    fn kinetic_energy_reasonably_stable() {
        let mut sw = Shallow::new(32);
        sw.step(false); // spin up past the first half step
        let e0 = sw.kinetic_energy();
        sw.run(150, false);
        let e1 = sw.kinetic_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 0.05,
            "energy drift {} over 150 steps",
            (e1 - e0) / e0
        );
    }

    #[test]
    fn dynamics_actually_evolve() {
        let mut sw = Shallow::new(16);
        let p0 = sw.p.clone();
        sw.run(10, false);
        let moved =
            sw.p.iter()
                .zip(&p0)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
        assert!(moved > 1.0, "flow is static: max |Δp| = {moved}");
    }

    #[test]
    fn step_counter_and_flops() {
        let mut sw = Shallow::new(8);
        sw.run(5, false);
        assert_eq!(sw.steps_taken, 5);
        assert_eq!(step_flops(8), 65.0 * 64.0);
    }
}
