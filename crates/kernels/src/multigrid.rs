//! Geometric multigrid for the Poisson problem — the algorithmic
//! frontier of the era's PDE work and the strongest possible contrast to
//! Jacobi/SOR in the ASTA story: mesh-independent convergence.
//!
//! V-cycles on a hierarchy of (2^k−1)×(2^k−1) interior grids with
//! red-black Gauss–Seidel smoothing, full-weighting restriction, and
//! bilinear prolongation. Solves ∇²u = f with homogeneous Dirichlet
//! boundaries (the standard model problem).

/// A square grid level: n×n interior points plus the boundary ring.
#[derive(Debug, Clone)]
struct Level {
    n: usize,
    u: Vec<f64>,
    f: Vec<f64>,
    r: Vec<f64>,
}

impl Level {
    fn new(n: usize) -> Level {
        let len = (n + 2) * (n + 2);
        Level {
            n,
            u: vec![0.0; len],
            f: vec![0.0; len],
            r: vec![0.0; len],
        }
    }

    #[inline]
    fn s(&self) -> usize {
        self.n + 2
    }
}

/// Multigrid solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct MgConfig {
    /// Pre-smoothing sweeps per level.
    pub pre: usize,
    /// Post-smoothing sweeps per level.
    pub post: usize,
    /// Stop when ‖r‖∞ / ‖f‖∞ falls below this.
    pub tol: f64,
    /// Maximum V-cycles.
    pub max_cycles: usize,
}

impl Default for MgConfig {
    fn default() -> MgConfig {
        MgConfig {
            pre: 2,
            post: 2,
            tol: 1e-10,
            max_cycles: 50,
        }
    }
}

/// Convergence report.
#[derive(Debug, Clone, Copy)]
pub struct MgResult {
    pub cycles: usize,
    pub residual: f64,
    pub converged: bool,
}

/// Geometric multigrid on (2^k − 1)² interiors.
pub struct Multigrid {
    levels: Vec<Level>,
    cfg: MgConfig,
}

impl Multigrid {
    /// Build a hierarchy for an `n × n` interior; `n` must be `2^k − 1`
    /// with k ≥ 2 (so 3, 7, 15, 31, …).
    pub fn new(n: usize, cfg: MgConfig) -> Multigrid {
        assert!(
            (n + 1).is_power_of_two() && n >= 3,
            "interior must be 2^k - 1, got {n}"
        );
        let mut levels = Vec::new();
        let mut m = n;
        while m >= 3 {
            levels.push(Level::new(m));
            m = m.div_ceil(2) - 1;
        }
        Multigrid { levels, cfg }
    }

    /// Number of levels in the hierarchy.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Solve ∇²u = f (f given at interior points of the fine grid via
    /// `f(x, y)` with x, y ∈ (0,1)). Returns the solution field (with
    /// boundary ring) and the convergence report.
    pub fn solve(&mut self, rhs: impl Fn(f64, f64) -> f64) -> (Vec<f64>, MgResult) {
        let n = self.levels[0].n;
        let h = 1.0 / (n + 1) as f64;
        let s = self.levels[0].s();
        for i in 1..=n {
            for j in 1..=n {
                self.levels[0].f[i * s + j] = rhs(i as f64 * h, j as f64 * h);
            }
        }
        self.levels[0].u.iter_mut().for_each(|v| *v = 0.0);

        let fnorm = self.levels[0]
            .f
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-300);
        let mut cycles = 0;
        let mut res = f64::INFINITY;
        while cycles < self.cfg.max_cycles {
            self.vcycle(0);
            res = self.residual_norm(0) / fnorm;
            cycles += 1;
            if res < self.cfg.tol {
                break;
            }
        }
        (
            self.levels[0].u.clone(),
            MgResult {
                cycles,
                residual: res,
                converged: res < self.cfg.tol,
            },
        )
    }

    /// One V-cycle starting at `lvl`.
    fn vcycle(&mut self, lvl: usize) {
        if lvl == self.levels.len() - 1 {
            // Coarsest: smooth hard (it is tiny).
            for _ in 0..20 {
                self.smooth(lvl);
            }
            return;
        }
        for _ in 0..self.cfg.pre {
            self.smooth(lvl);
        }
        self.compute_residual(lvl);
        self.restrict(lvl);
        self.levels[lvl + 1].u.iter_mut().for_each(|v| *v = 0.0);
        self.vcycle(lvl + 1);
        self.prolong_add(lvl);
        for _ in 0..self.cfg.post {
            self.smooth(lvl);
        }
    }

    /// Red-black Gauss–Seidel sweep on level `lvl`.
    fn smooth(&mut self, lvl: usize) {
        let level = &mut self.levels[lvl];
        let n = level.n;
        let s = level.s();
        let h2 = 1.0 / (((n + 1) * (n + 1)) as f64);
        for colour in 0..2 {
            for i in 1..=n {
                let mut j = 1 + (i + colour) % 2;
                while j <= n {
                    let idx = i * s + j;
                    level.u[idx] = 0.25
                        * (level.u[idx - s]
                            + level.u[idx + s]
                            + level.u[idx - 1]
                            + level.u[idx + 1]
                            - h2 * level.f[idx]);
                    j += 2;
                }
            }
        }
    }

    /// r = f − ∇²u on level `lvl`.
    fn compute_residual(&mut self, lvl: usize) {
        let level = &mut self.levels[lvl];
        let n = level.n;
        let s = level.s();
        let inv_h2 = ((n + 1) * (n + 1)) as f64;
        for i in 1..=n {
            for j in 1..=n {
                let idx = i * s + j;
                let lap =
                    (level.u[idx - s] + level.u[idx + s] + level.u[idx - 1] + level.u[idx + 1]
                        - 4.0 * level.u[idx])
                        * inv_h2;
                level.r[idx] = level.f[idx] - lap;
            }
        }
    }

    fn residual_norm(&mut self, lvl: usize) -> f64 {
        self.compute_residual(lvl);
        self.levels[lvl]
            .r
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Full-weighting restriction of the fine residual into the coarse
    /// right-hand side.
    fn restrict(&mut self, lvl: usize) {
        let (fine, coarse) = {
            let (a, b) = self.levels.split_at_mut(lvl + 1);
            (&mut a[lvl], &mut b[0])
        };
        let fs = fine.s();
        let cs = coarse.s();
        for ci in 1..=coarse.n {
            for cj in 1..=coarse.n {
                let (i, j) = (2 * ci, 2 * cj);
                let c = fine.r[i * fs + j];
                let edges = fine.r[(i - 1) * fs + j]
                    + fine.r[(i + 1) * fs + j]
                    + fine.r[i * fs + j - 1]
                    + fine.r[i * fs + j + 1];
                let corners = fine.r[(i - 1) * fs + j - 1]
                    + fine.r[(i - 1) * fs + j + 1]
                    + fine.r[(i + 1) * fs + j - 1]
                    + fine.r[(i + 1) * fs + j + 1];
                coarse.f[ci * cs + cj] = 0.25 * c + 0.125 * edges + 0.0625 * corners;
            }
        }
    }

    /// Bilinear prolongation of the coarse correction, added into the
    /// fine solution.
    fn prolong_add(&mut self, lvl: usize) {
        let (fine, coarse) = {
            let (a, b) = self.levels.split_at_mut(lvl + 1);
            (&mut a[lvl], &b[0])
        };
        let fs = fine.s();
        let cs = coarse.s();
        let fetch = |ci: usize, cj: usize| coarse.u[ci * cs + cj];
        for i in 1..=fine.n {
            for j in 1..=fine.n {
                let (ci, ri) = (i / 2, i % 2);
                let (cj, rj) = (j / 2, j % 2);
                // Boundary values of the coarse grid are zero, so the
                // clamped fetches below are exact.
                let v = match (ri, rj) {
                    (0, 0) => fetch(ci, cj),
                    (1, 0) => 0.5 * (fetch(ci, cj) + fetch(ci + 1, cj)),
                    (0, 1) => 0.5 * (fetch(ci, cj) + fetch(ci, cj + 1)),
                    _ => {
                        0.25 * (fetch(ci, cj)
                            + fetch(ci + 1, cj)
                            + fetch(ci, cj + 1)
                            + fetch(ci + 1, cj + 1))
                    }
                };
                fine.u[i * fs + j] += v;
            }
        }
    }
}

/// Work per V-cycle in smoothing-equivalent grid-point updates
/// (≈ (pre+post+const) · 4/3 · n² for the geometric level sum).
pub fn vcycle_points(n: usize, cfg: &MgConfig) -> f64 {
    (cfg.pre + cfg.post + 1) as f64 * 4.0 / 3.0 * (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn hierarchy_depth() {
        let mg = Multigrid::new(63, MgConfig::default());
        // 63 -> 31 -> 15 -> 7 -> 3.
        assert_eq!(mg.depth(), 5);
    }

    #[test]
    #[should_panic(expected = "2^k - 1")]
    fn rejects_bad_sizes() {
        Multigrid::new(64, MgConfig::default());
    }

    #[test]
    fn solves_manufactured_problem() {
        // ∇²u = −2π² sin(πx) sin(πy) has u = sin(πx) sin(πy).
        let n = 63;
        let mut mg = Multigrid::new(n, MgConfig::default());
        let (u, res) = mg.solve(|x, y| -2.0 * PI * PI * (PI * x).sin() * (PI * y).sin());
        assert!(res.converged, "residual {}", res.residual);
        let h = 1.0 / (n + 1) as f64;
        let s = n + 2;
        let mut err = 0.0f64;
        for i in 1..=n {
            for j in 1..=n {
                let exact = (PI * i as f64 * h).sin() * (PI * j as f64 * h).sin();
                err = err.max((u[i * s + j] - exact).abs());
            }
        }
        assert!(err < 5.0 * h * h, "err {err} vs h² {}", h * h);
    }

    #[test]
    fn cycle_count_is_mesh_independent() {
        // The multigrid promise: V-cycles to tolerance do not grow with n.
        let mut counts = Vec::new();
        for n in [31usize, 63, 127] {
            let mut mg = Multigrid::new(n, MgConfig::default());
            let (_, res) = mg.solve(|x, y| -2.0 * PI * PI * (PI * x).sin() * (PI * y).sin());
            assert!(res.converged);
            counts.push(res.cycles);
        }
        let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
        assert!(
            spread <= 2,
            "cycle counts {counts:?} should be mesh-independent"
        );
    }

    #[test]
    fn beats_sor_asymptotically() {
        // At n=127, multigrid work (in point updates) is far below what
        // SOR needs for the same tolerance.
        let n = 127;
        let cfg = MgConfig {
            tol: 1e-8,
            ..MgConfig::default()
        };
        let mut mg = Multigrid::new(n, cfg);
        let (_, res) = mg.solve(|x, y| -2.0 * PI * PI * (PI * x).sin() * (PI * y).sin());
        assert!(res.converged);
        let mg_points = res.cycles as f64 * vcycle_points(n, &cfg);

        let mut u = crate::cfd::Grid::new(n);
        let mut rhs = crate::cfd::Grid::new(n);
        let h = 1.0 / (n + 1) as f64;
        for i in 0..n + 2 {
            for j in 0..n + 2 {
                rhs.set(
                    i,
                    j,
                    -2.0 * PI * PI * (PI * i as f64 * h).sin() * (PI * j as f64 * h).sin(),
                );
            }
        }
        let sor = crate::cfd::sor(&mut u, &rhs, None, 1e-8, 200_000);
        assert!(sor.converged);
        let sor_points = sor.iterations as f64 * (n * n) as f64;
        assert!(
            mg_points * 3.0 < sor_points,
            "MG {mg_points:.2e} vs SOR {sor_points:.2e} point-updates"
        );
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let mut mg = Multigrid::new(31, MgConfig::default());
        let (u, res) = mg.solve(|_, _| 0.0);
        assert!(res.converged);
        assert_eq!(res.cycles, 1, "already converged after one check");
        assert!(u.iter().all(|&v| v.abs() < 1e-12));
    }
}
