//! A small dense row-major matrix type used by the LINPACK and BLAS-like
//! kernels. Not a general linear-algebra library — exactly what the
//! benchmark codes of the era used: a flat array and index arithmetic.

use des::rng::Rng;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    pub fn from_rows(rows: &[&[f64]]) -> Mat {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut m = Mat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.row_mut(i).copy_from_slice(row);
        }
        m
    }

    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Uniform random entries in [-1, 1) — the LINPACK generator's range.
    pub fn random(rows: usize, cols: usize, rng: &mut Rng) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.range_f64(-1.0, 1.0);
        }
        m
    }

    /// Random symmetric diagonally dominant matrix (always non-singular,
    /// positive definite) — handy for well-conditioned test systems.
    pub fn random_spd(n: usize, rng: &mut Rng) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..i {
                let v = rng.range_f64(-1.0, 1.0);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0 + rng.next_f64();
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn col_vec(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (top, bot) = self.data.split_at_mut(hi * self.cols);
        top[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut bot[..self.cols]);
    }

    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// y = A x.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Max-absolute-value norm of the matrix.
    pub fn max_norm(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Infinity norm (max absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0f64, f64::max)
    }

    /// Frobenius-norm distance to another matrix.
    pub fn dist(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Vector helpers shared by the solvers.
pub mod vecops {
    /// Euclidean norm.
    pub fn norm2(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm.
    pub fn norm_inf(x: &[f64]) -> f64 {
        x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Dot product.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// y += alpha * x.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::vecops::*;
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut m = Mat::zeros(3, 4);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1)[2], 5.0);
    }

    #[test]
    fn identity_matvec_is_id() {
        let m = Mat::identity(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn from_rows_and_transpose() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(0, 2)], 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn swap_rows_works_both_orders() {
        let mut m = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[3.0, 3.0]);
        assert_eq!(m.row(2), &[1.0, 1.0]);
        m.swap_rows(2, 0); // reverse order, same effect
        assert_eq!(m.row(0), &[1.0, 1.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn norms() {
        let m = Mat::from_rows(&[&[1.0, -2.0], &[-3.0, 0.5]]);
        assert_eq!(m.max_norm(), 3.0);
        assert_eq!(m.inf_norm(), 3.5);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn spd_matrix_is_diagonally_dominant() {
        let mut rng = Rng::new(5);
        let m = Mat::random_spd(20, &mut rng);
        for i in 0..20 {
            let off: f64 = (0..20).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            assert!(m[(i, i)] > off, "row {i} not dominant");
            for j in 0..20 {
                assert_eq!(m[(i, j)], m[(j, i)], "symmetry");
            }
        }
    }

    #[test]
    fn axpy_and_dot() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 14.0, 16.0]);
        assert_eq!(dot(&x, &x), 14.0);
    }

    #[test]
    fn random_is_seeded() {
        let a = Mat::random(4, 4, &mut Rng::new(9));
        let b = Mat::random(4, 4, &mut Rng::new(9));
        assert_eq!(a, b);
        let c = Mat::random(4, 4, &mut Rng::new(10));
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn dist_is_zero_iff_equal() {
        let a = Mat::random(3, 5, &mut Rng::new(1));
        assert_eq!(a.dist(&a), 0.0);
        let mut b = a.clone();
        b[(2, 4)] += 0.5;
        assert!((a.dist(&b) - 0.5).abs() < 1e-15);
    }
}
