//! Runtime SIMD dispatch shared by the kernel engine v2 paths.
//!
//! Every vectorised kernel in this crate follows the same discipline as
//! the GEMM microkernel: a portable scalar body that is the semantic
//! reference, an `#[target_feature(enable = "avx2", "fma")]` clone, and a
//! runtime `is_x86_feature_detected!` dispatch. Each kernel also keeps
//! its portable path reachable (`*_portable` / `*_baseline` entry
//! points) so the property tests can drive both paths on one host and
//! assert their agreement — bit-identical for element-wise kernels that
//! never reassociate or fuse, residual-bounded for FMA-fused inner
//! products.

/// True when the AVX2+FMA fast paths may be taken on this host.
///
/// `is_x86_feature_detected!` caches its CPUID probe behind an atomic,
/// so calling this at per-call dispatch points is cheap.
#[inline]
pub fn avx2_fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}
