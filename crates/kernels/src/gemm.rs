//! Packed, register-blocked GEMM — the BLIS-style engine behind the
//! host-side BLAS3 paths (dense matmul and the LU trailing update that
//! dominates LINPACK).
//!
//! ## Algorithm
//!
//! The classic five-loop decomposition:
//!
//! ```text
//! for jc in steps of NC over columns of C          (outer, cache-oblivious)
//!   for pc in steps of KC over the inner dimension (fixed accumulation order)
//!     pack B[pc.., jc..] into Bp  — row-major NR-column panels
//!     for ic in steps of MC over rows of C         (parallelised with Rayon)
//!       A is pre-packed into Ap   — column-major MR-row panels
//!       for jr in steps of NR, ir in steps of MR:
//!         microkernel: MR×NR register tile += Ap panel · Bp panel
//! ```
//!
//! Packing turns both operand streams into unit-stride loads, and the
//! MR×NR register tile turns ~2 memory operations per FLOP (the naive
//! and cache-blocked kernels) into ~(MR+NR)/(2·MR·NR). The microkernel
//! is written so LLVM auto-vectorises it; on x86-64 an AVX2+FMA clone is
//! selected at runtime via `is_x86_feature_detected!`.
//!
//! ## Determinism
//!
//! The `pc` (inner-dimension) loop is strictly sequential and parallelism
//! is only over disjoint MC-row panels of C, so every element of C is
//! accumulated in the same order regardless of thread count: sequential
//! and parallel runs are bit-identical (the property `lu_factor` /
//! `lu_factor_par` promise).
//!
//! `matmul_naive` remains the correctness oracle; property tests assert
//! equivalence on awkward shapes.

use crate::mat::Mat;
use hpcc_trace::{names, Recorder, WallTrack};
use rayon::prelude::*;
use std::cell::RefCell;

/// Microkernel tile height (rows of C per register tile).
pub const MR: usize = 4;
/// Microkernel tile width (columns of C per register tile).
pub const NR: usize = 8;
/// Rows of A packed per macro-tile (L2-resident block, multiple of MR).
pub const MC: usize = 128;
/// Depth of one packed strip (L1-resident panels).
pub const KC: usize = 256;
/// Columns of B packed per macro-tile (multiple of NR).
pub const NC: usize = 4096;

thread_local! {
    /// Packing buffers reused across calls (no steady-state allocation).
    static PACK_A: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// A strided view of a row-major operand: `rows` rows of logical width
/// starting at column `col` within a backing slice of leading dimension
/// `ld`.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f64],
    ld: usize,
    col: usize,
}

impl View<'_> {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.ld + self.col + c]
    }
}

/// Pack `m × kdim` of A (view `a`) into MR-row panels, KC-strip major:
/// strip `pc` starts at `m_pad · pc`, panel `ir` within a strip of depth
/// `kcs` at `ir · kcs`, laid out k-major so the microkernel reads MR
/// contiguous values per k step. Rows beyond `m` are zero-padded.
fn pack_a(a: View<'_>, m: usize, kdim: usize, buf: &mut Vec<f64>) {
    let m_pad = m.div_ceil(MR) * MR;
    buf.clear();
    buf.resize(m_pad * kdim, 0.0);
    let mut pc = 0;
    while pc < kdim {
        let kcs = KC.min(kdim - pc);
        let strip = &mut buf[m_pad * pc..m_pad * pc + m_pad * kcs];
        let mut ir = 0;
        while ir < m {
            let panel = &mut strip[ir * kcs..ir * kcs + MR * kcs];
            let mr_eff = MR.min(m - ir);
            for p in 0..kcs {
                let dst = &mut panel[p * MR..(p + 1) * MR];
                for (r, d) in dst.iter_mut().enumerate().take(mr_eff) {
                    *d = a.at(ir + r, pc + p);
                }
            }
            ir += MR;
        }
        pc += kcs;
    }
}

/// Pack `kcs × nc` of B (rows `pc..pc+kcs`, columns `jc..jc+nc` of view
/// `b`) into NR-column panels: panel `jr` at `jr · kcs`, k-major so the
/// microkernel reads NR contiguous values per k step. Columns beyond the
/// logical width are zero-padded.
fn pack_b(b: View<'_>, pc: usize, kcs: usize, jc: usize, nc: usize, buf: &mut Vec<f64>) {
    let nc_pad = nc.div_ceil(NR) * NR;
    buf.clear();
    buf.resize(nc_pad * kcs, 0.0);
    let mut jr = 0;
    while jr < nc {
        let panel = &mut buf[jr * kcs..jr * kcs + NR * kcs];
        let nr_eff = NR.min(nc - jr);
        for p in 0..kcs {
            let dst = &mut panel[p * NR..(p + 1) * NR];
            for (j, d) in dst.iter_mut().enumerate().take(nr_eff) {
                *d = b.at(pc + p, jc + jr + j);
            }
        }
        jr += NR;
    }
}

/// The register-tile inner loop: accumulate `kcs` rank-1 updates of the
/// MR×NR tile from packed panels, then apply to C with sign `sub`.
/// `c_tile` addresses C(row0, col0) with leading dimension `ldc`; only
/// the `mr_eff × nr_eff` valid corner is written back.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn microkernel_body(
    kcs: usize,
    ap: &[f64],
    bp: &[f64],
    c_tile: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
    sub: bool,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kcs) {
        let av: &[f64; MR] = av.try_into().unwrap();
        let bv: &[f64; NR] = bv.try_into().unwrap();
        for (accrow, &a) in acc.iter_mut().zip(av) {
            for (x, &b) in accrow.iter_mut().zip(bv) {
                *x += a * b;
            }
        }
    }
    for (i, accrow) in acc.iter().enumerate().take(mr_eff) {
        let crow = &mut c_tile[i * ldc..i * ldc + nr_eff];
        if sub {
            for (c, &x) in crow.iter_mut().zip(accrow) {
                *c -= x;
            }
        } else {
            for (c, &x) in crow.iter_mut().zip(accrow) {
                *c += x;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn microkernel_avx2(
    kcs: usize,
    ap: &[f64],
    bp: &[f64],
    c_tile: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
    sub: bool,
) {
    // Same source as the portable body; compiled with AVX2+FMA enabled so
    // LLVM emits 256-bit FMAs for the tile update.
    microkernel_body(kcs, ap, bp, c_tile, ldc, mr_eff, nr_eff, sub);
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    kcs: usize,
    ap: &[f64],
    bp: &[f64],
    c_tile: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
    sub: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: feature presence checked at runtime.
            unsafe {
                return microkernel_avx2(kcs, ap, bp, c_tile, ldc, mr_eff, nr_eff, sub);
            }
        }
    }
    microkernel_body(kcs, ap, bp, c_tile, ldc, mr_eff, nr_eff, sub);
}

/// Drive the macro-tile loops over one pre-packed A. `c` holds `m` rows
/// of leading dimension `ldc` with the logical C starting at column
/// `c_col`; `C ±= A·B` with `sub` choosing the sign. Parallelism is over
/// MC-row panels of C only (see module docs: bit-identical to
/// sequential).
#[allow(clippy::too_many_arguments)]
fn gemm_packed(
    apacked: &[f64],
    b: View<'_>,
    c: &mut [f64],
    ldc: usize,
    c_col: usize,
    m: usize,
    n: usize,
    kdim: usize,
    sub: bool,
    parallel: bool,
    trace: Option<&WallTrack<'_>>,
) {
    // The wall-clock hook is host-thread-only: tracing forces the
    // sequential sweep (the parallel path would need a Sync recorder).
    debug_assert!(trace.is_none() || !parallel);
    if m == 0 || n == 0 {
        return;
    }
    if kdim == 0 {
        // C ± A·B with an empty inner dimension is a no-op.
        return;
    }
    let m_pad = m.div_ceil(MR) * MR;
    debug_assert_eq!(apacked.len(), m_pad * kdim);
    debug_assert!(c.len() >= (m - 1) * ldc + c_col + n);

    PACK_B.with(|pb| {
        let mut bp_buf = pb.borrow_mut();
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < kdim {
                let kcs = KC.min(kdim - pc);
                let t_pack = trace.map(WallTrack::now_ns);
                pack_b(b, pc, kcs, jc, nc, &mut bp_buf);
                if let (Some(t), Some(t0)) = (trace, t_pack) {
                    t.span_from("pack", "pack_b", t0);
                }
                let bp: &[f64] = &bp_buf;
                let a_strip = &apacked[m_pad * pc..m_pad * pc + m_pad * kcs];

                // One task per MC-row panel of C; row chunks are disjoint.
                let panel_rows = MC * ldc;
                let update_panel = |(ci, cchunk): (usize, &mut [f64])| {
                    let ic = ci * MC;
                    let mc_eff = MC.min(m - ic);
                    let mut jr = 0;
                    while jr < nc {
                        let nr_eff = NR.min(nc - jr);
                        let bpanel = &bp[jr * kcs..jr * kcs + NR * kcs];
                        let mut ir = 0;
                        while ir < mc_eff {
                            let mr_eff = MR.min(mc_eff - ir);
                            let apanel = &a_strip[(ic + ir) * kcs..(ic + ir) * kcs + MR * kcs];
                            let tile0 = ir * ldc + c_col + jc + jr;
                            microkernel(
                                kcs,
                                apanel,
                                bpanel,
                                &mut cchunk[tile0..],
                                ldc,
                                mr_eff,
                                nr_eff,
                                sub,
                            );
                            ir += MR;
                        }
                        jr += NR;
                    }
                };
                // `c` covers exactly m rows; chunk it MC rows at a time.
                let t_kern = trace.map(WallTrack::now_ns);
                // Rayon fan-out only pays for itself with real threads
                // and more than one MC-row panel; otherwise fall through
                // to the identical sequential sweep (this is what makes
                // `lu_factor_par` never slower than `lu_factor` on a
                // single-core host — same code path, zero overhead).
                if parallel && m > MC && rayon::current_num_threads() > 1 {
                    c.par_chunks_mut(panel_rows)
                        .enumerate()
                        .for_each(update_panel);
                } else {
                    c.chunks_mut(panel_rows).enumerate().for_each(update_panel);
                }
                if let (Some(t), Some(t0)) = (trace, t_kern) {
                    t.span_from("kernel", "microkernel", t0);
                }
                pc += kcs;
            }
            jc += nc;
        }
    });
}

/// `C = A·B` through the packed engine. Sequential.
pub fn gemm(a: &Mat, b: &Mat) -> Mat {
    gemm_impl(a, b, false, None)
}

/// `C = A·B` through the packed engine, Rayon-parallel over row panels.
/// Bit-identical to [`gemm`].
pub fn gemm_par(a: &Mat, b: &Mat) -> Mat {
    gemm_impl(a, b, true, None)
}

/// [`gemm`] under a [`Recorder`]: pack and microkernel phases land as
/// wall-clock spans on a `host / gemm` track. Sequential (the hook is
/// not `Sync`), and bit-identical to [`gemm`] — the recorder only reads
/// the clock around phases that run either way.
pub fn gemm_recorded(a: &Mat, b: &Mat, rec: &dyn Recorder) -> Mat {
    let wt = WallTrack::new(rec, names::HOST, "gemm");
    gemm_impl(a, b, false, Some(&wt))
}

fn gemm_impl(a: &Mat, b: &Mat, parallel: bool, trace: Option<&WallTrack<'_>>) -> Mat {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, kdim, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Mat::zeros(m, n);
    if m == 0 || n == 0 || kdim == 0 {
        return c;
    }
    PACK_A.with(|pa| {
        let mut ap = pa.borrow_mut();
        let t_pack = trace.map(WallTrack::now_ns);
        pack_a(
            View {
                data: a.as_slice(),
                ld: kdim,
                col: 0,
            },
            m,
            kdim,
            &mut ap,
        );
        if let (Some(t), Some(t0)) = (trace, t_pack) {
            t.span_from("pack", "pack_a", t0);
        }
        let ldc = n;
        gemm_packed(
            &ap,
            View {
                data: b.as_slice(),
                ld: n,
                col: 0,
            },
            c.as_mut_slice(),
            ldc,
            0,
            m,
            n,
            kdim,
            false,
            parallel,
            trace,
        );
    });
    c
}

/// The LU trailing-matrix update `C -= A·B` where A and C live in the
/// same backing rows (`ac`): A is the `m × kdim` multiplier block at
/// column `a_col`, C the `m × n` trailing block at column `c_col`, both
/// with leading dimension `ld`. B is `kdim` rows of leading dimension
/// `ldb` with its logical block at column `b_col`.
///
/// A is packed (into a reused thread-local buffer) before C is touched,
/// so the in-place aliasing of the LU layout is safe.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_update(
    ac: &mut [f64],
    ld: usize,
    a_col: usize,
    c_col: usize,
    m: usize,
    n: usize,
    kdim: usize,
    b: &[f64],
    ldb: usize,
    b_col: usize,
    parallel: bool,
) {
    if m == 0 || n == 0 || kdim == 0 {
        return;
    }
    PACK_A.with(|pa| {
        let mut ap = pa.borrow_mut();
        pack_a(
            View {
                data: ac,
                ld,
                col: a_col,
            },
            m,
            kdim,
            &mut ap,
        );
        gemm_packed(
            &ap,
            View {
                data: b,
                ld: ldb,
                col: b_col,
            },
            ac,
            ld,
            c_col,
            m,
            n,
            kdim,
            true,
            parallel,
            None,
        );
    });
}

/// FLOP count of an (m×k)·(k×n) multiply (same convention as
/// [`crate::matmul::matmul_flops`]).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul_naive;
    use des::rng::Rng;

    fn assert_close(a: &Mat, b: &Mat, tol: f64, what: &str) {
        assert!(a.dist(b) < tol, "{what}: dist {}", a.dist(b));
    }

    #[test]
    fn matches_naive_on_square() {
        let mut rng = Rng::new(5);
        for n in [1, 2, 7, 16, 33, 65, 130] {
            let a = Mat::random(n, n, &mut rng);
            let b = Mat::random(n, n, &mut rng);
            let want = matmul_naive(&a, &b);
            assert_close(&gemm(&a, &b), &want, 1e-10, &format!("gemm n={n}"));
            assert_close(&gemm_par(&a, &b), &want, 1e-10, &format!("gemm_par n={n}"));
        }
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        let mut rng = Rng::new(6);
        // Shapes straddling MR/NR/KC boundaries, vectors, and empties.
        for (m, k, n) in [
            (1, 1, 1),
            (MR - 1, 3, NR - 1),
            (MR + 1, KC + 1, NR + 1),
            (2 * MR, 5, 3 * NR),
            (1, 300, 1),
            (1, 8, 257),
            (257, 8, 1),
            (13, 1, 17),
            (MC + 3, 2, NR),
            (3, KC, 2 * NR + 5),
        ] {
            let a = Mat::random(m, k, &mut rng);
            let b = Mat::random(k, n, &mut rng);
            let want = matmul_naive(&a, &b);
            assert_close(&gemm(&a, &b), &want, 1e-9, &format!("m={m} k={k} n={n}"));
            assert_close(
                &gemm_par(&a, &b),
                &want,
                1e-9,
                &format!("par m={m} k={k} n={n}"),
            );
        }
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let a = Mat::zeros(0, 5);
        let b = Mat::zeros(5, 3);
        let c = gemm(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 3));
        let a = Mat::zeros(4, 0);
        let b = Mat::zeros(0, 3);
        let c = gemm(&a, &b);
        assert_eq!((c.rows(), c.cols()), (4, 3));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let mut rng = Rng::new(9);
        let a = Mat::random(300, 180, &mut rng);
        let b = Mat::random(180, 220, &mut rng);
        assert_eq!(gemm(&a, &b), gemm_par(&a, &b));
    }

    #[test]
    fn dgemm_update_matches_reference() {
        // Build an LU-shaped layout: rows of `ac` hold [A | C] blocks.
        let mut rng = Rng::new(11);
        let (m, n, kdim) = (37, 29, 12);
        let ld = kdim + n;
        let a = Mat::random(m, kdim, &mut rng);
        let b = Mat::random(kdim, n, &mut rng);
        let c0 = Mat::random(m, n, &mut rng);

        let mut ac = vec![0.0; m * ld];
        for i in 0..m {
            ac[i * ld..i * ld + kdim].copy_from_slice(a.row(i));
            ac[i * ld + kdim..(i + 1) * ld].copy_from_slice(c0.row(i));
        }
        let mut ac_par = ac.clone();

        let ab = matmul_naive(&a, &b);
        dgemm_update(&mut ac, ld, 0, kdim, m, n, kdim, b.as_slice(), n, 0, false);
        dgemm_update(
            &mut ac_par,
            ld,
            0,
            kdim,
            m,
            n,
            kdim,
            b.as_slice(),
            n,
            0,
            true,
        );
        assert_eq!(ac, ac_par, "update must be deterministic across modes");
        for i in 0..m {
            for j in 0..n {
                let want = c0[(i, j)] - ab[(i, j)];
                let got = ac[i * ld + kdim + j];
                assert!((got - want).abs() < 1e-12, "({i},{j}): {got} vs {want}");
            }
        }
        // The A block must be untouched.
        for i in 0..m {
            assert_eq!(&ac[i * ld..i * ld + kdim], a.row(i));
        }
    }

    #[test]
    fn flop_count_matches_matmul() {
        assert_eq!(gemm_flops(10, 20, 30), 12_000.0);
    }

    #[test]
    fn recorded_gemm_is_bit_identical_and_emits_phase_spans() {
        use hpcc_trace::{Event, MemRecorder};
        let mut rng = Rng::new(23);
        let a = Mat::random(70, 40, &mut rng);
        let b = Mat::random(40, 50, &mut rng);
        let plain = gemm(&a, &b);
        let rec = MemRecorder::new();
        let traced = gemm_recorded(&a, &b, &rec);
        assert_eq!(plain, traced);
        let (mut packs, mut kernels) = (0usize, 0usize);
        rec.with(|_, events| {
            for e in events {
                if let Event::Span { cat, .. } = e {
                    match *cat {
                        "pack" => packs += 1,
                        "kernel" => kernels += 1,
                        _ => {}
                    }
                }
            }
        });
        assert!(packs >= 2, "pack_a + at least one pack_b, got {packs}");
        assert!(kernels >= 1, "microkernel sweep span");
        // A disabled recorder emits nothing and still matches.
        assert_eq!(gemm_recorded(&a, &b, &hpcc_trace::NullRecorder), plain);
    }
}
