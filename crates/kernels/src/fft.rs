//! Radix-2 complex FFT — the transform kernel behind the earth/space
//! science workloads (spectral atmosphere models, SAR processing).
//!
//! ## Engine v2
//!
//! The seed transform ([`fft_baseline`]) is iterative Cooley–Tukey with
//! incrementally-computed twiddles: every butterfly pays a complex
//! multiply just to step the twiddle, the late passes stride across the
//! whole array, and nothing vectorises. The v2 engine keeps the same
//! butterfly network (bit-reversal + DIT passes) but:
//!
//! * **Twiddle plan** — per-stage twiddle tables (`n−1` entries total)
//!   computed once per length and cached in a thread-local plan cache,
//!   so `fft2d`'s row and column passes (and every CG/bench repeat)
//!   share one table. Direct `cis` evaluation per entry also drops the
//!   accumulated rounding of the incremental recurrence.
//! * **Cache-oblivious recursion** — on bit-reversed data the butterfly
//!   network factors as: transform the two halves, then one combine
//!   pass. Recursing depth-first keeps every sub-block resident while
//!   all of its passes run; only `log₂(n/LEAF)` combine passes touch
//!   more than L1. The arithmetic (and result) is identical to the
//!   iterative schedule — blocks are independent — just reordered.
//! * **AVX2 butterflies** — butterflies run two complex lanes per
//!   256-bit register (`re,im,re,im` layout): complex multiply via
//!   `movedup`/`permute`/`addsub` (exactly the scalar formula, no FMA,
//!   so SIMD and portable passes are bit-identical), runtime-dispatched
//!   with [`crate::simd::avx2_fma_available`]. Inverse transforms
//!   conjugate the twiddle at load time with a sign-mask XOR.
//!
//! `fft`/`ifft` dispatch automatically; `fft_portable` pins the scalar
//! pass (property tests assert it matches the SIMD path bit-for-bit);
//! `fft_baseline` is the seed implementation, kept as the bench
//! baseline and accuracy anchor.

use crate::simd;
use rayon::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Minimal complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cpx {
    pub re: f64,
    pub im: f64,
}

impl Cpx {
    pub const ZERO: Cpx = Cpx { re: 0.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Cpx {
        Cpx { re, im }
    }

    #[inline]
    pub fn conj(self) -> Cpx {
        Cpx::new(self.re, -self.im)
    }

    #[inline]
    pub fn scale(self, k: f64) -> Cpx {
        Cpx::new(self.re * k, self.im * k)
    }

    pub fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// e^{iθ}.
    pub fn cis(theta: f64) -> Cpx {
        Cpx::new(theta.cos(), theta.sin())
    }
}

impl std::ops::Add for Cpx {
    type Output = Cpx;
    #[inline]
    fn add(self, o: Cpx) -> Cpx {
        Cpx::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Cpx {
    type Output = Cpx;
    #[inline]
    fn sub(self, o: Cpx) -> Cpx {
        Cpx::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Cpx {
    type Output = Cpx;
    #[inline]
    fn mul(self, o: Cpx) -> Cpx {
        Cpx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Largest block (in complex elements, 16 B each) transformed entirely
/// by iterative leaf passes: 1024 × 16 B = 16 KB, half of a typical L1d,
/// leaving room for the stage twiddle tables.
const LEAF: usize = 1024;

/// Per-length twiddle plan: `stages[s]` holds the `len = 4 << s` stage's
/// forward twiddles `w_k = e^{-2πik/len}`, `k < len/2`. (The `len = 2`
/// stage needs none; inverse transforms conjugate at load time.)
struct FftPlan {
    stages: Vec<Vec<Cpx>>,
}

impl FftPlan {
    fn build(n: usize) -> FftPlan {
        let mut stages = Vec::new();
        let mut len = 4;
        while len <= n {
            let half = len / 2;
            let mut tw = Vec::with_capacity(half);
            for k in 0..half {
                tw.push(Cpx::cis(-std::f64::consts::TAU * k as f64 / len as f64));
            }
            stages.push(tw);
            len <<= 1;
        }
        FftPlan { stages }
    }

    /// Twiddle table for a stage of the given butterfly span.
    #[inline]
    fn table(&self, len: usize) -> &[Cpx] {
        &self.stages[len.trailing_zeros() as usize - 2]
    }
}

thread_local! {
    /// Thread-local plan cache keyed by transform length. `fft2d` row
    /// and column passes, repeated solves, and the bench harness all
    /// hit the same tables; Rayon workers each warm their own copy.
    static PLANS: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

fn plan_for(n: usize) -> Rc<FftPlan> {
    PLANS.with(|cache| {
        Rc::clone(
            cache
                .borrow_mut()
                .entry(n)
                .or_insert_with(|| Rc::new(FftPlan::build(n))),
        )
    })
}

/// In-place forward FFT. Length must be a power of two.
pub fn fft(x: &mut [Cpx]) {
    fft_dir(x, false, simd::avx2_fma_available());
}

/// In-place inverse FFT (includes the 1/n scaling).
pub fn ifft(x: &mut [Cpx]) {
    fft_dir(x, true, simd::avx2_fma_available());
}

/// [`fft`] with the AVX2 butterflies disabled — the portable scalar
/// engine (bit-identical to the SIMD path; asserted by property tests).
pub fn fft_portable(x: &mut [Cpx]) {
    fft_dir(x, false, false);
}

/// [`ifft`] on the portable scalar engine.
pub fn ifft_portable(x: &mut [Cpx]) {
    fft_dir(x, true, false);
}

fn fft_dir(x: &mut [Cpx], inverse: bool, use_simd: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            x.swap(i, j);
        }
    }
    let plan = plan_for(n);
    recurse(x, &plan, inverse, use_simd);
    if inverse {
        let inv = 1.0 / n as f64;
        for v in x.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// Depth-first butterfly passes over one bit-reversed block: halves
/// first (so they finish while L1-resident), then the block's own
/// combine pass. Identical arithmetic to the iterative schedule.
fn recurse(x: &mut [Cpx], plan: &FftPlan, inverse: bool, use_simd: bool) {
    let m = x.len();
    if m <= LEAF {
        leaf_passes(x, plan, inverse, use_simd);
        return;
    }
    let (lo, hi) = x.split_at_mut(m / 2);
    recurse(lo, plan, inverse, use_simd);
    recurse(hi, plan, inverse, use_simd);
    combine(x, plan.table(m), inverse, use_simd);
}

/// All passes of an ≤ LEAF-sized block, iteratively: the twiddle-free
/// `len = 2` pass, then one combine per block per stage.
fn leaf_passes(x: &mut [Cpx], plan: &FftPlan, inverse: bool, use_simd: bool) {
    let m = x.len();
    for p in (0..m).step_by(2) {
        let (a, b) = (x[p], x[p + 1]);
        x[p] = a + b;
        x[p + 1] = a - b;
    }
    let mut len = 4;
    while len <= m {
        let tw = plan.table(len);
        for block in x.chunks_exact_mut(len) {
            combine(block, tw, inverse, use_simd);
        }
        len <<= 1;
    }
}

/// One combine pass: butterflies `(x[k], x[k+h]) ← (a + w_k·b, a − w_k·b)`
/// between the two transformed halves of `x`.
fn combine(x: &mut [Cpx], tw: &[Cpx], inverse: bool, use_simd: bool) {
    if use_simd {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: dispatch guarded by `avx2_fma_available`; `x` is a
            // whole block (len ≥ 4, so h = len/2 ≥ 2 lanes per step).
            unsafe { combine_avx2(x, tw, inverse) };
            return;
        }
    }
    let h = x.len() / 2;
    let (lo, hi) = x.split_at_mut(h);
    for k in 0..h {
        let w = if inverse { tw[k].conj() } else { tw[k] };
        let a = lo[k];
        let b = hi[k] * w;
        lo[k] = a + b;
        hi[k] = a - b;
    }
}

/// AVX2 combine: two complex lanes per register. The complex multiply
/// (`movedup`/`permute`/`addsub`) evaluates exactly the scalar formula
/// `(br·wr − bi·wi, br·wi + bi·wr)` — no FMA, no reassociation — so
/// this path is bit-identical to [`combine`]'s scalar loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn combine_avx2(x: &mut [Cpx], tw: &[Cpx], inverse: bool) {
    use std::arch::x86_64::*;
    let h = x.len() / 2;
    // XOR mask flipping the imaginary lanes' sign conjugates the
    // twiddles for the inverse transform; all-zero for forward (XOR
    // with +0.0 preserves every bit pattern).
    let conj = if inverse {
        _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
    } else {
        _mm256_setzero_pd()
    };
    let lo = x.as_mut_ptr() as *mut f64;
    let hi = lo.add(2 * h);
    let twp = tw.as_ptr() as *const f64;
    let mut k = 0;
    while k < 2 * h {
        let w = _mm256_xor_pd(_mm256_loadu_pd(twp.add(k)), conj);
        let a = _mm256_loadu_pd(lo.add(k));
        let b = _mm256_loadu_pd(hi.add(k));
        // b·w: (br·wr − bi·wi, br·wi + bi·wr) per lane pair.
        let wre = _mm256_movedup_pd(w); // (wr, wr, wr, wr) per lane pair
        let wim = _mm256_permute_pd(w, 0xF); // (wi, wi, ...)
        let bsw = _mm256_permute_pd(b, 0x5); // (bi, br, ...)
        let bw = _mm256_addsub_pd(_mm256_mul_pd(b, wre), _mm256_mul_pd(bsw, wim));
        _mm256_storeu_pd(lo.add(k), _mm256_add_pd(a, bw));
        _mm256_storeu_pd(hi.add(k), _mm256_sub_pd(a, bw));
        k += 4;
    }
}

/// The seed transform: iterative Cooley–Tukey with incrementally
/// stepped twiddles. Kept as the scalar bench baseline and an
/// independent accuracy anchor for the v2 engine.
pub fn fft_baseline(x: &mut [Cpx]) {
    fft_dir_baseline(x, false);
}

/// Inverse of [`fft_baseline`] (includes the 1/n scaling).
pub fn ifft_baseline(x: &mut [Cpx]) {
    fft_dir_baseline(x, true);
}

fn fft_dir_baseline(x: &mut [Cpx], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            x.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Cpx::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Cpx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = x[start + k];
                let b = x[start + k + len / 2] * w;
                x[start + k] = a + b;
                x[start + k + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in x.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// 2-D FFT of an n×n row-major grid: FFT all rows, transpose, FFT all
/// rows again, transpose back. `parallel` uses Rayon over rows; every
/// row (and, via the transpose, every column) pass shares one cached
/// twiddle plan per worker thread.
pub fn fft2d(data: &mut Vec<Cpx>, n: usize, parallel: bool) {
    assert_eq!(data.len(), n * n);
    let pass = |d: &mut Vec<Cpx>| {
        if parallel {
            d.par_chunks_mut(n).for_each(fft);
        } else {
            d.chunks_mut(n).for_each(fft);
        }
    };
    pass(data);
    transpose(data, n);
    pass(data);
    transpose(data, n);
}

/// Inverse 2-D FFT.
pub fn ifft2d(data: &mut Vec<Cpx>, n: usize, parallel: bool) {
    assert_eq!(data.len(), n * n);
    let pass = |d: &mut Vec<Cpx>| {
        if parallel {
            d.par_chunks_mut(n).for_each(ifft);
        } else {
            d.chunks_mut(n).for_each(ifft);
        }
    };
    pass(data);
    transpose(data, n);
    pass(data);
    transpose(data, n);
}

fn transpose(data: &mut [Cpx], n: usize) {
    for i in 0..n {
        for j in i + 1..n {
            data.swap(i * n + j, j * n + i);
        }
    }
}

/// FLOPs of a length-n radix-2 FFT (5 n log₂ n, the usual convention).
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cpx, b: Cpx, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    #[test]
    fn delta_transforms_to_flat() {
        let mut x = vec![Cpx::ZERO; 8];
        x[0] = Cpx::new(1.0, 0.0);
        fft(&mut x);
        for v in &x {
            assert!(close(*v, Cpx::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn constant_transforms_to_delta() {
        let mut x = vec![Cpx::new(1.0, 0.0); 16];
        fft(&mut x);
        assert!(close(x[0], Cpx::new(16.0, 0.0), 1e-12));
        for v in &x[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut x: Vec<Cpx> = (0..n)
            .map(|t| Cpx::cis(std::f64::consts::TAU * k as f64 * t as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (bin, v) in x.iter().enumerate() {
            if bin == k {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leak in bin {bin}: {}", v.abs());
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let n = 128;
        let orig: Vec<Cpx> = (0..n)
            .map(|i| Cpx::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!(close(*a, *b, 1e-10));
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 256;
        let x: Vec<Cpx> = (0..n)
            .map(|i| Cpx::new(((i * 37) % 11) as f64 - 5.0, ((i * 13) % 7) as f64))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
        let mut f = x.clone();
        fft(&mut f);
        let freq_energy: f64 = f.iter().map(|v| v.abs() * v.abs()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Cpx> = (0..n).map(|i| Cpx::new(i as f64, 0.0)).collect();
        let b: Vec<Cpx> = (0..n).map(|i| Cpx::new(0.0, (i * i) as f64)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft(&mut fa);
        fft(&mut fb);
        let mut fab: Vec<Cpx> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        fft(&mut fab);
        for i in 0..n {
            assert!(close(fab[i], fa[i] + fb[i], 1e-9));
        }
    }

    #[test]
    fn fft2d_roundtrip_parallel_matches_sequential() {
        let n = 32;
        let orig: Vec<Cpx> = (0..n * n)
            .map(|i| Cpx::new((i as f64 * 0.01).sin(), (i % 5) as f64))
            .collect();
        let mut seq = orig.clone();
        fft2d(&mut seq, n, false);
        let mut par = orig.clone();
        fft2d(&mut par, n, true);
        assert_eq!(seq, par, "row-parallel 2-D FFT must be bit-identical");
        ifft2d(&mut seq, n, false);
        for (a, b) in seq.iter().zip(&orig) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Cpx::ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(fft_flops(1024), 5.0 * 1024.0 * 10.0);
    }

    #[test]
    fn v2_matches_baseline_engine() {
        // The plan-based engine against the seed's incremental-twiddle
        // transform: same network, independent twiddle evaluation —
        // agreement to near machine precision, forward and inverse,
        // through the whole leaf/recursion size range.
        for n in [2usize, 8, 64, LEAF, 4 * LEAF] {
            let orig: Vec<Cpx> = (0..n)
                .map(|i| Cpx::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut a = orig.clone();
            fft(&mut a);
            let mut b = orig.clone();
            fft_baseline(&mut b);
            let scale = n as f64;
            for (p, q) in a.iter().zip(&b) {
                assert!(close(*p, *q, 1e-9 * scale), "n={n}");
            }
            ifft(&mut a);
            for (p, q) in a.iter().zip(&orig) {
                assert!(close(*p, *q, 1e-10), "n={n} roundtrip");
            }
        }
    }

    #[test]
    fn simd_path_is_bit_identical_to_portable() {
        // On non-AVX2 hosts both sides take the scalar pass and this is
        // trivially true; on AVX2 hosts it pins the kernel's claim that
        // the vector butterflies never change a single bit.
        for n in [4usize, 32, 512, 2 * LEAF] {
            let orig: Vec<Cpx> = (0..n)
                .map(|i| Cpx::new((i as f64 * 0.73).cos(), (i as f64 * 0.29).sin()))
                .collect();
            let mut auto = orig.clone();
            fft(&mut auto);
            let mut portable = orig.clone();
            fft_portable(&mut portable);
            assert_eq!(auto, portable, "forward n={n}");
            ifft(&mut auto);
            ifft_portable(&mut portable);
            assert_eq!(auto, portable, "inverse n={n}");
        }
    }
}
