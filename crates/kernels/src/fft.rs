//! Radix-2 complex FFT — the transform kernel behind the earth/space
//! science workloads (spectral atmosphere models, SAR processing).
//!
//! Iterative in-place Cooley–Tukey with bit-reversal, an inverse via
//! conjugation, and a Rayon-parallel 2-D transform (rows, transpose,
//! rows). No external complex type: a local `Cpx`.

use rayon::prelude::*;

/// Minimal complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cpx {
    pub re: f64,
    pub im: f64,
}

impl Cpx {
    pub const ZERO: Cpx = Cpx { re: 0.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Cpx {
        Cpx { re, im }
    }

    #[inline]
    pub fn conj(self) -> Cpx {
        Cpx::new(self.re, -self.im)
    }

    #[inline]
    pub fn scale(self, k: f64) -> Cpx {
        Cpx::new(self.re * k, self.im * k)
    }

    pub fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// e^{iθ}.
    pub fn cis(theta: f64) -> Cpx {
        Cpx::new(theta.cos(), theta.sin())
    }
}

impl std::ops::Add for Cpx {
    type Output = Cpx;
    #[inline]
    fn add(self, o: Cpx) -> Cpx {
        Cpx::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Cpx {
    type Output = Cpx;
    #[inline]
    fn sub(self, o: Cpx) -> Cpx {
        Cpx::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Cpx {
    type Output = Cpx;
    #[inline]
    fn mul(self, o: Cpx) -> Cpx {
        Cpx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place forward FFT. Length must be a power of two.
pub fn fft(x: &mut [Cpx]) {
    fft_dir(x, false);
}

/// In-place inverse FFT (includes the 1/n scaling).
pub fn ifft(x: &mut [Cpx]) {
    fft_dir(x, true);
}

fn fft_dir(x: &mut [Cpx], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            x.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Cpx::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Cpx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = x[start + k];
                let b = x[start + k + len / 2] * w;
                x[start + k] = a + b;
                x[start + k + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in x.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// 2-D FFT of an n×n row-major grid: FFT all rows, transpose, FFT all
/// rows again, transpose back. `parallel` uses Rayon over rows.
pub fn fft2d(data: &mut Vec<Cpx>, n: usize, parallel: bool) {
    assert_eq!(data.len(), n * n);
    let pass = |d: &mut Vec<Cpx>| {
        if parallel {
            d.par_chunks_mut(n).for_each(fft);
        } else {
            d.chunks_mut(n).for_each(fft);
        }
    };
    pass(data);
    transpose(data, n);
    pass(data);
    transpose(data, n);
}

/// Inverse 2-D FFT.
pub fn ifft2d(data: &mut Vec<Cpx>, n: usize, parallel: bool) {
    assert_eq!(data.len(), n * n);
    let pass = |d: &mut Vec<Cpx>| {
        if parallel {
            d.par_chunks_mut(n).for_each(ifft);
        } else {
            d.chunks_mut(n).for_each(ifft);
        }
    };
    pass(data);
    transpose(data, n);
    pass(data);
    transpose(data, n);
}

fn transpose(data: &mut [Cpx], n: usize) {
    for i in 0..n {
        for j in i + 1..n {
            data.swap(i * n + j, j * n + i);
        }
    }
}

/// FLOPs of a length-n radix-2 FFT (5 n log₂ n, the usual convention).
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cpx, b: Cpx, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    #[test]
    fn delta_transforms_to_flat() {
        let mut x = vec![Cpx::ZERO; 8];
        x[0] = Cpx::new(1.0, 0.0);
        fft(&mut x);
        for v in &x {
            assert!(close(*v, Cpx::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn constant_transforms_to_delta() {
        let mut x = vec![Cpx::new(1.0, 0.0); 16];
        fft(&mut x);
        assert!(close(x[0], Cpx::new(16.0, 0.0), 1e-12));
        for v in &x[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut x: Vec<Cpx> = (0..n)
            .map(|t| Cpx::cis(std::f64::consts::TAU * k as f64 * t as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (bin, v) in x.iter().enumerate() {
            if bin == k {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leak in bin {bin}: {}", v.abs());
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let n = 128;
        let orig: Vec<Cpx> = (0..n)
            .map(|i| Cpx::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!(close(*a, *b, 1e-10));
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 256;
        let x: Vec<Cpx> = (0..n)
            .map(|i| Cpx::new(((i * 37) % 11) as f64 - 5.0, ((i * 13) % 7) as f64))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
        let mut f = x.clone();
        fft(&mut f);
        let freq_energy: f64 = f.iter().map(|v| v.abs() * v.abs()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Cpx> = (0..n).map(|i| Cpx::new(i as f64, 0.0)).collect();
        let b: Vec<Cpx> = (0..n).map(|i| Cpx::new(0.0, (i * i) as f64)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft(&mut fa);
        fft(&mut fb);
        let mut fab: Vec<Cpx> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        fft(&mut fab);
        for i in 0..n {
            assert!(close(fab[i], fa[i] + fb[i], 1e-9));
        }
    }

    #[test]
    fn fft2d_roundtrip_parallel_matches_sequential() {
        let n = 32;
        let orig: Vec<Cpx> = (0..n * n)
            .map(|i| Cpx::new((i as f64 * 0.01).sin(), (i % 5) as f64))
            .collect();
        let mut seq = orig.clone();
        fft2d(&mut seq, n, false);
        let mut par = orig.clone();
        fft2d(&mut par, n, true);
        assert_eq!(seq, par, "row-parallel 2-D FFT must be bit-identical");
        ifft2d(&mut seq, n, false);
        for (a, b) in seq.iter().zip(&orig) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Cpx::ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(fft_flops(1024), 5.0 * 1024.0 * 10.0);
    }
}
