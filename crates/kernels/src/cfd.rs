//! Computational aerosciences model problem (the CAS consortium's
//! domain): steady transport on a 2-D grid.
//!
//! Two solvers for the discrete Poisson/transport equation on the unit
//! square with Dirichlet boundaries:
//! * Jacobi sweeps (embarrassingly parallel — the testbed-friendly one);
//! * red-black SOR (converges far faster; still parallel within a colour).
//!
//! Grid convention: `Grid` stores (n+2)×(n+2) points including the
//! boundary ring; solvers update interior points only.

use rayon::prelude::*;

/// A square scalar field with a one-cell boundary ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    n: usize, // interior points per side
    data: Vec<f64>,
}

impl Grid {
    pub fn new(n: usize) -> Grid {
        Grid {
            n,
            data: vec![0.0; (n + 2) * (n + 2)],
        }
    }

    /// Interior size per side.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * (self.n + 2) + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * (self.n + 2) + j] = v;
    }

    /// Apply a boundary condition function on the ring.
    pub fn set_boundary(&mut self, f: impl Fn(f64, f64) -> f64) {
        let n = self.n;
        let h = 1.0 / (n + 1) as f64;
        for k in 0..n + 2 {
            let t = k as f64 * h;
            self.set(0, k, f(0.0, t));
            self.set(n + 1, k, f(1.0, t));
            self.set(k, 0, f(t, 0.0));
            self.set(k, n + 1, f(t, 1.0));
        }
    }

    /// Max-norm difference over all points.
    pub fn dist(&self, other: &Grid) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    fn stride(&self) -> usize {
        self.n + 2
    }
}

/// Convergence report for an iterative solve.
#[derive(Debug, Clone, Copy)]
pub struct Convergence {
    pub iterations: usize,
    pub residual: f64,
    pub converged: bool,
}

/// One Jacobi sweep: `dst` interior = average of `src` neighbours minus
/// h²/4 · rhs. Returns the max update delta.
fn jacobi_sweep(src: &Grid, dst: &mut Grid, rhs: &Grid, parallel: bool) -> f64 {
    let n = src.n;
    let s = src.stride();
    let h2 = 1.0 / ((n + 1) as f64 * (n + 1) as f64);
    let src_d = &src.data;
    let rhs_d = &rhs.data;
    let row_op = |(idx, row): (usize, &mut [f64])| -> f64 {
        let i = idx + 1; // interior row index
        let mut local_max = 0.0f64;
        for j in 1..=n {
            let v = 0.25
                * (src_d[(i - 1) * s + j]
                    + src_d[(i + 1) * s + j]
                    + src_d[i * s + j - 1]
                    + src_d[i * s + j + 1]
                    - h2 * rhs_d[i * s + j]);
            local_max = local_max.max((v - row[j]).abs());
            row[j] = v;
        }
        local_max
    };
    // dst rows 1..=n, each (n+2) long.
    let interior = &mut dst.data[s..(n + 1) * s];
    if parallel {
        interior
            .par_chunks_mut(s)
            .enumerate()
            .map(row_op)
            .reduce(|| 0.0, f64::max)
    } else {
        interior
            .chunks_mut(s)
            .enumerate()
            .map(row_op)
            .fold(0.0, f64::max)
    }
}

/// Jacobi iteration until the max update falls below `tol` (or
/// `max_iters`). `parallel` selects the Rayon row-parallel sweep.
pub fn jacobi(u: &mut Grid, rhs: &Grid, tol: f64, max_iters: usize, parallel: bool) -> Convergence {
    assert_eq!(u.n, rhs.n);
    let mut other = u.clone();
    let mut delta = f64::INFINITY;
    let mut iters = 0;
    while iters < max_iters && delta > tol {
        delta = jacobi_sweep(u, &mut other, rhs, parallel);
        // Swap buffers; `other` now holds the newest iterate.
        std::mem::swap(u, &mut other);
        iters += 1;
    }
    Convergence {
        iterations: iters,
        residual: delta,
        converged: delta <= tol,
    }
}

/// Red-black SOR with relaxation factor `omega` (ω = 2/(1+sin(πh)) is
/// optimal for the Laplacian; pass `None` to use it).
pub fn sor(
    u: &mut Grid,
    rhs: &Grid,
    omega: Option<f64>,
    tol: f64,
    max_iters: usize,
) -> Convergence {
    assert_eq!(u.n, rhs.n);
    let n = u.n;
    let s = u.stride();
    let h = 1.0 / (n + 1) as f64;
    let w = omega.unwrap_or(2.0 / (1.0 + (std::f64::consts::PI * h).sin()));
    let h2 = h * h;
    let mut delta = f64::INFINITY;
    let mut iters = 0;
    while iters < max_iters && delta > tol {
        delta = 0.0;
        for colour in 0..2 {
            for i in 1..=n {
                let start = 1 + (i + colour) % 2;
                let mut j = start;
                while j <= n {
                    let idx = i * s + j;
                    let sigma = 0.25
                        * (u.data[idx - s] + u.data[idx + s] + u.data[idx - 1] + u.data[idx + 1]
                            - h2 * rhs.data[idx]);
                    let nv = (1.0 - w) * u.data[idx] + w * sigma;
                    delta = delta.max((nv - u.data[idx]).abs());
                    u.data[idx] = nv;
                    j += 2;
                }
            }
        }
        iters += 1;
    }
    Convergence {
        iterations: iters,
        residual: delta,
        converged: delta <= tol,
    }
}

/// FLOPs per Jacobi sweep of an n×n interior (5 adds + 1 mul per point).
pub fn jacobi_sweep_flops(n: usize) -> f64 {
    6.0 * (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// u(x,y) = x + y is harmonic: with exact boundary it is the exact
    /// steady state for rhs = 0.
    fn linear_bc(g: &mut Grid) {
        g.set_boundary(|x, y| x + y);
    }

    fn exact_linear(n: usize) -> Grid {
        let mut g = Grid::new(n);
        let h = 1.0 / (n + 1) as f64;
        for i in 0..n + 2 {
            for j in 0..n + 2 {
                g.set(i, j, i as f64 * h + j as f64 * h);
            }
        }
        g
    }

    #[test]
    fn jacobi_converges_to_harmonic_solution() {
        let n = 24;
        let mut u = Grid::new(n);
        linear_bc(&mut u);
        let rhs = Grid::new(n);
        let conv = jacobi(&mut u, &rhs, 1e-10, 20_000, false);
        assert!(conv.converged, "residual {}", conv.residual);
        assert!(u.dist(&exact_linear(n)) < 1e-6);
    }

    #[test]
    fn parallel_jacobi_matches_sequential() {
        let n = 32;
        let rhs = Grid::from_sin(n);
        let mut us = Grid::new(n);
        let mut up = Grid::new(n);
        let cs = jacobi(&mut us, &rhs, 1e-8, 5_000, false);
        let cp = jacobi(&mut up, &rhs, 1e-8, 5_000, true);
        assert_eq!(cs.iterations, cp.iterations);
        assert_eq!(us, up, "row-parallel sweep must be bit-identical");
    }

    #[test]
    fn sor_beats_jacobi_iteration_count() {
        let n = 32;
        let rhs = Grid::from_sin(n);
        let mut uj = Grid::new(n);
        let cj = jacobi(&mut uj, &rhs, 1e-8, 50_000, false);
        let mut us = Grid::new(n);
        let cs = sor(&mut us, &rhs, None, 1e-8, 50_000);
        assert!(cj.converged && cs.converged);
        assert!(
            cs.iterations * 5 < cj.iterations,
            "SOR {} vs Jacobi {}",
            cs.iterations,
            cj.iterations
        );
        // Both solve the same equation.
        assert!(uj.dist(&us) < 1e-5, "dist {}", uj.dist(&us));
    }

    #[test]
    fn manufactured_solution_accuracy() {
        // -∇²u = 2π² sin(πx) sin(πy) has solution u = sin(πx) sin(πy).
        let n = 40;
        let h = 1.0 / (n + 1) as f64;
        let mut rhs = Grid::new(n);
        let pi = std::f64::consts::PI;
        for i in 0..n + 2 {
            for j in 0..n + 2 {
                let (x, y) = (i as f64 * h, j as f64 * h);
                // Our sweep solves ∇²u = rhs, so rhs = -2π² sin sin.
                rhs.set(i, j, -2.0 * pi * pi * (pi * x).sin() * (pi * y).sin());
            }
        }
        let mut u = Grid::new(n);
        let conv = sor(&mut u, &rhs, None, 1e-10, 100_000);
        assert!(conv.converged);
        let mut max_err = 0.0f64;
        for i in 1..=n {
            for j in 1..=n {
                let (x, y) = (i as f64 * h, j as f64 * h);
                let exact = (pi * x).sin() * (pi * y).sin();
                max_err = max_err.max((u.at(i, j) - exact).abs());
            }
        }
        // Second-order discretisation error at h ~ 1/41.
        assert!(max_err < 5.0 * h * h, "err {max_err} vs h² {}", h * h);
    }

    impl Grid {
        /// Test fixture: rhs = sin(πx)sin(πy) everywhere.
        fn from_sin(n: usize) -> Grid {
            let mut g = Grid::new(n);
            let h = 1.0 / (n + 1) as f64;
            let pi = std::f64::consts::PI;
            for i in 0..n + 2 {
                for j in 0..n + 2 {
                    g.set(i, j, (pi * i as f64 * h).sin() * (pi * j as f64 * h).sin());
                }
            }
            g
        }
    }

    #[test]
    fn flop_accounting() {
        assert_eq!(jacobi_sweep_flops(10), 600.0);
    }
}
