//! Dense matrix multiply: naive, cache-blocked, and parallel.
//!
//! The BLAS3 kernel is the engine of everything else (LU trailing
//! updates). `matmul_naive` and `matmul_blocked` are the reference and
//! cache-blocked baselines; `matmul_par` routes through the packed
//! register-blocked engine in [`crate::gemm`].

use crate::gemm;
use crate::mat::Mat;

/// Naive triple loop (i-k-j order, so the inner loop is stride-1).
pub fn matmul_naive(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.rows());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        for l in 0..k {
            let aik = a[(i, l)];
            let brow = b.row(l);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    c
}

/// Cache-blocked version with a square tile of `bs`.
pub fn matmul_blocked(a: &Mat, b: &Mat, bs: usize) -> Mat {
    assert_eq!(a.cols(), b.rows());
    assert!(bs > 0);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Mat::zeros(m, n);
    for ii in (0..m).step_by(bs) {
        let iend = (ii + bs).min(m);
        for ll in (0..k).step_by(bs) {
            let lend = (ll + bs).min(k);
            for jj in (0..n).step_by(bs) {
                let jend = (jj + bs).min(n);
                for i in ii..iend {
                    for l in ll..lend {
                        let aik = a[(i, l)];
                        let brow = b.row(l);
                        let crow = c.row_mut(i);
                        for j in jj..jend {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Rayon-parallel multiply through the packed engine: MC-row panels of
/// C are independent, so [`gemm::gemm_par`] parallelises over them while
/// keeping the accumulation order fixed (bit-identical to sequential).
pub fn matmul_par(a: &Mat, b: &Mat) -> Mat {
    gemm::gemm_par(a, b)
}

/// FLOP count of an (m×k)·(k×n) multiply.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::rng::Rng;

    #[test]
    fn known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul_naive(&a, &b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::new(3);
        let a = Mat::random(7, 7, &mut rng);
        let c = matmul_naive(&a, &Mat::identity(7));
        assert!(a.dist(&c) < 1e-14);
    }

    #[test]
    fn blocked_matches_naive_all_shapes() {
        let mut rng = Rng::new(11);
        for (m, k, n) in [(5, 7, 9), (16, 16, 16), (33, 17, 5), (1, 8, 1)] {
            let a = Mat::random(m, k, &mut rng);
            let b = Mat::random(k, n, &mut rng);
            let naive = matmul_naive(&a, &b);
            for bs in [1, 3, 8, 64] {
                let blk = matmul_blocked(&a, &b, bs);
                assert!(naive.dist(&blk) < 1e-12, "m={m} k={k} n={n} bs={bs}");
            }
        }
    }

    #[test]
    fn parallel_matches_naive() {
        let mut rng = Rng::new(13);
        let a = Mat::random(40, 30, &mut rng);
        let b = Mat::random(30, 50, &mut rng);
        let naive = matmul_naive(&a, &b);
        let par = matmul_par(&a, &b);
        assert!(naive.dist(&par) < 1e-12);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Mat::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Mat::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let c = matmul_par(&a, &b);
        assert_eq!((c.rows(), c.cols()), (1, 1));
        assert_eq!(c[(0, 0)], 3.0);
    }

    #[test]
    fn flop_count() {
        assert_eq!(matmul_flops(10, 20, 30), 12_000.0);
    }
}
