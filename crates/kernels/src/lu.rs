//! Blocked right-looking LU factorisation with partial pivoting — the
//! computational heart of the LINPACK benchmark the Delta exhibit quotes.
//!
//! `lu_factor` / `lu_factor_par` factor in place (unit-lower L below the
//! diagonal, U on and above) with full-row pivot swaps recorded in `piv`.
//! The trailing-matrix update — where all the O(n³) work lives — runs
//! through the packed GEMM engine ([`crate::gemm::dgemm_update`]); the
//! Rayon variant parallelises it over row panels. Both variants produce
//! bit-identical results because the engine's accumulation order does
//! not depend on thread count.

use crate::gemm;
use crate::mat::Mat;
use hpcc_trace::{names, Recorder, WallTrack};

/// Factorisation failure: zero (or non-finite) pivot column at the
/// given index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular(pub usize);

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.0)
    }
}

impl std::error::Error for Singular {}

/// In-place LU with partial pivoting. Returns the pivot vector:
/// `piv[j]` is the row swapped with row `j` at step `j`.
pub fn lu_factor(a: &mut Mat, nb: usize) -> Result<Vec<usize>, Singular> {
    lu_factor_impl(a, nb, false, None)
}

/// Rayon-parallel variant (parallel trailing update).
pub fn lu_factor_par(a: &mut Mat, nb: usize) -> Result<Vec<usize>, Singular> {
    lu_factor_impl(a, nb, true, None)
}

/// [`lu_factor`] under a [`Recorder`]: each block step's panel
/// factorisation, triangular solve, and trailing update land as
/// wall-clock spans on a `host / lu` track. Sequential, bit-identical
/// to [`lu_factor`].
pub fn lu_factor_recorded(
    a: &mut Mat,
    nb: usize,
    rec: &dyn Recorder,
) -> Result<Vec<usize>, Singular> {
    let wt = WallTrack::new(rec, names::HOST, "lu");
    lu_factor_impl(a, nb, false, Some(&wt))
}

fn lu_factor_impl(
    a: &mut Mat,
    nb: usize,
    parallel: bool,
    trace: Option<&WallTrack<'_>>,
) -> Result<Vec<usize>, Singular> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "LU needs a square matrix");
    assert!(nb > 0);
    let mut piv = vec![0usize; n];

    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);

        // --- Panel factorisation on columns [k, k+kb), rows [k, n). ---
        let t_panel = trace.map(WallTrack::now_ns);
        for j in k..k + kb {
            // Pivot search down column j.
            let mut p = j;
            let mut best = a[(j, j)].abs();
            for i in j + 1..n {
                let v = a[(i, j)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            // A NaN column maximum would sail through a `== 0.0` test and
            // poison the whole factorisation; reject it like a zero pivot.
            if best == 0.0 || !best.is_finite() {
                return Err(Singular(j));
            }
            piv[j] = p;
            a.swap_rows(j, p);
            // Scale multipliers and update the rest of the panel.
            let inv = 1.0 / a[(j, j)];
            for i in j + 1..n {
                a[(i, j)] *= inv;
            }
            for i in j + 1..n {
                let lij = a[(i, j)];
                if lij != 0.0 {
                    for c in j + 1..k + kb {
                        a[(i, c)] -= lij * a[(j, c)];
                    }
                }
            }
        }

        if let (Some(t), Some(t0)) = (trace, t_panel) {
            t.span_from("panel", "panel", t0);
        }

        if k + kb < n {
            // --- U12 = L11^{-1} A12 (unit lower triangular solve). ---
            let t_trsm = trace.map(WallTrack::now_ns);
            for j in k + 1..k + kb {
                for i in k..j {
                    let lji = a[(j, i)];
                    if lji != 0.0 {
                        // a[j, k+kb..] -= lji * a[i, k+kb..]
                        let (ri, rj) = row_pair(a, i, j);
                        for c in k + kb..n {
                            rj[c] -= lji * ri[c];
                        }
                    }
                }
            }

            if let (Some(t), Some(t0)) = (trace, t_trsm) {
                t.span_from("trsm", "trsm", t0);
            }

            // --- A22 -= L21 · U12 (the dgemm that dominates). ---
            // Split the backing storage at row k+kb: `upper` holds U12
            // (rows k.., cols k+kb..), `lower` holds both L21 (cols
            // k..k+kb) and the trailing block A22 (cols k+kb..). The
            // engine packs L21 before touching A22, so the in-place
            // aliasing is safe.
            let ncols = a.cols();
            let split = (k + kb) * ncols;
            let (upper, lower) = a.as_mut_slice().split_at_mut(split);
            let t_update = trace.map(WallTrack::now_ns);
            gemm::dgemm_update(
                lower,
                ncols,
                k,
                k + kb,
                n - (k + kb),
                ncols - (k + kb),
                kb,
                &upper[k * ncols..],
                ncols,
                k + kb,
                parallel,
            );
            if let (Some(t), Some(t0)) = (trace, t_update) {
                t.span_from("update", "update", t0);
            }
        }
        k += kb;
    }
    Ok(piv)
}

/// Borrow two distinct rows, `i < j`, one shared and one mutable.
fn row_pair(a: &mut Mat, i: usize, j: usize) -> (&[f64], &mut [f64]) {
    debug_assert!(i < j);
    let ncols = a.cols();
    let (top, bot) = a.as_mut_slice().split_at_mut(j * ncols);
    (&top[i * ncols..(i + 1) * ncols], &mut bot[..ncols])
}

/// Solve `A x = b` given the in-place factorisation and pivot vector.
pub fn lu_solve(lu: &Mat, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.rows();
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    // Apply the row interchanges in factorisation order.
    for (j, &p) in piv.iter().enumerate() {
        x.swap(j, p);
    }
    // Forward substitution with unit lower L.
    for i in 0..n {
        let mut s = x[i];
        let row = lu.row(i);
        for (j, xv) in x[..i].iter().enumerate() {
            s -= row[j] * xv;
        }
        x[i] = s;
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        let row = lu.row(i);
        let mut s = x[i];
        for j in i + 1..n {
            s -= row[j] * x[j];
        }
        x[i] = s / row[i];
    }
    x
}

/// Reconstruct `P·A` from the factors (test utility): returns L·U with the
/// unit diagonal implied.
pub fn lu_reconstruct(lu: &Mat) -> Mat {
    let n = lu.rows();
    let mut out = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            // (L·U)[i][j] = Σ_{k ≤ min(i,j)} L[i][k]·U[k][j] with L unit
            // diagonal: L[i][k] = lu[i][k] for k < i, L[i][i] = 1.
            let kmax = i.min(j);
            let mut s = 0.0;
            for k in 0..kmax {
                s += lu[(i, k)] * lu[(k, j)];
            }
            s += if i <= j {
                lu[(i, j)] // k = i term: 1 · U[i][j]
            } else {
                lu[(i, j)] * lu[(j, j)] // k = j term: L[i][j] · U[j][j]
            };
            out[(i, j)] = s;
        }
    }
    out
}

/// FLOP count credited for an n×n LU factor + solve, per the LINPACK
/// benchmark convention.
pub fn linpack_flops(n: usize) -> f64 {
    let nf = n as f64;
    2.0 * nf * nf * nf / 3.0 + 2.0 * nf * nf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::vecops::norm_inf;
    use des::rng::Rng;

    fn residual(a: &Mat, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        let r: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
        norm_inf(&r) / (a.inf_norm() * norm_inf(x)).max(1e-300)
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let mut a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let orig = a.clone();
        let piv = lu_factor(&mut a, 1).unwrap();
        let x = lu_solve(&a, &piv, &[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
        assert!(residual(&orig, &x, &[5.0, 10.0]) < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let piv = lu_factor(&mut a, 2).unwrap();
        let x = lu_solve(&a, &piv, &[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-14 && (x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn random_systems_small_residual_various_block_sizes() {
        let mut rng = Rng::new(77);
        for n in [1, 2, 5, 17, 64, 97] {
            let a = Mat::random(n, n, &mut rng);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            for nb in [1, 4, 32] {
                let mut f = a.clone();
                match lu_factor(&mut f, nb) {
                    Ok(piv) => {
                        let x = lu_solve(&f, &piv, &b);
                        let r = residual(&a, &x, &b);
                        assert!(r < 1e-10, "n={n} nb={nb} residual={r}");
                    }
                    Err(_) => panic!("random matrix singular (n={n})"),
                }
            }
        }
    }

    #[test]
    fn blocked_equals_unblocked() {
        let mut rng = Rng::new(31);
        let a = Mat::random(50, 50, &mut rng);
        let mut f1 = a.clone();
        let p1 = lu_factor(&mut f1, 1).unwrap();
        let mut f2 = a.clone();
        let p2 = lu_factor(&mut f2, 8).unwrap();
        assert_eq!(p1, p2, "same pivots");
        assert!(f1.dist(&f2) < 1e-10);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let mut rng = Rng::new(41);
        let a = Mat::random(80, 80, &mut rng);
        let mut fs = a.clone();
        let ps = lu_factor(&mut fs, 16).unwrap();
        let mut fp = a.clone();
        let pp = lu_factor_par(&mut fp, 16).unwrap();
        assert_eq!(ps, pp);
        assert_eq!(fs, fp, "parallel update must not reorder arithmetic");
    }

    #[test]
    fn singular_matrix_reported() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(lu_factor(&mut a, 1), Err(Singular(1)));
        let mut z = Mat::zeros(3, 3);
        assert_eq!(lu_factor(&mut z, 2), Err(Singular(0)));
    }

    #[test]
    fn non_finite_pivot_rejected() {
        // A NaN in the pivot column survives a `best == 0.0` check (any
        // comparison with NaN is false) — it must be reported, not
        // propagated through the factorisation.
        let mut a = Mat::from_rows(&[&[f64::NAN, 1.0], &[2.0, 3.0]]);
        assert_eq!(lu_factor(&mut a, 1), Err(Singular(0)));
        let mut b = Mat::from_rows(&[&[1.0, 2.0], &[3.0, f64::NAN]]);
        assert_eq!(lu_factor(&mut b, 2), Err(Singular(1)));
        let mut c = Mat::from_rows(&[&[f64::INFINITY, 1.0], &[2.0, 3.0]]);
        assert_eq!(lu_factor_par(&mut c, 1), Err(Singular(0)));
    }

    #[test]
    fn spd_system_high_accuracy() {
        let mut rng = Rng::new(91);
        let a = Mat::random_spd(60, &mut rng);
        let xtrue: Vec<f64> = (0..60).map(|i| 1.0 + (i % 7) as f64).collect();
        let b = a.matvec(&xtrue);
        let mut f = a.clone();
        let piv = lu_factor_par(&mut f, 8).unwrap();
        let x = lu_solve(&f, &piv, &b);
        let err = x
            .iter()
            .zip(&xtrue)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9, "max err {err}");
    }

    #[test]
    fn reconstruction_equals_permuted_input() {
        let mut rng = Rng::new(17);
        let a = Mat::random(12, 12, &mut rng);
        let mut f = a.clone();
        let piv = lu_factor(&mut f, 4).unwrap();
        // Apply the same interchanges to a copy of A.
        let mut pa = a.clone();
        for (j, &p) in piv.iter().enumerate() {
            pa.swap_rows(j, p);
        }
        let rec = lu_reconstruct(&f);
        assert!(pa.dist(&rec) < 1e-11, "‖PA − LU‖ = {}", pa.dist(&rec));
    }

    #[test]
    fn linpack_flop_convention() {
        assert_eq!(linpack_flops(100), 2.0 * 1e6 / 3.0 + 2.0 * 1e4);
    }

    #[test]
    fn recorded_lu_is_bit_identical_and_emits_phase_spans() {
        use hpcc_trace::{Event, MemRecorder};
        let mut rng = Rng::new(53);
        let a = Mat::random(64, 64, &mut rng);
        let mut plain = a.clone();
        let p_plain = lu_factor(&mut plain, 16).unwrap();
        let rec = MemRecorder::new();
        let mut traced = a.clone();
        let p_traced = lu_factor_recorded(&mut traced, 16, &rec).unwrap();
        assert_eq!(p_plain, p_traced);
        assert_eq!(plain, traced, "recording must not perturb the factors");
        let mut cats: Vec<&'static str> = Vec::new();
        rec.with(|_, events| {
            for e in events {
                if let Event::Span { cat, .. } = e {
                    cats.push(cat);
                }
            }
        });
        // 4 block steps: 4 panels, 3 trsm+update pairs.
        assert_eq!(cats.iter().filter(|c| **c == "panel").count(), 4);
        assert_eq!(cats.iter().filter(|c| **c == "trsm").count(), 3);
        assert_eq!(cats.iter().filter(|c| **c == "update").count(), 3);
    }
}
