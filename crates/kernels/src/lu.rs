//! Blocked right-looking LU factorisation with partial pivoting — the
//! computational heart of the LINPACK benchmark the Delta exhibit quotes.
//!
//! `lu_factor` / `lu_factor_par` factor in place (unit-lower L below the
//! diagonal, U on and above) with full-row pivot swaps recorded in `piv`.
//!
//! ## Engine v2 block step
//!
//! All three phases of a block step run through cache-aware kernels so
//! the trailing `dgemm_update` (where the O(n³) work lives) is no longer
//! waiting on scalar panels:
//!
//! * **Panel** — columns `[k, k+kb)` are packed into a contiguous
//!   `(n-k) × kb` buffer and factored there by *recursive* width
//!   splitting: each half's own trailing update is a BLAS3
//!   [`crate::gemm::dgemm_update`] on the packed buffer, so only the
//!   narrow `PANEL_BASE`-column base case runs rank-1 loops (and those
//!   are compiled with AVX2 enabled). Pivot swaps touch the 1–2 KB
//!   packed rows; the untouched matrix columns get one deferred
//!   `laswp`-style sweep afterwards — bit-identical values, a fraction
//!   of the memory traffic.
//! * **TRSM** — `U12 = L11⁻¹·A12` with the `kb × kb` unit-lower
//!   triangle packed column-major and the trailing columns processed in
//!   8-wide register strips: for each strip the whole triangular solve
//!   runs out of L1 with 4-row FMA tiles (AVX2+FMA, runtime-dispatched
//!   with the original row-oriented loop as the portable fallback).
//! * **Update** — `A22 -= L21·U12` through the packed GEMM engine;
//!   the Rayon variant parallelises over disjoint MC-row panels of the
//!   trailing matrix (fixed decomposition, one task per panel), which
//!   keeps every element's accumulation order independent of thread
//!   count: sequential and parallel runs are bit-identical.
//!
//! The sweet spot for the block width on AVX2 hosts is `nb = 192`
//! ([`DEFAULT_NB`]): deep enough that the trailing update runs at the
//! packed engine's near-peak rate, narrow enough that panel+TRSM stay a
//! small fraction of the time (see `BENCH_kernels.json`).

use crate::gemm;
use crate::mat::Mat;
use crate::simd;
use hpcc_trace::{names, Recorder, WallTrack};

/// Block width below which the packed panel is factored by right-looking
/// rank-1 updates (the recursion base). Chosen so the base case's
/// working set (`PANEL_BASE` columns of the packed panel) stays
/// register/L1 friendly while the recursion above it runs BLAS3.
const PANEL_BASE: usize = 16;

/// Default block width for AVX2-class hosts: the measured knee where the
/// trailing `dgemm_update` reaches the packed engine's full rate (see
/// `BENCH_kernels.json`).
pub const DEFAULT_NB: usize = 192;

/// Factorisation failure: zero (or non-finite) pivot column at the
/// given index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular(pub usize);

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.0)
    }
}

impl std::error::Error for Singular {}

/// In-place LU with partial pivoting. Returns the pivot vector:
/// `piv[j]` is the row swapped with row `j` at step `j`.
pub fn lu_factor(a: &mut Mat, nb: usize) -> Result<Vec<usize>, Singular> {
    lu_factor_impl(a, nb, false, simd::avx2_fma_available(), None)
}

/// Rayon-parallel variant (parallel trailing update). Bit-identical to
/// [`lu_factor`] and — by construction — never runs slower: the single
/// serial phases are shared and the parallel path only fans the trailing
/// update out over disjoint row panels (falling through to the exact
/// sequential sweep when the pool has one thread).
pub fn lu_factor_par(a: &mut Mat, nb: usize) -> Result<Vec<usize>, Singular> {
    lu_factor_impl(a, nb, true, simd::avx2_fma_available(), None)
}

/// [`lu_factor`] with the AVX2 panel/TRSM paths disabled — the portable
/// scalar engine. Exposed for the SIMD-equivalence property tests and
/// non-x86 debugging; same pivoting contract, residual-equivalent
/// factors (the SIMD paths fuse multiply-adds, so last-bit rounding may
/// differ).
pub fn lu_factor_portable(a: &mut Mat, nb: usize) -> Result<Vec<usize>, Singular> {
    lu_factor_impl(a, nb, false, false, None)
}

/// [`lu_factor`] under a [`Recorder`]: each block step's panel
/// factorisation (pack + recursive factor + write-back + deferred row
/// swaps), packed triangular solve, and trailing update land as
/// wall-clock spans on a `host / lu` track. Sequential, bit-identical
/// to [`lu_factor`].
pub fn lu_factor_recorded(
    a: &mut Mat,
    nb: usize,
    rec: &dyn Recorder,
) -> Result<Vec<usize>, Singular> {
    let wt = WallTrack::new(rec, names::HOST, "lu");
    lu_factor_impl(a, nb, false, simd::avx2_fma_available(), Some(&wt))
}

fn lu_factor_impl(
    a: &mut Mat,
    nb: usize,
    parallel: bool,
    use_simd: bool,
    trace: Option<&WallTrack<'_>>,
) -> Result<Vec<usize>, Singular> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "LU needs a square matrix");
    assert!(nb > 0);
    let mut piv = vec![0usize; n];
    // Reused across block steps: the packed panel and the packed
    // column-major L11 triangle for the TRSM.
    let mut panel = Vec::new();
    let mut tri = Vec::new();

    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        let rows = n - k;

        // --- Panel: pack, factor recursively, write back, laswp. ---
        let t_panel = trace.map(WallTrack::now_ns);
        {
            let ncols = a.cols();
            let am = a.as_mut_slice();
            panel.clear();
            panel.resize(rows * kb, 0.0);
            for (r, dst) in panel.chunks_exact_mut(kb).enumerate() {
                let row = &am[(k + r) * ncols + k..(k + r) * ncols + k + kb];
                dst.copy_from_slice(row);
            }
            let mut lp = vec![0usize; kb];
            factor_panel(&mut panel, rows, kb, use_simd, &mut lp).map_err(|j| Singular(k + j))?;
            for (r, src) in panel.chunks_exact(kb).enumerate() {
                am[(k + r) * ncols + k..(k + r) * ncols + k + kb].copy_from_slice(src);
            }
            // Deferred swaps on the columns the panel never touched
            // (left of the panel and the trailing block). Applying them
            // here, in pivot order, leaves every row exactly where the
            // eager full-row swaps of the scalar engine would have.
            for (j, &p) in lp.iter().enumerate() {
                piv[k + j] = k + p;
                if p != j {
                    let (ra, rb) = (k + j, k + p);
                    let (top, bot) = am.split_at_mut(rb * ncols);
                    let ta = &mut top[ra * ncols..ra * ncols + ncols];
                    let tb = &mut bot[..ncols];
                    ta[..k].swap_with_slice(&mut tb[..k]);
                    ta[k + kb..].swap_with_slice(&mut tb[k + kb..]);
                }
            }
        }
        if let (Some(t), Some(t0)) = (trace, t_panel) {
            t.span_from("panel", "panel", t0);
        }

        if k + kb < n {
            // --- U12 = L11^{-1} A12 (unit lower triangular solve). ---
            let t_trsm = trace.map(WallTrack::now_ns);
            trsm_rowblock(a, k, kb, use_simd, &mut tri);
            if let (Some(t), Some(t0)) = (trace, t_trsm) {
                t.span_from("trsm", "trsm", t0);
            }

            // --- A22 -= L21 · U12 (the dgemm that dominates). ---
            // Split the backing storage at row k+kb: `upper` holds U12
            // (rows k.., cols k+kb..), `lower` holds both L21 (cols
            // k..k+kb) and the trailing block A22 (cols k+kb..). The
            // engine packs L21 before touching A22, so the in-place
            // aliasing is safe.
            let ncols = a.cols();
            let split = (k + kb) * ncols;
            let (upper, lower) = a.as_mut_slice().split_at_mut(split);
            let t_update = trace.map(WallTrack::now_ns);
            gemm::dgemm_update(
                lower,
                ncols,
                k,
                k + kb,
                n - (k + kb),
                ncols - (k + kb),
                kb,
                &upper[k * ncols..],
                ncols,
                k + kb,
                parallel,
            );
            if let (Some(t), Some(t0)) = (trace, t_update) {
                t.span_from("update", "update", t0);
            }
        }
        k += kb;
    }
    Ok(piv)
}

/// Factor the first `w` columns of the packed `rows × w` panel `p`
/// (row-major, leading dimension `w`) with partial pivoting.
/// `lp[j]` receives the panel-local row swapped at step `j`. On a zero
/// or non-finite pivot column, returns its panel-local index.
fn factor_panel(
    p: &mut [f64],
    rows: usize,
    w: usize,
    use_simd: bool,
    lp: &mut [usize],
) -> Result<(), usize> {
    factor_range(p, rows, w, 0, w, use_simd, lp)
}

/// Recursive width splitting over panel columns `[c0, c0+wc)`: factor
/// the left half, solve it onto the right half's top rows, BLAS3-update
/// the right half's trailing rows, recurse right. The base case is the
/// right-looking rank-1 engine on `PANEL_BASE` columns.
fn factor_range(
    p: &mut [f64],
    rows: usize,
    w: usize,
    c0: usize,
    wc: usize,
    use_simd: bool,
    lp: &mut [usize],
) -> Result<(), usize> {
    if wc <= PANEL_BASE {
        return if use_simd {
            // SAFETY: dispatch guarded by `avx2_fma_available`.
            #[cfg(target_arch = "x86_64")]
            unsafe {
                factor_base_avx2(p, rows, w, c0, wc, lp)
            }
            #[cfg(not(target_arch = "x86_64"))]
            factor_base(p, rows, w, c0, wc, lp)
        } else {
            factor_base(p, rows, w, c0, wc, lp)
        };
    }
    let w1 = wc / 2;
    factor_range(p, rows, w, c0, w1, use_simd, lp)?;
    // Small TRSM inside the panel: unit-lower (w1×w1 at (c0,c0)) onto
    // the right-half rows c0..c0+w1 — a few KB, runs out of cache.
    for jj in c0 + 1..c0 + w1 {
        for ii in c0..jj {
            let l = p[jj * w + ii];
            if l != 0.0 {
                let (ri, rj) = packed_row_pair(p, w, ii, jj);
                for c in c0 + w1..c0 + wc {
                    rj[c] -= l * ri[c];
                }
            }
        }
    }
    // Right-half trailing rows: one packed-engine update (this is where
    // most of the panel's FLOPs land once wc > 2·PANEL_BASE).
    let (upper, lower) = p.split_at_mut((c0 + w1) * w);
    gemm::dgemm_update(
        lower,
        w,
        c0,
        c0 + w1,
        rows - (c0 + w1),
        wc - w1,
        w1,
        &upper[c0 * w..],
        w,
        c0 + w1,
        false,
    );
    factor_range(p, rows, w, c0 + w1, wc - w1, use_simd, lp)
}

/// Right-looking rank-1 base case on packed panel columns `[c0, c0+wc)`.
/// Identical arithmetic (and order) to the pre-v2 scalar panel, so
/// `nb ≤ PANEL_BASE` reproduces the legacy factors bit-for-bit.
fn factor_base(
    p: &mut [f64],
    rows: usize,
    w: usize,
    c0: usize,
    wc: usize,
    lp: &mut [usize],
) -> Result<(), usize> {
    for jj in c0..c0 + wc {
        // Pivot search down packed column jj.
        let mut pr = jj;
        let mut best = p[jj * w + jj].abs();
        for r in jj + 1..rows {
            let v = p[r * w + jj].abs();
            if v > best {
                best = v;
                pr = r;
            }
        }
        // A NaN column maximum would sail through a `== 0.0` test and
        // poison the whole factorisation; reject it like a zero pivot.
        if best == 0.0 || !best.is_finite() {
            return Err(jj);
        }
        lp[jj] = pr;
        if pr != jj {
            let (ra, rb) = packed_row_pair_mut(p, w, jj, pr);
            ra.swap_with_slice(rb);
        }
        let inv = 1.0 / p[jj * w + jj];
        for r in jj + 1..rows {
            p[r * w + jj] *= inv;
        }
        for r in jj + 1..rows {
            let l = p[r * w + jj];
            if l != 0.0 {
                let (rj, rr) = packed_row_pair(p, w, jj, r);
                for c in jj + 1..c0 + wc {
                    rr[c] -= l * rj[c];
                }
            }
        }
    }
    Ok(())
}

/// [`factor_base`] compiled with AVX2+FMA enabled so LLVM vectorises the
/// packed rank-1 inner loops (contiguous ≤`PANEL_BASE`-wide rows).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn factor_base_avx2(
    p: &mut [f64],
    rows: usize,
    w: usize,
    c0: usize,
    wc: usize,
    lp: &mut [usize],
) -> Result<(), usize> {
    factor_base(p, rows, w, c0, wc, lp)
}

/// Borrow two distinct packed rows `i < j`: (shared `i`, mutable `j`).
fn packed_row_pair(p: &mut [f64], w: usize, i: usize, j: usize) -> (&[f64], &mut [f64]) {
    debug_assert!(i < j);
    let (top, bot) = p.split_at_mut(j * w);
    (&top[i * w..(i + 1) * w], &mut bot[..w])
}

/// Borrow two distinct packed rows mutably (any order).
fn packed_row_pair_mut(p: &mut [f64], w: usize, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(a < b);
    let (top, bot) = p.split_at_mut(b * w);
    (&mut top[a * w..(a + 1) * w], &mut bot[..w])
}

/// `U12 = L11⁻¹ · A12` for the block step at `k`: unit-lower `kb × kb`
/// triangle at `(k, k)` solved onto rows `k..k+kb` of the trailing
/// columns `k+kb..n`. Dispatches to the packed AVX2 strip kernel; the
/// portable fallback is the original row-oriented loop.
fn trsm_rowblock(a: &mut Mat, k: usize, kb: usize, use_simd: bool, tri: &mut Vec<f64>) {
    let n = a.cols();
    let trail = n - (k + kb);
    if kb <= 1 || trail == 0 {
        return;
    }
    if use_simd {
        // Pack the strictly-lower triangle of L11 column-major:
        // `tri[i·kb + j] = L[j][i]` so a 4-row tile's multipliers for
        // one solve column sit contiguously for broadcast loads.
        tri.clear();
        tri.resize(kb * kb, 0.0);
        for j in 1..kb {
            for i in 0..j {
                tri[i * kb + j] = a[(k + j, k + i)];
            }
        }
        #[cfg(target_arch = "x86_64")]
        {
            let ld = n;
            // SAFETY: dispatch guarded by `avx2_fma_available`; the
            // kernel stays inside rows k..k+kb, cols k+kb..n.
            unsafe {
                trsm_strips_avx2(a.as_mut_slice(), ld, k, kb, trail, tri);
            }
            return;
        }
    }
    // Portable fallback: for each target row j, subtract the already-
    // solved rows i < j (row-oriented axpys over the trailing columns).
    for j in k + 1..k + kb {
        for i in k..j {
            let lji = a[(j, i)];
            if lji != 0.0 {
                let (ri, rj) = row_pair(a, i, j);
                for c in k + kb..n {
                    rj[c] -= lji * ri[c];
                }
            }
        }
    }
}

/// The packed TRSM kernel: trailing columns in 8-wide strips; for each
/// strip the full `kb`-row triangular solve runs with 4-row FMA tiles —
/// every row's 64-byte strip segment stays L1-resident across its
/// O(kb) reuses. Tail columns (trail % 8) fall back to the row loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::needless_range_loop)]
unsafe fn trsm_strips_avx2(
    am: &mut [f64],
    ld: usize,
    k: usize,
    kb: usize,
    trail: usize,
    tri: &[f64],
) {
    use std::arch::x86_64::*;
    let base = am.as_mut_ptr().add(k * ld + k + kb);
    let main = trail - trail % 8;
    let mut c0 = 0;
    while c0 < main {
        let mut j0 = 0;
        while j0 < kb {
            let jt = 4.min(kb - j0);
            let mut acc = [[_mm256_setzero_pd(); 2]; 4];
            for r in 0..jt {
                let row = base.add((j0 + r) * ld + c0);
                acc[r][0] = _mm256_loadu_pd(row);
                acc[r][1] = _mm256_loadu_pd(row.add(4));
            }
            // Contributions of all fully-solved rows above the tile.
            for i in 0..j0 {
                let src = base.add(i * ld + c0);
                let s0 = _mm256_loadu_pd(src);
                let s1 = _mm256_loadu_pd(src.add(4));
                let lcol = tri.as_ptr().add(i * kb + j0);
                for r in 0..jt {
                    let l = _mm256_broadcast_sd(&*lcol.add(r));
                    acc[r][0] = _mm256_fnmadd_pd(l, s0, acc[r][0]);
                    acc[r][1] = _mm256_fnmadd_pd(l, s1, acc[r][1]);
                }
            }
            // Intra-tile triangle: row r also depends on rows j0..j0+r,
            // whose final strip values are already in registers.
            for r in 1..jt {
                for q in 0..r {
                    let l = _mm256_broadcast_sd(&*tri.as_ptr().add((j0 + q) * kb + j0 + r));
                    acc[r][0] = _mm256_fnmadd_pd(l, acc[q][0], acc[r][0]);
                    acc[r][1] = _mm256_fnmadd_pd(l, acc[q][1], acc[r][1]);
                }
            }
            for r in 0..jt {
                let row = base.add((j0 + r) * ld + c0);
                _mm256_storeu_pd(row, acc[r][0]);
                _mm256_storeu_pd(row.add(4), acc[r][1]);
            }
            j0 += jt;
        }
        c0 += 8;
    }
    // Tail columns: plain row-oriented solve on the last < 8 columns.
    for j in 1..kb {
        for i in 0..j {
            let l = tri[i * kb + j];
            let src = base.add(i * ld + main);
            let dst = base.add(j * ld + main);
            for c in 0..trail - main {
                *dst.add(c) -= l * *src.add(c);
            }
        }
    }
}

/// Borrow two distinct rows, `i < j`, one shared and one mutable.
fn row_pair(a: &mut Mat, i: usize, j: usize) -> (&[f64], &mut [f64]) {
    debug_assert!(i < j);
    let ncols = a.cols();
    let (top, bot) = a.as_mut_slice().split_at_mut(j * ncols);
    (&top[i * ncols..(i + 1) * ncols], &mut bot[..ncols])
}

/// Solve `A x = b` given the in-place factorisation and pivot vector.
pub fn lu_solve(lu: &Mat, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.rows();
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    // Apply the row interchanges in factorisation order.
    for (j, &p) in piv.iter().enumerate() {
        x.swap(j, p);
    }
    // Forward substitution with unit lower L.
    for i in 0..n {
        let mut s = x[i];
        let row = lu.row(i);
        for (j, xv) in x[..i].iter().enumerate() {
            s -= row[j] * xv;
        }
        x[i] = s;
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        let row = lu.row(i);
        let mut s = x[i];
        for j in i + 1..n {
            s -= row[j] * x[j];
        }
        x[i] = s / row[i];
    }
    x
}

/// Reconstruct `P·A` from the factors (test utility): returns L·U with the
/// unit diagonal implied.
pub fn lu_reconstruct(lu: &Mat) -> Mat {
    let n = lu.rows();
    let mut out = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            // (L·U)[i][j] = Σ_{k ≤ min(i,j)} L[i][k]·U[k][j] with L unit
            // diagonal: L[i][k] = lu[i][k] for k < i, L[i][i] = 1.
            let kmax = i.min(j);
            let mut s = 0.0;
            for k in 0..kmax {
                s += lu[(i, k)] * lu[(k, j)];
            }
            s += if i <= j {
                lu[(i, j)] // k = i term: 1 · U[i][j]
            } else {
                lu[(i, j)] * lu[(j, j)] // k = j term: L[i][j] · U[j][j]
            };
            out[(i, j)] = s;
        }
    }
    out
}

/// FLOP count credited for an n×n LU factor + solve, per the LINPACK
/// benchmark convention.
pub fn linpack_flops(n: usize) -> f64 {
    let nf = n as f64;
    2.0 * nf * nf * nf / 3.0 + 2.0 * nf * nf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::vecops::norm_inf;
    use des::rng::Rng;

    fn residual(a: &Mat, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        let r: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
        norm_inf(&r) / (a.inf_norm() * norm_inf(x)).max(1e-300)
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let mut a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let orig = a.clone();
        let piv = lu_factor(&mut a, 1).unwrap();
        let x = lu_solve(&a, &piv, &[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
        assert!(residual(&orig, &x, &[5.0, 10.0]) < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let piv = lu_factor(&mut a, 2).unwrap();
        let x = lu_solve(&a, &piv, &[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-14 && (x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn random_systems_small_residual_various_block_sizes() {
        let mut rng = Rng::new(77);
        for n in [1, 2, 5, 17, 64, 97] {
            let a = Mat::random(n, n, &mut rng);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            for nb in [1, 4, 32] {
                let mut f = a.clone();
                match lu_factor(&mut f, nb) {
                    Ok(piv) => {
                        let x = lu_solve(&f, &piv, &b);
                        let r = residual(&a, &x, &b);
                        assert!(r < 1e-10, "n={n} nb={nb} residual={r}");
                    }
                    Err(_) => panic!("random matrix singular (n={n})"),
                }
            }
        }
    }

    #[test]
    fn blocked_equals_unblocked() {
        let mut rng = Rng::new(31);
        let a = Mat::random(50, 50, &mut rng);
        let mut f1 = a.clone();
        let p1 = lu_factor(&mut f1, 1).unwrap();
        let mut f2 = a.clone();
        let p2 = lu_factor(&mut f2, 8).unwrap();
        assert_eq!(p1, p2, "same pivots");
        assert!(f1.dist(&f2) < 1e-10);
    }

    #[test]
    fn wide_blocks_match_default_and_portable() {
        // Recursive panel (nb > PANEL_BASE) and the DEFAULT_NB config
        // agree with the unblocked factorisation, and the portable
        // engine stays residual-equivalent to the SIMD one.
        let mut rng = Rng::new(37);
        for n in [65, 130, 200] {
            let a = Mat::random(n, n, &mut rng);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
            for nb in [24, 48, DEFAULT_NB] {
                let mut f = a.clone();
                let piv = lu_factor(&mut f, nb).unwrap();
                let x = lu_solve(&f, &piv, &b);
                assert!(residual(&a, &x, &b) < 1e-10, "n={n} nb={nb}");
                let mut fp = a.clone();
                let pp = lu_factor_portable(&mut fp, nb).unwrap();
                assert_eq!(piv, pp, "portable pivots n={n} nb={nb}");
                assert!(f.dist(&fp) < 1e-10, "portable dist n={n} nb={nb}");
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let mut rng = Rng::new(41);
        let a = Mat::random(80, 80, &mut rng);
        let mut fs = a.clone();
        let ps = lu_factor(&mut fs, 16).unwrap();
        let mut fp = a.clone();
        let pp = lu_factor_par(&mut fp, 16).unwrap();
        assert_eq!(ps, pp);
        assert_eq!(fs, fp, "parallel update must not reorder arithmetic");
    }

    #[test]
    fn parallel_is_bit_identical_at_default_nb() {
        let mut rng = Rng::new(43);
        let a = Mat::random(300, 300, &mut rng);
        let mut fs = a.clone();
        let ps = lu_factor(&mut fs, DEFAULT_NB).unwrap();
        let mut fp = a.clone();
        let pp = lu_factor_par(&mut fp, DEFAULT_NB).unwrap();
        assert_eq!(ps, pp);
        assert_eq!(fs, fp, "parallel update must not reorder arithmetic");
    }

    #[test]
    fn singular_matrix_reported() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(lu_factor(&mut a, 1), Err(Singular(1)));
        let mut z = Mat::zeros(3, 3);
        assert_eq!(lu_factor(&mut z, 2), Err(Singular(0)));
    }

    #[test]
    fn non_finite_pivot_rejected() {
        // A NaN in the pivot column survives a `best == 0.0` check (any
        // comparison with NaN is false) — it must be reported, not
        // propagated through the factorisation.
        let mut a = Mat::from_rows(&[&[f64::NAN, 1.0], &[2.0, 3.0]]);
        assert_eq!(lu_factor(&mut a, 1), Err(Singular(0)));
        let mut b = Mat::from_rows(&[&[1.0, 2.0], &[3.0, f64::NAN]]);
        assert_eq!(lu_factor(&mut b, 2), Err(Singular(1)));
        let mut c = Mat::from_rows(&[&[f64::INFINITY, 1.0], &[2.0, 3.0]]);
        assert_eq!(lu_factor_par(&mut c, 1), Err(Singular(0)));
    }

    #[test]
    fn spd_system_high_accuracy() {
        let mut rng = Rng::new(91);
        let a = Mat::random_spd(60, &mut rng);
        let xtrue: Vec<f64> = (0..60).map(|i| 1.0 + (i % 7) as f64).collect();
        let b = a.matvec(&xtrue);
        let mut f = a.clone();
        let piv = lu_factor_par(&mut f, 8).unwrap();
        let x = lu_solve(&f, &piv, &b);
        let err = x
            .iter()
            .zip(&xtrue)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9, "max err {err}");
    }

    #[test]
    fn reconstruction_equals_permuted_input() {
        let mut rng = Rng::new(17);
        let a = Mat::random(12, 12, &mut rng);
        let mut f = a.clone();
        let piv = lu_factor(&mut f, 4).unwrap();
        // Apply the same interchanges to a copy of A.
        let mut pa = a.clone();
        for (j, &p) in piv.iter().enumerate() {
            pa.swap_rows(j, p);
        }
        let rec = lu_reconstruct(&f);
        assert!(pa.dist(&rec) < 1e-11, "‖PA − LU‖ = {}", pa.dist(&rec));
    }

    #[test]
    fn linpack_flop_convention() {
        assert_eq!(linpack_flops(100), 2.0 * 1e6 / 3.0 + 2.0 * 1e4);
    }

    #[test]
    fn recorded_lu_is_bit_identical_and_emits_phase_spans() {
        use hpcc_trace::{Event, MemRecorder};
        let mut rng = Rng::new(53);
        let a = Mat::random(64, 64, &mut rng);
        let mut plain = a.clone();
        let p_plain = lu_factor(&mut plain, 16).unwrap();
        let rec = MemRecorder::new();
        let mut traced = a.clone();
        let p_traced = lu_factor_recorded(&mut traced, 16, &rec).unwrap();
        assert_eq!(p_plain, p_traced);
        assert_eq!(plain, traced, "recording must not perturb the factors");
        let mut cats: Vec<&'static str> = Vec::new();
        rec.with(|_, events| {
            for e in events {
                if let Event::Span { cat, .. } = e {
                    cats.push(cat);
                }
            }
        });
        // 4 block steps: 4 panels, 3 trsm+update pairs.
        assert_eq!(cats.iter().filter(|c| **c == "panel").count(), 4);
        assert_eq!(cats.iter().filter(|c| **c == "trsm").count(), 3);
        assert_eq!(cats.iter().filter(|c| **c == "update").count(), 3);
    }

    #[test]
    fn recorded_lu_emits_spans_for_wide_panels_too() {
        use hpcc_trace::{Event, MemRecorder};
        let mut rng = Rng::new(59);
        let a = Mat::random(100, 100, &mut rng);
        let rec = MemRecorder::new();
        let mut traced = a.clone();
        lu_factor_recorded(&mut traced, 32, &rec).unwrap();
        let mut cats: Vec<&'static str> = Vec::new();
        rec.with(|_, events| {
            for e in events {
                if let Event::Span { cat, .. } = e {
                    cats.push(cat);
                }
            }
        });
        // 4 block steps (32·3 + 4): the recursive panel and packed TRSM
        // still land under the same phase categories.
        assert_eq!(cats.iter().filter(|c| **c == "panel").count(), 4);
        assert_eq!(cats.iter().filter(|c| **c == "trsm").count(), 3);
        assert_eq!(cats.iter().filter(|c| **c == "update").count(), 3);
    }
}
