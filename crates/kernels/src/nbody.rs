//! Gravitational N-body — the space-sciences Grand Challenge kernel.
//!
//! Direct O(n²) summation (sequential and Rayon) and a Barnes–Hut
//! quadtree (O(n log n)) with an opening angle θ. Leapfrog (kick-drift-
//! kick) integration. Plummer softening keeps close encounters finite.

use des::rng::Rng;
use rayon::prelude::*;

/// Gravitational constant in simulation units.
pub const G: f64 = 1.0;

/// A 2-D body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    pub x: f64,
    pub y: f64,
    pub vx: f64,
    pub vy: f64,
    pub mass: f64,
}

/// A cold uniform disc of `n` equal-mass bodies (deterministic per seed).
pub fn random_cluster(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let r = rng.next_f64().sqrt();
            let th = rng.range_f64(0.0, std::f64::consts::TAU);
            // Small tangential velocity for partial rotation support.
            let vt = 0.3 * r;
            Body {
                x: r * th.cos(),
                y: r * th.sin(),
                vx: -vt * th.sin() + 0.05 * rng.normal(0.0, 1.0),
                vy: vt * th.cos() + 0.05 * rng.normal(0.0, 1.0),
                mass: 1.0 / n as f64,
            }
        })
        .collect()
}

#[inline]
fn pair_accel(xi: f64, yi: f64, xj: f64, yj: f64, mj: f64, eps2: f64) -> (f64, f64) {
    let dx = xj - xi;
    let dy = yj - yi;
    let r2 = dx * dx + dy * dy + eps2;
    let inv_r = 1.0 / r2.sqrt();
    let inv_r3 = inv_r * inv_r * inv_r;
    (G * mj * dx * inv_r3, G * mj * dy * inv_r3)
}

/// Direct-summation accelerations, sequential.
pub fn accel_direct(bodies: &[Body], eps: f64) -> Vec<(f64, f64)> {
    let eps2 = eps * eps;
    bodies
        .iter()
        .map(|bi| {
            let mut a = (0.0, 0.0);
            for bj in bodies {
                if (bi.x, bi.y) != (bj.x, bj.y) {
                    let (ax, ay) = pair_accel(bi.x, bi.y, bj.x, bj.y, bj.mass, eps2);
                    a.0 += ax;
                    a.1 += ay;
                }
            }
            a
        })
        .collect()
}

/// Direct-summation accelerations, Rayon over bodies.
pub fn accel_direct_par(bodies: &[Body], eps: f64) -> Vec<(f64, f64)> {
    let eps2 = eps * eps;
    bodies
        .par_iter()
        .map(|bi| {
            let mut a = (0.0, 0.0);
            for bj in bodies {
                if (bi.x, bi.y) != (bj.x, bj.y) {
                    let (ax, ay) = pair_accel(bi.x, bi.y, bj.x, bj.y, bj.mass, eps2);
                    a.0 += ax;
                    a.1 += ay;
                }
            }
            a
        })
        .collect()
}

// ----- Barnes–Hut quadtree --------------------------------------------------

struct QuadNode {
    // Square region [cx ± half, cy ± half].
    cx: f64,
    cy: f64,
    half: f64,
    mass: f64,
    // Centre of mass.
    mx: f64,
    my: f64,
    children: Option<Box<[QuadNode; 4]>>,
    body: Option<usize>,
}

impl QuadNode {
    fn leaf(cx: f64, cy: f64, half: f64) -> QuadNode {
        QuadNode {
            cx,
            cy,
            half,
            mass: 0.0,
            mx: 0.0,
            my: 0.0,
            children: None,
            body: None,
        }
    }

    fn quadrant(&self, x: f64, y: f64) -> usize {
        (usize::from(x >= self.cx)) | (usize::from(y >= self.cy) << 1)
    }

    fn child_centre(&self, q: usize) -> (f64, f64) {
        let h = self.half / 2.0;
        (
            self.cx + if q & 1 == 1 { h } else { -h },
            self.cy + if q & 2 == 2 { h } else { -h },
        )
    }

    fn insert(&mut self, idx: usize, bodies: &[Body], depth: usize) {
        let b = &bodies[idx];
        if self.mass == 0.0 && self.children.is_none() {
            // Empty leaf: take the body.
            self.body = Some(idx);
            self.mass = b.mass;
            self.mx = b.x;
            self.my = b.y;
            return;
        }
        // Depth guard: coincident points collapse into one aggregate leaf.
        if depth > 64 {
            let m = self.mass + b.mass;
            self.mx = (self.mx * self.mass + b.x * b.mass) / m;
            self.my = (self.my * self.mass + b.y * b.mass) / m;
            self.mass = m;
            return;
        }
        if self.children.is_none() {
            // Split: push the resident body down.
            let resident = self.body.take().expect("occupied leaf");
            let mk = |q: usize| {
                let (cx, cy) = self.child_centre(q);
                QuadNode::leaf(cx, cy, self.half / 2.0)
            };
            self.children = Some(Box::new([mk(0), mk(1), mk(2), mk(3)]));
            let rq = self.quadrant(bodies[resident].x, bodies[resident].y);
            self.children.as_mut().unwrap()[rq].insert(resident, bodies, depth + 1);
        }
        let q = self.quadrant(b.x, b.y);
        self.children.as_mut().unwrap()[q].insert(idx, bodies, depth + 1);
        // Update aggregate mass / centre of mass.
        let m = self.mass + b.mass;
        self.mx = (self.mx * self.mass + b.x * b.mass) / m;
        self.my = (self.my * self.mass + b.y * b.mass) / m;
        self.mass = m;
    }

    fn accel_on(&self, x: f64, y: f64, theta: f64, eps2: f64, out: &mut (f64, f64)) {
        if self.mass == 0.0 {
            return;
        }
        if self.body.is_some() {
            if (self.mx, self.my) == (x, y) {
                return; // self-interaction
            }
            let (ax, ay) = pair_accel(x, y, self.mx, self.my, self.mass, eps2);
            out.0 += ax;
            out.1 += ay;
            return;
        }
        let dx = self.mx - x;
        let dy = self.my - y;
        let d2 = dx * dx + dy * dy;
        let size = 2.0 * self.half;
        if self.children.is_none() || size * size < theta * theta * d2 {
            // Far enough (or an aggregated deep leaf): use the multipole.
            let (ax, ay) = pair_accel(x, y, self.mx, self.my, self.mass, eps2);
            out.0 += ax;
            out.1 += ay;
        } else if let Some(ch) = &self.children {
            for c in ch.iter() {
                c.accel_on(x, y, theta, eps2, out);
            }
        }
    }
}

/// Build a quadtree and evaluate accelerations with opening angle
/// `theta` (0.5 is the classic choice). Rayon over target bodies.
pub fn accel_barnes_hut(bodies: &[Body], theta: f64, eps: f64) -> Vec<(f64, f64)> {
    assert!(!bodies.is_empty());
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for b in bodies {
        lo_x = lo_x.min(b.x);
        hi_x = hi_x.max(b.x);
        lo_y = lo_y.min(b.y);
        hi_y = hi_y.max(b.y);
    }
    let half = 0.5 * ((hi_x - lo_x).max(hi_y - lo_y)).max(1e-12) * 1.0001;
    let mut root = QuadNode::leaf(0.5 * (lo_x + hi_x), 0.5 * (lo_y + hi_y), half);
    for i in 0..bodies.len() {
        root.insert(i, bodies, 0);
    }
    let eps2 = eps * eps;
    bodies
        .par_iter()
        .map(|b| {
            let mut a = (0.0, 0.0);
            root.accel_on(b.x, b.y, theta, eps2, &mut a);
            a
        })
        .collect()
}

/// Which force evaluator a step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forces {
    Direct,
    DirectPar,
    /// Barnes–Hut with θ encoded ×1000 (e.g. 500 ⇒ θ = 0.5).
    BarnesHut(u32),
}

/// One leapfrog (kick-drift-kick) step.
pub fn step(bodies: &mut [Body], dt: f64, eps: f64, forces: Forces) {
    let eval = |bs: &[Body]| match forces {
        Forces::Direct => accel_direct(bs, eps),
        Forces::DirectPar => accel_direct_par(bs, eps),
        Forces::BarnesHut(t) => accel_barnes_hut(bs, t as f64 / 1000.0, eps),
    };
    let acc = eval(bodies);
    for (b, (ax, ay)) in bodies.iter_mut().zip(&acc) {
        b.vx += 0.5 * dt * ax;
        b.vy += 0.5 * dt * ay;
        b.x += dt * b.vx;
        b.y += dt * b.vy;
    }
    let acc = eval(bodies);
    for (b, (ax, ay)) in bodies.iter_mut().zip(&acc) {
        b.vx += 0.5 * dt * ax;
        b.vy += 0.5 * dt * ay;
    }
}

/// Total momentum (px, py).
pub fn momentum(bodies: &[Body]) -> (f64, f64) {
    bodies.iter().fold((0.0, 0.0), |(px, py), b| {
        (px + b.mass * b.vx, py + b.mass * b.vy)
    })
}

/// Total energy (kinetic + softened potential), direct evaluation.
pub fn energy(bodies: &[Body], eps: f64) -> f64 {
    let eps2 = eps * eps;
    let mut e = 0.0;
    for (i, bi) in bodies.iter().enumerate() {
        e += 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy);
        for bj in &bodies[i + 1..] {
            let dx = bj.x - bi.x;
            let dy = bj.y - bi.y;
            e -= G * bi.mass * bj.mass / (dx * dx + dy * dy + eps2).sqrt();
        }
    }
    e
}

/// FLOPs of one direct-summation force evaluation over n bodies
/// (~20 per directed pair).
pub fn direct_flops(n: usize) -> f64 {
    20.0 * (n as f64) * (n as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_body_symmetry() {
        let bodies = vec![
            Body {
                x: -1.0,
                y: 0.0,
                vx: 0.0,
                vy: 0.0,
                mass: 1.0,
            },
            Body {
                x: 1.0,
                y: 0.0,
                vx: 0.0,
                vy: 0.0,
                mass: 1.0,
            },
        ];
        let a = accel_direct(&bodies, 0.0);
        assert!(a[0].0 > 0.0 && a[1].0 < 0.0, "mutual attraction");
        assert!((a[0].0 + a[1].0).abs() < 1e-15, "Newton's third law");
        assert!((a[0].0 - 0.25).abs() < 1e-12, "G·m/r² at r=2");
    }

    #[test]
    fn parallel_matches_sequential() {
        let bodies = random_cluster(200, 3);
        let s = accel_direct(&bodies, 0.01);
        let p = accel_direct_par(&bodies, 0.01);
        for (a, b) in s.iter().zip(&p) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn barnes_hut_approximates_direct() {
        let bodies = random_cluster(500, 7);
        let exact = accel_direct(&bodies, 0.05);
        let approx = accel_barnes_hut(&bodies, 0.5, 0.05);
        // Bodies near the centre have |F| ~ 0 by cancellation, so pure
        // relative error is meaningless there; normalise by the typical
        // force magnitude as well.
        let mean: f64 = exact
            .iter()
            .map(|e| (e.0 * e.0 + e.1 * e.1).sqrt())
            .sum::<f64>()
            / exact.len() as f64;
        let mut rels: Vec<f64> = exact
            .iter()
            .zip(&approx)
            .map(|(e, a)| {
                let ne = (e.0 * e.0 + e.1 * e.1).sqrt();
                let da = ((e.0 - a.0).powi(2) + (e.1 - a.1).powi(2)).sqrt();
                da / ne.max(0.1 * mean)
            })
            .collect();
        rels.sort_by(f64::total_cmp);
        let med = rels[rels.len() / 2];
        let p95 = rels[rels.len() * 95 / 100];
        assert!(med < 0.02, "median relative force error {med}");
        assert!(p95 < 0.10, "p95 relative force error {p95}");
    }

    #[test]
    fn barnes_hut_theta_zero_is_exact() {
        let bodies = random_cluster(100, 9);
        let exact = accel_direct(&bodies, 0.05);
        let bh = accel_barnes_hut(&bodies, 0.0, 0.05);
        for (e, a) in exact.iter().zip(&bh) {
            assert!((e.0 - a.0).abs() < 1e-9 && (e.1 - a.1).abs() < 1e-9);
        }
    }

    #[test]
    fn momentum_conserved_direct() {
        let mut bodies = random_cluster(100, 11);
        let (px0, py0) = momentum(&bodies);
        for _ in 0..20 {
            step(&mut bodies, 1e-3, 0.05, Forces::Direct);
        }
        let (px1, py1) = momentum(&bodies);
        assert!((px1 - px0).abs() < 1e-12 && (py1 - py0).abs() < 1e-12);
    }

    #[test]
    fn energy_roughly_conserved_leapfrog() {
        let mut bodies = random_cluster(80, 13);
        let e0 = energy(&bodies, 0.05);
        for _ in 0..100 {
            step(&mut bodies, 5e-4, 0.05, Forces::Direct);
        }
        let e1 = energy(&bodies, 0.05);
        assert!(
            ((e1 - e0) / e0.abs()).abs() < 0.02,
            "energy drift {}",
            (e1 - e0) / e0.abs()
        );
    }

    #[test]
    fn coincident_bodies_do_not_blow_up() {
        let bodies = vec![
            Body {
                x: 0.5,
                y: 0.5,
                vx: 0.0,
                vy: 0.0,
                mass: 1.0,
            },
            Body {
                x: 0.5,
                y: 0.5,
                vx: 0.0,
                vy: 0.0,
                mass: 1.0,
            },
            Body {
                x: -0.5,
                y: 0.0,
                vx: 0.0,
                vy: 0.0,
                mass: 1.0,
            },
        ];
        let a = accel_barnes_hut(&bodies, 0.5, 0.01);
        assert!(a.iter().all(|(x, y)| x.is_finite() && y.is_finite()));
    }

    #[test]
    fn cluster_is_deterministic() {
        assert_eq!(random_cluster(50, 42), random_cluster(50, 42));
        assert_ne!(random_cluster(50, 42), random_cluster(50, 43));
    }
}
