//! Sparse conjugate gradient — the DOE "energy and grand challenge
//! computational research" kernel: CSR storage, sequential and Rayon
//! SpMV, and a preconditioner-free CG solver.
//!
//! ## Engine v2: the packed SpMV plan
//!
//! [`Csr::spmv`]'s row-at-a-time dot products are latency-bound: every
//! entry is a dependent scalar multiply-add, and short rows (5-point
//! Laplacian: ≤ 5 entries) leave nothing for the vector units.
//! [`SpmvPlan`] re-packs the matrix once into 16-row blocks with the
//! entries *row-interleaved* — group `e` holds entry `e` of each of the
//! sixteen rows, columns (`u32`) and values side by side, short rows
//! padded with explicit `(col 0, 0.0)` entries to the block's longest
//! row. The AVX2 kernel then keeps one row per lane across four
//! 4-lane accumulators: load 16 values, assemble the 16 `x[col]`
//! operands with scalar loads (no `vgatherdpd` — slower than plain
//! loads on most AVX2 parts), multiply, add. Sixteen rows per block is
//! deliberate: the per-lane add chain is latency-bound, and four
//! independent accumulator registers overlap it. Each lane performs
//! exactly the scalar row sum's operations in exactly its order —
//! multiply then add, no FMA — so the packed kernel reproduces
//! [`Csr::spmv`] bit-for-bit (for finite `x`; a padded `0.0·x[0]`
//! contributes an exact `±0.0`). The parallel variant fans the same
//! blocks out over Rayon and is bit-identical at any thread count,
//! matching `spmv_par`'s per-row determinism. [`cg`] builds one plan
//! up front and runs every iteration's SpMV through it.

use crate::mat::vecops::{axpy, dot, norm2};
use crate::simd;
use rayon::prelude::*;

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl Csr {
    /// Build from triplets (row, col, value); duplicates are summed.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Csr {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(r, c, v) in triplets {
            assert!(r < n && c < n, "triplet out of range");
            rows[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for row in &mut rows {
            row.sort_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *data.last_mut().unwrap() += v;
                } else {
                    indices.push(c);
                    data.push(v);
                    last = Some(c);
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            n,
            indptr,
            indices,
            data,
        }
    }

    /// The standard 5-point Laplacian on a g×g interior grid
    /// (n = g², symmetric positive definite).
    pub fn poisson2d(g: usize) -> Csr {
        let id = |i: usize, j: usize| i * g + j;
        let mut t = Vec::with_capacity(5 * g * g);
        for i in 0..g {
            for j in 0..g {
                t.push((id(i, j), id(i, j), 4.0));
                if i > 0 {
                    t.push((id(i, j), id(i - 1, j), -1.0));
                }
                if i + 1 < g {
                    t.push((id(i, j), id(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((id(i, j), id(i, j - 1), -1.0));
                }
                if j + 1 < g {
                    t.push((id(i, j), id(i, j + 1), -1.0));
                }
            }
        }
        Csr::from_triplets(g * g, &t)
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.data[lo..hi])
            .map(|(&c, &v)| v * x[c])
            .sum()
    }

    /// y = A·x, sequential.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = self.row_dot(i, x);
        }
    }

    /// y = A·x, Rayon over rows (bit-identical to sequential).
    pub fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.par_iter_mut()
            .enumerate()
            .for_each(|(i, yi)| *yi = self.row_dot(i, x));
    }
}

/// Rows per packed block: four 4-lane accumulator chains' worth.
const BLOCK_ROWS: usize = 16;

/// Packed 16-row-interleaved SpMV plan (see the module docs). Build once
/// per matrix, reuse for every product; results are bit-identical to
/// [`Csr::spmv`] for finite operands.
#[derive(Debug, Clone)]
pub struct SpmvPlan {
    n: usize,
    /// Group range per block: block `b`'s entry groups are
    /// `block_ptr[b]..block_ptr[b+1]`; group `g` occupies
    /// `cols[16g..16g+16]` / `vals[16g..16g+16]`, one lane per row.
    block_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl SpmvPlan {
    /// Pack `a` into the interleaved block layout.
    pub fn new(a: &Csr) -> SpmvPlan {
        let n = a.n;
        assert!(n < u32::MAX as usize, "SpmvPlan stores u32 columns");
        let nblocks = n.div_ceil(BLOCK_ROWS);
        let mut block_ptr = Vec::with_capacity(nblocks + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        block_ptr.push(0);
        for b in 0..nblocks {
            let r0 = BLOCK_ROWS * b;
            let rows_here = BLOCK_ROWS.min(n - r0);
            let rowlen = |l: usize| a.indptr[r0 + l + 1] - a.indptr[r0 + l];
            let maxlen = (0..rows_here).map(rowlen).max().unwrap_or(0);
            for e in 0..maxlen {
                for l in 0..BLOCK_ROWS {
                    if l < rows_here && e < rowlen(l) {
                        let idx = a.indptr[r0 + l] + e;
                        cols.push(a.indices[idx] as u32);
                        vals.push(a.data[idx]);
                    } else {
                        // Padding: an exact no-op lane (0.0 · x[0]).
                        cols.push(0);
                        vals.push(0.0);
                    }
                }
            }
            block_ptr.push(cols.len() / BLOCK_ROWS);
        }
        SpmvPlan {
            n,
            block_ptr,
            cols,
            vals,
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Packed entries (including padding lanes) — the plan's memory
    /// footprint in entry units; `≥ nnz`, with equality when every row
    /// in a block has the same length.
    pub fn packed_entries(&self) -> usize {
        self.vals.len()
    }

    /// y = A·x through the packed plan, sequential.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let use_simd = simd::avx2_fma_available();
        for (b, yb) in y.chunks_mut(BLOCK_ROWS).enumerate() {
            self.block(b, x, yb, use_simd);
        }
    }

    /// y = A·x through the packed plan, Rayon over 16-row blocks.
    /// Blocks are independent, so this is bit-identical to [`Self::spmv`]
    /// at any thread count.
    pub fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let use_simd = simd::avx2_fma_available();
        y.par_chunks_mut(BLOCK_ROWS)
            .enumerate()
            .for_each(|(b, yb)| self.block(b, x, yb, use_simd));
    }

    /// One block: `yb` holds the block's 1–16 output rows.
    #[inline]
    fn block(&self, b: usize, x: &[f64], yb: &mut [f64], use_simd: bool) {
        let groups = self.block_ptr[b]..self.block_ptr[b + 1];
        let cols = &self.cols[BLOCK_ROWS * groups.start..BLOCK_ROWS * groups.end];
        let vals = &self.vals[BLOCK_ROWS * groups.start..BLOCK_ROWS * groups.end];
        let mut acc = [0.0f64; BLOCK_ROWS];
        if use_simd {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: dispatch guarded by `avx2_fma_available`.
                unsafe { block_avx2(cols, vals, x, &mut acc) };
                yb.copy_from_slice(&acc[..yb.len()]);
                return;
            }
        }
        for (cg, vg) in cols
            .chunks_exact(BLOCK_ROWS)
            .zip(vals.chunks_exact(BLOCK_ROWS))
        {
            for l in 0..BLOCK_ROWS {
                acc[l] += vg[l] * x[cg[l] as usize];
            }
        }
        yb.copy_from_slice(&acc[..yb.len()]);
    }
}

/// AVX2 block kernel: one row per lane over four accumulator registers
/// (independent add chains overlap the FP-add latency), `x` operands
/// assembled with scalar loads, multiply-then-add (no FMA) — per lane
/// exactly the scalar row sum, so bit-identical to [`Csr::spmv`] on
/// finite input.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn block_avx2(cols: &[u32], vals: &[f64], x: &[f64], acc: &mut [f64; BLOCK_ROWS]) {
    use std::arch::x86_64::*;
    let mut s = [_mm256_setzero_pd(); 4];
    let xp = x.as_ptr();
    for (cg, vg) in cols
        .chunks_exact(BLOCK_ROWS)
        .zip(vals.chunks_exact(BLOCK_ROWS))
    {
        for q in 0..4 {
            let v = _mm256_loadu_pd(vg.as_ptr().add(4 * q));
            let g = _mm256_set_pd(
                *xp.add(cg[4 * q + 3] as usize),
                *xp.add(cg[4 * q + 2] as usize),
                *xp.add(cg[4 * q + 1] as usize),
                *xp.add(cg[4 * q] as usize),
            );
            s[q] = _mm256_add_pd(s[q], _mm256_mul_pd(v, g));
        }
    }
    for (q, sv) in s.iter().enumerate() {
        _mm256_storeu_pd(acc.as_mut_ptr().add(4 * q), *sv);
    }
}

/// CG convergence report.
#[derive(Debug, Clone, Copy)]
pub struct CgResult {
    pub iterations: usize,
    pub residual: f64,
    pub converged: bool,
}

/// Conjugate gradient for SPD systems: solves A·x = b in place on `x`
/// (initial guess in). `parallel` selects the Rayon SpMV.
pub fn cg(
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    parallel: bool,
) -> CgResult {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = norm2(b).max(1e-300);

    // One packed plan for the whole solve; every iteration's product
    // runs through it (bit-identical to the CSR row loop).
    let plan = SpmvPlan::new(a);
    let mut ax = vec![0.0; n];
    let spmv = |p: &SpmvPlan, x: &[f64], y: &mut [f64]| {
        if parallel {
            p.spmv_par(x, y)
        } else {
            p.spmv(x, y)
        }
    };
    spmv(&plan, x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    let mut p = r.clone();
    let mut rs = dot(&r, &r);

    let mut iters = 0;
    while iters < max_iters && rs.sqrt() / bnorm > tol {
        spmv(&plan, &p, &mut ax); // ax = A p
        let alpha = rs / dot(&p, &ax).max(1e-300);
        axpy(alpha, &p, x);
        axpy(-alpha, &ax, &mut r);
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs = rs_new;
        iters += 1;
    }
    CgResult {
        iterations: iters,
        residual: rs.sqrt() / bnorm,
        converged: rs.sqrt() / bnorm <= tol,
    }
}

/// FLOPs of one CG iteration: one SpMV (2·nnz) plus 5 vector ops (2n each).
pub fn cg_iter_flops(n: usize, nnz: usize) -> f64 {
    2.0 * nnz as f64 + 10.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{lu_factor, lu_solve};
    use crate::mat::Mat;

    #[test]
    fn csr_builds_and_dedups() {
        let a = Csr::from_triplets(3, &[(0, 0, 1.0), (0, 0, 2.0), (1, 2, 5.0), (2, 1, -1.0)]);
        assert_eq!(a.nnz(), 3);
        let mut y = vec![0.0; 3];
        a.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, -1.0]);
    }

    #[test]
    fn poisson_is_symmetric() {
        let a = Csr::poisson2d(6);
        let n = a.n();
        // Check A == A^T via random vectors: x'Ay == y'Ax.
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let yv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        a.spmv(&x, &mut ax);
        a.spmv(&yv, &mut ay);
        assert!((dot(&yv, &ax) - dot(&x, &ay)).abs() < 1e-10);
    }

    #[test]
    fn spmv_par_matches_sequential() {
        let a = Csr::poisson2d(20);
        let x: Vec<f64> = (0..a.n()).map(|i| ((i * 7) % 13) as f64).collect();
        let mut ys = vec![0.0; a.n()];
        let mut yp = vec![0.0; a.n()];
        a.spmv(&x, &mut ys);
        a.spmv_par(&x, &mut yp);
        assert_eq!(ys, yp);
    }

    #[test]
    fn plan_spmv_is_exactly_csr_spmv() {
        // Tail blocks (n % 4 ≠ 0), empty rows, ragged row lengths —
        // the packed plan must reproduce the row loop bit-for-bit.
        let cases: Vec<Csr> = vec![
            Csr::poisson2d(13),
            Csr::from_triplets(7, &[(0, 6, 2.5), (3, 0, -1.25), (3, 3, 4.0), (6, 2, 0.5)]),
            Csr::from_triplets(1, &[(0, 0, 3.0)]),
        ];
        for a in &cases {
            let n = a.n();
            let x: Vec<f64> = (0..n).map(|i| ((i * 11) % 17) as f64 - 8.0).collect();
            let plan = SpmvPlan::new(a);
            assert!(plan.packed_entries() >= a.nnz());
            let mut yr = vec![0.0; n];
            let mut yp = vec![0.0; n];
            let mut ypp = vec![0.0; n];
            a.spmv(&x, &mut yr);
            plan.spmv(&x, &mut yp);
            plan.spmv_par(&x, &mut ypp);
            assert_eq!(yr, yp, "plan vs row loop (n={n})");
            assert_eq!(yp, ypp, "plan par vs seq (n={n})");
        }
    }

    #[test]
    fn cg_solves_poisson() {
        let a = Csr::poisson2d(16);
        let n = a.n();
        let xtrue: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xtrue, &mut b);
        let mut x = vec![0.0; n];
        let res = cg(&a, &b, &mut x, 1e-12, 10_000, false);
        assert!(res.converged, "residual {}", res.residual);
        let err = x
            .iter()
            .zip(&xtrue)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-8, "max err {err}");
    }

    #[test]
    fn cg_matches_dense_lu() {
        // Same small SPD system through both solvers.
        let g = 5;
        let a = Csr::poisson2d(g);
        let n = a.n();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut x = vec![0.0; n];
        cg(&a, &b, &mut x, 1e-13, 10_000, true);

        let dense = Mat::from_fn(n, n, |i, j| {
            let gi = (i / g, i % g);
            let gj = (j / g, j % g);
            if i == j {
                4.0
            } else if (gi.0 == gj.0 && gi.1.abs_diff(gj.1) == 1)
                || (gi.1 == gj.1 && gi.0.abs_diff(gj.0) == 1)
            {
                -1.0
            } else {
                0.0
            }
        });
        let mut f = dense.clone();
        let piv = lu_factor(&mut f, 8).unwrap();
        let xd = lu_solve(&f, &piv, &b);
        for (p, q) in x.iter().zip(&xd) {
            assert!((p - q).abs() < 1e-8, "{p} vs {q}");
        }
    }

    #[test]
    fn cg_iteration_count_scales_with_grid() {
        // κ(Poisson) grows like g², CG iterations like g.
        let mut iters = Vec::new();
        for g in [8, 16, 32] {
            let a = Csr::poisson2d(g);
            let b = vec![1.0; a.n()];
            let mut x = vec![0.0; a.n()];
            let r = cg(&a, &b, &mut x, 1e-10, 100_000, false);
            assert!(r.converged);
            iters.push(r.iterations as f64);
        }
        let r1 = iters[1] / iters[0];
        let r2 = iters[2] / iters[1];
        // Roughly linear in g (κ ~ g²  ⇒  iters ~ g), with slack for
        // small-grid effects.
        assert!(r1 > 1.3 && r1 < 3.5, "scaling {r1}");
        assert!(r2 > 1.3 && r2 < 3.5, "scaling {r2}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = Csr::poisson2d(4);
        let b = vec![0.0; a.n()];
        let mut x = vec![0.0; a.n()];
        let r = cg(&a, &b, &mut x, 1e-10, 100, false);
        assert_eq!(r.iterations, 0);
        assert!(r.converged);
    }

    #[test]
    fn flops_accounting() {
        let a = Csr::poisson2d(10);
        let f = cg_iter_flops(a.n(), a.nnz());
        assert!(f > 0.0);
        assert_eq!(f, 2.0 * a.nnz() as f64 + 10.0 * 100.0);
    }
}
