//! Sparse conjugate gradient — the DOE "energy and grand challenge
//! computational research" kernel: CSR storage, sequential and Rayon
//! SpMV, and a preconditioner-free CG solver.

use crate::mat::vecops::{axpy, dot, norm2};
use rayon::prelude::*;

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl Csr {
    /// Build from triplets (row, col, value); duplicates are summed.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Csr {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(r, c, v) in triplets {
            assert!(r < n && c < n, "triplet out of range");
            rows[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for row in &mut rows {
            row.sort_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *data.last_mut().unwrap() += v;
                } else {
                    indices.push(c);
                    data.push(v);
                    last = Some(c);
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            n,
            indptr,
            indices,
            data,
        }
    }

    /// The standard 5-point Laplacian on a g×g interior grid
    /// (n = g², symmetric positive definite).
    pub fn poisson2d(g: usize) -> Csr {
        let id = |i: usize, j: usize| i * g + j;
        let mut t = Vec::with_capacity(5 * g * g);
        for i in 0..g {
            for j in 0..g {
                t.push((id(i, j), id(i, j), 4.0));
                if i > 0 {
                    t.push((id(i, j), id(i - 1, j), -1.0));
                }
                if i + 1 < g {
                    t.push((id(i, j), id(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((id(i, j), id(i, j - 1), -1.0));
                }
                if j + 1 < g {
                    t.push((id(i, j), id(i, j + 1), -1.0));
                }
            }
        }
        Csr::from_triplets(g * g, &t)
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.data[lo..hi])
            .map(|(&c, &v)| v * x[c])
            .sum()
    }

    /// y = A·x, sequential.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = self.row_dot(i, x);
        }
    }

    /// y = A·x, Rayon over rows (bit-identical to sequential).
    pub fn spmv_par(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.par_iter_mut()
            .enumerate()
            .for_each(|(i, yi)| *yi = self.row_dot(i, x));
    }
}

/// CG convergence report.
#[derive(Debug, Clone, Copy)]
pub struct CgResult {
    pub iterations: usize,
    pub residual: f64,
    pub converged: bool,
}

/// Conjugate gradient for SPD systems: solves A·x = b in place on `x`
/// (initial guess in). `parallel` selects the Rayon SpMV.
pub fn cg(
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    parallel: bool,
) -> CgResult {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = norm2(b).max(1e-300);

    let mut ax = vec![0.0; n];
    let spmv = |a: &Csr, x: &[f64], y: &mut [f64]| {
        if parallel {
            a.spmv_par(x, y)
        } else {
            a.spmv(x, y)
        }
    };
    spmv(a, x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    let mut p = r.clone();
    let mut rs = dot(&r, &r);

    let mut iters = 0;
    while iters < max_iters && rs.sqrt() / bnorm > tol {
        spmv(a, &p, &mut ax); // ax = A p
        let alpha = rs / dot(&p, &ax).max(1e-300);
        axpy(alpha, &p, x);
        axpy(-alpha, &ax, &mut r);
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs = rs_new;
        iters += 1;
    }
    CgResult {
        iterations: iters,
        residual: rs.sqrt() / bnorm,
        converged: rs.sqrt() / bnorm <= tol,
    }
}

/// FLOPs of one CG iteration: one SpMV (2·nnz) plus 5 vector ops (2n each).
pub fn cg_iter_flops(n: usize, nnz: usize) -> f64 {
    2.0 * nnz as f64 + 10.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{lu_factor, lu_solve};
    use crate::mat::Mat;

    #[test]
    fn csr_builds_and_dedups() {
        let a = Csr::from_triplets(3, &[(0, 0, 1.0), (0, 0, 2.0), (1, 2, 5.0), (2, 1, -1.0)]);
        assert_eq!(a.nnz(), 3);
        let mut y = vec![0.0; 3];
        a.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, -1.0]);
    }

    #[test]
    fn poisson_is_symmetric() {
        let a = Csr::poisson2d(6);
        let n = a.n();
        // Check A == A^T via random vectors: x'Ay == y'Ax.
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let yv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        a.spmv(&x, &mut ax);
        a.spmv(&yv, &mut ay);
        assert!((dot(&yv, &ax) - dot(&x, &ay)).abs() < 1e-10);
    }

    #[test]
    fn spmv_par_matches_sequential() {
        let a = Csr::poisson2d(20);
        let x: Vec<f64> = (0..a.n()).map(|i| ((i * 7) % 13) as f64).collect();
        let mut ys = vec![0.0; a.n()];
        let mut yp = vec![0.0; a.n()];
        a.spmv(&x, &mut ys);
        a.spmv_par(&x, &mut yp);
        assert_eq!(ys, yp);
    }

    #[test]
    fn cg_solves_poisson() {
        let a = Csr::poisson2d(16);
        let n = a.n();
        let xtrue: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xtrue, &mut b);
        let mut x = vec![0.0; n];
        let res = cg(&a, &b, &mut x, 1e-12, 10_000, false);
        assert!(res.converged, "residual {}", res.residual);
        let err = x
            .iter()
            .zip(&xtrue)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-8, "max err {err}");
    }

    #[test]
    fn cg_matches_dense_lu() {
        // Same small SPD system through both solvers.
        let g = 5;
        let a = Csr::poisson2d(g);
        let n = a.n();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut x = vec![0.0; n];
        cg(&a, &b, &mut x, 1e-13, 10_000, true);

        let dense = Mat::from_fn(n, n, |i, j| {
            let gi = (i / g, i % g);
            let gj = (j / g, j % g);
            if i == j {
                4.0
            } else if (gi.0 == gj.0 && gi.1.abs_diff(gj.1) == 1)
                || (gi.1 == gj.1 && gi.0.abs_diff(gj.0) == 1)
            {
                -1.0
            } else {
                0.0
            }
        });
        let mut f = dense.clone();
        let piv = lu_factor(&mut f, 8).unwrap();
        let xd = lu_solve(&f, &piv, &b);
        for (p, q) in x.iter().zip(&xd) {
            assert!((p - q).abs() < 1e-8, "{p} vs {q}");
        }
    }

    #[test]
    fn cg_iteration_count_scales_with_grid() {
        // κ(Poisson) grows like g², CG iterations like g.
        let mut iters = Vec::new();
        for g in [8, 16, 32] {
            let a = Csr::poisson2d(g);
            let b = vec![1.0; a.n()];
            let mut x = vec![0.0; a.n()];
            let r = cg(&a, &b, &mut x, 1e-10, 100_000, false);
            assert!(r.converged);
            iters.push(r.iterations as f64);
        }
        let r1 = iters[1] / iters[0];
        let r2 = iters[2] / iters[1];
        // Roughly linear in g (κ ~ g²  ⇒  iters ~ g), with slack for
        // small-grid effects.
        assert!(r1 > 1.3 && r1 < 3.5, "scaling {r1}");
        assert!(r2 > 1.3 && r2 < 3.5, "scaling {r2}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = Csr::poisson2d(4);
        let b = vec![0.0; a.n()];
        let mut x = vec![0.0; a.n()];
        let r = cg(&a, &b, &mut x, 1e-10, 100, false);
        assert_eq!(r.iterations, 0);
        assert!(r.converged);
    }

    #[test]
    fn flops_accounting() {
        let a = Csr::poisson2d(10);
        let f = cg_iter_flops(a.n(), a.nnz());
        assert!(f > 0.0);
        assert_eq!(f, 2.0 * a.nnz() as f64 + 10.0 * 100.0);
    }
}
