//! `hpcc-kernels` — the computational workloads of the 1992 HPCC program.
//!
//! One crate, three execution styles for each kernel family:
//! * **sequential** reference implementations (correctness anchors),
//! * **Rayon host-parallel** variants (today's shared-memory testbed),
//! * **simulator-hosted** variants in [`sim`] that run as `delta-mesh`
//!   node programs to reproduce the paper's Touchstone Delta numbers.
//!
//! Kernel families and the Grand Challenge lines they stand in for:
//! * [`lu`]/[`linpack`] — the LINPACK benchmark (the Delta exhibit),
//! * [`cfd`]/[`multigrid`] — computational aerosciences (NASA/CAS),
//! * [`shallow`] — ocean/atmosphere modelling (NOAA),
//! * [`nbody`] — space sciences,
//! * [`fft`] — signal/earth-and-space-science transforms,
//! * [`cg`] — energy research sparse solvers (DOE).

pub mod cfd;
pub mod cg;
pub mod fft;
pub mod gemm;
pub mod linpack;
pub mod lu;
pub mod mat;
pub mod matmul;
pub mod multigrid;
pub mod nbody;
pub mod shallow;
pub mod sim;
pub mod simd;
