//! Property tests for the kernel engine v2: the SIMD fast paths must be
//! equivalent to their portable fallbacks everywhere — bit-identical
//! where the seed's tests assert exact results (SpMV, shallow water,
//! FFT dispatch), and within factorisation tolerance where the packed
//! TRSM/panel kernels are allowed to fuse FMAs (LU).

use des::rng::Rng;
use hpcc_kernels::{cg, fft, lu, mat::Mat, shallow};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LU: the dispatched engine (AVX2 TRSM + panel where available)
    /// agrees with the pinned-portable engine at every block width —
    /// same pivot sequence, factors within the 1e-10 residual budget
    /// the FMA fusion is allowed — and the Rayon variant is
    /// bit-identical to sequential. A whole-matrix block (nb ≥ n)
    /// cross-checks the blocking itself.
    #[test]
    fn lu_simd_matches_portable_across_widths(
        n in 24usize..140,
        nb in 4usize..72,
        seed in 0u64..1_000,
    ) {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(5));
        let a = Mat::random(n, n, &mut rng);

        let mut fd = a.clone();
        let mut fp = a.clone();
        let mut fr = a.clone();
        let pd = match lu::lu_factor(&mut fd, nb) {
            Ok(p) => p,
            Err(_) => { prop_assume!(false); unreachable!() }
        };
        let pp = lu::lu_factor_portable(&mut fp, nb).unwrap();
        let pr = lu::lu_factor_portable(&mut fr, n).unwrap();
        prop_assert_eq!(&pd, &pp, "pivots: dispatched vs portable");
        prop_assert_eq!(&pd, &pr, "pivots: blocked vs single block");
        let scale = n as f64;
        prop_assert!(fd.dist(&fp) <= 1e-10 * scale, "dispatched vs portable: {}", fd.dist(&fp));
        prop_assert!(fd.dist(&fr) <= 1e-9 * scale, "blocked vs single block: {}", fd.dist(&fr));

        let mut fs = a.clone();
        let mut fpar = a.clone();
        let ps = lu::lu_factor(&mut fs, nb).unwrap();
        let ppar = lu::lu_factor_par(&mut fpar, nb).unwrap();
        prop_assert_eq!(ps, ppar, "pivots: par vs seq");
        prop_assert_eq!(fs.as_slice(), fpar.as_slice(), "par is bit-identical");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FFT: forward/inverse round-trips recover the input across
    /// non-power-sized batches of power-of-two lengths, and the
    /// dispatched transform is bit-identical to the pinned-portable
    /// one on every batch entry.
    #[test]
    fn fft_roundtrip_on_nonpower_batches(
        logn in 2u32..12,
        batch in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << logn;
        let mut rng = Rng::new(seed.wrapping_mul(0x517C_C1B7).wrapping_add(9));
        for _ in 0..batch {
            let orig: Vec<fft::Cpx> = (0..n)
                .map(|_| fft::Cpx::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect();

            let mut x = orig.clone();
            fft::fft(&mut x);
            let mut p = orig.clone();
            fft::fft_portable(&mut p);
            for (a, b) in x.iter().zip(&p) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "dispatch == portable");
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }

            fft::ifft(&mut x);
            let tol = 1e-12 * n as f64;
            for (a, b) in x.iter().zip(&orig) {
                prop_assert!((a.re - b.re).abs() <= tol, "round-trip re: {} vs {}", a.re, b.re);
                prop_assert!((a.im - b.im).abs() <= tol, "round-trip im: {} vs {}", a.im, b.im);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SpMV: the interleaved packed plan reproduces the CSR row loop
    /// bit-for-bit on random sparse matrices (including empty rows and
    /// duplicate entries), sequentially and through Rayon.
    #[test]
    fn spmv_plan_is_exactly_csr(
        n in 1usize..160,
        fill in 0usize..6,
        seed in 0u64..1_000,
    ) {
        let mut rng = Rng::new(seed.wrapping_mul(0xA24B_AED4).wrapping_add(3));
        let mut triplets = Vec::new();
        for _ in 0..n * fill {
            let i = rng.below(n as u64) as usize;
            let j = rng.below(n as u64) as usize;
            triplets.push((i, j, rng.next_f64() * 2.0 - 1.0));
        }
        let a = cg::Csr::from_triplets(n, &triplets);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();

        let mut y_csr = vec![0.0; n];
        a.spmv(&x, &mut y_csr);
        let plan = cg::SpmvPlan::new(&a);
        let mut y_plan = vec![0.0; n];
        plan.spmv(&x, &mut y_plan);
        prop_assert_eq!(&y_csr, &y_plan, "plan == csr row loop");
        let mut y_par = vec![0.0; n];
        plan.spmv_par(&x, &mut y_par);
        prop_assert_eq!(&y_plan, &y_par, "par == seq");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shallow water: the fused/vectorised sweeps conserve mass to
    /// round-off exactly like the seed engine, and all three engines
    /// (dispatched, portable, seed baseline) produce the same bits.
    #[test]
    fn shallow_engines_agree_and_conserve_mass(
        m in 4usize..28,
        steps in 1usize..24,
    ) {
        let mut v2 = shallow::Shallow::new(m);
        let mut base = shallow::Shallow::new(m);
        let mut portable = shallow::Shallow::new(m);
        let mass0 = v2.total_mass();
        for _ in 0..steps {
            v2.step(false);
            base.step_baseline(false);
            portable.step_portable(false);
        }
        prop_assert_eq!(&v2.p, &base.p, "v2 == seed sweeps");
        prop_assert_eq!(&v2.u, &base.u);
        prop_assert_eq!(&v2.v, &base.v);
        prop_assert_eq!(&v2.p, &portable.p, "dispatched == portable");
        let drift = ((v2.total_mass() - mass0) / mass0).abs();
        prop_assert!(drift < 1e-12, "mass drift {drift}");
    }
}
