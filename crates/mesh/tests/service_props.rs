//! Property tests for the scheduler service.
//!
//! Three families of invariants:
//!
//! 1. **Batch equivalence.** With immediate admission, no bounds, and no
//!    faults, the service must replay the batch scheduler's schedule
//!    bit-for-bit — same starts, finishes, and placements — across
//!    random under-capacity workloads and both policies.
//! 2. **Conservation.** Under random fault plans, bounded queues, and
//!    finite quotas: every submission reaches exactly one terminal
//!    state, the terminal counts sum to the submission count, and the
//!    integer node-time ledger balances exactly
//!    (`useful + lost + dead + idle == total`, in `u128` node-ns).
//! 3. **Replay.** The same `(trace, config, plan)` triple reproduces the
//!    same report, bit for bit, retries and jitter included.

use delta_mesh::sched::service::{
    self, assert_batch_equivalent, service_workload, Outcome, ServiceConfig,
};
use delta_mesh::Policy;
use des::faults::{FaultPlan, MtbfModel};
use des::time::Dur;
use proptest::prelude::*;

/// A service config with every production limit engaged, derived from
/// the case seed so cap/quota/retry corners all get visited.
fn bounded_config(knobs: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(16, 33);
    cfg.pending_cap = [64usize, 256, 1024][(knobs % 3) as usize];
    cfg.shard_cap = cfg.pending_cap;
    cfg.shards = 1 + (knobs % 8) as usize;
    cfg.quota_default = [32usize, 128, usize::MAX][((knobs / 3) % 3) as usize];
    cfg.retry.budget = (knobs % 4) as u32;
    if knobs.is_multiple_of(2) {
        cfg.admit_every = Dur::from_secs(10);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under-capacity, zero-fault, no-limit service runs replay the
    /// batch scheduler bit-for-bit under both policies.
    #[test]
    fn service_matches_batch_bit_for_bit(
        n in 50usize..300,
        tenants in 2usize..30,
        seed in 0u64..10_000,
    ) {
        let tr = service_workload(n, tenants, 0.7, 16, 33, seed);
        assert_batch_equivalent(&tr, 16, 33, Policy::Fcfs);
        assert_batch_equivalent(&tr, 16, 33, Policy::Backfill);
    }

    /// Job accounting conserves: exactly one terminal state per
    /// submission, terminal counts sum to the submission count, and the
    /// node-time identity holds exactly under random fault plans.
    #[test]
    fn conservation_under_faults_and_limits(
        n in 200usize..2_000,
        load_pct in 40u64..250,
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
    ) {
        let tr = service_workload(n, 24, load_pct as f64 / 100.0, 16, 33, seed);
        let cfg = bounded_config(seed ^ load_pct);
        let plan = FaultPlan::seeded(
            fault_seed,
            &MtbfModel::node_crashes(Dur::from_secs(60_000)),
            16 * 33,
            0,
            Dur::from_secs(100_000),
        );
        let r = service::run_with_faults(&tr, &cfg, &plan);

        // Exactly one terminal state each (run_with_faults panics on a
        // missing or doubled state; here we re-check the counts agree).
        prop_assert_eq!(r.outcomes.len(), n);
        prop_assert_eq!(r.submitted, n);
        let completed = r.outcomes.iter().filter(|o| **o == Outcome::Completed).count();
        let failed = r.outcomes.iter().filter(|o| **o == Outcome::Failed).count();
        let rejected = r.outcomes.iter()
            .filter(|o| matches!(o, Outcome::Rejected(_)))
            .count();
        prop_assert_eq!(completed + failed + rejected, n);
        prop_assert_eq!(completed, r.completed);
        prop_assert_eq!(failed, r.failed);
        prop_assert_eq!(rejected as u64, r.rejected_total());

        // Bounded queues stayed bounded.
        prop_assert!(r.max_shard_depth <= cfg.shard_cap);

        // Node-time identity, exactly: busy + idle + dead == total, and
        // total is nodes x span to the nanosecond.
        prop_assert!(r.node_time.balanced());
        let span_ns = (r.span.nanos()) as u128;
        prop_assert_eq!(r.node_time.total, (16u128 * 33) * span_ns);

        // Useful node-time is exactly the work of the completed jobs.
        let expect_useful: u128 = tr.subs.iter()
            .filter(|s| r.outcomes[s.id] == Outcome::Completed)
            .map(|s| (s.nodes() as u128) * (s.runtime.nanos() as u128))
            .sum();
        prop_assert_eq!(r.node_time.useful, expect_useful);
    }

    /// Same inputs, same report — bit for bit, jittered retries and all.
    #[test]
    fn service_replays_bit_identically(
        n in 200usize..1_000,
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
    ) {
        let tr = service_workload(n, 16, 1.3, 16, 33, seed);
        let cfg = bounded_config(seed);
        let plan = FaultPlan::seeded(
            fault_seed,
            &MtbfModel::node_crashes(Dur::from_secs(40_000)),
            16 * 33,
            0,
            Dur::from_secs(80_000),
        );
        let a = service::run_with_faults(&tr, &cfg, &plan);
        let b = service::run_with_faults(&tr, &cfg, &plan);
        prop_assert_eq!(a.outcomes, b.outcomes);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.span, b.span);
        prop_assert_eq!(a.shed, b.shed);
        prop_assert_eq!(a.retries, b.retries);
        prop_assert_eq!(a.jobs_killed, b.jobs_killed);
        prop_assert_eq!(a.node_time, b.node_time);
        prop_assert_eq!(a.events, b.events);
    }
}
