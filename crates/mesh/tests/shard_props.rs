//! Property tests for the sharded conservative-parallel engine.
//!
//! Three invariants, in decreasing strictness:
//!
//! 1. **Single-lane bit-identity.** One lane of the window runtime is
//!    the legacy dispatch loop with an infinite horizon: identical
//!    event order, identical outputs, identical report — compared
//!    field-for-field including elapsed virtual time and event counts,
//!    under seeded fault plans and `recv_timeout`-based recovery.
//! 2. **Legacy engine untouched.** Seeded runs with a `MemRecorder`
//!    attached replay bit-identically run-to-run (the refactored
//!    executor preserves poll order), and running the sharded engine
//!    in between perturbs nothing (no global state).
//! 3. **Lane-count invariance.** For timing-insensitive programs,
//!    final results and fault accounting do not depend on how many
//!    lanes the mesh is split into — only per-event timestamps may
//!    move, because cross-lane messages are timed analytically.

use delta_mesh::{presets, FaultKind, FaultPlan, Machine, Node};
use des::time::{Dur, SimTime};
use hpcc_trace::MemRecorder;
use proptest::prelude::*;
use std::rc::Rc;

/// Deterministic neighbour-exchange program: compute, send a value to
/// every live mesh neighbour, receive from every live neighbour with an
/// exact source filter, return the (order-fixed) accumulated sum.
/// Output depends only on which nodes are alive — never on message
/// timing — so it is safe to compare across engines and lane counts.
async fn halo_step(node: Node, rows: usize, cols: usize) -> f64 {
    let me = node.rank();
    let (r, c) = (me / cols, me % cols);
    let mut nbrs = Vec::new();
    if r > 0 {
        nbrs.push(me - cols);
    }
    if r + 1 < rows {
        nbrs.push(me + cols);
    }
    if c > 0 {
        nbrs.push(me - 1);
    }
    if c + 1 < cols {
        nbrs.push(me + 1);
    }
    node.compute(delta_mesh::Kernel::Stencil, 1.0e6).await;
    for &nb in &nbrs {
        if !node.peer_failed(nb) {
            node.send_f64s(nb, me as u64, &[(me * 10 + 1) as f64]).await;
        }
    }
    let mut acc = 0.0;
    for &nb in &nbrs {
        if !node.peer_failed(nb) {
            let v = node.recv_f64s(Some(nb), Some(nb as u64)).await;
            acc += v[0];
        }
    }
    node.compute(delta_mesh::Kernel::Daxpy, 5.0e5).await;
    acc
}

/// Fault plan with boot crashes (t = 0 only, so liveness is a static
/// property every engine agrees on) plus mid-run slowdowns (they bend
/// timing, never results).
fn boot_crash_plan(seed: u64, nodes: usize) -> FaultPlan {
    let mut rng = des::rng::Rng::new(seed);
    let mut plan = FaultPlan::none();
    let crashes = (rng.next_u64() % 3) as usize;
    for _ in 0..crashes {
        let node = (rng.next_u64() as usize) % nodes;
        plan.push(SimTime::ZERO, FaultKind::NodeCrash { node });
    }
    let slows = (rng.next_u64() % 3) as usize;
    for _ in 0..slows {
        let node = (rng.next_u64() as usize) % nodes;
        plan.push(
            SimTime(1_000 + rng.next_u64() % 1_000_000),
            FaultKind::NodeSlow {
                node,
                factor: 3.0,
                until: SimTime(5_000_000),
            },
        );
    }
    plan
}

/// A plan that also exercises timers, timeouts, and mid-run crashes —
/// only used where both sides run the *same* engine schedule
/// (single-lane comparisons), where full bit-identity must hold anyway.
fn rich_plan(seed: u64, nodes: usize, links: usize) -> FaultPlan {
    let mut rng = des::rng::Rng::new(seed);
    let mut plan = FaultPlan::none();
    for _ in 0..(rng.next_u64() % 3) {
        let node = (rng.next_u64() as usize) % nodes;
        plan.push(
            SimTime(rng.next_u64() % 2_000_000),
            FaultKind::NodeCrash { node },
        );
    }
    if links > 0 {
        for _ in 0..(rng.next_u64() % 2) {
            let link = (rng.next_u64() as usize) % links;
            let at = rng.next_u64() % 1_000_000;
            plan.push(
                SimTime(at),
                FaultKind::LinkDown {
                    link,
                    until: SimTime(at + 500_000),
                },
            );
        }
    }
    plan
}

/// Recovery-style program for single-lane comparisons: receives with a
/// deadline and falls back, so crashes and link faults never deadlock.
async fn recovering_step(node: Node, cols: usize) -> f64 {
    let me = node.rank();
    let right = if (me + 1).is_multiple_of(cols) {
        me + 1 - cols
    } else {
        me + 1
    };
    let left = if me.is_multiple_of(cols) {
        me + cols - 1
    } else {
        me - 1
    };
    node.send_f64s(right, 7, &[me as f64]).await;
    match node
        .recv_f64s_timeout(Some(left), Some(7), Dur::from_millis(40))
        .await
    {
        Ok(v) => v[0] + 1.0,
        Err(_) => -1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Window runtime at one lane == legacy engine, bit for bit: same
    /// outputs, same elapsed, same event count, same fault accounting.
    #[test]
    fn single_lane_window_is_bit_identical(
        rows in 1usize..4,
        cols in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let m = Machine::new(presets::delta(rows, cols));
        let links = m.config().topology.links();
        let plan = rich_plan(seed, rows * cols, links);
        let (legacy_out, legacy_rep) =
            m.run_with_faults(&plan, |node| recovering_step(node, cols));
        let (win_out, win_rep) =
            m.run_windowed_exact(1, &plan, |node| recovering_step(node, cols));
        prop_assert_eq!(legacy_out, win_out);
        prop_assert_eq!(legacy_rep, win_rep);
    }

    /// Final results and fault accounting are lane-count-invariant for
    /// timing-insensitive programs.
    #[test]
    fn results_are_lane_count_invariant(
        rows in 4usize..8,
        cols in 2usize..4,
        seed in 0u64..10_000,
    ) {
        let m = Machine::new(presets::delta(rows, cols));
        let plan = boot_crash_plan(seed, rows * cols);
        let (base_out, base_rep) =
            m.run_windowed_exact(1, &plan, |node| halo_step(node, rows, cols));
        for lanes in [2usize, 4] {
            let (out, rep) =
                m.run_sharded_with_faults(lanes, &plan, |node| halo_step(node, rows, cols));
            prop_assert_eq!(&base_out, &out, "lanes={}", lanes);
            prop_assert_eq!(base_rep.faults.node_crashes, rep.faults.node_crashes);
            prop_assert_eq!(base_rep.faults.slowdowns, rep.faults.slowdowns);
            prop_assert_eq!(base_rep.messages, rep.messages, "lanes={}", lanes);
            prop_assert_eq!(base_rep.bytes, rep.bytes, "lanes={}", lanes);
            prop_assert_eq!(base_rep.flops, rep.flops, "lanes={}", lanes);
        }
    }

    /// Sharded runs are reproducible: two identical multi-lane runs
    /// agree on everything, including virtual elapsed time (thread
    /// interleaving must not leak into results).
    #[test]
    fn sharded_runs_replay_bit_identically(
        rows in 4usize..8,
        cols in 2usize..4,
        lanes in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let m = Machine::new(presets::delta(rows, cols));
        let plan = boot_crash_plan(seed, rows * cols);
        let (out1, rep1) =
            m.run_sharded_with_faults(lanes, &plan, |node| halo_step(node, rows, cols));
        let (out2, rep2) =
            m.run_sharded_with_faults(lanes, &plan, |node| halo_step(node, rows, cols));
        prop_assert_eq!(out1, out2);
        prop_assert_eq!(rep1, rep2);
    }

    /// The legacy recorded engine is untouched: seeded traced runs
    /// replay bit-identically, with a sharded run in between to prove
    /// the new engine leaves no residue.
    #[test]
    fn recorded_legacy_runs_survive_sharded_interleaving(
        rows in 1usize..4,
        cols in 2usize..4,
        seed in 0u64..10_000,
    ) {
        let m = Machine::new(presets::delta(rows, cols));
        let links = m.config().topology.links();
        let plan = rich_plan(seed, rows * cols, links);
        let rec1 = Rc::new(MemRecorder::new());
        let (out1, rep1) = m.run_recorded(&plan, Rc::clone(&rec1) as _, |node| {
            recovering_step(node, cols)
        });
        let _ = m.run_sharded_with_faults(2, &plan, |node| halo_step(node, rows, cols));
        let rec2 = Rc::new(MemRecorder::new());
        let (out2, rep2) = m.run_recorded(&plan, Rc::clone(&rec2) as _, |node| {
            recovering_step(node, cols)
        });
        prop_assert_eq!(out1, out2);
        prop_assert_eq!(rep1, rep2);
        prop_assert_eq!(rec1.tracks(), rec2.tracks());
        prop_assert_eq!(rec1.events(), rec2.events());
    }
}

/// Zero-fault sharded runs complete and agree with the legacy engine on
/// results for a deterministic program (plain #[test]: the all-lanes
/// sweep on the 16x33 Delta is too big for a proptest case budget).
#[test]
fn mesh48_all_lane_counts_agree() {
    let rows = 8;
    let cols = 6;
    let m = Machine::new(presets::delta(rows, cols));
    let (base, _) = m.run(|node| halo_step(node, 8, 6));
    for lanes in [2usize, 4, 8] {
        let (out, rep) = m.run_sharded(lanes, |node| halo_step(node, 8, 6));
        assert_eq!(base, out, "lanes={lanes}");
        assert!(rep.events > 0);
        assert_eq!(rep.nodes, rows * cols);
    }
}
