//! Property tests for the collective library: correctness of every
//! data collective across random machine shapes, roots, and payloads.

use delta_mesh::{presets, Comm, Machine};
use proptest::prelude::*;
use std::sync::Arc;

fn machine(rows: usize, cols: usize) -> Machine {
    Machine::new(presets::delta(rows, cols))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bcast_delivers_exact_data(
        rows in 1usize..4,
        cols in 1usize..5,
        root_sel in 0usize..20,
        len in 1usize..40,
        seed in 0u64..1000,
    ) {
        let p = rows * cols;
        let root = root_sel % p;
        let mut rng = des::rng::Rng::new(seed);
        let data: Vec<f64> = (0..len).map(|_| rng.range_f64(-5.0, 5.0)).collect();
        let expect = data.clone();
        let m = machine(rows, cols);
        let (out, _) = m.run(move |node| {
            let data = data.clone();
            async move {
                let comm = Comm::world(&node);
                let payload = (comm.me() == root).then(|| Arc::from(data.as_slice()));
                comm.bcast(root, payload).await.to_vec()
            }
        });
        for v in out {
            prop_assert_eq!(&v, &expect);
        }
    }

    #[test]
    fn allreduce_sum_matches_reference(
        rows in 1usize..4,
        cols in 1usize..5,
        len in 1usize..20,
        seed in 0u64..1000,
    ) {
        let p = rows * cols;
        let mut rng = des::rng::Rng::new(seed);
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..len).map(|_| rng.range_f64(-3.0, 3.0)).collect())
            .collect();
        let mut reference = vec![0.0f64; len];
        for row in &inputs {
            for (r, v) in reference.iter_mut().zip(row) {
                *r += v;
            }
        }
        let m = machine(rows, cols);
        let (out, _) = m.run(move |node| {
            let mine = inputs[node.rank()].clone();
            async move {
                let comm = Comm::world(&node);
                comm.allreduce_sum(&mine).await
            }
        });
        for v in out {
            for (a, b) in v.iter().zip(&reference) {
                prop_assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn allgather_orders_blocks(
        rows in 1usize..4,
        cols in 1usize..5,
        blk in 1usize..8,
        seed in 0u64..500,
    ) {
        let p = rows * cols;
        let mut rng = des::rng::Rng::new(seed);
        let blocks: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..blk).map(|_| rng.range_f64(0.0, 9.0)).collect())
            .collect();
        let expect: Vec<f64> = blocks.iter().flatten().copied().collect();
        let m = machine(rows, cols);
        let (out, _) = m.run(move |node| {
            let mine = blocks[node.rank()].clone();
            async move {
                let comm = Comm::world(&node);
                comm.allgather(&mine).await
            }
        });
        for v in out {
            prop_assert_eq!(&v, &expect);
        }
    }

    #[test]
    fn alltoall_is_transpose(
        rows in 1usize..3,
        cols in 1usize..5,
        seed in 0u64..500,
    ) {
        let p = rows * cols;
        let mut rng = des::rng::Rng::new(seed);
        // chunk[i][j][0] encodes (i, j) uniquely.
        let chunks: Vec<Vec<Vec<f64>>> = (0..p)
            .map(|i| {
                (0..p)
                    .map(|j| vec![(i * p + j) as f64, rng.next_f64()])
                    .collect()
            })
            .collect();
        let reference = chunks.clone();
        let m = machine(rows, cols);
        let (out, _) = m.run(move |node| {
            let mine = chunks[node.rank()].clone();
            async move {
                let comm = Comm::world(&node);
                comm.alltoall(mine).await
            }
        });
        for (j, got) in out.iter().enumerate() {
            for (i, chunk) in got.iter().enumerate() {
                prop_assert_eq!(chunk, &reference[i][j], "member {} chunk {}", j, i);
            }
        }
    }

    #[test]
    fn scan_prefixes_are_consistent(
        rows in 1usize..4,
        cols in 1usize..5,
        seed in 0u64..500,
    ) {
        let p = rows * cols;
        let mut rng = des::rng::Rng::new(seed);
        let values: Vec<f64> = (0..p).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let vals = values.clone();
        let m = machine(rows, cols);
        let (out, _) = m.run(move |node| {
            let mine = vals[node.rank()];
            async move {
                let comm = Comm::world(&node);
                comm.scan_sum(&[mine]).await[0]
            }
        });
        let mut acc = 0.0;
        for (i, got) in out.iter().enumerate() {
            acc += values[i];
            prop_assert!((got - acc).abs() < 1e-12, "member {i}: {got} vs {acc}");
        }
    }

    #[test]
    fn reduce_and_allreduce_agree(
        rows in 1usize..4,
        cols in 1usize..4,
        seed in 0u64..300,
    ) {
        let p = rows * cols;
        let mut rng = des::rng::Rng::new(seed);
        let values: Vec<f64> = (0..p).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let root = (seed as usize) % p;
        let vals = values.clone();
        let m = machine(rows, cols);
        let (out, _) = m.run(move |node| {
            let mine = vals[node.rank()];
            async move {
                let comm = Comm::world(&node);
                let red = comm.reduce_sum(root, &[mine]).await;
                let all = comm.allreduce_sum(&[mine]).await[0];
                (red.map(|v| v[0]), all)
            }
        });
        let all_val = out[0].1;
        for (i, (red, all)) in out.iter().enumerate() {
            prop_assert!((all - all_val).abs() < 1e-12);
            if i == root {
                let r = red.expect("root holds reduction");
                prop_assert!((r - all).abs() < 1e-10, "{r} vs {all}");
            } else {
                prop_assert!(red.is_none());
            }
        }
    }
}
