//! Space-sharing batch scheduler for the Delta: consortium jobs queue
//! for rectangular sub-meshes; FCFS with optional aggressive backfill.
//!
//! This is the operational side of the "ACQUIRE AND UTILIZE" exhibit —
//! 14 partner organisations sharing 528 nodes. The simulation is
//! event-driven on the `des` calendar and reports the metrics the
//! consortium's operators cared about: utilisation, wait times, and
//! fragmentation refusals.

use crate::partition::{MeshSpace, SubMesh};
use des::queue::EventQueue;
use des::rng::Rng;
use des::stats::Summary;
use des::time::{Dur, SimTime};

/// One batch job: a sub-mesh shape held for a duration.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: usize,
    /// Requested shape (rows, cols).
    pub shape: (usize, usize),
    pub runtime: Dur,
    pub arrival: SimTime,
    /// Submitting partner (index into a roster), for per-partner stats.
    pub partner: usize,
}

impl Job {
    pub fn nodes(&self) -> usize {
        self.shape.0 * self.shape.1
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict FCFS: the queue head blocks everyone behind it.
    Fcfs,
    /// Aggressive backfill: any queued job that fits right now may start.
    Backfill,
}

/// Completed-run record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub job: Job,
    pub started: SimTime,
    pub finished: SimTime,
    pub placement: SubMesh,
}

impl JobRecord {
    pub fn wait(&self) -> Dur {
        self.started - self.job.arrival
    }
}

/// Aggregate outcome of one scheduling run.
#[derive(Debug, Clone)]
pub struct SchedReport {
    pub policy: Policy,
    pub jobs: usize,
    pub makespan: Dur,
    /// Busy node-time over total node-time until makespan.
    pub utilization: f64,
    pub mean_wait: Dur,
    pub max_wait: Dur,
    /// Placement attempts refused despite sufficient free nodes.
    pub fragmentation_refusals: u64,
    pub records: Vec<JobRecord>,
}

enum Ev {
    Arrive(usize),
    Finish(usize, SubMesh),
}

/// Run the scheduler over a job batch on an `rows × cols` mesh.
pub fn run(rows: usize, cols: usize, mut jobs: Vec<Job>, policy: Policy) -> SchedReport {
    jobs.sort_by_key(|j| (j.arrival, j.id));
    let mut space = MeshSpace::new(rows, cols);
    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, j) in jobs.iter().enumerate() {
        q.schedule(j.arrival, Ev::Arrive(i));
    }
    let mut queue: Vec<usize> = Vec::new(); // waiting job indices, FCFS order
    let mut records: Vec<Option<JobRecord>> = jobs.iter().map(|_| None).collect();
    let mut frag = 0u64;
    let mut busy_node_time = 0.0f64;

    // Try to start queued jobs under the policy; returns started ones.
    let try_start = |space: &mut MeshSpace,
                     queue: &mut Vec<usize>,
                     jobs: &[Job],
                     q: &mut EventQueue<Ev>,
                     records: &mut [Option<JobRecord>],
                     frag: &mut u64,
                     policy: Policy| {
        let now = q.now();
        let mut i = 0;
        while i < queue.len() {
            let idx = queue[i];
            let (r, c) = jobs[idx].shape;
            match space.allocate(r, c, true) {
                Some(sm) => {
                    queue.remove(i);
                    q.schedule(now + jobs[idx].runtime, Ev::Finish(idx, sm));
                    records[idx] = Some(JobRecord {
                        job: jobs[idx].clone(),
                        started: now,
                        finished: now + jobs[idx].runtime,
                        placement: sm,
                    });
                    // Restart the scan: freeing order may let earlier
                    // queue entries in — but FCFS order is preserved
                    // because we always scan from the front.
                    i = 0;
                }
                None => {
                    if space.is_fragmented_refusal(r, c, true) {
                        *frag += 1;
                    }
                    match policy {
                        Policy::Fcfs => break, // head of queue blocks
                        Policy::Backfill => i += 1,
                    }
                }
            }
        }
    };

    while let Some((_, ev)) = q.pop() {
        match ev {
            Ev::Arrive(i) => {
                queue.push(i);
            }
            Ev::Finish(i, sm) => {
                busy_node_time += jobs[i].nodes() as f64 * jobs[i].runtime.as_secs_f64();
                space.free(sm);
            }
        }
        try_start(
            &mut space,
            &mut queue,
            &jobs,
            &mut q,
            &mut records,
            &mut frag,
            policy,
        );
    }
    assert!(queue.is_empty(), "all jobs must eventually run");

    let records: Vec<JobRecord> = records.into_iter().map(|r| r.expect("ran")).collect();
    let makespan = records
        .iter()
        .map(|r| r.finished)
        .max()
        .unwrap_or(SimTime::ZERO)
        - SimTime::ZERO;
    let mut waits = Summary::new();
    let mut max_wait = Dur::ZERO;
    for r in &records {
        waits.add_dur(r.wait());
        max_wait = max_wait.max(r.wait());
    }
    let total_node_time = (rows * cols) as f64 * makespan.as_secs_f64();
    SchedReport {
        policy,
        jobs: records.len(),
        makespan,
        utilization: if total_node_time > 0.0 {
            busy_node_time / total_node_time
        } else {
            0.0
        },
        mean_wait: Dur::from_secs_f64(waits.mean()),
        max_wait,
        fragmentation_refusals: frag,
        records,
    }
}

/// A consortium-style workload: `n` jobs from `partners` submitters,
/// Poisson arrivals, power-of-two-ish shapes, log-normal runtimes.
pub fn consortium_workload(
    n: usize,
    partners: usize,
    mean_interarrival_s: f64,
    seed: u64,
) -> Vec<Job> {
    let mut rng = Rng::new(seed);
    let shapes: [(usize, usize); 8] = [
        (1, 1),
        (2, 2),
        (2, 4),
        (4, 4),
        (4, 8),
        (8, 8),
        (8, 16),
        (16, 16),
    ];
    let mut t = 0.0;
    (0..n)
        .map(|id| {
            t += rng.exp(mean_interarrival_s);
            let shape = *rng.choose(&shapes);
            // Log-normal-ish runtimes: median ~10 min, heavy tail.
            let runtime = 600.0 * rng.normal(0.0, 1.0).exp();
            Job {
                id,
                shape,
                runtime: Dur::from_secs_f64(runtime.clamp(30.0, 6.0 * 3600.0)),
                arrival: SimTime::from_secs_f64(t),
                partner: rng.below(partners as u64) as usize,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, shape: (usize, usize), run_s: u64, arrive_s: u64) -> Job {
        Job {
            id,
            shape,
            runtime: Dur::from_secs(run_s),
            arrival: SimTime(arrive_s * 1_000_000_000),
            partner: 0,
        }
    }

    #[test]
    fn single_job_runs_immediately() {
        let r = run(4, 4, vec![job(0, (2, 2), 100, 5)], Policy::Fcfs);
        assert_eq!(r.jobs, 1);
        assert_eq!(r.records[0].wait(), Dur::ZERO);
        assert_eq!(r.makespan, Dur::from_secs(105));
        // 4 nodes busy 100 s over 16 nodes × 105 s.
        assert!((r.utilization - 400.0 / 1680.0).abs() < 1e-9);
    }

    #[test]
    fn fcfs_blocks_behind_big_job() {
        // Big job takes the whole machine; a tiny job behind it waits
        // even though nothing else is running when it arrives.
        let jobs = vec![
            job(0, (4, 4), 1000, 0),
            job(1, (4, 4), 1000, 1), // queued: machine full
            job(2, (1, 1), 10, 2),   // FCFS: must wait behind job 1
        ];
        let r = run(4, 4, jobs.clone(), Policy::Fcfs);
        let t2 = r.records[2].started;
        assert!(t2 >= SimTime::from_secs_f64(1000.0), "tiny job waited");

        // Backfill lets the tiny job skip ahead... but the machine is
        // completely full, so it still waits for job 0 to finish; then
        // it backfills alongside job 1? No — job 1 takes the whole mesh.
        // Shrink job 1 so there is room to backfill next to it.
        let jobs = vec![
            job(0, (4, 4), 1000, 0),
            job(1, (4, 2), 1000, 1),
            job(2, (1, 1), 10, 2),
        ];
        let fcfs = run(4, 4, jobs.clone(), Policy::Fcfs);
        let bf = run(4, 4, jobs, Policy::Backfill);
        assert_eq!(
            bf.records[2].started, bf.records[1].started,
            "backfilled next to job 1"
        );
        assert!(bf.records[2].started <= fcfs.records[2].started);
    }

    #[test]
    fn no_overlap_ever() {
        let jobs = consortium_workload(120, 14, 120.0, 9);
        let r = run(16, 33, jobs, Policy::Backfill);
        // Any two time-overlapping placements must be disjoint in space.
        for (i, a) in r.records.iter().enumerate() {
            for b in &r.records[i + 1..] {
                let time_overlap = a.started < b.finished && b.started < a.finished;
                if time_overlap {
                    assert!(
                        !a.placement.overlaps(&b.placement),
                        "jobs {} and {} overlap in space and time",
                        a.job.id,
                        b.job.id
                    );
                }
            }
        }
    }

    #[test]
    fn backfill_beats_fcfs_on_utilization() {
        let jobs = consortium_workload(200, 14, 60.0, 4);
        let fcfs = run(16, 33, jobs.clone(), Policy::Fcfs);
        let bf = run(16, 33, jobs, Policy::Backfill);
        assert!(
            bf.utilization >= fcfs.utilization,
            "backfill {} vs fcfs {}",
            bf.utilization,
            fcfs.utilization
        );
        assert!(bf.mean_wait <= fcfs.mean_wait);
    }

    #[test]
    fn workload_is_deterministic_and_sized() {
        let a = consortium_workload(50, 14, 300.0, 7);
        let b = consortium_workload(50, 14, 300.0, 7);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.shape, y.shape);
        }
        assert!(a.iter().all(|j| j.nodes() <= 256));
        assert!(a.iter().all(|j| j.partner < 14));
    }

    #[test]
    fn utilization_bounded() {
        let jobs = consortium_workload(80, 14, 30.0, 11);
        for policy in [Policy::Fcfs, Policy::Backfill] {
            let r = run(16, 33, jobs.clone(), policy);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
            assert_eq!(r.jobs, 80);
        }
    }
}
