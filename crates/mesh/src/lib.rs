//! `delta-mesh` — a deterministic simulator of Touchstone Delta-class
//! message-passing multicomputers.
//!
//! This crate is the hardware substrate for the HPCC 1992 reproduction:
//! the paper's Concurrent Supercomputer Consortium exhibit claims a
//! 528-processor Intel Touchstone Delta with a 32 GFLOPS peak and a
//! 13 GFLOPS LINPACK run at order 25,000. We do not have a Delta, so we
//! model one: a 16×33 wormhole-routed 2-D mesh of i860-class nodes with
//! an NX-style tagged message-passing API and collective operations.
//!
//! Quick tour:
//!
//! ```
//! use delta_mesh::{presets, Machine, Kernel};
//!
//! let machine = Machine::new(presets::delta(2, 2));
//! let (sums, report) = machine.run(|node| async move {
//!     let comm = delta_mesh::Comm::world(&node);
//!     node.compute(Kernel::Dgemm, 1.0e6).await;
//!     comm.allreduce_sum(&[node.rank() as f64]).await[0]
//! });
//! assert!(sums.iter().all(|&s| s == 6.0));
//! assert!(report.elapsed.nanos() > 0);
//! ```

pub mod collective;
pub mod machine;
pub mod partition;
pub mod sched;
pub mod shard;
pub mod sim;
pub mod topology;

pub use collective::Comm;
pub use des::faults::{FaultEvent, FaultKind, FaultPlan, MtbfModel};
pub use machine::{presets, Kernel, KernelEff, MachineConfig, NetModel, NodeModel, Switching};
pub use partition::{LaneMap, MeshSpace, SubMesh};
pub use sched::service::{
    service_workload, AdmissionError, Order, Outcome, Priority, RetryBudget, ServiceConfig,
    ServiceReport, ServiceTrace, ShedTiers, Submission,
};
pub use sched::{consortium_workload, Job, JobRecord, KilledAttempt, Policy, SchedReport};
pub use shard::LaneStats;
pub use sim::{CommError, FaultStats, Machine, Msg, Node, Payload, RetryPolicy, RunReport};
pub use topology::{LinkId, Topology};
