//! Machine models: node compute model + network cost model + topology.
//!
//! The presets are calibrated to the published characteristics of the
//! DARPA Touchstone series the paper references ("one of a series of DARPA
//! developed massively parallel computers"):
//!
//! | Machine | Nodes | Node peak (DP) | Machine peak | Channel | Latency |
//! |---|---|---|---|---|---|
//! | iPSC/860 "Gamma" | 128 (2^7 cube) | 60 MFLOP/s | 7.7 GF | 2.8 MB/s | ~160 µs |
//! | Touchstone Delta | 528 (16×33 mesh) | 60.6 MFLOP/s | **32 GF** | 25 MB/s | ~80 µs |
//! | Paragon XP/S | mesh | 75 MFLOP/s | — | 175 MB/s | ~40 µs |
//!
//! The Delta node peak is set so 528 nodes give **exactly the paper's 32
//! GFLOPS** (the deck's own arithmetic: "PEAK SPEED OF 32 GFLOPS USING THE
//! 528 NUMERIC PROCESSORS").

use crate::topology::Topology;
use des::time::Dur;

/// What a node is computing — selects a sustained-efficiency factor.
///
/// The i860 famously reached a high fraction of peak only in hand-tuned
/// assembly kernels (dgemm); compiled loops ran far below peak. Those
/// per-kernel efficiencies are what turn "peak 32 GFLOPS" into "13 GFLOPS
/// LINPACK", so they are first-class in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Matrix-matrix multiply (assembly-tuned BLAS3).
    Dgemm,
    /// Rank-1 / vector ops (BLAS1/2, memory bound).
    Daxpy,
    /// Triangular solve.
    Dtrsm,
    /// LU panel factorisation (blocked rank-1 updates; BLAS-2.5-like).
    Panel,
    /// Regular grid stencil sweep.
    Stencil,
    /// Sparse matrix-vector product (indirect addressing).
    Spmv,
    /// FFT butterfly passes.
    Fft,
    /// Particle-particle force evaluation.
    Nbody,
    /// Generic compiled scalar code.
    Scalar,
}

/// Node compute model.
#[derive(Debug, Clone)]
pub struct NodeModel {
    /// Peak double-precision FLOP rate, FLOP/s.
    pub peak_flops: f64,
    /// Local memory per node, bytes (Delta: 16 MB).
    pub memory_bytes: u64,
    /// Sustained fraction of peak for each kernel class.
    pub eff: KernelEff,
    /// Local memory copy bandwidth, bytes/s (self-sends, packing).
    pub mem_bw: f64,
}

/// Per-kernel sustained efficiency (fraction of peak).
#[derive(Debug, Clone)]
pub struct KernelEff {
    pub dgemm: f64,
    pub daxpy: f64,
    pub dtrsm: f64,
    pub panel: f64,
    pub stencil: f64,
    pub spmv: f64,
    pub fft: f64,
    pub nbody: f64,
    pub scalar: f64,
}

impl KernelEff {
    /// Efficiencies representative of tuned i860 libraries (NX/BLAS).
    pub fn i860() -> KernelEff {
        KernelEff {
            dgemm: 0.58,
            daxpy: 0.16,
            dtrsm: 0.38,
            panel: 0.30,
            stencil: 0.22,
            spmv: 0.10,
            fft: 0.30,
            nbody: 0.45,
            scalar: 0.08,
        }
    }

    /// i860XP (Paragon) — slightly better memory system.
    pub fn i860xp() -> KernelEff {
        KernelEff {
            dgemm: 0.62,
            daxpy: 0.20,
            dtrsm: 0.42,
            panel: 0.34,
            stencil: 0.26,
            spmv: 0.12,
            fft: 0.34,
            nbody: 0.48,
            scalar: 0.10,
        }
    }

    /// Efficiencies *measured* on this repo's own kernel engine — the
    /// calibration loop the simulator's per-kernel treatment exists
    /// for. Numbers are from `report bench-kernels`
    /// (`BENCH_kernels.json`) on the AVX2 development host: peak =
    /// 2.1 GHz × 16 DP FLOP/cycle (two 4-wide FMA ports) = 33.6
    /// GFLOP/s, and each fraction below is a measured sustained rate
    /// over that peak:
    ///
    /// * `dgemm` 0.68 — packed BLIS-style GEMM, 22.9 GF/s at n=2048.
    /// * `dtrsm` 0.38 — packed AVX2 row-block TRSM, ~12.8 GF/s inside
    ///   `lu_factor_recorded`'s trsm spans.
    /// * `panel` 0.24 — recursive packed panel factorisation, ~8 GF/s.
    /// * `stencil` 0.18 — fused shallow-water sweep, 6.1 GF/s.
    /// * `fft` 0.16 — cache-oblivious AVX2 FFT, 5.5 GF/s at n=2^20.
    /// * `spmv` 0.11 — interleaved SpMV plan, L2-resident x, 3.7 GF/s.
    /// * `scalar` 0.10 — compiled blocked loops without the packed
    ///   engine (`matmul_blocked48` runs at ~6 GF/s; generic scalar
    ///   code sits below that).
    /// * `daxpy` 0.06 — streaming vector ops, DRAM-bandwidth bound.
    /// * `nbody` 0.45 — estimate; not yet measured by `bench-kernels`.
    ///
    /// Thirty-five years after the i860, the *shape* of the profile is
    /// unchanged — dense BLAS3 near peak, indirect/streaming kernels an
    /// order of magnitude below — which is exactly the spread the
    /// paper's "peak vs LINPACK vs application" story turns on.
    pub fn avx2_measured() -> KernelEff {
        KernelEff {
            dgemm: 0.68,
            daxpy: 0.06,
            dtrsm: 0.38,
            panel: 0.24,
            stencil: 0.18,
            spmv: 0.11,
            fft: 0.16,
            nbody: 0.45,
            scalar: 0.10,
        }
    }

    /// An ideal node that always sustains peak (ablation baseline).
    pub fn ideal() -> KernelEff {
        KernelEff {
            dgemm: 1.0,
            daxpy: 1.0,
            dtrsm: 1.0,
            panel: 1.0,
            stencil: 1.0,
            spmv: 1.0,
            fft: 1.0,
            nbody: 1.0,
            scalar: 1.0,
        }
    }

    pub fn for_kernel(&self, k: Kernel) -> f64 {
        match k {
            Kernel::Dgemm => self.dgemm,
            Kernel::Daxpy => self.daxpy,
            Kernel::Dtrsm => self.dtrsm,
            Kernel::Panel => self.panel,
            Kernel::Stencil => self.stencil,
            Kernel::Spmv => self.spmv,
            Kernel::Fft => self.fft,
            Kernel::Nbody => self.nbody,
            Kernel::Scalar => self.scalar,
        }
    }
}

impl NodeModel {
    /// Time to execute `flops` floating-point operations of kernel `k`.
    pub fn compute_time(&self, k: Kernel, flops: f64) -> Dur {
        assert!(flops >= 0.0 && flops.is_finite());
        let rate = self.peak_flops * self.eff.for_kernel(k);
        Dur::from_secs_f64(flops / rate)
    }

    /// Sustained FLOP rate for a kernel, FLOP/s.
    pub fn sustained(&self, k: Kernel) -> f64 {
        self.peak_flops * self.eff.for_kernel(k)
    }
}

/// How messages traverse the network.
///
/// The first-generation hypercubes (iPSC/1) buffered whole messages at
/// every intermediate node; the Touchstone series' wormhole routers
/// pipeline flits so transfer time is (nearly) distance-insensitive.
/// Keeping both lets the ablation benches show what the router bought.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Switching {
    /// Flit-pipelined; the path is held once, end to end.
    #[default]
    Wormhole,
    /// Whole message retransmitted hop by hop.
    StoreAndForward,
}

/// Network cost model (per-message, link-occupancy semantics — see
/// `sim.rs` for the wormhole approximation).
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Message switching discipline.
    pub switching: Switching,
    /// Sender CPU overhead per message (software send path).
    pub send_overhead: Dur,
    /// Receiver CPU overhead per message.
    pub recv_overhead: Dur,
    /// Wire/router setup before the first byte moves.
    pub wire_latency: Dur,
    /// Router delay per hop (wormhole header routing).
    pub per_hop: Dur,
    /// Per-channel bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl NetModel {
    /// Uncontended one-way time for `bytes` over `hops` hops.
    pub fn transfer_time(&self, bytes: u64, hops: usize) -> Dur {
        let serial = Dur::from_secs_f64(bytes as f64 / self.bandwidth);
        match self.switching {
            Switching::Wormhole => self.wire_latency + self.per_hop * hops as u64 + serial,
            Switching::StoreAndForward => {
                // The whole message is retransmitted at every hop.
                self.wire_latency + (self.per_hop + serial) * hops.max(1) as u64
            }
        }
    }

    /// The classic half-performance message length n_1/2: bytes at which
    /// achieved bandwidth is half the asymptotic channel rate.
    pub fn n_half(&self, hops: usize) -> u64 {
        let t0 = (self.wire_latency + self.per_hop * hops as u64).as_secs_f64();
        (t0 * self.bandwidth) as u64
    }

    /// Conservative-simulation lookahead: a lower bound on the virtual
    /// time between a send being issued and the message arriving at any
    /// node in another lane (≥ one hop away). A message sent at time `t`
    /// can never arrive before `t + lookahead()`, so a lane that has
    /// advanced to `T` cannot be affected by remote events until
    /// `T + lookahead()` — the window width of the sharded engine.
    ///
    /// Floored at 1 ns so the window is never empty (the `ideal` preset
    /// has near-zero overheads).
    pub fn lookahead(&self) -> Dur {
        Dur((self.send_overhead + self.wire_latency + self.per_hop)
            .0
            .max(1))
    }
}

/// A complete machine description.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub name: String,
    pub topology: Topology,
    pub node: NodeModel,
    pub net: NetModel,
}

impl MachineConfig {
    pub fn nodes(&self) -> usize {
        self.topology.nodes()
    }

    /// Aggregate peak FLOP rate — the number the deck headlines.
    pub fn peak_flops(&self) -> f64 {
        self.node.peak_flops * self.nodes() as f64
    }

    /// Bisection bandwidth in bytes/s.
    pub fn bisection_bandwidth(&self) -> f64 {
        self.topology.bisection_links() as f64 * self.net.bandwidth
    }

    /// Total memory across nodes.
    pub fn total_memory(&self) -> u64 {
        self.memory_per_node() * self.nodes() as u64
    }

    pub fn memory_per_node(&self) -> u64 {
        self.node.memory_bytes
    }

    /// Largest LINPACK order that fits: the n×n matrix plus workspace
    /// (factor 1.15) across aggregate memory.
    pub fn max_linpack_order(&self) -> usize {
        let usable = self.total_memory() as f64 / 1.15;
        ((usable / 8.0).sqrt()) as usize
    }
}

pub mod presets {
    //! The machines of the Concurrent Supercomputer Consortium story.

    use super::*;

    const MB: u64 = 1 << 20;

    fn i860_node(peak: f64, mem: u64, eff: KernelEff) -> NodeModel {
        NodeModel {
            peak_flops: peak,
            memory_bytes: mem,
            eff,
            mem_bw: 55.0e6,
        }
    }

    /// The Intel Touchstone Delta as installed at Caltech: 16×33 mesh of
    /// 528 numeric nodes, 32 GFLOPS peak (the exhibit's own numbers).
    pub fn delta_528() -> MachineConfig {
        delta(16, 33)
    }

    /// A Delta-class machine with an arbitrary mesh shape.
    pub fn delta(rows: usize, cols: usize) -> MachineConfig {
        MachineConfig {
            name: format!("Touchstone Delta {rows}x{cols}"),
            topology: Topology::Mesh2D { rows, cols },
            // 32e9 / 528 per node: the deck's "32 GFLOPS from 528".
            node: i860_node(32.0e9 / 528.0, 16 * MB, KernelEff::i860()),
            net: NetModel {
                switching: Switching::Wormhole,
                send_overhead: Dur::from_micros(47),
                recv_overhead: Dur::from_micros(25),
                wire_latency: Dur::from_micros(8),
                per_hop: Dur::from_nanos(300),
                bandwidth: 25.0e6,
            },
        }
    }

    /// Intel iPSC/860 ("Touchstone Gamma"): hypercube predecessor.
    pub fn ipsc860(dim: u32) -> MachineConfig {
        MachineConfig {
            name: format!("iPSC/860 d={dim}"),
            topology: Topology::Hypercube { dim },
            node: i860_node(60.0e6, 8 * MB, KernelEff::i860()),
            net: NetModel {
                switching: Switching::Wormhole,
                send_overhead: Dur::from_micros(75),
                recv_overhead: Dur::from_micros(60),
                wire_latency: Dur::from_micros(25),
                per_hop: Dur::from_micros(10),
                bandwidth: 2.8e6,
            },
        }
    }

    /// Intel Paragon XP/S — the Delta's announced production successor.
    pub fn paragon(rows: usize, cols: usize) -> MachineConfig {
        MachineConfig {
            name: format!("Paragon XP/S {rows}x{cols}"),
            topology: Topology::Mesh2D { rows, cols },
            node: i860_node(75.0e6, 32 * MB, KernelEff::i860xp()),
            net: NetModel {
                switching: Switching::Wormhole,
                send_overhead: Dur::from_micros(22),
                recv_overhead: Dur::from_micros(12),
                wire_latency: Dur::from_micros(4),
                per_hop: Dur::from_nanos(150),
                bandwidth: 175.0e6,
            },
        }
    }

    /// Ablation: the Delta with store-and-forward switching instead of
    /// wormhole routers — the first-generation-hypercube discipline on
    /// the same wires. Used to show what the Touchstone routers bought.
    pub fn delta_store_and_forward(rows: usize, cols: usize) -> MachineConfig {
        let mut m = delta(rows, cols);
        m.name = format!("Delta {rows}x{cols} (store-and-forward ablation)");
        m.net.switching = Switching::StoreAndForward;
        m
    }

    /// The AVX2 development host this repo's kernels are measured on,
    /// as a machine model: one 2.1 GHz core with two 4-wide FMA ports
    /// (33.6 GFLOP/s peak), kernel efficiencies calibrated from
    /// `BENCH_kernels.json` ([`KernelEff::avx2_measured`]). Closes the
    /// loop between the simulator and the engine: a modelled kernel
    /// time on this preset is checkable against a wall-clock run.
    pub fn avx2_host() -> MachineConfig {
        MachineConfig {
            name: "AVX2 host (calibrated)".to_string(),
            topology: Topology::Full { n: 1 },
            node: NodeModel {
                peak_flops: 33.6e9,
                memory_bytes: 4096 * MB,
                eff: KernelEff::avx2_measured(),
                // Streaming copy bandwidth of the host's DRAM.
                mem_bw: 12.0e9,
            },
            net: NetModel {
                switching: Switching::Wormhole,
                // Loopback-class costs: a single-node preset only uses
                // these for self-sends.
                send_overhead: Dur::from_micros(1),
                recv_overhead: Dur::from_micros(1),
                wire_latency: Dur::from_nanos(100),
                per_hop: Dur::ZERO,
                bandwidth: 10.0e9,
            },
        }
    }

    /// An idealised machine: Delta nodes on a zero-latency full crossbar
    /// at 100% kernel efficiency — the "speed of light" ablation bound.
    pub fn ideal(n: usize) -> MachineConfig {
        MachineConfig {
            name: format!("Ideal crossbar n={n}"),
            topology: Topology::Full { n },
            node: i860_node(32.0e9 / 528.0, 64 * MB, KernelEff::ideal()),
            net: NetModel {
                switching: Switching::Wormhole,
                send_overhead: Dur::from_nanos(1),
                recv_overhead: Dur::from_nanos(1),
                wire_latency: Dur::from_nanos(1),
                per_hop: Dur::ZERO,
                bandwidth: 1.0e12,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::presets::*;
    use super::*;

    #[test]
    fn delta_peak_is_exactly_32_gflops() {
        let m = delta_528();
        assert_eq!(m.nodes(), 528);
        assert!((m.peak_flops() - 32.0e9).abs() < 1.0, "{}", m.peak_flops());
    }

    #[test]
    fn delta_fits_order_25000() {
        // The deck's LINPACK run "OF ORDER 25,000 BY 25,000" must fit in
        // the modelled 16 MB/node × 528 memory.
        let m = delta_528();
        assert!(
            m.max_linpack_order() >= 25_000,
            "max order {}",
            m.max_linpack_order()
        );
    }

    #[test]
    fn compute_time_scales_with_efficiency() {
        let m = delta_528();
        let t_gemm = m.node.compute_time(Kernel::Dgemm, 1e9);
        let t_scalar = m.node.compute_time(Kernel::Scalar, 1e9);
        assert!(t_scalar > t_gemm * 5, "{t_scalar} vs {t_gemm}");
    }

    #[test]
    fn sustained_rate_below_peak() {
        let m = delta_528();
        for k in [
            Kernel::Dgemm,
            Kernel::Daxpy,
            Kernel::Dtrsm,
            Kernel::Panel,
            Kernel::Stencil,
            Kernel::Spmv,
            Kernel::Fft,
            Kernel::Nbody,
            Kernel::Scalar,
        ] {
            assert!(m.node.sustained(k) <= m.node.peak_flops);
            assert!(m.node.sustained(k) > 0.0);
        }
    }

    #[test]
    fn transfer_time_components() {
        let net = delta_528().net;
        let t = net.transfer_time(25_000_000, 0);
        // 25 MB at 25 MB/s is one second plus latency.
        assert!((t.as_secs_f64() - 1.0).abs() < 0.001, "{t}");
        let short = net.transfer_time(0, 10);
        assert!(short >= net.wire_latency);
    }

    #[test]
    fn lookahead_bounds_any_remote_transfer() {
        for m in [delta_528(), paragon(16, 33), ipsc860(7), ideal(64)] {
            let la = m.net.lookahead();
            assert!(la.0 >= 1, "window must be non-empty");
            // No message to a node ≥ 1 hop away beats the lookahead.
            let fastest = m.net.send_overhead + m.net.transfer_time(0, 1);
            assert!(la <= fastest, "{la} vs {fastest} on {}", m.name);
        }
    }

    #[test]
    fn n_half_is_positive_and_sane() {
        let net = delta_528().net;
        let nh = net.n_half(8);
        // ~10 µs of latency at 25 MB/s is a few hundred bytes.
        assert!(nh > 50 && nh < 5_000, "n_1/2 = {nh}");
    }

    #[test]
    fn machine_series_ordering() {
        // The DARPA series improves monotonically: Gamma -> Delta -> Paragon.
        let gamma = ipsc860(7);
        let delta = delta_528();
        let paragon = paragon(16, 33);
        assert!(gamma.net.bandwidth < delta.net.bandwidth);
        assert!(delta.net.bandwidth < paragon.net.bandwidth);
        assert!(gamma.net.send_overhead > delta.net.send_overhead);
        assert!(delta.net.send_overhead > paragon.net.send_overhead);
        assert!(paragon.node.peak_flops > delta.node.peak_flops);
    }

    #[test]
    fn avx2_host_matches_bench_calibration() {
        let m = avx2_host();
        assert_eq!(m.nodes(), 1);
        // Peak is the host's 2.1 GHz × 16 DP FLOP/cycle.
        assert!((m.peak_flops() - 33.6e9).abs() < 1.0);
        // Sustained dgemm reproduces the measured 22.9 GF/s within the
        // calibration's rounding (±1 GF/s).
        assert!((m.node.sustained(Kernel::Dgemm) - 22.9e9).abs() < 1.0e9);
        // The measured profile keeps the canonical ordering: dense
        // BLAS3 fastest, indirect/streaming kernels far below.
        let e = &m.node.eff;
        assert!(e.dgemm > e.dtrsm && e.dtrsm > e.panel);
        assert!(e.panel > e.stencil && e.stencil > e.fft);
        assert!(e.fft > e.spmv && e.spmv > e.daxpy);
        // A modelled n=2048 LU trailing update (dgemm class) is within
        // a factor-of-two of the measured 288 ms wall time — the
        // feedback loop the preset exists for.
        let t = m
            .node
            .compute_time(Kernel::Dgemm, 2.0 / 3.0 * 2048f64.powi(3));
        let secs = t.as_secs_f64();
        assert!(secs > 0.15 && secs < 0.6, "modelled LU {secs:.3}s");
    }

    #[test]
    fn bisection_bandwidth_mesh() {
        let m = delta_528();
        // 2*16 channels * 25 MB/s = 800 MB/s.
        assert!((m.bisection_bandwidth() - 32.0 * 25.0e6).abs() < 1.0);
    }
}
