//! Rectangular sub-mesh allocation — how the Concurrent Supercomputer
//! Consortium actually shared the Delta ("ACQUIRE AND UTILIZE").
//!
//! The Delta's NX space-shared the 16×33 mesh: each job got a contiguous
//! rectangular sub-mesh. Allocation is the classic early-90s problem
//! (first-fit frames, fragmentation); this module provides the occupancy
//! grid, a first-fit allocator with optional rotation, and fragmentation
//! diagnostics.

use crate::topology::Topology;

/// A contiguous rectangular region of the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubMesh {
    pub row: usize,
    pub col: usize,
    pub rows: usize,
    pub cols: usize,
}

impl SubMesh {
    pub fn nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// Global node ids covered, row-major.
    pub fn node_ids(&self, mesh_cols: usize) -> impl Iterator<Item = usize> + '_ {
        let (r0, c0, rs, cs) = (self.row, self.col, self.rows, self.cols);
        (0..rs).flat_map(move |r| (0..cs).map(move |c| (r0 + r) * mesh_cols + c0 + c))
    }

    pub fn overlaps(&self, other: &SubMesh) -> bool {
        self.row < other.row + other.rows
            && other.row < self.row + self.rows
            && self.col < other.col + other.cols
            && other.col < self.col + self.cols
    }
}

/// Occupancy state of a 2-D mesh being space-shared.
#[derive(Debug, Clone)]
pub struct MeshSpace {
    rows: usize,
    cols: usize,
    busy: Vec<bool>,
    /// Permanently retired nodes (hardware failures). Kept separate from
    /// `busy` so freeing a sub-mesh that contains a failed node does not
    /// resurrect it.
    failed: Vec<bool>,
    allocated: Vec<SubMesh>,
}

impl MeshSpace {
    pub fn new(rows: usize, cols: usize) -> MeshSpace {
        MeshSpace {
            rows,
            cols,
            busy: vec![false; rows * cols],
            failed: vec![false; rows * cols],
            allocated: Vec::new(),
        }
    }

    /// Build from a machine topology (must be a mesh).
    pub fn for_topology(topo: &Topology) -> MeshSpace {
        match *topo {
            Topology::Mesh2D { rows, cols } => MeshSpace::new(rows, cols),
            _ => panic!("space sharing needs a 2-D mesh"),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn total_nodes(&self) -> usize {
        self.rows * self.cols
    }

    pub fn free_nodes(&self) -> usize {
        self.busy
            .iter()
            .zip(&self.failed)
            .filter(|&(&b, &f)| !b && !f)
            .count()
    }

    /// Nodes permanently retired by hardware failure.
    pub fn failed_nodes(&self) -> usize {
        self.failed.iter().filter(|&&f| f).count()
    }

    pub fn allocations(&self) -> &[SubMesh] {
        &self.allocated
    }

    /// Permanently retire `node` (row-major id): it never satisfies
    /// another allocation. Idempotent; the node may currently be inside
    /// an allocated sub-mesh (the scheduler drains that job separately).
    pub fn fail_node(&mut self, node: usize) {
        self.failed[node] = true;
    }

    /// The allocated sub-mesh containing `node`, if any.
    pub fn allocation_containing(&self, node: usize) -> Option<SubMesh> {
        let (r, c) = (node / self.cols, node % self.cols);
        self.allocated
            .iter()
            .copied()
            .find(|a| r >= a.row && r < a.row + a.rows && c >= a.col && c < a.col + a.cols)
    }

    fn fits_at(&self, row: usize, col: usize, r: usize, c: usize) -> bool {
        if row + r > self.rows || col + c > self.cols {
            return false;
        }
        for i in row..row + r {
            for j in col..col + c {
                if self.busy[i * self.cols + j] || self.failed[i * self.cols + j] {
                    return false;
                }
            }
        }
        true
    }

    fn mark(&mut self, sm: &SubMesh, value: bool) {
        for i in sm.row..sm.row + sm.rows {
            for j in sm.col..sm.col + sm.cols {
                debug_assert_ne!(self.busy[i * self.cols + j], value);
                self.busy[i * self.cols + j] = value;
            }
        }
    }

    /// First-fit allocation of an `r × c` frame, scanning row-major.
    /// With `rotate`, the transposed shape is tried when the upright one
    /// does not fit anywhere.
    pub fn allocate(&mut self, r: usize, c: usize, rotate: bool) -> Option<SubMesh> {
        assert!(r > 0 && c > 0);
        let shapes: &[(usize, usize)] = if rotate && r != c {
            &[(r, c), (c, r)]
        } else {
            &[(r, c)]
        };
        for &(r, c) in shapes {
            for row in 0..self.rows.saturating_sub(r - 1) {
                for col in 0..self.cols.saturating_sub(c - 1) {
                    if self.fits_at(row, col, r, c) {
                        let sm = SubMesh {
                            row,
                            col,
                            rows: r,
                            cols: c,
                        };
                        self.mark(&sm, true);
                        self.allocated.push(sm);
                        return Some(sm);
                    }
                }
            }
        }
        None
    }

    /// Release a previously allocated sub-mesh.
    pub fn free(&mut self, sm: SubMesh) {
        let pos = self
            .allocated
            .iter()
            .position(|a| *a == sm)
            .expect("freeing an unallocated sub-mesh");
        self.allocated.swap_remove(pos);
        self.mark(&sm, false);
    }

    /// True when the request is refused even though enough *total* free
    /// nodes exist — external fragmentation, the metric the sub-mesh
    /// allocation literature of the era optimised.
    pub fn is_fragmented_refusal(&self, r: usize, c: usize, rotate: bool) -> bool {
        if self.free_nodes() < r * c {
            return false;
        }
        let mut probe = self.clone();
        probe.allocate(r, c, rotate).is_none()
    }
}

/// Static assignment of nodes to parallel simulation lanes.
///
/// A lane is a shard of the discrete-event engine: one event calendar,
/// one executor, one contiguous block of node ids. For a 2-D mesh the
/// blocks are whole rows, which matters because XY routing (column
/// first, then row) keeps every intra-lane route on intra-lane links —
/// only messages whose endpoints live in different lanes cross a lane
/// boundary. For other topologies the blocks are plain id ranges.
///
/// The requested lane count is clamped so every lane is non-empty
/// (≤ rows for a mesh, ≤ nodes otherwise).
#[derive(Debug, Clone)]
pub struct LaneMap {
    /// `starts[l]..starts[l + 1]` is lane `l`'s node range.
    starts: Vec<usize>,
}

impl LaneMap {
    pub fn new(topo: &Topology, lanes: usize) -> LaneMap {
        let nodes = topo.nodes();
        assert!(nodes > 0, "lane map over an empty machine");
        let units = match *topo {
            Topology::Mesh2D { rows, .. } => rows,
            _ => nodes,
        };
        let per_unit = nodes / units;
        let lanes = lanes.clamp(1, units);
        // Balanced contiguous blocks: lane l gets units [l*u/L, (l+1)*u/L).
        let starts: Vec<usize> = (0..=lanes)
            .map(|l| (l * units / lanes) * per_unit)
            .collect();
        LaneMap { starts }
    }

    /// Single-lane map (the legacy engine's view of the machine).
    pub fn single(topo: &Topology) -> LaneMap {
        LaneMap::new(topo, 1)
    }

    #[inline]
    pub fn lanes(&self) -> usize {
        self.starts.len() - 1
    }

    /// Lane owning `node`.
    #[inline]
    pub fn lane_of(&self, node: usize) -> usize {
        debug_assert!(node < *self.starts.last().unwrap());
        self.starts.partition_point(|&s| s <= node) - 1
    }

    /// Node ids owned by `lane`.
    #[inline]
    pub fn range(&self, lane: usize) -> std::ops::Range<usize> {
        self.starts[lane]..self.starts[lane + 1]
    }

    pub fn total_nodes(&self) -> usize {
        *self.starts.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_and_frees() {
        let mut m = MeshSpace::new(4, 4);
        let a = m.allocate(2, 2, false).unwrap();
        assert_eq!(m.free_nodes(), 12);
        let b = m.allocate(2, 2, false).unwrap();
        assert!(!a.overlaps(&b));
        assert_eq!(m.free_nodes(), 8);
        m.free(a);
        assert_eq!(m.free_nodes(), 12);
        m.free(b);
        assert_eq!(m.free_nodes(), 16);
        assert!(m.allocations().is_empty());
    }

    #[test]
    fn first_fit_is_row_major_deterministic() {
        let mut m = MeshSpace::new(4, 4);
        let a = m.allocate(2, 3, false).unwrap();
        assert_eq!((a.row, a.col), (0, 0));
        let b = m.allocate(2, 3, false).unwrap();
        assert_eq!((b.row, b.col), (2, 0), "next frame below, row-major scan");
    }

    #[test]
    fn full_machine_fits_exactly() {
        let mut m = MeshSpace::new(16, 33);
        let a = m.allocate(16, 33, false).unwrap();
        assert_eq!(a.nodes(), 528);
        assert_eq!(m.free_nodes(), 0);
        assert!(m.allocate(1, 1, false).is_none());
    }

    #[test]
    fn rotation_rescues_tall_requests() {
        let mut m = MeshSpace::new(2, 8);
        assert!(m.allocate(6, 2, false).is_none(), "6 rows cannot fit");
        let a = m.allocate(6, 2, true).unwrap();
        assert_eq!((a.rows, a.cols), (2, 6), "rotated placement");
    }

    #[test]
    fn fragmentation_detected() {
        // Checkerboard 1x1 allocations leave plenty of free nodes but no
        // contiguous 2x2 frame.
        let mut m = MeshSpace::new(4, 4);
        let mut holders = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                if (i + j) % 2 == 0 {
                    holders.push(m.allocate(1, 1, false).unwrap());
                }
            }
        }
        // First-fit 1x1s fill row-major, so re-mark the board explicitly:
        for h in holders {
            m.free(h);
        }
        for i in 0..4 {
            for j in 0..4 {
                if (i + j) % 2 == 0 {
                    // direct placement via fits_at path
                    let sm = SubMesh {
                        row: i,
                        col: j,
                        rows: 1,
                        cols: 1,
                    };
                    assert!(m.fits_at(i, j, 1, 1));
                    m.mark(&sm, true);
                    m.allocated.push(sm);
                }
            }
        }
        assert_eq!(m.free_nodes(), 8);
        assert!(m.is_fragmented_refusal(2, 2, true));
        assert!(
            !m.is_fragmented_refusal(4, 4, true),
            "not enough nodes anyway"
        );
    }

    #[test]
    fn node_ids_match_topology_layout() {
        let sm = SubMesh {
            row: 1,
            col: 2,
            rows: 2,
            cols: 2,
        };
        let ids: Vec<usize> = sm.node_ids(33).collect();
        assert_eq!(ids, vec![33 + 2, 33 + 3, 2 * 33 + 2, 2 * 33 + 3]);
    }

    #[test]
    fn failed_nodes_stay_retired() {
        let mut m = MeshSpace::new(2, 2);
        let a = m.allocate(2, 2, false).unwrap();
        assert_eq!(m.allocation_containing(3), Some(a));
        m.fail_node(3);
        m.free(a);
        assert_eq!(m.free_nodes(), 3, "failed node is not free");
        assert_eq!(m.failed_nodes(), 1);
        assert!(m.allocate(2, 2, false).is_none(), "frame needs node 3");
        let b = m.allocate(2, 1, false).unwrap();
        assert_eq!((b.row, b.col), (0, 0));
        assert_eq!(m.allocation_containing(1), None, "node 1 is free");
        m.fail_node(3); // idempotent
        assert_eq!(m.failed_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut m = MeshSpace::new(2, 2);
        let a = m.allocate(1, 1, false).unwrap();
        m.free(a);
        m.free(a);
    }

    #[test]
    fn lane_map_covers_mesh_in_row_blocks() {
        let topo = Topology::Mesh2D { rows: 16, cols: 33 };
        let map = LaneMap::new(&topo, 4);
        assert_eq!(map.lanes(), 4);
        assert_eq!(map.total_nodes(), 528);
        // Contiguous, disjoint, exhaustive, row-aligned.
        let mut covered = 0;
        for l in 0..map.lanes() {
            let r = map.range(l);
            assert_eq!(r.start, covered);
            assert_eq!(r.start % 33, 0, "lane starts on a row boundary");
            for n in r.clone() {
                assert_eq!(map.lane_of(n), l);
            }
            covered = r.end;
        }
        assert_eq!(covered, 528);
    }

    #[test]
    fn lane_map_clamps_to_rows() {
        let topo = Topology::Mesh2D { rows: 3, cols: 10 };
        let map = LaneMap::new(&topo, 8);
        assert_eq!(map.lanes(), 3, "one lane per row at most");
        for l in 0..3 {
            assert_eq!(map.range(l).len(), 10, "whole rows, never split");
        }
        assert_eq!(LaneMap::new(&topo, 0).lanes(), 1, "floor of one lane");
    }

    #[test]
    fn lane_map_balances_uneven_division() {
        let topo = Topology::Mesh2D { rows: 10, cols: 4 };
        let map = LaneMap::new(&topo, 4);
        let sizes: Vec<usize> = (0..4).map(|l| map.range(l).len() / 4).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(
            sizes.iter().all(|&s| s == 2 || s == 3),
            "rows split 2/3/2/3"
        );
    }

    #[test]
    fn lane_map_single_matches_legacy_view() {
        let topo = Topology::Mesh2D { rows: 16, cols: 33 };
        let map = LaneMap::single(&topo);
        assert_eq!(map.lanes(), 1);
        assert_eq!(map.range(0), 0..528);
        assert_eq!(map.lane_of(527), 0);
    }

    #[test]
    fn lane_map_non_mesh_uses_id_blocks() {
        let topo = Topology::Hypercube { dim: 7 }; // 128 nodes
        let map = LaneMap::new(&topo, 4);
        assert_eq!(map.lanes(), 4);
        assert_eq!(map.total_nodes(), 128);
        assert_eq!(map.range(0), 0..32);
        assert_eq!(map.lane_of(127), 3);
    }
}
