//! Interconnect topologies of the early-1990s DARPA MPP series.
//!
//! The Touchstone Delta is a 2-D mesh with deterministic dimension-order
//! (XY) wormhole routing; its predecessor iPSC/860 ("Gamma") is a
//! hypercube with e-cube routing. A fully-connected ideal network is
//! included as an upper bound for ablations.
//!
//! Links are *directed* channels identified by a dense [`LinkId`] so the
//! simulator can keep per-channel occupancy in a flat `Vec`.

/// Index of a directed channel in a topology.
pub type LinkId = usize;

/// A network shape: node count, routing, and link enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// `rows × cols` 2-D mesh (the Delta is 16 × 33 numeric nodes).
    Mesh2D { rows: usize, cols: usize },
    /// `2^dim` nodes, e-cube routed (iPSC/860 class).
    Hypercube { dim: u32 },
    /// Every pair directly connected — an idealised crossbar.
    Full { n: usize },
}

impl Topology {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Mesh2D { rows, cols } => rows * cols,
            Topology::Hypercube { dim } => 1 << dim,
            Topology::Full { n } => n,
        }
    }

    /// Number of directed channels.
    pub fn links(&self) -> usize {
        match *self {
            // Horizontal: rows * (cols-1) per direction; vertical likewise.
            Topology::Mesh2D { rows, cols } => 2 * (rows * (cols - 1) + cols * (rows - 1)),
            Topology::Hypercube { dim } => (1usize << dim) * dim as usize,
            Topology::Full { n } => n * n.saturating_sub(1),
        }
    }

    /// Hop count of the deterministic route between two nodes.
    pub fn hops(&self, from: usize, to: usize) -> usize {
        match *self {
            Topology::Mesh2D { cols, .. } => {
                let (r0, c0) = (from / cols, from % cols);
                let (r1, c1) = (to / cols, to % cols);
                r0.abs_diff(r1) + c0.abs_diff(c1)
            }
            Topology::Hypercube { .. } => (from ^ to).count_ones() as usize,
            Topology::Full { .. } => usize::from(from != to),
        }
    }

    /// Network diameter (max hops over all pairs).
    pub fn diameter(&self) -> usize {
        match *self {
            Topology::Mesh2D { rows, cols } => (rows - 1) + (cols - 1),
            Topology::Hypercube { dim } => dim as usize,
            Topology::Full { n } => usize::from(n > 1),
        }
    }

    /// Directed channels crossing the canonical bisection — the figure of
    /// merit the 1992 MPP literature quotes as "bisection bandwidth" once
    /// multiplied by channel rate.
    pub fn bisection_links(&self) -> usize {
        match *self {
            // Cut between column cols/2-1 and cols/2: `rows` channels each way.
            Topology::Mesh2D { rows, cols } => {
                if cols >= 2 {
                    2 * rows
                } else {
                    // Degenerate single-column mesh: one vertical cut.
                    2
                }
            }
            Topology::Hypercube { dim } => 1usize << dim, // 2 * 2^(dim-1) directed
            Topology::Full { n } => 2 * (n / 2) * (n - n / 2),
        }
    }

    /// The deterministic route from `from` to `to` as a list of directed
    /// channel ids. Empty when `from == to`.
    ///
    /// * Mesh: dimension-order XY — resolve the column first, then the row
    ///   (this is the Delta's hardware router order).
    /// * Hypercube: e-cube — correct differing address bits lowest-first.
    /// * Full: the single direct channel.
    pub fn route(&self, from: usize, to: usize, out: &mut Vec<LinkId>) {
        out.clear();
        if from == to {
            return;
        }
        match *self {
            Topology::Mesh2D { rows, cols } => {
                let (mut r, mut c) = (from / cols, from % cols);
                let (r1, c1) = (to / cols, to % cols);
                while c != c1 {
                    let next = if c1 > c { c + 1 } else { c - 1 };
                    out.push(mesh_link(rows, cols, r * cols + c, r * cols + next));
                    c = next;
                }
                while r != r1 {
                    let next = if r1 > r { r + 1 } else { r - 1 };
                    out.push(mesh_link(rows, cols, r * cols + c, next * cols + c));
                    r = next;
                }
            }
            Topology::Hypercube { dim } => {
                let mut cur = from;
                for bit in 0..dim {
                    if (cur ^ to) & (1 << bit) != 0 {
                        let next = cur ^ (1 << bit);
                        out.push(cur * dim as usize + bit as usize);
                        cur = next;
                    }
                }
                debug_assert_eq!(cur, to);
            }
            Topology::Full { n } => {
                // Dense id for the (from, to) ordered pair, skipping self.
                let col = if to > from { to - 1 } else { to };
                out.push(from * (n - 1) + col);
            }
        }
    }

    /// Mesh coordinates of a node (mesh only).
    pub fn mesh_coords(&self, node: usize) -> Option<(usize, usize)> {
        match *self {
            Topology::Mesh2D { cols, .. } => Some((node / cols, node % cols)),
            _ => None,
        }
    }

    /// The outgoing channels of `node` as `(neighbour, link)` pairs, in a
    /// fixed order (mesh: east, west, south, north; hypercube: bit order;
    /// full: node order). The fixed order is what keeps detour routing
    /// deterministic.
    pub fn neighbours(&self, node: usize, out: &mut Vec<(usize, LinkId)>) {
        out.clear();
        match *self {
            Topology::Mesh2D { rows, cols } => {
                let (r, c) = (node / cols, node % cols);
                if c + 1 < cols {
                    out.push((node + 1, mesh_link(rows, cols, node, node + 1)));
                }
                if c > 0 {
                    out.push((node - 1, mesh_link(rows, cols, node, node - 1)));
                }
                if r + 1 < rows {
                    out.push((node + cols, mesh_link(rows, cols, node, node + cols)));
                }
                if r > 0 {
                    out.push((node - cols, mesh_link(rows, cols, node, node - cols)));
                }
            }
            Topology::Hypercube { dim } => {
                for bit in 0..dim as usize {
                    out.push((node ^ (1 << bit), node * dim as usize + bit));
                }
            }
            Topology::Full { n } => {
                for to in 0..n {
                    if to != node {
                        let col = if to > node { to - 1 } else { to };
                        out.push((to, node * (n - 1) + col));
                    }
                }
            }
        }
    }

    /// Fault-aware route: the deterministic route (XY / e-cube / direct)
    /// when it crosses no failed channel, otherwise the shortest detour
    /// around the failed channels (deterministic BFS, fixed neighbour
    /// order). Returns `false` — with `out` emptied — when every path
    /// from `from` to `to` crosses a failed channel (partition).
    ///
    /// `down[l]` marks directed channel `l` as failed; an empty slice
    /// means no faults and takes the exact dimension-order fast path.
    pub fn route_avoiding(
        &self,
        from: usize,
        to: usize,
        down: &[bool],
        out: &mut Vec<LinkId>,
    ) -> bool {
        let is_down = |l: LinkId| down.get(l).copied().unwrap_or(false);
        self.route(from, to, out);
        if out.iter().all(|&l| !is_down(l)) {
            return true;
        }
        // BFS over live channels; parent links reconstruct the path.
        let n = self.nodes();
        let mut parent: Vec<Option<(usize, LinkId)>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        let mut nbrs = Vec::new();
        parent[from] = Some((from, 0));
        queue.push_back(from);
        'bfs: while let Some(cur) = queue.pop_front() {
            self.neighbours(cur, &mut nbrs);
            for &(nb, link) in &nbrs {
                if parent[nb].is_none() && !is_down(link) {
                    parent[nb] = Some((cur, link));
                    if nb == to {
                        break 'bfs;
                    }
                    queue.push_back(nb);
                }
            }
        }
        out.clear();
        if parent[to].is_none() {
            return false;
        }
        let mut cur = to;
        while cur != from {
            let (prev, link) = parent[cur].expect("path reconstruction");
            out.push(link);
            cur = prev;
        }
        out.reverse();
        true
    }
}

/// Dense id for a directed mesh channel between *adjacent* nodes.
///
/// Layout: horizontal east-going, then horizontal west-going, then vertical
/// south-going, then vertical north-going blocks.
fn mesh_link(rows: usize, cols: usize, from: usize, to: usize) -> LinkId {
    let (r0, c0) = (from / cols, from % cols);
    let (r1, c1) = (to / cols, to % cols);
    let h = rows * (cols - 1); // east-going channels
    let v = cols * (rows - 1); // south-going channels
    if r0 == r1 {
        if c1 == c0 + 1 {
            r0 * (cols - 1) + c0 // east
        } else if c0 == c1 + 1 {
            h + r0 * (cols - 1) + c1 // west
        } else {
            panic!("not adjacent: {from}->{to}");
        }
    } else if c0 == c1 {
        if r1 == r0 + 1 {
            2 * h + c0 * (rows - 1) + r0 // south
        } else if r0 == r1 + 1 {
            2 * h + v + c0 * (rows - 1) + r1 // north
        } else {
            panic!("not adjacent: {from}->{to}");
        }
    } else {
        panic!("not adjacent: {from}->{to}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topos() -> Vec<Topology> {
        vec![
            Topology::Mesh2D { rows: 4, cols: 5 },
            Topology::Mesh2D { rows: 1, cols: 8 },
            Topology::Mesh2D { rows: 16, cols: 33 },
            Topology::Hypercube { dim: 5 },
            Topology::Full { n: 7 },
        ]
    }

    #[test]
    fn node_counts() {
        assert_eq!(Topology::Mesh2D { rows: 16, cols: 33 }.nodes(), 528);
        assert_eq!(Topology::Hypercube { dim: 7 }.nodes(), 128);
        assert_eq!(Topology::Full { n: 9 }.nodes(), 9);
    }

    #[test]
    fn route_length_matches_hops() {
        for topo in all_topos() {
            let n = topo.nodes();
            let mut route = Vec::new();
            for from in (0..n).step_by(3) {
                for to in (0..n).step_by(5) {
                    topo.route(from, to, &mut route);
                    assert_eq!(route.len(), topo.hops(from, to), "{topo:?} {from}->{to}");
                }
            }
        }
    }

    #[test]
    fn route_links_in_range() {
        for topo in all_topos() {
            let n = topo.nodes();
            let nlinks = topo.links();
            let mut route = Vec::new();
            for from in (0..n).step_by(2) {
                for to in (0..n).step_by(7) {
                    topo.route(from, to, &mut route);
                    for &l in &route {
                        assert!(l < nlinks, "{topo:?}: link {l} >= {nlinks}");
                    }
                }
            }
        }
    }

    #[test]
    fn mesh_links_are_unique_per_channel() {
        // Every adjacent ordered pair maps to a distinct link id and the ids
        // exactly cover 0..links().
        let (rows, cols) = (4, 5);
        let topo = Topology::Mesh2D { rows, cols };
        let mut seen = vec![false; topo.links()];
        for r in 0..rows {
            for c in 0..cols {
                let me = r * cols + c;
                let mut neighbours = Vec::new();
                if c + 1 < cols {
                    neighbours.push(me + 1);
                }
                if c > 0 {
                    neighbours.push(me - 1);
                }
                if r + 1 < rows {
                    neighbours.push(me + cols);
                }
                if r > 0 {
                    neighbours.push(me - cols);
                }
                for nb in neighbours {
                    let id = mesh_link(rows, cols, me, nb);
                    assert!(!seen[id], "duplicate link id {id}");
                    seen[id] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "all link ids covered");
    }

    #[test]
    fn xy_routing_resolves_column_first() {
        let topo = Topology::Mesh2D { rows: 4, cols: 4 };
        // 0 (0,0) -> 15 (3,3): first 3 east hops, then 3 south hops.
        let mut route = Vec::new();
        topo.route(0, 15, &mut route);
        assert_eq!(route.len(), 6);
        let h = 4 * 3; // east block size
        assert!(route[..3].iter().all(|&l| l < h), "first hops horizontal");
        assert!(route[3..].iter().all(|&l| l >= 2 * h), "then vertical");
    }

    #[test]
    fn hypercube_ecube_is_shortest() {
        let topo = Topology::Hypercube { dim: 6 };
        let mut route = Vec::new();
        topo.route(0b101010, 0b010101, &mut route);
        assert_eq!(route.len(), 6);
    }

    #[test]
    fn self_route_is_empty() {
        for topo in all_topos() {
            let mut route = vec![1, 2, 3];
            topo.route(2, 2, &mut route);
            assert!(route.is_empty());
        }
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::Mesh2D { rows: 16, cols: 33 }.diameter(), 47);
        assert_eq!(Topology::Hypercube { dim: 7 }.diameter(), 7);
        assert_eq!(Topology::Full { n: 100 }.diameter(), 1);
    }

    #[test]
    fn bisection_scaling_shapes() {
        // Hypercube bisection grows linearly with N; mesh with sqrt(N).
        let mesh_small = Topology::Mesh2D { rows: 4, cols: 4 }.bisection_links();
        let mesh_big = Topology::Mesh2D { rows: 16, cols: 16 }.bisection_links();
        assert_eq!(mesh_big, 4 * mesh_small); // 16x nodes -> 4x bisection
        let hc_small = Topology::Hypercube { dim: 4 }.bisection_links();
        let hc_big = Topology::Hypercube { dim: 8 }.bisection_links();
        assert_eq!(hc_big, 16 * hc_small); // 16x nodes -> 16x bisection
    }

    #[test]
    fn detour_routes_around_a_down_link() {
        let topo = Topology::Mesh2D { rows: 4, cols: 4 };
        // Kill the first east hop of the XY route 0 -> 3.
        let mut xy = Vec::new();
        topo.route(0, 3, &mut xy);
        let mut down = vec![false; topo.links()];
        down[xy[0]] = true;
        let mut detour = Vec::new();
        assert!(topo.route_avoiding(0, 3, &down, &mut detour));
        assert!(!detour.contains(&xy[0]), "detour avoids the dead channel");
        assert_eq!(detour.len(), 5, "shortest detour: 1S 3E 1N");
        // A second call is bit-identical (deterministic BFS).
        let mut again = Vec::new();
        assert!(topo.route_avoiding(0, 3, &down, &mut again));
        assert_eq!(detour, again);
    }

    #[test]
    fn route_avoiding_no_faults_is_xy() {
        for topo in all_topos() {
            let n = topo.nodes();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for from in (0..n).step_by(3) {
                for to in (0..n).step_by(5) {
                    topo.route(from, to, &mut a);
                    assert!(topo.route_avoiding(from, to, &[], &mut b));
                    assert_eq!(a, b, "{topo:?} {from}->{to}");
                }
            }
        }
    }

    #[test]
    fn partition_is_reported() {
        // 1x4 path mesh: cutting the middle east+west channels separates
        // {0,1} from {2,3}.
        let topo = Topology::Mesh2D { rows: 1, cols: 4 };
        let mut down = vec![false; topo.links()];
        let mut r = Vec::new();
        topo.route(1, 2, &mut r);
        down[r[0]] = true;
        topo.route(2, 1, &mut r);
        down[r[0]] = true;
        let mut out = vec![7];
        assert!(!topo.route_avoiding(0, 3, &down, &mut out));
        assert!(out.is_empty());
        assert!(topo.route_avoiding(0, 1, &down, &mut out));
    }

    #[test]
    fn neighbours_cover_all_links() {
        for topo in all_topos() {
            let mut seen = vec![false; topo.links()];
            let mut nbrs = Vec::new();
            for node in 0..topo.nodes() {
                topo.neighbours(node, &mut nbrs);
                for &(nb, link) in &nbrs {
                    assert!(nb < topo.nodes());
                    assert!(!seen[link], "{topo:?}: duplicate link {link}");
                    seen[link] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{topo:?}: all channels listed");
        }
    }

    #[test]
    fn full_routes_distinct() {
        let topo = Topology::Full { n: 5 };
        let mut seen = std::collections::HashSet::new();
        let mut route = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    topo.route(a, b, &mut route);
                    assert_eq!(route.len(), 1);
                    assert!(seen.insert(route[0]), "duplicate channel");
                }
            }
        }
        assert_eq!(seen.len(), topo.links());
    }
}
