//! The multicomputer simulator: node programs as async tasks over a
//! discrete-event core.
//!
//! ## Network model
//!
//! Messages are timed with a *link-occupancy* approximation of wormhole
//! switching: a message from `src` to `dst` follows the topology's
//! deterministic route; it starts when every channel on the path is free
//! (and the wire latency has elapsed), then holds the whole path for
//! `per_hop·hops + bytes/bandwidth`. This captures the two behaviours that
//! matter at the scale of the paper's claims — pipelined transfers whose
//! time is dominated by `bytes/bw`, and head-of-line contention when
//! routes share channels — while staying fast enough to sweep 1000-node
//! machines.
//!
//! ## Compute model
//!
//! `Node::compute(kernel, flops)` advances virtual time by
//! `flops / (peak · eff(kernel))`. Programs may move real `f64` data
//! (validated numerics at small scale) or `Payload::Virtual` byte counts
//! (paper-scale runs where only timing matters).

use crate::machine::{Kernel, MachineConfig};
use crate::partition::LaneMap;
use crate::topology::LinkId;
use bytes::Bytes;
use des::backoff::{mix64, Backoff};
use des::faults::{FaultKind, FaultPlan};
use des::time::{Dur, SimTime};
use des::{Completion, EventQueue, Tasks};
use hpcc_trace::{names, NullRecorder, Recorder, TrackId};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::rc::Rc;
use std::sync::Arc;

/// Typed NX communication error. The pre-fault simulator turned every
/// one of these conditions into a panic; with fault injection they are
/// ordinary outcomes a node program recovers from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommError {
    /// The peer has suffered a permanent fail-stop crash.
    NodeFailed(usize),
    /// Every route between the two nodes crosses a failed channel.
    Unreachable { from: usize, to: usize },
    /// A `recv_timeout` deadline expired with no matching message.
    Timeout { after: Dur },
    /// The message carried the wrong payload kind for the requested
    /// conversion (a protocol error surfaced as data, not a crash).
    PayloadType { got_bytes: u64 },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CommError::NodeFailed(n) => write!(f, "node {n} has failed"),
            CommError::Unreachable { from, to } => {
                write!(f, "no live route from node {from} to node {to}")
            }
            CommError::Timeout { after } => write!(f, "receive timed out after {after}"),
            CommError::PayloadType { got_bytes } => {
                write!(f, "expected F64 payload, got {got_bytes} bytes")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Message contents: real doubles, raw bytes, or a timing-only byte count.
#[derive(Debug, Clone)]
pub enum Payload {
    F64(Arc<[f64]>),
    Bytes(Bytes),
    Virtual(u64),
}

impl Payload {
    pub fn from_f64s(xs: &[f64]) -> Payload {
        Payload::F64(Arc::from(xs))
    }

    /// On-the-wire size in bytes.
    pub fn len_bytes(&self) -> u64 {
        match self {
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::Bytes(b) => b.len() as u64,
            Payload::Virtual(n) => *n,
        }
    }

    /// Borrow the doubles, or report the mismatched payload kind.
    pub fn try_as_f64s(&self) -> Result<&[f64], CommError> {
        match self {
            Payload::F64(v) => Ok(v),
            other => Err(CommError::PayloadType {
                got_bytes: other.len_bytes(),
            }),
        }
    }

    /// Take the doubles, or report the mismatched payload kind.
    pub fn try_into_f64s(self) -> Result<Arc<[f64]>, CommError> {
        match self {
            Payload::F64(v) => Ok(v),
            other => Err(CommError::PayloadType {
                got_bytes: other.len_bytes(),
            }),
        }
    }

    /// Borrow the doubles; panics on a non-F64 payload. Use
    /// [`Payload::try_as_f64s`] where the caller can recover.
    pub fn as_f64s(&self) -> &[f64] {
        match self.try_as_f64s() {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Take the doubles; panics on a non-F64 payload. Use
    /// [`Payload::try_into_f64s`] where the caller can recover.
    pub fn into_f64s(self) -> Arc<[f64]> {
        match self.try_into_f64s() {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }
}

/// A delivered message.
#[derive(Debug, Clone)]
pub struct Msg {
    pub src: usize,
    pub tag: u64,
    pub payload: Payload,
    pub sent_at: SimTime,
    pub arrived_at: SimTime,
}

pub(crate) enum Event {
    Deliver {
        dst: usize,
        msg: Msg,
    },
    Wake(Completion<()>),
    /// A scripted or seeded hardware fault fires.
    Fault(FaultKind),
    /// A failed channel comes back up (scheduled by its `LinkDown`).
    LinkUp {
        link: LinkId,
    },
    /// A `recv_timeout` deadline expires.
    RecvDeadline {
        dst: usize,
        token: u64,
        after: Dur,
    },
}

struct PendingRecv {
    src: Option<usize>,
    tag: Option<u64>,
    done: Completion<Result<Msg, CommError>>,
    /// Identifies this posted recv to its `RecvDeadline`, if any.
    token: u64,
}

fn matches(want_src: Option<usize>, want_tag: Option<u64>, src: usize, tag: u64) -> bool {
    want_src.is_none_or(|s| s == src) && want_tag.is_none_or(|t| t == tag)
}

/// Aggregate counters for one run.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    pub messages: u64,
    pub bytes: u64,
    pub flops: f64,
    /// Sum over nodes of time spent in `compute`.
    pub compute_time: Dur,
    /// Sum over channels of reserved time.
    pub link_busy: Dur,
    /// Messages delivered to a node with no matching recv posted yet.
    pub unexpected: u64,
    pub faults: FaultStats,
}

/// What the injected faults did to one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Nodes permanently crashed.
    pub node_crashes: u64,
    /// Transient slowdown episodes applied.
    pub slowdowns: u64,
    /// Link outage events applied (flaps included).
    pub link_faults: u64,
    /// Messages dropped: destination dead, or every route down.
    pub messages_lost: u64,
    /// `recv_timeout` deadlines that expired.
    pub timeouts: u64,
    /// Retries performed by `send_with_retry`.
    pub retries: u64,
    /// Survivor tasks aborted at shutdown because faults left them
    /// waiting on peers that can no longer answer.
    pub orphaned_tasks: u64,
}

impl FaultStats {
    /// Any hardware fault was actually applied this run.
    pub fn any(&self) -> bool {
        self.node_crashes + self.slowdowns + self.link_faults > 0
    }
}

impl Counters {
    /// Fold another lane's counters into this aggregate (the sharded
    /// runtime sums per-lane counters into one machine-wide report).
    pub(crate) fn absorb(&mut self, o: &Counters) {
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.flops += o.flops;
        self.compute_time += o.compute_time;
        self.link_busy += o.link_busy;
        self.unexpected += o.unexpected;
        self.faults.node_crashes += o.faults.node_crashes;
        self.faults.slowdowns += o.faults.slowdowns;
        self.faults.link_faults += o.faults.link_faults;
        self.faults.messages_lost += o.faults.messages_lost;
        self.faults.timeouts += o.faults.timeouts;
        self.faults.retries += o.faults.retries;
        self.faults.orphaned_tasks += o.faults.orphaned_tasks;
    }
}

/// Per-lane view of the machine held by the sharded runtime. A lane owns
/// a contiguous block of node ids ([`LaneMap`]); messages between two
/// nodes of the same lane go through the full link-occupancy model,
/// messages to another lane are timed analytically (contention-free) and
/// handed over through the lane mailbox at the end of the window.
pub(crate) struct ShardState {
    /// This core's lane index.
    pub(crate) lane: usize,
    pub(crate) map: LaneMap,
    /// First crash instant per node (`SimTime::MAX` = never), precomputed
    /// from the fault plan so remote-failure checks need no shared state.
    pub(crate) crash_time: Arc<[SimTime]>,
    /// Cross-lane messages generated this window, in send order. Each
    /// `Msg` already carries its arrival time.
    pub(crate) outbox: Vec<(usize, Msg)>,
}

pub(crate) struct SimCore {
    pub(crate) q: EventQueue<Event>,
    /// Shared with the owning [`Machine`] and every [`Node`] handle —
    /// the config is immutable for the whole run, so nobody clones it.
    cfg: Rc<MachineConfig>,
    link_busy_until: Vec<SimTime>,
    mailbox: Vec<VecDeque<Msg>>,
    pending: Vec<VecDeque<PendingRecv>>,
    pub(crate) blocked: Vec<Option<String>>,
    route_buf: Vec<LinkId>,
    pub(crate) counters: Counters,
    /// Fail-stop state per node.
    failed: Vec<bool>,
    /// Active slowdown per node: `(factor, until)`.
    slow: Vec<(f64, SimTime)>,
    /// Channels currently out of service. `down_links` counts them so
    /// the fault-free fast path is a single integer compare.
    down: Vec<bool>,
    down_until: Vec<SimTime>,
    down_links: usize,
    next_token: u64,
    /// Trace sink. Pure observer: it is handed timestamps the simulator
    /// already computed and never feeds anything back, so a disabled
    /// recorder leaves the run bit-identical.
    rec: Rc<dyn Recorder>,
    /// Cached `rec.is_enabled()` — the fast path is one bool test.
    rec_on: bool,
    /// Trace track per node rank / per channel (empty when disabled).
    node_track: Vec<TrackId>,
    link_track: Vec<TrackId>,
    /// `Some` when this core is one lane of a sharded run; `None` for the
    /// legacy single-queue engine (every pre-existing entry point), which
    /// keeps the fault-free fast paths untouched.
    pub(crate) shard: Option<ShardState>,
}

impl SimCore {
    pub(crate) fn new(cfg: Rc<MachineConfig>, rec: Rc<dyn Recorder>) -> SimCore {
        // Steady state holds at most a wake or delivery per node;
        // pre-size so the calendar never regrows mid-run.
        let cap = 2 * cfg.nodes();
        SimCore::with_queue_capacity(cfg, rec, cap)
    }

    /// Like [`SimCore::new`] with an explicit calendar pre-size: a lane
    /// of a sharded run only ever holds events for its own node block,
    /// so sizing by the whole machine would waste a heap per lane.
    pub(crate) fn with_queue_capacity(
        cfg: Rc<MachineConfig>,
        rec: Rc<dyn Recorder>,
        cap: usize,
    ) -> SimCore {
        let n = cfg.nodes();
        let links = cfg.topology.links();
        let rec_on = rec.is_enabled();
        let node_track = if rec_on {
            (0..n)
                .map(|r| rec.track(names::MESH_NODES, &format!("node {r}")))
                .collect()
        } else {
            Vec::new()
        };
        let link_track = if rec_on {
            (0..links)
                .map(|l| rec.track(names::MESH_LINKS, &format!("chan {l}")))
                .collect()
        } else {
            Vec::new()
        };
        SimCore {
            q: EventQueue::with_capacity(cap),
            cfg,
            link_busy_until: vec![SimTime::ZERO; links],
            mailbox: (0..n).map(|_| VecDeque::new()).collect(),
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            blocked: vec![None; n],
            route_buf: Vec::new(),
            counters: Counters::default(),
            failed: vec![false; n],
            slow: vec![(1.0, SimTime::ZERO); n],
            down: vec![false; links],
            down_until: vec![SimTime::ZERO; links],
            down_links: 0,
            next_token: 0,
            rec,
            rec_on,
            node_track,
            link_track,
            shard: None,
        }
    }

    /// The active compute-slowdown factor for `node` at virtual `now`.
    fn slow_factor(&self, node: usize) -> f64 {
        let (factor, until) = self.slow[node];
        if self.q.now() < until {
            factor
        } else {
            1.0
        }
    }

    /// Compute the arrival time of a message injected now and reserve the
    /// channels along its route. A message addressed to a dead node, or
    /// with every route crossing a failed channel, is dropped (fail-stop
    /// hardware gives the sender no synchronous acknowledgement; the
    /// returned error models the NX failure-detector oracle).
    fn inject(
        &mut self,
        src: usize,
        dst: usize,
        tag: u64,
        payload: Payload,
    ) -> Result<(), CommError> {
        if let Some(sh) = &self.shard {
            if sh.map.lane_of(dst) != sh.lane {
                return self.inject_remote(src, dst, tag, payload);
            }
        }
        let now = self.q.now();
        let bytes = payload.len_bytes();
        self.counters.messages += 1;
        self.counters.bytes += bytes;

        if self.failed[dst] {
            self.counters.faults.messages_lost += 1;
            if self.rec_on {
                self.rec
                    .instant(self.node_track[src], "fault", "msg_lost", now.nanos());
            }
            return Err(CommError::NodeFailed(dst));
        }

        let arrival = if src == dst {
            // Local copy through memory; never touches the network.
            now + Dur::from_micros(1) + Dur::from_secs_f64(bytes as f64 / self.cfg.node.mem_bw)
        } else {
            let net = &self.cfg.net;
            let mut route = std::mem::take(&mut self.route_buf);
            if self.down_links == 0 {
                self.cfg.topology.route(src, dst, &mut route);
            } else if !self
                .cfg
                .topology
                .route_avoiding(src, dst, &self.down, &mut route)
            {
                self.route_buf = route;
                self.counters.faults.messages_lost += 1;
                if self.rec_on {
                    self.rec
                        .instant(self.node_track[src], "fault", "msg_lost", now.nanos());
                }
                return Err(CommError::Unreachable { from: src, to: dst });
            }
            // The first byte reaches the wire only after the sender's
            // software send path and the router setup have run.
            let injected = now + net.send_overhead + net.wire_latency;
            let serial = Dur::from_secs_f64(bytes as f64 / net.bandwidth);
            let end = match net.switching {
                crate::machine::Switching::Wormhole => {
                    // The whole path is reserved once and held for the
                    // pipelined transfer.
                    let mut start = injected;
                    for &l in &route {
                        if self.link_busy_until[l] > start {
                            start = self.link_busy_until[l];
                        }
                    }
                    let dur = net.per_hop * route.len() as u64 + serial;
                    let end = start + dur;
                    for &l in &route {
                        self.link_busy_until[l] = end;
                    }
                    self.counters.link_busy += dur * route.len() as u64;
                    if self.rec_on {
                        // Channel-occupancy spans: the whole path holds the
                        // reservation window the model just computed.
                        let label = format!("{src}->{dst}");
                        for &l in &route {
                            self.rec.span(
                                self.link_track[l],
                                "link",
                                &label,
                                start.nanos(),
                                end.nanos(),
                            );
                        }
                    }
                    end
                }
                crate::machine::Switching::StoreAndForward => {
                    // The message is fully buffered and retransmitted at
                    // every hop; each channel is held for its own copy.
                    let mut at = injected;
                    for &l in &route {
                        let start = at.max(self.link_busy_until[l]);
                        let end = start + net.per_hop + serial;
                        self.link_busy_until[l] = end;
                        self.counters.link_busy += net.per_hop + serial;
                        if self.rec_on {
                            self.rec.span(
                                self.link_track[l],
                                "link",
                                &format!("{src}->{dst}"),
                                start.nanos(),
                                end.nanos(),
                            );
                        }
                        at = end;
                    }
                    at
                }
            };
            self.route_buf = route;
            end
        };

        let msg = Msg {
            src,
            tag,
            payload,
            sent_at: now,
            arrived_at: arrival,
        };
        self.q.schedule(arrival, Event::Deliver { dst, msg });
        Ok(())
    }

    /// Inject a message whose destination lives in another lane. The
    /// arrival time is computed analytically — sender overhead plus the
    /// uncontended transfer time — rather than through link reservation:
    /// cross-lane traffic sees no channel contention and ignores link
    /// outages, the modelling concession that buys lane independence
    /// (the send-side latency floor is exactly the engine's lookahead,
    /// so the arrival always lands at or past the window horizon). The
    /// message is buffered in the lane outbox; the window runtime moves
    /// it to the destination lane's calendar at the next horizon.
    fn inject_remote(
        &mut self,
        src: usize,
        dst: usize,
        tag: u64,
        payload: Payload,
    ) -> Result<(), CommError> {
        let now = self.q.now();
        let bytes = payload.len_bytes();
        self.counters.messages += 1;
        self.counters.bytes += bytes;
        let sh = self.shard.as_mut().expect("remote inject on sharded core");
        if sh.crash_time[dst] <= now {
            // Same fail-stop oracle as the local path: the destination is
            // already dead, the message is dropped on the floor.
            self.counters.faults.messages_lost += 1;
            return Err(CommError::NodeFailed(dst));
        }
        let net = &self.cfg.net;
        let hops = self.cfg.topology.hops(src, dst);
        let arrival = now + net.send_overhead + net.transfer_time(bytes, hops);
        sh.outbox.push((
            dst,
            Msg {
                src,
                tag,
                payload,
                sent_at: now,
                arrived_at: arrival,
            },
        ));
        Ok(())
    }

    /// Hand an arrived message to a posted recv or queue it. A message
    /// reaching a node that crashed while it was in flight is dropped.
    pub(crate) fn deliver(&mut self, dst: usize, msg: Msg) {
        if self.failed[dst] {
            self.counters.faults.messages_lost += 1;
            return;
        }
        let pend = &mut self.pending[dst];
        if let Some(pos) = pend
            .iter()
            .position(|p| matches(p.src, p.tag, msg.src, msg.tag))
        {
            let p = pend.remove(pos).unwrap();
            self.blocked[dst] = None;
            p.done.fulfil(Ok(msg));
        } else {
            self.counters.unexpected += 1;
            self.mailbox[dst].push_back(msg);
        }
    }

    fn timer(&mut self, delay: Dur) -> Completion<()> {
        let c = Completion::new();
        self.q.schedule_in(delay, Event::Wake(c.clone()));
        c
    }

    /// Apply one fault event. Returns the rank whose program must be
    /// aborted, for the executor-side half of a node crash.
    pub(crate) fn apply_fault(&mut self, kind: FaultKind) -> Option<usize> {
        match kind {
            FaultKind::NodeCrash { node } => {
                if self.failed[node] {
                    return None;
                }
                self.failed[node] = true;
                self.counters.faults.node_crashes += 1;
                if self.rec_on {
                    self.rec.instant(
                        self.node_track[node],
                        "fault",
                        "crash",
                        self.q.now().nanos(),
                    );
                }
                // The node's queued and matched-but-unconsumed messages
                // die with it.
                self.mailbox[node].clear();
                self.pending[node].clear();
                self.blocked[node] = None;
                Some(node)
            }
            FaultKind::NodeSlow {
                node,
                factor,
                until,
            } => {
                if !self.failed[node] {
                    self.slow[node] = (factor, until);
                    self.counters.faults.slowdowns += 1;
                    if self.rec_on {
                        self.rec.instant(
                            self.node_track[node],
                            "fault",
                            "slowdown",
                            self.q.now().nanos(),
                        );
                    }
                }
                None
            }
            FaultKind::LinkDown { link, until } => {
                self.counters.faults.link_faults += 1;
                if self.rec_on {
                    self.rec
                        .instant(self.link_track[link], "fault", "down", self.q.now().nanos());
                }
                // Overlapping outages: keep the latest repair time; the
                // LinkUp for the earlier outage then arrives early and is
                // ignored by the `down_until` check.
                self.down_until[link] = self.down_until[link].max(until);
                if !self.down[link] {
                    self.down[link] = true;
                    self.down_links += 1;
                }
                self.q.schedule(until, Event::LinkUp { link });
                None
            }
        }
    }

    pub(crate) fn link_up(&mut self, link: LinkId) {
        if self.down[link] && self.q.now() >= self.down_until[link] {
            self.down[link] = false;
            self.down_links -= 1;
            if self.rec_on {
                self.rec
                    .instant(self.link_track[link], "fault", "up", self.q.now().nanos());
            }
        }
    }

    /// Expire a `recv_timeout` deadline: if the posted recv is still
    /// outstanding, withdraw it and fail its waiter.
    pub(crate) fn deadline(&mut self, dst: usize, token: u64, after: Dur) {
        let pend = &mut self.pending[dst];
        if let Some(pos) = pend.iter().position(|p| p.token == token) {
            let p = pend.remove(pos).unwrap();
            self.blocked[dst] = None;
            self.counters.faults.timeouts += 1;
            if self.rec_on {
                self.rec.instant(
                    self.node_track[dst],
                    "fault",
                    "timeout",
                    self.q.now().nanos(),
                );
            }
            p.done.fulfil(Err(CommError::Timeout { after }));
        }
    }
}

/// Handle a node program uses to talk to the simulator. Cheap to clone.
pub struct Node {
    core: Rc<RefCell<SimCore>>,
    rank: usize,
    nranks: usize,
}

impl Clone for Node {
    fn clone(&self) -> Self {
        Node {
            core: Rc::clone(&self.core),
            rank: self.rank,
            nranks: self.nranks,
        }
    }
}

impl Node {
    pub(crate) fn new_in(core: Rc<RefCell<SimCore>>, rank: usize, nranks: usize) -> Node {
        Node { core, rank, nranks }
    }

    /// This node's rank in `0..nranks()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Machine size.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().q.now()
    }

    /// A recorder is attached; callers gate trace-name formatting on this.
    fn traced(&self) -> bool {
        self.core.borrow().rec_on
    }

    /// Emit the interval `[t0, now]` on this node's trace track.
    fn trace_span(&self, cat: &'static str, name: &str, t0: SimTime) {
        let core = self.core.borrow();
        if core.rec_on {
            core.rec.span(
                core.node_track[self.rank],
                cat,
                name,
                t0.nanos(),
                core.q.now().nanos(),
            );
        }
    }

    /// Emit a point event on this node's trace track, stamped now.
    fn trace_instant(&self, cat: &'static str, name: &str) {
        let core = self.core.borrow();
        if core.rec_on {
            core.rec
                .instant(core.node_track[self.rank], cat, name, core.q.now().nanos());
        }
    }

    /// The machine this program is running on. A refcount bump, not a
    /// deep copy — node programs may call this per query.
    pub fn machine(&self) -> Rc<MachineConfig> {
        Rc::clone(&self.core.borrow().cfg)
    }

    /// Blocking tagged send (NX `csend` semantics: returns once the local
    /// send path is done; the transfer proceeds in the background). Like
    /// the hardware, this gives no failure feedback: a message to a dead
    /// node or across a partition is silently dropped — use
    /// [`Node::try_send`] to observe delivery errors.
    pub async fn send(&self, dst: usize, tag: u64, payload: Payload) {
        let _ = self.try_send(dst, tag, payload).await;
    }

    /// Tagged send with delivery-error reporting: `Err` when the
    /// destination has crashed or no live route exists. The local send
    /// overhead is charged either way (the kernel ran its send path
    /// before the failure detector answered).
    pub async fn try_send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        assert!(dst < self.nranks, "send to rank {dst} of {}", self.nranks);
        let (c, sent, t0) = {
            let mut core = self.core.borrow_mut();
            let t0 = core.q.now();
            let sent = core.inject(self.rank, dst, tag, payload);
            let ov = core.cfg.net.send_overhead;
            (core.timer(ov), sent, t0)
        };
        c.wait().await;
        if self.traced() {
            self.trace_span("send", &format!("send->{dst}"), t0);
        }
        sent
    }

    /// Retrying send with capped, jittered exponential backoff in
    /// virtual time. Transient errors (partition — a detour may appear
    /// when a link is repaired) are retried; a crashed destination is
    /// permanent and returned immediately.
    ///
    /// The backoff is deterministic: jitter streams are keyed on
    /// `(rank, dst, tag)`, so the same run replays bit-for-bit while
    /// distinct senders caught by the same outage decorrelate instead
    /// of retrying in lockstep.
    pub async fn send_with_retry(
        &self,
        dst: usize,
        tag: u64,
        payload: Payload,
        policy: RetryPolicy,
    ) -> Result<(), CommError> {
        let stream = mix64(&[self.rank as u64, dst as u64, tag]);
        let mut last = CommError::Unreachable {
            from: self.rank,
            to: dst,
        };
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                self.core.borrow_mut().counters.faults.retries += 1;
                self.trace_instant("fault", "retry");
                self.delay(policy.backoff.delay(stream, attempt)).await;
            }
            match self.try_send(dst, tag, payload.clone()).await {
                Ok(()) => return Ok(()),
                Err(e @ CommError::NodeFailed(_)) => return Err(e),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Has `rank` suffered a permanent crash? (The NX failure-detector
    /// oracle: fail-stop faults are detected immediately and reliably.)
    pub fn peer_failed(&self, rank: usize) -> bool {
        let core = self.core.borrow();
        if let Some(sh) = &core.shard {
            if sh.map.lane_of(rank) != sh.lane {
                // A remote peer's fail-stop state is a pure function of
                // the fault plan and the clock — no cross-lane traffic
                // needed to answer the oracle deterministically.
                return sh.crash_time[rank] <= core.q.now();
            }
        }
        core.failed[rank]
    }

    /// Convenience: send a slice of doubles.
    pub async fn send_f64s(&self, dst: usize, tag: u64, data: &[f64]) {
        self.send(dst, tag, Payload::from_f64s(data)).await;
    }

    /// Convenience: timing-only send of `bytes` bytes.
    pub async fn send_virtual(&self, dst: usize, tag: u64, bytes: u64) {
        self.send(dst, tag, Payload::Virtual(bytes)).await;
    }

    /// Blocking tagged receive. `src`/`tag` of `None` are wildcards.
    /// Matches the earliest-arrived queued message first (NX `crecv`).
    pub async fn recv(&self, src: Option<usize>, tag: Option<u64>) -> Msg {
        match self.recv_inner(src, tag, None).await {
            Ok(msg) => msg,
            Err(e) => unreachable!("recv without deadline cannot fail: {e}"),
        }
    }

    /// Blocking tagged receive with a deadline: `Err(Timeout)` if no
    /// matching message lands within `timeout` of virtual time. This is
    /// the primitive fault-tolerant node programs use to detect dead
    /// peers instead of deadlocking.
    pub async fn recv_timeout(
        &self,
        src: Option<usize>,
        tag: Option<u64>,
        timeout: Dur,
    ) -> Result<Msg, CommError> {
        self.recv_inner(src, tag, Some(timeout)).await
    }

    async fn recv_inner(
        &self,
        src: Option<usize>,
        tag: Option<u64>,
        timeout: Option<Dur>,
    ) -> Result<Msg, CommError> {
        let (waited, t0) = {
            let mut core = self.core.borrow_mut();
            let t0 = core.q.now();
            let mbox = &mut core.mailbox[self.rank];
            let waited =
                if let Some(pos) = mbox.iter().position(|m| matches(src, tag, m.src, m.tag)) {
                    Ok(mbox.remove(pos).unwrap())
                } else {
                    let token = core.next_token;
                    core.next_token += 1;
                    let done: Completion<Result<Msg, CommError>> = Completion::new();
                    core.pending[self.rank].push_back(PendingRecv {
                        src,
                        tag,
                        done: done.clone(),
                        token,
                    });
                    if let Some(after) = timeout {
                        core.q.schedule_in(
                            after,
                            Event::RecvDeadline {
                                dst: self.rank,
                                token,
                                after,
                            },
                        );
                    }
                    core.blocked[self.rank] = Some(format!("recv(src={src:?}, tag={tag:?})"));
                    Err(done)
                };
            (waited, t0)
        };
        let (msg, buffered) = match waited {
            Ok(m) => (m, true),
            Err(done) => {
                let res = done.wait().await;
                // The wait ended either at delivery or at the deadline;
                // both are blocked time.
                self.trace_span("blocked", "recv", t0);
                (res?, false)
            }
        };
        // Receiver software overhead; an unexpected (buffered) message
        // also pays the system-buffer copy — the reason NX programmers
        // preposted their receives.
        let (c, t1) = {
            let mut core = self.core.borrow_mut();
            let mut ov = core.cfg.net.recv_overhead;
            if buffered {
                ov += Dur::from_secs_f64(msg.payload.len_bytes() as f64 / core.cfg.node.mem_bw);
            }
            let t1 = core.q.now();
            (core.timer(ov), t1)
        };
        c.wait().await;
        self.trace_span("recv", "recv", t1);
        Ok(msg)
    }

    /// Receive and unwrap a doubles payload.
    pub async fn recv_f64s(&self, src: Option<usize>, tag: Option<u64>) -> Arc<[f64]> {
        self.recv(src, tag).await.payload.into_f64s()
    }

    /// Receive a doubles payload with a deadline; surfaces both timeouts
    /// and payload-kind mismatches as typed errors.
    pub async fn recv_f64s_timeout(
        &self,
        src: Option<usize>,
        tag: Option<u64>,
        timeout: Dur,
    ) -> Result<Arc<[f64]>, CommError> {
        self.recv_timeout(src, tag, timeout)
            .await?
            .payload
            .try_into_f64s()
    }

    /// Post a non-blocking receive (NX `irecv`): the match is armed
    /// immediately, so a message arriving while the node computes is
    /// captured without the unexpected-message queue. Await the returned
    /// request to take the message (receiver overhead is charged then).
    pub fn irecv(&self, src: Option<usize>, tag: Option<u64>) -> RecvRequest {
        let mut core = self.core.borrow_mut();
        let mbox = &mut core.mailbox[self.rank];
        let done: Completion<Result<Msg, CommError>> = Completion::new();
        let mut buffered = false;
        if let Some(pos) = mbox.iter().position(|m| matches(src, tag, m.src, m.tag)) {
            done.fulfil(Ok(mbox.remove(pos).unwrap()));
            buffered = true;
        } else {
            let token = core.next_token;
            core.next_token += 1;
            core.pending[self.rank].push_back(PendingRecv {
                src,
                tag,
                done: done.clone(),
                token,
            });
        }
        RecvRequest {
            node: self.clone(),
            done,
            buffered,
        }
    }

    /// Non-blocking mailbox check (NX `iprobe`): is a matching message
    /// already waiting? Never consumes the message.
    pub fn probe(&self, src: Option<usize>, tag: Option<u64>) -> bool {
        self.core.borrow().mailbox[self.rank]
            .iter()
            .any(|m| matches(src, tag, m.src, m.tag))
    }

    /// Advance virtual time by the cost of `flops` operations of `kernel`.
    /// An active slowdown fault on the node stretches the cost; the
    /// factor-1.0 path is taken untouched so fault-free timing is exact.
    pub async fn compute(&self, kernel: Kernel, flops: f64) {
        let (c, t0) = {
            let mut core = self.core.borrow_mut();
            let mut d = core.cfg.node.compute_time(kernel, flops);
            let factor = core.slow_factor(self.rank);
            if factor != 1.0 {
                d = d.mul_f64(factor);
            }
            core.counters.flops += flops;
            core.counters.compute_time += d;
            let t0 = core.q.now();
            (core.timer(d), t0)
        };
        c.wait().await;
        self.trace_span("compute", kernel_label(kernel), t0);
    }

    /// Advance virtual time by an explicit duration (I/O, OS, modelling).
    pub async fn delay(&self, d: Dur) {
        let (c, t0) = {
            let mut core = self.core.borrow_mut();
            let t0 = core.q.now();
            (core.timer(d), t0)
        };
        c.wait().await;
        self.trace_span("delay", "delay", t0);
    }
}

/// Static trace label for a compute kernel (no per-span allocation).
fn kernel_label(k: Kernel) -> &'static str {
    match k {
        Kernel::Dgemm => "dgemm",
        Kernel::Daxpy => "daxpy",
        Kernel::Dtrsm => "dtrsm",
        Kernel::Panel => "panel",
        Kernel::Stencil => "stencil",
        Kernel::Spmv => "spmv",
        Kernel::Fft => "fft",
        Kernel::Nbody => "nbody",
        Kernel::Scalar => "scalar",
    }
}

/// Backoff schedule for [`Node::send_with_retry`]: a capped exponential
/// [`Backoff`] with deterministic seeded jitter. The old uncapped
/// doubling schedule could sleep past any simulated horizon once
/// `max_attempts` grew; the cap bounds every single delay and the
/// seeded jitter keeps retry storms decorrelated without sacrificing
/// replayability.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    /// 4 attempts; 1 ms doubling to a 100 ms cap with 10% jitter.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff: Backoff {
                base: Dur::from_millis(1),
                cap: Dur::from_millis(100),
                jitter: 0.10,
                seed: 0x5EED,
            },
        }
    }
}

/// Handle to a posted non-blocking receive. Await [`RecvRequest::wait`]
/// to take the message; [`RecvRequest::ready`] polls without blocking.
pub struct RecvRequest {
    node: Node,
    done: Completion<Result<Msg, CommError>>,
    /// The message had already arrived unexpected and was system-buffered
    /// when this request was posted (extra copy charged at wait).
    buffered: bool,
}

impl RecvRequest {
    /// Has the matching message arrived yet?
    pub fn ready(&self) -> bool {
        self.done.is_fulfilled()
    }

    /// Block until the message is in, then charge the receive overhead
    /// (plus the buffer copy when the message pre-dated the post).
    pub async fn wait(self) -> Msg {
        let t0 = self.node.now();
        let msg = match self.done.wait().await {
            Ok(msg) => msg,
            // irecv posts no deadline, so only a Deliver fulfils it.
            Err(e) => unreachable!("irecv cannot fail: {e}"),
        };
        let (c, t1) = {
            let mut core = self.node.core.borrow_mut();
            let mut ov = core.cfg.net.recv_overhead;
            if self.buffered {
                ov += Dur::from_secs_f64(msg.payload.len_bytes() as f64 / core.cfg.node.mem_bw);
            }
            let t1 = core.q.now();
            (core.timer(ov), t1)
        };
        if t1 > t0 {
            // Only the tail of the wait that actually parked the task is
            // blocked time (an already-fulfilled request costs nothing).
            self.node.trace_span("blocked", "irecv", t0);
        }
        c.wait().await;
        self.node.trace_span("recv", "recv", t1);
        msg
    }
}

/// Per-run report: virtual elapsed time plus traffic/compute aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    pub machine: String,
    pub nodes: usize,
    pub elapsed: Dur,
    pub messages: u64,
    pub bytes: u64,
    pub flops: f64,
    pub events: u64,
    /// Mean fraction of the run each node spent computing.
    pub compute_fraction: f64,
    /// Mean fraction of each channel's time spent occupied.
    pub link_utilization: f64,
    /// Messages that arrived before a matching recv was posted.
    pub unexpected_messages: u64,
    /// What injected faults did to this run (all zero when fault-free).
    pub faults: FaultStats,
}

impl RunReport {
    /// Achieved FLOP rate over the whole run.
    pub fn gflops(&self) -> f64 {
        if self.elapsed == Dur::ZERO {
            0.0
        } else {
            self.flops / self.elapsed.as_secs_f64() / 1e9
        }
    }
}

/// A configured machine ready to run node programs.
pub struct Machine {
    cfg: Rc<MachineConfig>,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Machine {
        Machine { cfg: Rc::new(cfg) }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Run one program per node to completion; collect each node's result.
    ///
    /// Panics (with a per-node wait list) on communication deadlock —
    /// tasks still parked with an empty event calendar.
    pub fn run<T, F, Fut>(&self, program: F) -> (Vec<T>, RunReport)
    where
        T: 'static,
        F: Fn(Node) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        let (results, report) = self.run_with_faults(&FaultPlan::none(), program);
        let results = results
            .into_iter()
            .map(|o| o.expect("node completed"))
            .collect();
        (results, report)
    }

    /// Run one program per node under an injected [`FaultPlan`].
    ///
    /// A crashed node's program is aborted at the crash instant and its
    /// result slot stays `None`. With a non-empty plan, survivors left
    /// parked forever by a fault (waiting on a dead peer without a
    /// timeout) are aborted at shutdown and counted as orphaned rather
    /// than panicking; a fault-free run still panics on deadlock, which
    /// is a program bug. An empty plan schedules no events and is
    /// bit-identical to [`Machine::run`].
    pub fn run_with_faults<T, F, Fut>(
        &self,
        plan: &FaultPlan,
        program: F,
    ) -> (Vec<Option<T>>, RunReport)
    where
        T: 'static,
        F: Fn(Node) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        self.run_recorded(plan, Rc::new(NullRecorder), program)
    }

    /// Run one program per node under a [`FaultPlan`] with a trace
    /// recorder attached. The recorder is a pure observer — with a
    /// disabled recorder this is exactly [`Machine::run_with_faults`]
    /// (which routes through here with a [`NullRecorder`]); with an
    /// enabled one, every node gets a trace track of its
    /// compute/send/recv/blocked/delay intervals, every channel a track
    /// of its occupancy windows, faults and retries land as instants,
    /// and the dispatch loop samples event-queue/executor depth onto a
    /// "des" track.
    pub fn run_recorded<T, F, Fut>(
        &self,
        plan: &FaultPlan,
        rec: Rc<dyn Recorder>,
        program: F,
    ) -> (Vec<Option<T>>, RunReport)
    where
        T: 'static,
        F: Fn(Node) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        let n = self.cfg.nodes();
        let nlinks = self.cfg.topology.links();
        let rec_on = rec.is_enabled();
        let des_track = if rec_on {
            rec.track(names::DES, "executor")
        } else {
            0
        };
        let core = Rc::new(RefCell::new(SimCore::new(
            Rc::clone(&self.cfg),
            Rc::clone(&rec),
        )));
        let mut tasks = Tasks::new();
        let results: Rc<RefCell<Vec<Option<T>>>> =
            Rc::new(RefCell::new((0..n).map(|_| None).collect()));

        // Faults at t=0 take effect before any program instruction runs
        // (the machine was already broken at boot); later ones become
        // calendar events racing the programs.
        let mut boot_crashes = Vec::new();
        {
            let mut core = core.borrow_mut();
            for e in plan.events() {
                match e.kind {
                    FaultKind::NodeCrash { node } | FaultKind::NodeSlow { node, .. } => {
                        assert!(node < n, "fault plan targets node {node} of {n}");
                    }
                    FaultKind::LinkDown { link, .. } => {
                        assert!(link < nlinks, "fault plan targets link {link} of {nlinks}");
                    }
                }
                if e.at == SimTime::ZERO {
                    if let Some(node) = core.apply_fault(e.kind) {
                        boot_crashes.push(node);
                    }
                } else {
                    core.q.schedule(e.at, Event::Fault(e.kind));
                }
            }
        }

        let mut task_of_rank = Vec::with_capacity(n);
        for rank in 0..n {
            let node = Node {
                core: Rc::clone(&core),
                rank,
                nranks: n,
            };
            let fut = program(node);
            let sink = Rc::clone(&results);
            task_of_rank.push(tasks.spawn(async move {
                let out = fut.await;
                sink.borrow_mut()[rank] = Some(out);
            }));
        }

        for node in boot_crashes {
            tasks.abort(task_of_rank[node]);
        }
        tasks.run_ready();
        // Sample executor/event-queue depth every `SAMPLE_EVERY` dispatch
        // iterations — frequent enough to see backlog build-up, sparse
        // enough not to dominate the trace.
        const SAMPLE_EVERY: u64 = 64;
        let mut dispatches: u64 = 0;
        while !tasks.all_done() {
            let ev = core.borrow_mut().q.pop();
            match ev {
                Some((_, Event::Deliver { dst, msg })) => {
                    core.borrow_mut().deliver(dst, msg);
                }
                Some((_, Event::Wake(c))) => c.fulfil(()),
                Some((_, Event::Fault(kind))) => {
                    let crashed = core.borrow_mut().apply_fault(kind);
                    if let Some(node) = crashed {
                        tasks.abort(task_of_rank[node]);
                    }
                }
                Some((_, Event::LinkUp { link })) => core.borrow_mut().link_up(link),
                Some((_, Event::RecvDeadline { dst, token, after })) => {
                    core.borrow_mut().deadline(dst, token, after);
                }
                None => {
                    let mut core = core.borrow_mut();
                    if core.counters.faults.any() {
                        // Graceful degradation: survivors blocked forever
                        // on dead peers are casualties of the fault, not
                        // a program bug. Abort them and finish the run.
                        for &task in task_of_rank.iter().take(n) {
                            if tasks.abort(task) {
                                core.counters.faults.orphaned_tasks += 1;
                            }
                        }
                        continue;
                    }
                    let stuck: Vec<String> = core
                        .blocked
                        .iter()
                        .enumerate()
                        .filter_map(|(r, b)| b.as_ref().map(|s| format!("  node {r}: {s}")))
                        .collect();
                    panic!(
                        "deadlock on {}: {} tasks parked, no events\n{}",
                        core.cfg.name,
                        tasks.live(),
                        stuck.join("\n")
                    );
                }
            }
            if rec_on {
                dispatches += 1;
                if dispatches.is_multiple_of(SAMPLE_EVERY) {
                    let c = core.borrow();
                    let ts = c.q.now().nanos();
                    rec.counter(des_track, "event_queue_depth", ts, c.q.len() as f64);
                    rec.counter(des_track, "ready_tasks", ts, tasks.ready_len() as f64);
                    rec.counter(des_track, "live_tasks", ts, tasks.live() as f64);
                    rec.counter(des_track, "task_polls", ts, tasks.polls() as f64);
                }
            }
            tasks.run_ready();
        }

        let core = core.borrow();
        let elapsed = core.q.now() - SimTime::ZERO;
        let denom = elapsed.as_secs_f64().max(1e-30);
        let report = RunReport {
            machine: core.cfg.name.clone(),
            nodes: n,
            elapsed,
            messages: core.counters.messages,
            bytes: core.counters.bytes,
            flops: core.counters.flops,
            events: core.q.events_processed(),
            compute_fraction: core.counters.compute_time.as_secs_f64() / (n as f64 * denom),
            link_utilization: core.counters.link_busy.as_secs_f64()
                / (nlinks.max(1) as f64 * denom),
            unexpected_messages: core.counters.unexpected,
            faults: core.counters.faults,
        };
        let results = Rc::try_unwrap(results)
            .unwrap_or_else(|_| unreachable!("all tasks done"))
            .into_inner();
        (results, report)
    }

    /// Run one program per node on the sharded conservative-parallel
    /// engine: the mesh is split into `lanes` contiguous row blocks
    /// ([`crate::partition::LaneMap`]), each with its own event calendar
    /// and executor, synchronized by bounded-lag windows whose width is
    /// the network's cross-lane [`crate::machine::NetModel::lookahead`].
    ///
    /// `lanes <= 1` (or a machine too small to split) runs on the legacy
    /// single-queue engine — bit-identical to [`Machine::run`] by
    /// construction, since it *is* that code path. Multi-lane runs keep
    /// exact link-occupancy timing inside each lane and time cross-lane
    /// messages analytically (uncontended), so final results are
    /// lane-count-invariant for timing-insensitive programs while
    /// per-event timestamps may differ from the single-lane schedule.
    /// Lanes execute on threads when the host has more than one CPU,
    /// inline round-robin otherwise (`HPCC_LANE_MODE=threads|inline`
    /// overrides).
    pub fn run_sharded<T, F, Fut>(&self, lanes: usize, program: F) -> (Vec<T>, RunReport)
    where
        T: Send + 'static,
        F: Fn(Node) -> Fut + Sync,
        Fut: Future<Output = T> + 'static,
    {
        let (results, report) = self.run_sharded_with_faults(lanes, &FaultPlan::none(), program);
        let results = results
            .into_iter()
            .map(|o| o.expect("node completed"))
            .collect();
        (results, report)
    }

    /// Sharded run under a [`FaultPlan`] — the lane-parallel counterpart
    /// of [`Machine::run_with_faults`]. Node crashes and slowdowns are
    /// applied by the lane owning the node, link outages by the lane
    /// owning the channel's source node; cross-lane messages check the
    /// destination's precomputed crash schedule instead of shared state.
    pub fn run_sharded_with_faults<T, F, Fut>(
        &self,
        lanes: usize,
        plan: &FaultPlan,
        program: F,
    ) -> (Vec<Option<T>>, RunReport)
    where
        T: Send + 'static,
        F: Fn(Node) -> Fut + Sync,
        Fut: Future<Output = T> + 'static,
    {
        let (results, report, _stats) = self.run_sharded_stats(lanes, plan, program);
        (results, report)
    }

    /// [`Machine::run_sharded_with_faults`] plus the lane-runtime
    /// diagnostics ([`crate::shard::LaneStats`]): windows executed,
    /// per-lane event throughput, cross-lane mailbox traffic. On the
    /// single-lane (legacy-engine) path the stats degenerate to one lane
    /// carrying every event with zero windows and zero mailbox traffic.
    pub fn run_sharded_stats<T, F, Fut>(
        &self,
        lanes: usize,
        plan: &FaultPlan,
        program: F,
    ) -> (Vec<Option<T>>, RunReport, crate::shard::LaneStats)
    where
        T: Send + 'static,
        F: Fn(Node) -> Fut + Sync,
        Fut: Future<Output = T> + 'static,
    {
        let lanes = LaneMap::new(&self.cfg.topology, lanes).lanes();
        if lanes <= 1 {
            // One lane IS the legacy engine: same code, same bits.
            let (results, report) = self.run_with_faults(plan, program);
            let stats = crate::shard::LaneStats {
                lanes: 1,
                rounds: 0,
                events: report.events,
                mail_msgs: 0,
                per_lane_events: vec![report.events],
            };
            return (results, report, stats);
        }
        crate::shard::run(&self.cfg, lanes, plan, &program)
    }

    /// Test hook: force the window runtime even at one lane, where its
    /// event order must reproduce the legacy engine exactly. Not part of
    /// the public API contract.
    #[doc(hidden)]
    pub fn run_windowed_exact<T, F, Fut>(
        &self,
        lanes: usize,
        plan: &FaultPlan,
        program: F,
    ) -> (Vec<Option<T>>, RunReport)
    where
        T: Send + 'static,
        F: Fn(Node) -> Fut + Sync,
        Fut: Future<Output = T> + 'static,
    {
        let lanes = LaneMap::new(&self.cfg.topology, lanes).lanes();
        let (results, report, _stats) = crate::shard::run(&self.cfg, lanes, plan, &program);
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::presets;

    fn tiny() -> Machine {
        Machine::new(presets::delta(2, 2))
    }

    #[test]
    fn pingpong_latency_matches_model() {
        let m = tiny();
        let bytes = 8_000u64;
        let (_out, report) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    node.send_virtual(1, 7, bytes).await;
                    node.recv(Some(1), Some(8)).await;
                }
                1 => {
                    node.recv(Some(0), Some(7)).await;
                    node.send_virtual(0, 8, bytes).await;
                }
                _ => {}
            }
        });
        let cfg = m.config();
        let one_way =
            cfg.net.send_overhead + cfg.net.transfer_time(bytes, 1) + cfg.net.recv_overhead;
        let expect = one_way * 2;
        let got = report.elapsed;
        let err = (got.as_secs_f64() - expect.as_secs_f64()).abs() / expect.as_secs_f64();
        assert!(err < 0.05, "got {got}, expected ~{expect}");
        assert_eq!(report.messages, 2);
        assert_eq!(report.bytes, 2 * bytes);
    }

    #[test]
    fn contention_serialises_shared_link() {
        // 1x3 mesh: 0->2 and 1->2 share the link 1->2; the two 1 MB
        // transfers must take ~2x the bandwidth time, not 1x.
        let m = Machine::new(presets::delta(1, 3));
        let bytes = 1_000_000u64;
        let (_, report) = m.run(move |node| async move {
            match node.rank() {
                0 | 1 => node.send_virtual(2, node.rank() as u64, bytes).await,
                2 => {
                    node.recv(None, None).await;
                    node.recv(None, None).await;
                }
                _ => {}
            }
        });
        let bw_time = bytes as f64 / m.config().net.bandwidth;
        let got = report.elapsed.as_secs_f64();
        assert!(
            got > 1.9 * bw_time && got < 2.3 * bw_time,
            "elapsed {got}s vs serialised {:.4}s",
            2.0 * bw_time
        );
    }

    #[test]
    fn disjoint_routes_run_in_parallel() {
        // 1x4 mesh: 0->1 and 3->2 use disjoint links; elapsed ~1x.
        let m = Machine::new(presets::delta(1, 4));
        let bytes = 1_000_000u64;
        let (_, report) = m.run(move |node| async move {
            match node.rank() {
                0 => node.send_virtual(1, 0, bytes).await,
                3 => node.send_virtual(2, 0, bytes).await,
                1 | 2 => {
                    node.recv(None, None).await;
                }
                _ => {}
            }
        });
        let bw_time = bytes as f64 / m.config().net.bandwidth;
        let got = report.elapsed.as_secs_f64();
        assert!(got < 1.2 * bw_time, "elapsed {got}s vs parallel {bw_time}s");
    }

    #[test]
    fn tag_and_src_matching() {
        let m = tiny();
        let (out, _) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    // Send out of order; receiver selects by tag.
                    node.send_f64s(1, 20, &[2.0]).await;
                    node.send_f64s(1, 10, &[1.0]).await;
                    0.0
                }
                1 => {
                    let a = node.recv_f64s(Some(0), Some(10)).await;
                    let b = node.recv_f64s(Some(0), Some(20)).await;
                    a[0] * 10.0 + b[0]
                }
                _ => 0.0,
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn wildcard_recv_takes_earliest() {
        let m = Machine::new(presets::delta(1, 3));
        let (out, _) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    node.send_f64s(2, 1, &[5.0]).await;
                    0.0
                }
                1 => {
                    // Delay so node 0's message definitely arrives first.
                    node.delay(Dur::from_millis(10)).await;
                    node.send_f64s(2, 1, &[7.0]).await;
                    0.0
                }
                2 => {
                    let first = node.recv(None, None).await;
                    let second = node.recv(None, None).await;
                    assert_eq!(first.src, 0);
                    assert_eq!(second.src, 1);
                    first.payload.as_f64s()[0] + second.payload.as_f64s()[0]
                }
                _ => 0.0,
            }
        });
        assert_eq!(out[2], 12.0);
    }

    #[test]
    fn self_send_works() {
        let m = tiny();
        let (out, _) = m.run(|node| async move {
            if node.rank() == 0 {
                node.send_f64s(0, 3, &[4.5]).await;
                node.recv_f64s(Some(0), Some(3)).await[0]
            } else {
                0.0
            }
        });
        assert_eq!(out[0], 4.5);
    }

    #[test]
    fn compute_advances_time_by_model() {
        let m = tiny();
        let flops = 1.0e9;
        let (_, report) = m.run(move |node| async move {
            if node.rank() == 0 {
                node.compute(Kernel::Dgemm, flops).await;
            }
        });
        let expect = m.config().node.compute_time(Kernel::Dgemm, flops);
        assert_eq!(report.elapsed, expect);
        assert_eq!(report.flops, flops);
    }

    #[test]
    fn gflops_accounting() {
        let m = tiny();
        let (_, report) = m.run(|node| async move {
            // All 4 nodes compute 1 GFLOP of dgemm concurrently.
            node.compute(Kernel::Dgemm, 1.0e9).await;
        });
        let per_node = m.config().node.sustained(Kernel::Dgemm);
        let expect_gflops = 4.0 * per_node / 1e9;
        assert!(
            (report.gflops() - expect_gflops).abs() / expect_gflops < 1e-6,
            "got {} expected {}",
            report.gflops(),
            expect_gflops
        );
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let m = Machine::new(presets::delta(2, 3));
            let (_, r) = m.run(|node| async move {
                let n = node.nranks();
                let next = (node.rank() + 1) % n;
                let prev = (node.rank() + n - 1) % n;
                node.send_virtual(next, 1, 4096).await;
                node.recv(Some(prev), Some(1)).await;
                node.compute(Kernel::Stencil, 1e7).await;
            });
            (r.elapsed, r.messages, r.bytes, r.events)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let m = tiny();
        let (_, _) = m.run(|node| async move {
            // Everyone waits; nobody sends.
            node.recv(None, None).await;
        });
    }

    #[test]
    fn unexpected_messages_counted() {
        let m = tiny();
        let (_, report) = m.run(|node| async move {
            match node.rank() {
                0 => node.send_virtual(1, 1, 64).await,
                1 => {
                    // Post the recv long after arrival.
                    node.delay(Dur::from_millis(50)).await;
                    node.recv(Some(0), Some(1)).await;
                }
                _ => {}
            }
        });
        assert_eq!(report.unexpected_messages, 1);
    }

    #[test]
    fn irecv_overlaps_compute() {
        // Blocking style: recv happens after the compute finishes, so
        // total = compute + full message path. irecv style: the message
        // flies while the node computes.
        let bytes = 2_000_000u64;
        let flops = 4.0e6; // ~115 ms of dgemm on a Delta node
        let run = |overlap: bool| {
            let m = tiny();
            let (_, r) = m.run(move |node| async move {
                match node.rank() {
                    0 => node.send_virtual(1, 9, bytes).await,
                    1 => {
                        if overlap {
                            let req = node.irecv(Some(0), Some(9));
                            node.compute(Kernel::Dgemm, flops).await;
                            req.wait().await;
                        } else {
                            node.compute(Kernel::Dgemm, flops).await;
                            node.recv(Some(0), Some(9)).await;
                        }
                    }
                    _ => {}
                }
            });
            r.elapsed.as_secs_f64()
        };
        let blocking = run(false);
        let overlapped = run(true);
        assert!(
            overlapped < blocking,
            "overlap {overlapped} !< blocking {blocking}"
        );
        // Both paths still end after max(compute, transfer) at least.
        assert!(overlapped > 0.9 * (bytes as f64 / 25.0e6));
    }

    #[test]
    fn irecv_ready_and_unexpected_bypass() {
        let m = tiny();
        let (_, report) = m.run(|node| async move {
            match node.rank() {
                0 => node.send_virtual(1, 5, 64).await,
                1 => {
                    let req = node.irecv(Some(0), Some(5));
                    assert!(!req.ready(), "nothing arrived yet");
                    node.delay(Dur::from_millis(10)).await;
                    assert!(req.ready(), "message should have landed");
                    req.wait().await;
                }
                _ => {}
            }
        });
        // The posted irecv caught the message before it became
        // "unexpected".
        assert_eq!(report.unexpected_messages, 0);
    }

    #[test]
    fn probe_sees_but_does_not_consume() {
        let m = tiny();
        let (out, _) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    node.send_f64s(1, 3, &[8.0]).await;
                    0.0
                }
                1 => {
                    assert!(!node.probe(Some(0), Some(3)));
                    node.delay(Dur::from_millis(5)).await;
                    assert!(node.probe(Some(0), Some(3)));
                    assert!(node.probe(Some(0), Some(3)), "probe is repeatable");
                    assert!(!node.probe(Some(0), Some(99)), "tag filter");
                    node.recv_f64s(Some(0), Some(3)).await[0]
                }
                _ => 0.0,
            }
        });
        assert_eq!(out[1], 8.0);
    }

    #[test]
    fn store_and_forward_is_distance_sensitive() {
        // 1x9 line, 1 MB end to end (8 hops): wormhole pays the serial
        // time once; store-and-forward pays it per hop.
        let bytes = 1_000_000u64;
        let elapsed = |cfg: crate::machine::MachineConfig| {
            let m = Machine::new(cfg);
            let (_, r) = m.run(move |node| async move {
                match node.rank() {
                    0 => node.send_virtual(8, 1, bytes).await,
                    8 => {
                        node.recv(Some(0), Some(1)).await;
                    }
                    _ => {}
                }
            });
            r.elapsed.as_secs_f64()
        };
        let wh = elapsed(presets::delta(1, 9));
        let sf = elapsed(presets::delta_store_and_forward(1, 9));
        let serial = bytes as f64 / presets::delta(1, 9).net.bandwidth;
        assert!(wh < 1.2 * serial, "wormhole {wh} vs serial {serial}");
        assert!(
            sf > 7.5 * serial && sf < 8.5 * serial,
            "S&F {sf} vs 8x serial {}",
            8.0 * serial
        );
    }

    #[test]
    fn switching_disciplines_agree_at_one_hop() {
        let bytes = 500_000u64;
        let one_hop = |cfg: crate::machine::MachineConfig| {
            let m = Machine::new(cfg);
            let (_, r) = m.run(move |node| async move {
                match node.rank() {
                    0 => node.send_virtual(1, 1, bytes).await,
                    1 => {
                        node.recv(Some(0), Some(1)).await;
                    }
                    _ => {}
                }
            });
            r.elapsed
        };
        let wh = one_hop(presets::delta(1, 2));
        let sf = one_hop(presets::delta_store_and_forward(1, 2));
        assert_eq!(wh, sf, "single hop: no pipelining advantage");
    }

    #[test]
    fn machine_query_shares_config() {
        let m = tiny();
        let (out, _) = m.run(|node| async move {
            // Many queries from one program: every handle must point at
            // the same allocation (no per-query deep clone).
            let a = node.machine();
            let b = node.machine();
            assert!(Rc::ptr_eq(&a, &b));
            a.nodes()
        });
        assert_eq!(out, vec![4, 4, 4, 4]);
    }

    #[test]
    fn results_collected_per_rank() {
        let m = Machine::new(presets::delta(2, 4));
        let (out, _) = m.run(|node| async move { node.rank() * 10 });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_plain_run() {
        let program = |node: Node| async move {
            let n = node.nranks();
            let next = (node.rank() + 1) % n;
            let prev = (node.rank() + n - 1) % n;
            node.send_virtual(next, 1, 4096).await;
            node.recv(Some(prev), Some(1)).await;
            node.compute(Kernel::Dgemm, 1e7).await;
            node.rank()
        };
        let m = Machine::new(presets::delta(2, 3));
        let (out_a, a) = m.run(program);
        let (out_b, b) = m.run_with_faults(&FaultPlan::none(), program);
        assert_eq!(
            out_a,
            out_b.into_iter().map(Option::unwrap).collect::<Vec<_>>()
        );
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.messages, b.messages);
        assert_eq!(b.faults, FaultStats::default());
    }

    #[test]
    fn node_crash_aborts_its_program() {
        let m = tiny();
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::from_secs_f64(0.01),
            FaultKind::NodeCrash { node: 3 },
        );
        let (out, report) = m.run_with_faults(&plan, |node| async move {
            node.delay(Dur::from_millis(100)).await;
            node.rank()
        });
        assert_eq!(out, vec![Some(0), Some(1), Some(2), None]);
        assert_eq!(report.faults.node_crashes, 1);
    }

    #[test]
    fn recv_timeout_detects_dead_peer() {
        let m = tiny();
        let mut plan = FaultPlan::none();
        plan.push(SimTime::ZERO, FaultKind::NodeCrash { node: 0 });
        let (out, report) = m.run_with_faults(&plan, |node| async move {
            match node.rank() {
                1 => {
                    match node
                        .recv_timeout(Some(0), Some(1), Dur::from_millis(5))
                        .await
                    {
                        Err(CommError::Timeout { after }) => {
                            assert_eq!(after, Dur::from_millis(5));
                            assert!(node.peer_failed(0));
                            1
                        }
                        other => panic!("expected timeout, got {other:?}"),
                    }
                }
                _ => 0,
            }
        });
        assert_eq!(out[1], Some(1));
        assert_eq!(report.faults.timeouts, 1);
    }

    #[test]
    fn recv_timeout_still_delivers_in_time() {
        let m = tiny();
        let (out, report) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    node.send_f64s(1, 7, &[3.5]).await;
                    0.0
                }
                1 => node
                    .recv_f64s_timeout(Some(0), Some(7), Dur::from_secs(1))
                    .await
                    .expect("arrives well before the deadline")[0],
                _ => 0.0,
            }
        });
        assert_eq!(out[1], 3.5);
        assert_eq!(report.faults.timeouts, 0);
    }

    #[test]
    fn try_send_to_crashed_node_errors() {
        let m = tiny();
        let mut plan = FaultPlan::none();
        plan.push(SimTime::ZERO, FaultKind::NodeCrash { node: 1 });
        let (out, report) = m.run_with_faults(&plan, |node| async move {
            if node.rank() == 0 {
                node.delay(Dur::from_millis(1)).await;
                node.try_send(1, 1, Payload::Virtual(64)).await
            } else {
                Ok(())
            }
        });
        assert_eq!(out[0], Some(Err(CommError::NodeFailed(1))));
        assert_eq!(report.faults.messages_lost, 1);
    }

    #[test]
    fn message_routes_around_downed_link() {
        // 1x3 line: kill the east channel 0->1 for the whole run. With no
        // detour on a line this partitions 0 from the rest.
        let m = Machine::new(presets::delta(1, 3));
        let topo = m.config().topology.clone();
        let mut r = Vec::new();
        topo.route(0, 1, &mut r);
        let dead = r[0];
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::ZERO,
            FaultKind::LinkDown {
                link: dead,
                until: SimTime::MAX,
            },
        );
        let (out, report) = m.run_with_faults(&plan, |node| async move {
            if node.rank() == 0 {
                node.delay(Dur::from_millis(1)).await;
                node.try_send(2, 1, Payload::Virtual(64)).await
            } else {
                Ok(())
            }
        });
        assert_eq!(
            out[0],
            Some(Err(CommError::Unreachable { from: 0, to: 2 })),
            "a 1-D line has no detour"
        );
        assert_eq!(report.faults.link_faults, 1);

        // Same fault on a 2x3 mesh: the detour through row 1 delivers.
        let m = Machine::new(presets::delta(2, 3));
        let (out, report) = m.run_with_faults(&plan, |node| async move {
            match node.rank() {
                0 => {
                    node.delay(Dur::from_millis(1)).await;
                    node.try_send(2, 1, Payload::Virtual(64)).await.is_ok()
                }
                2 => {
                    node.recv(Some(0), Some(1)).await;
                    true
                }
                _ => true,
            }
        });
        assert_eq!(out[0], Some(true));
        assert_eq!(out[2], Some(true));
        assert_eq!(report.faults.messages_lost, 0);
    }

    #[test]
    fn send_with_retry_survives_a_flap() {
        // Link 0->1 flaps down for 2 ms on a 1x2 line; the retrying
        // sender backs off past the repair and gets through.
        let m = Machine::new(presets::delta(1, 2));
        let mut r = Vec::new();
        m.config().topology.route(0, 1, &mut r);
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::ZERO,
            FaultKind::LinkDown {
                link: r[0],
                until: SimTime::from_secs_f64(0.002),
            },
        );
        let (out, report) = m.run_with_faults(&plan, |node| async move {
            match node.rank() {
                0 => node
                    .send_with_retry(1, 1, Payload::Virtual(64), RetryPolicy::default())
                    .await
                    .is_ok(),
                1 => {
                    node.recv(Some(0), Some(1)).await;
                    true
                }
                _ => true,
            }
        });
        assert_eq!(out, vec![Some(true), Some(true)]);
        assert!(report.faults.retries >= 1);
        assert!(
            report.faults.messages_lost >= 1,
            "first attempt was dropped"
        );
    }

    #[test]
    fn send_with_retry_backoff_is_capped() {
        // Destination crashed from t=0... no: a crashed node returns
        // immediately. Keep the link down for the whole run instead, so
        // every attempt fails Unreachable and the full backoff schedule
        // is consumed. With jitter off, the elapsed time is exactly the
        // sum of capped delays — the uncapped schedule would sleep
        // 1+2+4+...+2^9 ms, the capped one 1+2+4+4+... ms.
        let policy = RetryPolicy {
            max_attempts: 10,
            backoff: Backoff::exponential(Dur::from_millis(1), Dur::from_millis(4)),
        };
        let m = Machine::new(presets::delta(1, 2));
        let mut r = Vec::new();
        m.config().topology.route(0, 1, &mut r);
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::ZERO,
            FaultKind::LinkDown {
                link: r[0],
                until: SimTime::MAX,
            },
        );
        let (out, report) = m.run_with_faults(&plan, |node| async move {
            match node.rank() {
                0 => {
                    let t0 = node.now();
                    let res = node
                        .send_with_retry(1, 1, Payload::Virtual(64), policy)
                        .await;
                    assert!(matches!(res, Err(CommError::Unreachable { .. })));
                    (node.now() - t0).nanos()
                }
                _ => 0,
            }
        });
        // 9 backoffs: 1 + 2 + then seven capped at 4 ms = 31 ms, plus
        // 10 local send-overhead charges; no jitter, so exact.
        let backoffs: u64 = (1..10u32)
            .map(|a| policy.backoff.delay(mix64(&[0, 1, 1]), a).nanos())
            .sum();
        assert_eq!(backoffs, Dur::from_millis(31).nanos());
        let overhead = 10 * m.config().net.send_overhead.nanos();
        assert_eq!(out[0], Some(backoffs + overhead));
        assert_eq!(report.faults.retries, 9);
    }

    #[test]
    fn send_with_retry_jitter_is_deterministic() {
        // Same machine, same flap, jittered policy: two runs must agree
        // bit-for-bit, and a different seed must move the retry clock.
        let elapsed = |seed: u64| {
            let policy = RetryPolicy {
                max_attempts: 6,
                backoff: Backoff {
                    base: Dur::from_millis(1),
                    cap: Dur::from_millis(8),
                    jitter: 0.40,
                    seed,
                },
            };
            let m = Machine::new(presets::delta(1, 2));
            let mut r = Vec::new();
            m.config().topology.route(0, 1, &mut r);
            let mut plan = FaultPlan::none();
            plan.push(
                SimTime::ZERO,
                FaultKind::LinkDown {
                    link: r[0],
                    until: SimTime::from_secs_f64(0.003),
                },
            );
            let (out, report) = m.run_with_faults(&plan, |node| async move {
                match node.rank() {
                    0 => {
                        let ok = node
                            .send_with_retry(1, 1, Payload::Virtual(64), policy)
                            .await
                            .is_ok();
                        assert!(ok, "flap repaired within the schedule");
                        node.now().nanos()
                    }
                    1 => {
                        node.recv(Some(0), Some(1)).await;
                        node.now().nanos()
                    }
                    _ => 0,
                }
            });
            assert!(report.faults.retries >= 1);
            out
        };
        let a = elapsed(7);
        let b = elapsed(7);
        assert_eq!(a, b, "seeded jitter replays bit-for-bit");
        let c = elapsed(8);
        assert_ne!(a, c, "a different seed shifts the retry schedule");
    }

    #[test]
    fn slowdown_stretches_compute() {
        let flops = 1.0e9;
        let m = tiny();
        let base = m.config().node.compute_time(Kernel::Dgemm, flops);
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::ZERO,
            FaultKind::NodeSlow {
                node: 0,
                factor: 3.0,
                until: SimTime::MAX,
            },
        );
        let (_, report) = m.run_with_faults(&plan, move |node| async move {
            if node.rank() == 0 {
                node.compute(Kernel::Dgemm, flops).await;
            }
        });
        assert_eq!(report.elapsed, base.mul_f64(3.0));
        assert_eq!(report.faults.slowdowns, 1);
    }

    #[test]
    fn survivors_blocked_on_dead_peer_are_orphaned_not_deadlocked() {
        let m = tiny();
        let mut plan = FaultPlan::none();
        plan.push(SimTime::ZERO, FaultKind::NodeCrash { node: 0 });
        let (out, report) = m.run_with_faults(&plan, |node| async move {
            if node.rank() == 1 {
                // Blocking recv from the dead node, no timeout: orphaned.
                node.recv(Some(0), None).await;
            }
            node.rank()
        });
        assert_eq!(out[0], None, "crashed");
        assert_eq!(out[1], None, "orphaned");
        assert_eq!(out[2], Some(2));
        assert_eq!(report.faults.orphaned_tasks, 1);
    }

    #[test]
    fn fault_run_replays_bit_identically() {
        let model = des::MtbfModel {
            node_mtbf: Some(Dur::from_secs(2)),
            slow_mtbf: Some(Dur::from_secs(3)),
            slow_factor: 2.0,
            slow_duration: Dur::from_millis(500),
            link_mtbf: Some(Dur::from_secs(4)),
            link_repair: Dur::from_millis(200),
            flap_mtbf: None,
            flap_duration: Dur::ZERO,
        };
        let run = |seed: u64| {
            let m = Machine::new(presets::delta(2, 3));
            let plan = des::FaultPlan::seeded(
                seed,
                &model,
                m.config().nodes(),
                m.config().topology.links(),
                Dur::from_secs(10),
            );
            let (out, r) = m.run_with_faults(&plan, |node| async move {
                let n = node.nranks();
                for round in 0..50u64 {
                    let next = (node.rank() + 1) % n;
                    node.send(next, round, Payload::Virtual(4096)).await;
                    let got = node
                        .recv_timeout(None, Some(round), Dur::from_millis(50))
                        .await;
                    if got.is_err() {
                        break;
                    }
                    node.compute(Kernel::Stencil, 1e6).await;
                }
                node.now()
            });
            (out, r.elapsed, r.events, r.faults)
        };
        assert_eq!(run(1234), run(1234), "same seed, same trace");
        let (_, _, _, faults) = run(1234);
        assert!(faults.any(), "the plan actually injected something");
    }

    #[test]
    fn recorded_run_is_bit_identical_and_breakdown_sums_to_elapsed() {
        let program = |node: Node| async move {
            let n = node.nranks();
            let next = (node.rank() + 1) % n;
            let prev = (node.rank() + n - 1) % n;
            for round in 0..4u64 {
                node.send_virtual(next, round, 4096).await;
                node.recv(Some(prev), Some(round)).await;
                node.compute(Kernel::Dgemm, 1e7).await;
                node.delay(Dur::from_micros(3)).await;
            }
            node.now()
        };
        let m = Machine::new(presets::delta(2, 3));
        let (out_plain, plain) = m.run(program);
        let rec = Rc::new(hpcc_trace::MemRecorder::new());
        let (out_rec, recd) = m.run_recorded(&FaultPlan::none(), rec.clone(), program);

        assert_eq!(
            out_plain,
            out_rec.into_iter().map(Option::unwrap).collect::<Vec<_>>()
        );
        assert_eq!(plain.elapsed, recd.elapsed);
        assert_eq!(plain.events, recd.events);
        assert_eq!(plain.messages, recd.messages);
        assert!(!rec.is_empty(), "recording produced events");

        // Acceptance: each node's busy-time breakdown (plus idle) sums to
        // total sim time. Everything is integer nanoseconds, so "within
        // 1e-9 seconds" is exact equality here.
        let rows = rec.node_breakdown(recd.elapsed.nanos());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert_eq!(row.total_ns(), recd.elapsed.nanos());
            assert!(row.compute_ns > 0, "{} computed", row.thread);
        }
    }

    #[test]
    fn recorded_faulted_run_matches_unrecorded() {
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::from_secs_f64(0.0005),
            FaultKind::NodeCrash { node: 2 },
        );
        let program = |node: Node| async move {
            let n = node.nranks();
            for round in 0..10u64 {
                let next = (node.rank() + 1) % n;
                node.send(next, round, Payload::Virtual(2048)).await;
                if node
                    .recv_timeout(None, Some(round), Dur::from_millis(2))
                    .await
                    .is_err()
                {
                    break;
                }
            }
            node.now()
        };
        let m = Machine::new(presets::delta(2, 2));
        let (out_a, a) = m.run_with_faults(&plan, program);
        let rec = Rc::new(hpcc_trace::MemRecorder::new());
        let (out_b, b) = m.run_recorded(&plan, rec.clone(), program);
        assert_eq!(out_a, out_b);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.faults, b.faults);
        // The crash and the timeouts show up as trace instants.
        let instants: Vec<String> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                hpcc_trace::Event::Instant { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(instants.iter().any(|n| n == "crash"));
        assert!(instants.iter().any(|n| n == "timeout"));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(16))]
        /// Property: attaching a recorder never perturbs the simulation —
        /// sim time, event count, and message count are bit-identical for
        /// any machine shape and message size.
        fn recorded_run_never_perturbs_simulation(
            rows in 1..3usize,
            cols in 2..5usize,
            kb in 1..64u64,
        ) {
            let program = move |node: Node| async move {
                let n = node.nranks();
                let next = (node.rank() + 1) % n;
                let prev = (node.rank() + n - 1) % n;
                node.send_virtual(next, 1, kb * 1024).await;
                node.recv(Some(prev), Some(1)).await;
                node.compute(Kernel::Stencil, 1e6).await;
                node.now()
            };
            let m = Machine::new(presets::delta(rows, cols));
            let (out_a, a) = m.run(program);
            let rec = Rc::new(hpcc_trace::MemRecorder::new());
            let (out_b, b) = m.run_recorded(&FaultPlan::none(), rec.clone(), program);
            proptest::prop_assert_eq!(
                out_a,
                out_b.into_iter().map(Option::unwrap).collect::<Vec<_>>()
            );
            proptest::prop_assert_eq!(a.elapsed, b.elapsed);
            proptest::prop_assert_eq!(a.events, b.events);
            proptest::prop_assert_eq!(a.messages, b.messages);
            proptest::prop_assert_eq!(a.bytes, b.bytes);
            proptest::prop_assert!(!rec.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "expected F64 payload, got 64 bytes")]
    fn payload_type_panic_message_preserved() {
        let _ = Payload::Virtual(64).into_f64s();
    }

    #[test]
    fn payload_type_error_is_typed() {
        assert_eq!(
            Payload::Virtual(64).try_into_f64s(),
            Err(CommError::PayloadType { got_bytes: 64 })
        );
        assert_eq!(
            Payload::from_f64s(&[1.0]).try_as_f64s().unwrap(),
            &[1.0][..]
        );
    }
}
