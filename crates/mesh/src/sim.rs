//! The multicomputer simulator: node programs as async tasks over a
//! discrete-event core.
//!
//! ## Network model
//!
//! Messages are timed with a *link-occupancy* approximation of wormhole
//! switching: a message from `src` to `dst` follows the topology's
//! deterministic route; it starts when every channel on the path is free
//! (and the wire latency has elapsed), then holds the whole path for
//! `per_hop·hops + bytes/bandwidth`. This captures the two behaviours that
//! matter at the scale of the paper's claims — pipelined transfers whose
//! time is dominated by `bytes/bw`, and head-of-line contention when
//! routes share channels — while staying fast enough to sweep 1000-node
//! machines.
//!
//! ## Compute model
//!
//! `Node::compute(kernel, flops)` advances virtual time by
//! `flops / (peak · eff(kernel))`. Programs may move real `f64` data
//! (validated numerics at small scale) or `Payload::Virtual` byte counts
//! (paper-scale runs where only timing matters).

use crate::machine::{Kernel, MachineConfig};
use crate::topology::LinkId;
use bytes::Bytes;
use des::time::{Dur, SimTime};
use des::{Completion, EventQueue, Tasks};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::rc::Rc;

/// Message contents: real doubles, raw bytes, or a timing-only byte count.
#[derive(Debug, Clone)]
pub enum Payload {
    F64(Rc<[f64]>),
    Bytes(Bytes),
    Virtual(u64),
}

impl Payload {
    pub fn from_f64s(xs: &[f64]) -> Payload {
        Payload::F64(Rc::from(xs))
    }

    /// On-the-wire size in bytes.
    pub fn len_bytes(&self) -> u64 {
        match self {
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::Bytes(b) => b.len() as u64,
            Payload::Virtual(n) => *n,
        }
    }

    /// Borrow the doubles; panics on a non-F64 payload (a protocol error
    /// in the node program, not a recoverable condition).
    pub fn as_f64s(&self) -> &[f64] {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {} bytes", other.len_bytes()),
        }
    }

    pub fn into_f64s(self) -> Rc<[f64]> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {} bytes", other.len_bytes()),
        }
    }
}

/// A delivered message.
#[derive(Debug, Clone)]
pub struct Msg {
    pub src: usize,
    pub tag: u64,
    pub payload: Payload,
    pub sent_at: SimTime,
    pub arrived_at: SimTime,
}

enum Event {
    Deliver { dst: usize, msg: Msg },
    Wake(Completion<()>),
}

struct PendingRecv {
    src: Option<usize>,
    tag: Option<u64>,
    done: Completion<Msg>,
}

fn matches(want_src: Option<usize>, want_tag: Option<u64>, src: usize, tag: u64) -> bool {
    want_src.is_none_or(|s| s == src) && want_tag.is_none_or(|t| t == tag)
}

/// Aggregate counters for one run.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    pub messages: u64,
    pub bytes: u64,
    pub flops: f64,
    /// Sum over nodes of time spent in `compute`.
    pub compute_time: Dur,
    /// Sum over channels of reserved time.
    pub link_busy: Dur,
    /// Messages delivered to a node with no matching recv posted yet.
    pub unexpected: u64,
}

struct SimCore {
    q: EventQueue<Event>,
    /// Shared with the owning [`Machine`] and every [`Node`] handle —
    /// the config is immutable for the whole run, so nobody clones it.
    cfg: Rc<MachineConfig>,
    link_busy_until: Vec<SimTime>,
    mailbox: Vec<VecDeque<Msg>>,
    pending: Vec<VecDeque<PendingRecv>>,
    blocked: Vec<Option<String>>,
    route_buf: Vec<LinkId>,
    counters: Counters,
}

impl SimCore {
    fn new(cfg: Rc<MachineConfig>) -> SimCore {
        let n = cfg.nodes();
        let links = cfg.topology.links();
        SimCore {
            // Steady state holds at most a wake or delivery per node;
            // pre-size so the calendar never regrows mid-run.
            q: EventQueue::with_capacity(2 * n),
            cfg,
            link_busy_until: vec![SimTime::ZERO; links],
            mailbox: (0..n).map(|_| VecDeque::new()).collect(),
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            blocked: vec![None; n],
            route_buf: Vec::new(),
            counters: Counters::default(),
        }
    }

    /// Compute the arrival time of a message injected now and reserve the
    /// channels along its route.
    fn inject(&mut self, src: usize, dst: usize, tag: u64, payload: Payload) {
        let now = self.q.now();
        let bytes = payload.len_bytes();
        self.counters.messages += 1;
        self.counters.bytes += bytes;

        let arrival = if src == dst {
            // Local copy through memory; never touches the network.
            now + Dur::from_micros(1) + Dur::from_secs_f64(bytes as f64 / self.cfg.node.mem_bw)
        } else {
            let net = &self.cfg.net;
            let mut route = std::mem::take(&mut self.route_buf);
            self.cfg.topology.route(src, dst, &mut route);
            // The first byte reaches the wire only after the sender's
            // software send path and the router setup have run.
            let injected = now + net.send_overhead + net.wire_latency;
            let serial = Dur::from_secs_f64(bytes as f64 / net.bandwidth);
            let end = match net.switching {
                crate::machine::Switching::Wormhole => {
                    // The whole path is reserved once and held for the
                    // pipelined transfer.
                    let mut start = injected;
                    for &l in &route {
                        if self.link_busy_until[l] > start {
                            start = self.link_busy_until[l];
                        }
                    }
                    let dur = net.per_hop * route.len() as u64 + serial;
                    let end = start + dur;
                    for &l in &route {
                        self.link_busy_until[l] = end;
                    }
                    self.counters.link_busy += dur * route.len() as u64;
                    end
                }
                crate::machine::Switching::StoreAndForward => {
                    // The message is fully buffered and retransmitted at
                    // every hop; each channel is held for its own copy.
                    let mut at = injected;
                    for &l in &route {
                        let start = at.max(self.link_busy_until[l]);
                        let end = start + net.per_hop + serial;
                        self.link_busy_until[l] = end;
                        self.counters.link_busy += net.per_hop + serial;
                        at = end;
                    }
                    at
                }
            };
            self.route_buf = route;
            end
        };

        let msg = Msg {
            src,
            tag,
            payload,
            sent_at: now,
            arrived_at: arrival,
        };
        self.q.schedule(arrival, Event::Deliver { dst, msg });
    }

    /// Hand an arrived message to a posted recv or queue it.
    fn deliver(&mut self, dst: usize, msg: Msg) {
        let pend = &mut self.pending[dst];
        if let Some(pos) = pend
            .iter()
            .position(|p| matches(p.src, p.tag, msg.src, msg.tag))
        {
            let p = pend.remove(pos).unwrap();
            self.blocked[dst] = None;
            p.done.fulfil(msg);
        } else {
            self.counters.unexpected += 1;
            self.mailbox[dst].push_back(msg);
        }
    }

    fn timer(&mut self, delay: Dur) -> Completion<()> {
        let c = Completion::new();
        self.q.schedule_in(delay, Event::Wake(c.clone()));
        c
    }
}

/// Handle a node program uses to talk to the simulator. Cheap to clone.
pub struct Node {
    core: Rc<RefCell<SimCore>>,
    rank: usize,
    nranks: usize,
}

impl Clone for Node {
    fn clone(&self) -> Self {
        Node {
            core: Rc::clone(&self.core),
            rank: self.rank,
            nranks: self.nranks,
        }
    }
}

impl Node {
    /// This node's rank in `0..nranks()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Machine size.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().q.now()
    }

    /// The machine this program is running on. A refcount bump, not a
    /// deep copy — node programs may call this per query.
    pub fn machine(&self) -> Rc<MachineConfig> {
        Rc::clone(&self.core.borrow().cfg)
    }

    /// Blocking tagged send (NX `csend` semantics: returns once the local
    /// send path is done; the transfer proceeds in the background).
    pub async fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(dst < self.nranks, "send to rank {dst} of {}", self.nranks);
        let (c, overhead) = {
            let mut core = self.core.borrow_mut();
            core.inject(self.rank, dst, tag, payload);
            let ov = core.cfg.net.send_overhead;
            (core.timer(ov), ov)
        };
        let _ = overhead;
        c.wait().await;
    }

    /// Convenience: send a slice of doubles.
    pub async fn send_f64s(&self, dst: usize, tag: u64, data: &[f64]) {
        self.send(dst, tag, Payload::from_f64s(data)).await;
    }

    /// Convenience: timing-only send of `bytes` bytes.
    pub async fn send_virtual(&self, dst: usize, tag: u64, bytes: u64) {
        self.send(dst, tag, Payload::Virtual(bytes)).await;
    }

    /// Blocking tagged receive. `src`/`tag` of `None` are wildcards.
    /// Matches the earliest-arrived queued message first (NX `crecv`).
    pub async fn recv(&self, src: Option<usize>, tag: Option<u64>) -> Msg {
        let waited = {
            let mut core = self.core.borrow_mut();
            let mbox = &mut core.mailbox[self.rank];
            if let Some(pos) = mbox.iter().position(|m| matches(src, tag, m.src, m.tag)) {
                Ok(mbox.remove(pos).unwrap())
            } else {
                let done: Completion<Msg> = Completion::new();
                core.pending[self.rank].push_back(PendingRecv {
                    src,
                    tag,
                    done: done.clone(),
                });
                core.blocked[self.rank] = Some(format!("recv(src={src:?}, tag={tag:?})"));
                Err(done)
            }
        };
        let (msg, buffered) = match waited {
            Ok(m) => (m, true),
            Err(done) => (done.wait().await, false),
        };
        // Receiver software overhead; an unexpected (buffered) message
        // also pays the system-buffer copy — the reason NX programmers
        // preposted their receives.
        let c = {
            let mut core = self.core.borrow_mut();
            let mut ov = core.cfg.net.recv_overhead;
            if buffered {
                ov += Dur::from_secs_f64(msg.payload.len_bytes() as f64 / core.cfg.node.mem_bw);
            }
            core.timer(ov)
        };
        c.wait().await;
        msg
    }

    /// Receive and unwrap a doubles payload.
    pub async fn recv_f64s(&self, src: Option<usize>, tag: Option<u64>) -> Rc<[f64]> {
        self.recv(src, tag).await.payload.into_f64s()
    }

    /// Post a non-blocking receive (NX `irecv`): the match is armed
    /// immediately, so a message arriving while the node computes is
    /// captured without the unexpected-message queue. Await the returned
    /// request to take the message (receiver overhead is charged then).
    pub fn irecv(&self, src: Option<usize>, tag: Option<u64>) -> RecvRequest {
        let mut core = self.core.borrow_mut();
        let mbox = &mut core.mailbox[self.rank];
        let done: Completion<Msg> = Completion::new();
        let mut buffered = false;
        if let Some(pos) = mbox.iter().position(|m| matches(src, tag, m.src, m.tag)) {
            done.fulfil(mbox.remove(pos).unwrap());
            buffered = true;
        } else {
            core.pending[self.rank].push_back(PendingRecv {
                src,
                tag,
                done: done.clone(),
            });
        }
        RecvRequest {
            node: self.clone(),
            done,
            buffered,
        }
    }

    /// Non-blocking mailbox check (NX `iprobe`): is a matching message
    /// already waiting? Never consumes the message.
    pub fn probe(&self, src: Option<usize>, tag: Option<u64>) -> bool {
        self.core.borrow().mailbox[self.rank]
            .iter()
            .any(|m| matches(src, tag, m.src, m.tag))
    }

    /// Advance virtual time by the cost of `flops` operations of `kernel`.
    pub async fn compute(&self, kernel: Kernel, flops: f64) {
        let c = {
            let mut core = self.core.borrow_mut();
            let d = core.cfg.node.compute_time(kernel, flops);
            core.counters.flops += flops;
            core.counters.compute_time += d;
            core.timer(d)
        };
        c.wait().await;
    }

    /// Advance virtual time by an explicit duration (I/O, OS, modelling).
    pub async fn delay(&self, d: Dur) {
        let c = self.core.borrow_mut().timer(d);
        c.wait().await;
    }
}

/// Handle to a posted non-blocking receive. Await [`RecvRequest::wait`]
/// to take the message; [`RecvRequest::ready`] polls without blocking.
pub struct RecvRequest {
    node: Node,
    done: Completion<Msg>,
    /// The message had already arrived unexpected and was system-buffered
    /// when this request was posted (extra copy charged at wait).
    buffered: bool,
}

impl RecvRequest {
    /// Has the matching message arrived yet?
    pub fn ready(&self) -> bool {
        self.done.is_fulfilled()
    }

    /// Block until the message is in, then charge the receive overhead
    /// (plus the buffer copy when the message pre-dated the post).
    pub async fn wait(self) -> Msg {
        let msg = self.done.wait().await;
        let c = {
            let mut core = self.node.core.borrow_mut();
            let mut ov = core.cfg.net.recv_overhead;
            if self.buffered {
                ov += Dur::from_secs_f64(msg.payload.len_bytes() as f64 / core.cfg.node.mem_bw);
            }
            core.timer(ov)
        };
        c.wait().await;
        msg
    }
}

/// Per-run report: virtual elapsed time plus traffic/compute aggregates.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub machine: String,
    pub nodes: usize,
    pub elapsed: Dur,
    pub messages: u64,
    pub bytes: u64,
    pub flops: f64,
    pub events: u64,
    /// Mean fraction of the run each node spent computing.
    pub compute_fraction: f64,
    /// Mean fraction of each channel's time spent occupied.
    pub link_utilization: f64,
    /// Messages that arrived before a matching recv was posted.
    pub unexpected_messages: u64,
}

impl RunReport {
    /// Achieved FLOP rate over the whole run.
    pub fn gflops(&self) -> f64 {
        if self.elapsed == Dur::ZERO {
            0.0
        } else {
            self.flops / self.elapsed.as_secs_f64() / 1e9
        }
    }
}

/// A configured machine ready to run node programs.
pub struct Machine {
    cfg: Rc<MachineConfig>,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Machine {
        Machine { cfg: Rc::new(cfg) }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Run one program per node to completion; collect each node's result.
    ///
    /// Panics (with a per-node wait list) on communication deadlock —
    /// tasks still parked with an empty event calendar.
    pub fn run<T, F, Fut>(&self, program: F) -> (Vec<T>, RunReport)
    where
        T: 'static,
        F: Fn(Node) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        let n = self.cfg.nodes();
        let core = Rc::new(RefCell::new(SimCore::new(Rc::clone(&self.cfg))));
        let mut tasks = Tasks::new();
        let results: Rc<RefCell<Vec<Option<T>>>> =
            Rc::new(RefCell::new((0..n).map(|_| None).collect()));

        for rank in 0..n {
            let node = Node {
                core: Rc::clone(&core),
                rank,
                nranks: n,
            };
            let fut = program(node);
            let sink = Rc::clone(&results);
            tasks.spawn(async move {
                let out = fut.await;
                sink.borrow_mut()[rank] = Some(out);
            });
        }

        tasks.run_ready();
        while !tasks.all_done() {
            let ev = core.borrow_mut().q.pop();
            match ev {
                Some((_, Event::Deliver { dst, msg })) => {
                    core.borrow_mut().deliver(dst, msg);
                }
                Some((_, Event::Wake(c))) => c.fulfil(()),
                None => {
                    let core = core.borrow();
                    let stuck: Vec<String> = core
                        .blocked
                        .iter()
                        .enumerate()
                        .filter_map(|(r, b)| b.as_ref().map(|s| format!("  node {r}: {s}")))
                        .collect();
                    panic!(
                        "deadlock on {}: {} tasks parked, no events\n{}",
                        core.cfg.name,
                        tasks.live(),
                        stuck.join("\n")
                    );
                }
            }
            tasks.run_ready();
        }

        let core = core.borrow();
        let elapsed = core.q.now() - SimTime::ZERO;
        let nlinks = core.cfg.topology.links().max(1);
        let denom = elapsed.as_secs_f64().max(1e-30);
        let report = RunReport {
            machine: core.cfg.name.clone(),
            nodes: n,
            elapsed,
            messages: core.counters.messages,
            bytes: core.counters.bytes,
            flops: core.counters.flops,
            events: core.q.events_processed(),
            compute_fraction: core.counters.compute_time.as_secs_f64() / (n as f64 * denom),
            link_utilization: core.counters.link_busy.as_secs_f64() / (nlinks as f64 * denom),
            unexpected_messages: core.counters.unexpected,
        };
        let results = Rc::try_unwrap(results)
            .unwrap_or_else(|_| unreachable!("all tasks done"))
            .into_inner()
            .into_iter()
            .map(|o| o.expect("node completed"))
            .collect();
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::presets;

    fn tiny() -> Machine {
        Machine::new(presets::delta(2, 2))
    }

    #[test]
    fn pingpong_latency_matches_model() {
        let m = tiny();
        let bytes = 8_000u64;
        let (_out, report) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    node.send_virtual(1, 7, bytes).await;
                    node.recv(Some(1), Some(8)).await;
                }
                1 => {
                    node.recv(Some(0), Some(7)).await;
                    node.send_virtual(0, 8, bytes).await;
                }
                _ => {}
            }
        });
        let cfg = m.config();
        let one_way =
            cfg.net.send_overhead + cfg.net.transfer_time(bytes, 1) + cfg.net.recv_overhead;
        let expect = one_way * 2;
        let got = report.elapsed;
        let err = (got.as_secs_f64() - expect.as_secs_f64()).abs() / expect.as_secs_f64();
        assert!(err < 0.05, "got {got}, expected ~{expect}");
        assert_eq!(report.messages, 2);
        assert_eq!(report.bytes, 2 * bytes);
    }

    #[test]
    fn contention_serialises_shared_link() {
        // 1x3 mesh: 0->2 and 1->2 share the link 1->2; the two 1 MB
        // transfers must take ~2x the bandwidth time, not 1x.
        let m = Machine::new(presets::delta(1, 3));
        let bytes = 1_000_000u64;
        let (_, report) = m.run(move |node| async move {
            match node.rank() {
                0 | 1 => node.send_virtual(2, node.rank() as u64, bytes).await,
                2 => {
                    node.recv(None, None).await;
                    node.recv(None, None).await;
                }
                _ => {}
            }
        });
        let bw_time = bytes as f64 / m.config().net.bandwidth;
        let got = report.elapsed.as_secs_f64();
        assert!(
            got > 1.9 * bw_time && got < 2.3 * bw_time,
            "elapsed {got}s vs serialised {:.4}s",
            2.0 * bw_time
        );
    }

    #[test]
    fn disjoint_routes_run_in_parallel() {
        // 1x4 mesh: 0->1 and 3->2 use disjoint links; elapsed ~1x.
        let m = Machine::new(presets::delta(1, 4));
        let bytes = 1_000_000u64;
        let (_, report) = m.run(move |node| async move {
            match node.rank() {
                0 => node.send_virtual(1, 0, bytes).await,
                3 => node.send_virtual(2, 0, bytes).await,
                1 | 2 => {
                    node.recv(None, None).await;
                }
                _ => {}
            }
        });
        let bw_time = bytes as f64 / m.config().net.bandwidth;
        let got = report.elapsed.as_secs_f64();
        assert!(got < 1.2 * bw_time, "elapsed {got}s vs parallel {bw_time}s");
    }

    #[test]
    fn tag_and_src_matching() {
        let m = tiny();
        let (out, _) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    // Send out of order; receiver selects by tag.
                    node.send_f64s(1, 20, &[2.0]).await;
                    node.send_f64s(1, 10, &[1.0]).await;
                    0.0
                }
                1 => {
                    let a = node.recv_f64s(Some(0), Some(10)).await;
                    let b = node.recv_f64s(Some(0), Some(20)).await;
                    a[0] * 10.0 + b[0]
                }
                _ => 0.0,
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn wildcard_recv_takes_earliest() {
        let m = Machine::new(presets::delta(1, 3));
        let (out, _) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    node.send_f64s(2, 1, &[5.0]).await;
                    0.0
                }
                1 => {
                    // Delay so node 0's message definitely arrives first.
                    node.delay(Dur::from_millis(10)).await;
                    node.send_f64s(2, 1, &[7.0]).await;
                    0.0
                }
                2 => {
                    let first = node.recv(None, None).await;
                    let second = node.recv(None, None).await;
                    assert_eq!(first.src, 0);
                    assert_eq!(second.src, 1);
                    first.payload.as_f64s()[0] + second.payload.as_f64s()[0]
                }
                _ => 0.0,
            }
        });
        assert_eq!(out[2], 12.0);
    }

    #[test]
    fn self_send_works() {
        let m = tiny();
        let (out, _) = m.run(|node| async move {
            if node.rank() == 0 {
                node.send_f64s(0, 3, &[4.5]).await;
                node.recv_f64s(Some(0), Some(3)).await[0]
            } else {
                0.0
            }
        });
        assert_eq!(out[0], 4.5);
    }

    #[test]
    fn compute_advances_time_by_model() {
        let m = tiny();
        let flops = 1.0e9;
        let (_, report) = m.run(move |node| async move {
            if node.rank() == 0 {
                node.compute(Kernel::Dgemm, flops).await;
            }
        });
        let expect = m.config().node.compute_time(Kernel::Dgemm, flops);
        assert_eq!(report.elapsed, expect);
        assert_eq!(report.flops, flops);
    }

    #[test]
    fn gflops_accounting() {
        let m = tiny();
        let (_, report) = m.run(|node| async move {
            // All 4 nodes compute 1 GFLOP of dgemm concurrently.
            node.compute(Kernel::Dgemm, 1.0e9).await;
        });
        let per_node = m.config().node.sustained(Kernel::Dgemm);
        let expect_gflops = 4.0 * per_node / 1e9;
        assert!(
            (report.gflops() - expect_gflops).abs() / expect_gflops < 1e-6,
            "got {} expected {}",
            report.gflops(),
            expect_gflops
        );
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let m = Machine::new(presets::delta(2, 3));
            let (_, r) = m.run(|node| async move {
                let n = node.nranks();
                let next = (node.rank() + 1) % n;
                let prev = (node.rank() + n - 1) % n;
                node.send_virtual(next, 1, 4096).await;
                node.recv(Some(prev), Some(1)).await;
                node.compute(Kernel::Stencil, 1e7).await;
            });
            (r.elapsed, r.messages, r.bytes, r.events)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let m = tiny();
        let (_, _) = m.run(|node| async move {
            // Everyone waits; nobody sends.
            node.recv(None, None).await;
        });
    }

    #[test]
    fn unexpected_messages_counted() {
        let m = tiny();
        let (_, report) = m.run(|node| async move {
            match node.rank() {
                0 => node.send_virtual(1, 1, 64).await,
                1 => {
                    // Post the recv long after arrival.
                    node.delay(Dur::from_millis(50)).await;
                    node.recv(Some(0), Some(1)).await;
                }
                _ => {}
            }
        });
        assert_eq!(report.unexpected_messages, 1);
    }

    #[test]
    fn irecv_overlaps_compute() {
        // Blocking style: recv happens after the compute finishes, so
        // total = compute + full message path. irecv style: the message
        // flies while the node computes.
        let bytes = 2_000_000u64;
        let flops = 4.0e6; // ~115 ms of dgemm on a Delta node
        let run = |overlap: bool| {
            let m = tiny();
            let (_, r) = m.run(move |node| async move {
                match node.rank() {
                    0 => node.send_virtual(1, 9, bytes).await,
                    1 => {
                        if overlap {
                            let req = node.irecv(Some(0), Some(9));
                            node.compute(Kernel::Dgemm, flops).await;
                            req.wait().await;
                        } else {
                            node.compute(Kernel::Dgemm, flops).await;
                            node.recv(Some(0), Some(9)).await;
                        }
                    }
                    _ => {}
                }
            });
            r.elapsed.as_secs_f64()
        };
        let blocking = run(false);
        let overlapped = run(true);
        assert!(
            overlapped < blocking,
            "overlap {overlapped} !< blocking {blocking}"
        );
        // Both paths still end after max(compute, transfer) at least.
        assert!(overlapped > 0.9 * (bytes as f64 / 25.0e6));
    }

    #[test]
    fn irecv_ready_and_unexpected_bypass() {
        let m = tiny();
        let (_, report) = m.run(|node| async move {
            match node.rank() {
                0 => node.send_virtual(1, 5, 64).await,
                1 => {
                    let req = node.irecv(Some(0), Some(5));
                    assert!(!req.ready(), "nothing arrived yet");
                    node.delay(Dur::from_millis(10)).await;
                    assert!(req.ready(), "message should have landed");
                    req.wait().await;
                }
                _ => {}
            }
        });
        // The posted irecv caught the message before it became
        // "unexpected".
        assert_eq!(report.unexpected_messages, 0);
    }

    #[test]
    fn probe_sees_but_does_not_consume() {
        let m = tiny();
        let (out, _) = m.run(|node| async move {
            match node.rank() {
                0 => {
                    node.send_f64s(1, 3, &[8.0]).await;
                    0.0
                }
                1 => {
                    assert!(!node.probe(Some(0), Some(3)));
                    node.delay(Dur::from_millis(5)).await;
                    assert!(node.probe(Some(0), Some(3)));
                    assert!(node.probe(Some(0), Some(3)), "probe is repeatable");
                    assert!(!node.probe(Some(0), Some(99)), "tag filter");
                    node.recv_f64s(Some(0), Some(3)).await[0]
                }
                _ => 0.0,
            }
        });
        assert_eq!(out[1], 8.0);
    }

    #[test]
    fn store_and_forward_is_distance_sensitive() {
        // 1x9 line, 1 MB end to end (8 hops): wormhole pays the serial
        // time once; store-and-forward pays it per hop.
        let bytes = 1_000_000u64;
        let elapsed = |cfg: crate::machine::MachineConfig| {
            let m = Machine::new(cfg);
            let (_, r) = m.run(move |node| async move {
                match node.rank() {
                    0 => node.send_virtual(8, 1, bytes).await,
                    8 => {
                        node.recv(Some(0), Some(1)).await;
                    }
                    _ => {}
                }
            });
            r.elapsed.as_secs_f64()
        };
        let wh = elapsed(presets::delta(1, 9));
        let sf = elapsed(presets::delta_store_and_forward(1, 9));
        let serial = bytes as f64 / presets::delta(1, 9).net.bandwidth;
        assert!(wh < 1.2 * serial, "wormhole {wh} vs serial {serial}");
        assert!(
            sf > 7.5 * serial && sf < 8.5 * serial,
            "S&F {sf} vs 8x serial {}",
            8.0 * serial
        );
    }

    #[test]
    fn switching_disciplines_agree_at_one_hop() {
        let bytes = 500_000u64;
        let one_hop = |cfg: crate::machine::MachineConfig| {
            let m = Machine::new(cfg);
            let (_, r) = m.run(move |node| async move {
                match node.rank() {
                    0 => node.send_virtual(1, 1, bytes).await,
                    1 => {
                        node.recv(Some(0), Some(1)).await;
                    }
                    _ => {}
                }
            });
            r.elapsed
        };
        let wh = one_hop(presets::delta(1, 2));
        let sf = one_hop(presets::delta_store_and_forward(1, 2));
        assert_eq!(wh, sf, "single hop: no pipelining advantage");
    }

    #[test]
    fn machine_query_shares_config() {
        let m = tiny();
        let (out, _) = m.run(|node| async move {
            // Many queries from one program: every handle must point at
            // the same allocation (no per-query deep clone).
            let a = node.machine();
            let b = node.machine();
            assert!(Rc::ptr_eq(&a, &b));
            a.nodes()
        });
        assert_eq!(out, vec![4, 4, 4, 4]);
    }

    #[test]
    fn results_collected_per_rank() {
        let m = Machine::new(presets::delta(2, 4));
        let (out, _) = m.run(|node| async move { node.rank() * 10 });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }
}
