//! Space-sharing batch scheduler for the Delta: consortium jobs queue
//! for rectangular sub-meshes; FCFS with optional aggressive backfill.
//!
//! This is the operational side of the "ACQUIRE AND UTILIZE" exhibit —
//! 14 partner organisations sharing 528 nodes. The simulation is
//! event-driven on the `des` calendar and reports the metrics the
//! consortium's operators cared about: utilisation, wait times, and
//! fragmentation refusals.

pub mod service;

use crate::partition::{MeshSpace, SubMesh};
use des::faults::FaultPlan;
use des::queue::EventQueue;
use des::rng::Rng;
use des::stats::Summary;
use des::time::{Dur, SimTime};
use hpcc_trace::{names, NullRecorder, Recorder, TrackId};

/// One batch job: a sub-mesh shape held for a duration.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    pub id: usize,
    /// Requested shape (rows, cols).
    pub shape: (usize, usize),
    pub runtime: Dur,
    pub arrival: SimTime,
    /// Submitting partner (index into a roster), for per-partner stats.
    pub partner: usize,
}

impl Job {
    pub fn nodes(&self) -> usize {
        self.shape.0 * self.shape.1
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict FCFS: the queue head blocks everyone behind it.
    Fcfs,
    /// Aggressive backfill: any queued job that fits right now may start.
    Backfill,
}

/// A placement that was killed mid-run by a node failure; the job was
/// re-queued afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KilledAttempt {
    pub started: SimTime,
    pub killed: SimTime,
    pub placement: SubMesh,
}

/// Completed-run record. `started`/`finished`/`placement` describe the
/// attempt that ran to completion; `attempts` lists every earlier
/// placement a node failure killed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    pub job: Job,
    /// Killed-and-requeued placements, in order, before the one that ran.
    pub attempts: Vec<KilledAttempt>,
    pub started: SimTime,
    pub finished: SimTime,
    pub placement: SubMesh,
}

impl JobRecord {
    /// Queue wait before the successful attempt (re-queue time included).
    pub fn wait(&self) -> Dur {
        self.started - self.job.arrival
    }

    /// How many times this job was killed and re-queued.
    pub fn requeues(&self) -> usize {
        self.attempts.len()
    }
}

/// Aggregate outcome of one scheduling run.
#[derive(Debug, Clone)]
pub struct SchedReport {
    pub policy: Policy,
    /// Jobs that ran to completion.
    pub jobs: usize,
    pub makespan: Dur,
    /// Busy node-time over total node-time until makespan.
    pub utilization: f64,
    pub mean_wait: Dur,
    pub max_wait: Dur,
    /// Placement attempts refused despite sufficient free nodes.
    pub fragmentation_refusals: u64,
    /// Placements killed by node failures (then re-queued).
    pub jobs_killed: u64,
    /// Nodes permanently retired by failures during the run.
    pub nodes_failed: usize,
    /// Partial work thrown away by kills, as a fraction of total
    /// node-time — utilization the faults ate.
    pub utilization_lost_to_faults: f64,
    /// Ids of jobs whose shape no longer fits the surviving mesh.
    pub unrunnable: Vec<usize>,
    pub records: Vec<JobRecord>,
}

enum Ev {
    Arrive(usize),
    /// Job index + attempt number; stale attempts (killed placements)
    /// are ignored when they fire.
    Finish(usize, u32),
    /// Permanent failure of a node (row-major id).
    Fault(usize),
}

/// A placement currently on the machine.
struct Running {
    idx: usize,
    attempt: u32,
    started: SimTime,
    placement: SubMesh,
}

/// Run the scheduler over a job batch on an `rows × cols` mesh.
pub fn run(rows: usize, cols: usize, jobs: Vec<Job>, policy: Policy) -> SchedReport {
    run_with_faults(rows, cols, jobs, policy, &FaultPlan::none())
}

/// Run the scheduler under a [`FaultPlan`]. Only `NodeCrash` events
/// matter at this level: the failed node is retired from the allocator,
/// the job holding it (if any) is killed and re-queued, and jobs whose
/// shape no longer fits the surviving mesh are reported unrunnable
/// instead of blocking the queue forever.
pub fn run_with_faults(
    rows: usize,
    cols: usize,
    jobs: Vec<Job>,
    policy: Policy,
    plan: &FaultPlan,
) -> SchedReport {
    run_recorded(rows, cols, jobs, policy, plan, &NullRecorder)
}

/// Run the scheduler with a trace recorder attached. Each job gets a
/// track carrying its queue-wait, run, and killed-attempt spans; a
/// "queue" track samples queued/running job counts after every event.
/// The recorder observes timestamps the scheduler already computed —
/// [`run_with_faults`] routes through here with a [`NullRecorder`] and
/// is bit-identical.
pub fn run_recorded(
    rows: usize,
    cols: usize,
    mut jobs: Vec<Job>,
    policy: Policy,
    plan: &FaultPlan,
    rec: &dyn Recorder,
) -> SchedReport {
    jobs.sort_by_key(|j| (j.arrival, j.id));
    let rec_on = rec.is_enabled();
    let job_track: Vec<TrackId> = if rec_on {
        jobs.iter()
            .map(|j| rec.track(names::SCHED, &format!("job {}", j.id)))
            .collect()
    } else {
        Vec::new()
    };
    let queue_track = if rec_on {
        rec.track(names::SCHED, "queue")
    } else {
        0
    };
    let mut space = MeshSpace::new(rows, cols);
    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, j) in jobs.iter().enumerate() {
        q.schedule(j.arrival, Ev::Arrive(i));
    }
    for (at, node) in plan.node_crashes() {
        assert!(node < rows * cols, "fault plan targets node {node}");
        q.schedule(at, Ev::Fault(node));
    }
    let mut queue: Vec<usize> = Vec::new(); // waiting job indices, FCFS order
    let mut records: Vec<Option<JobRecord>> = jobs.iter().map(|_| None).collect();
    let mut killed: Vec<Vec<KilledAttempt>> = jobs.iter().map(|_| Vec::new()).collect();
    let mut attempt_of: Vec<u32> = vec![0; jobs.len()];
    let mut running: Vec<Running> = Vec::new();
    let mut unrunnable: Vec<usize> = Vec::new();
    let mut frag = 0u64;
    let mut jobs_killed = 0u64;
    let mut busy_node_time = 0.0f64;
    let mut lost_node_time = 0.0f64;
    let mut makespan = Dur::ZERO;

    // Try to start queued jobs under the policy.
    let try_start = |space: &mut MeshSpace,
                     queue: &mut Vec<usize>,
                     jobs: &[Job],
                     q: &mut EventQueue<Ev>,
                     running: &mut Vec<Running>,
                     attempt_of: &[u32],
                     frag: &mut u64,
                     killed: &[Vec<KilledAttempt>],
                     policy: Policy| {
        let now = q.now();
        let mut i = 0;
        while i < queue.len() {
            let idx = queue[i];
            let (r, c) = jobs[idx].shape;
            match space.allocate(r, c, true) {
                Some(sm) => {
                    queue.remove(i);
                    q.schedule(now + jobs[idx].runtime, Ev::Finish(idx, attempt_of[idx]));
                    running.push(Running {
                        idx,
                        attempt: attempt_of[idx],
                        started: now,
                        placement: sm,
                    });
                    if rec_on {
                        // Queue wait for this attempt: since arrival, or
                        // since the kill that re-queued it.
                        let since = killed[idx]
                            .last()
                            .map(|k| k.killed)
                            .unwrap_or(jobs[idx].arrival);
                        rec.span(job_track[idx], "wait", "queued", since.nanos(), now.nanos());
                    }
                    // Restart the scan: freeing order may let earlier
                    // queue entries in — but FCFS order is preserved
                    // because we always scan from the front.
                    i = 0;
                }
                None => {
                    if space.is_fragmented_refusal(r, c, true) {
                        *frag += 1;
                    }
                    match policy {
                        Policy::Fcfs => break, // head of queue blocks
                        Policy::Backfill => i += 1,
                    }
                }
            }
        }
    };

    loop {
        while let Some((_, ev)) = q.pop() {
            let now = q.now();
            match ev {
                Ev::Arrive(i) => {
                    queue.push(i);
                }
                Ev::Finish(i, attempt) => {
                    if attempt != attempt_of[i] {
                        // The placement this Finish belongs to was killed.
                        continue;
                    }
                    let pos = running
                        .iter()
                        .position(|r| r.idx == i && r.attempt == attempt)
                        .expect("finishing job is running");
                    let entry = running.swap_remove(pos);
                    busy_node_time += jobs[i].nodes() as f64 * jobs[i].runtime.as_secs_f64();
                    makespan = makespan.max(now - SimTime::ZERO);
                    space.free(entry.placement);
                    if rec_on {
                        let (r, c) = jobs[i].shape;
                        rec.span(
                            job_track[i],
                            "run",
                            &format!("{r}x{c}"),
                            entry.started.nanos(),
                            now.nanos(),
                        );
                    }
                    records[i] = Some(JobRecord {
                        job: jobs[i].clone(),
                        attempts: std::mem::take(&mut killed[i]),
                        started: entry.started,
                        finished: now,
                        placement: entry.placement,
                    });
                }
                Ev::Fault(node) => {
                    let victim = space.allocation_containing(node);
                    space.fail_node(node);
                    makespan = makespan.max(now - SimTime::ZERO);
                    if let Some(sm) = victim {
                        let pos = running
                            .iter()
                            .position(|r| r.placement == sm)
                            .expect("allocated sub-mesh has a running job");
                        let entry = running.swap_remove(pos);
                        // Partial work is lost; the sub-mesh is drained
                        // and the job resubmitted at the back of the
                        // queue (a fresh submission at kill time).
                        lost_node_time +=
                            jobs[entry.idx].nodes() as f64 * (now - entry.started).as_secs_f64();
                        killed[entry.idx].push(KilledAttempt {
                            started: entry.started,
                            killed: now,
                            placement: sm,
                        });
                        attempt_of[entry.idx] += 1;
                        jobs_killed += 1;
                        space.free(sm);
                        queue.push(entry.idx);
                        if rec_on {
                            rec.span(
                                job_track[entry.idx],
                                "killed",
                                "killed attempt",
                                entry.started.nanos(),
                                now.nanos(),
                            );
                            rec.instant(job_track[entry.idx], "fault", "killed", now.nanos());
                        }
                    }
                    if rec_on {
                        rec.instant(queue_track, "fault", "node_fault", now.nanos());
                    }
                }
            }
            try_start(
                &mut space,
                &mut queue,
                &jobs,
                &mut q,
                &mut running,
                &attempt_of,
                &mut frag,
                &killed,
                policy,
            );
            if rec_on {
                rec.counter(queue_track, "queued_jobs", now.nanos(), queue.len() as f64);
                rec.counter(
                    queue_track,
                    "running_jobs",
                    now.nanos(),
                    running.len() as f64,
                );
            }
        }
        // The calendar drained. Fault-free, an empty queue is an
        // invariant; under faults, jobs whose shape no longer fits the
        // surviving mesh are reported and removed so FCFS heads cannot
        // block runnable work behind them forever.
        if plan.is_empty() {
            assert!(queue.is_empty(), "all jobs must eventually run");
        }
        if queue.is_empty() {
            break;
        }
        debug_assert!(running.is_empty() && space.allocations().is_empty());
        queue.retain(|&idx| {
            let (r, c) = jobs[idx].shape;
            let fits = space.clone().allocate(r, c, true).is_some();
            if !fits {
                unrunnable.push(jobs[idx].id);
                if rec_on {
                    rec.instant(job_track[idx], "fault", "unrunnable", q.now().nanos());
                }
            }
            fits
        });
        if queue.is_empty() {
            break;
        }
        try_start(
            &mut space,
            &mut queue,
            &jobs,
            &mut q,
            &mut running,
            &attempt_of,
            &mut frag,
            &killed,
            policy,
        );
    }

    let records: Vec<JobRecord> = records.into_iter().flatten().collect();
    let mut waits = Summary::new();
    let mut max_wait = Dur::ZERO;
    for r in &records {
        waits.add_dur(r.wait());
        max_wait = max_wait.max(r.wait());
    }
    let total_node_time = (rows * cols) as f64 * makespan.as_secs_f64();
    let frac = |num: f64| {
        if total_node_time > 0.0 {
            num / total_node_time
        } else {
            0.0
        }
    };
    SchedReport {
        policy,
        jobs: records.len(),
        makespan,
        utilization: frac(busy_node_time),
        mean_wait: Dur::from_secs_f64(waits.mean()),
        max_wait,
        fragmentation_refusals: frag,
        jobs_killed,
        nodes_failed: space.failed_nodes(),
        utilization_lost_to_faults: frac(lost_node_time),
        unrunnable,
        records,
    }
}

/// A consortium-style workload: `n` jobs from `partners` submitters,
/// Poisson arrivals, power-of-two-ish shapes, log-normal runtimes.
pub fn consortium_workload(
    n: usize,
    partners: usize,
    mean_interarrival_s: f64,
    seed: u64,
) -> Vec<Job> {
    let mut rng = Rng::new(seed);
    let shapes: [(usize, usize); 8] = [
        (1, 1),
        (2, 2),
        (2, 4),
        (4, 4),
        (4, 8),
        (8, 8),
        (8, 16),
        (16, 16),
    ];
    let mut t = 0.0;
    (0..n)
        .map(|id| {
            t += rng.exp(mean_interarrival_s);
            let shape = *rng.choose(&shapes);
            // Log-normal-ish runtimes: median ~10 min, heavy tail.
            let runtime = 600.0 * rng.normal(0.0, 1.0).exp();
            Job {
                id,
                shape,
                runtime: Dur::from_secs_f64(runtime.clamp(30.0, 6.0 * 3600.0)),
                arrival: SimTime::from_secs_f64(t),
                partner: rng.below(partners as u64) as usize,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, shape: (usize, usize), run_s: u64, arrive_s: u64) -> Job {
        Job {
            id,
            shape,
            runtime: Dur::from_secs(run_s),
            arrival: SimTime(arrive_s * 1_000_000_000),
            partner: 0,
        }
    }

    #[test]
    fn single_job_runs_immediately() {
        let r = run(4, 4, vec![job(0, (2, 2), 100, 5)], Policy::Fcfs);
        assert_eq!(r.jobs, 1);
        assert_eq!(r.records[0].wait(), Dur::ZERO);
        assert_eq!(r.makespan, Dur::from_secs(105));
        // 4 nodes busy 100 s over 16 nodes × 105 s.
        assert!((r.utilization - 400.0 / 1680.0).abs() < 1e-9);
    }

    #[test]
    fn fcfs_blocks_behind_big_job() {
        // Big job takes the whole machine; a tiny job behind it waits
        // even though nothing else is running when it arrives.
        let jobs = vec![
            job(0, (4, 4), 1000, 0),
            job(1, (4, 4), 1000, 1), // queued: machine full
            job(2, (1, 1), 10, 2),   // FCFS: must wait behind job 1
        ];
        let r = run(4, 4, jobs.clone(), Policy::Fcfs);
        let t2 = r.records[2].started;
        assert!(t2 >= SimTime::from_secs_f64(1000.0), "tiny job waited");

        // Backfill lets the tiny job skip ahead... but the machine is
        // completely full, so it still waits for job 0 to finish; then
        // it backfills alongside job 1? No — job 1 takes the whole mesh.
        // Shrink job 1 so there is room to backfill next to it.
        let jobs = vec![
            job(0, (4, 4), 1000, 0),
            job(1, (4, 2), 1000, 1),
            job(2, (1, 1), 10, 2),
        ];
        let fcfs = run(4, 4, jobs.clone(), Policy::Fcfs);
        let bf = run(4, 4, jobs, Policy::Backfill);
        assert_eq!(
            bf.records[2].started, bf.records[1].started,
            "backfilled next to job 1"
        );
        assert!(bf.records[2].started <= fcfs.records[2].started);
    }

    #[test]
    fn no_overlap_ever() {
        let jobs = consortium_workload(120, 14, 120.0, 9);
        let r = run(16, 33, jobs, Policy::Backfill);
        // Any two time-overlapping placements must be disjoint in space.
        for (i, a) in r.records.iter().enumerate() {
            for b in &r.records[i + 1..] {
                let time_overlap = a.started < b.finished && b.started < a.finished;
                if time_overlap {
                    assert!(
                        !a.placement.overlaps(&b.placement),
                        "jobs {} and {} overlap in space and time",
                        a.job.id,
                        b.job.id
                    );
                }
            }
        }
    }

    #[test]
    fn backfill_beats_fcfs_on_utilization() {
        let jobs = consortium_workload(200, 14, 60.0, 4);
        let fcfs = run(16, 33, jobs.clone(), Policy::Fcfs);
        let bf = run(16, 33, jobs, Policy::Backfill);
        assert!(
            bf.utilization >= fcfs.utilization,
            "backfill {} vs fcfs {}",
            bf.utilization,
            fcfs.utilization
        );
        assert!(bf.mean_wait <= fcfs.mean_wait);
    }

    #[test]
    fn workload_is_deterministic_and_sized() {
        let a = consortium_workload(50, 14, 300.0, 7);
        let b = consortium_workload(50, 14, 300.0, 7);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.shape, y.shape);
        }
        assert!(a.iter().all(|j| j.nodes() <= 256));
        assert!(a.iter().all(|j| j.partner < 14));
    }

    #[test]
    fn utilization_bounded() {
        let jobs = consortium_workload(80, 14, 30.0, 11);
        for policy in [Policy::Fcfs, Policy::Backfill] {
            let r = run(16, 33, jobs.clone(), policy);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
            assert_eq!(r.jobs, 80);
        }
    }

    #[test]
    fn zero_fault_plan_matches_plain_run() {
        let jobs = consortium_workload(40, 14, 60.0, 3);
        for policy in [Policy::Fcfs, Policy::Backfill] {
            let a = run(16, 33, jobs.clone(), policy);
            let b = run_with_faults(16, 33, jobs.clone(), policy, &FaultPlan::none());
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.utilization, b.utilization);
            assert_eq!(a.mean_wait, b.mean_wait);
            assert_eq!(a.fragmentation_refusals, b.fragmentation_refusals);
            assert_eq!(b.jobs_killed, 0);
            assert_eq!(b.utilization_lost_to_faults, 0.0);
            assert!(b.unrunnable.is_empty());
        }
    }

    #[test]
    fn crash_kills_and_requeues_the_job() {
        use des::faults::FaultKind;
        // One 4x4 job holding the whole machine; node 5 dies at t=40 s.
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime(40 * 1_000_000_000),
            FaultKind::NodeCrash { node: 5 },
        );
        let r = run_with_faults(4, 4, vec![job(0, (2, 2), 100, 0)], Policy::Fcfs, &plan);
        assert_eq!(r.jobs_killed, 1);
        assert_eq!(r.nodes_failed, 1);
        assert_eq!(r.jobs, 1, "job re-ran after the kill");
        let rec = &r.records[0];
        assert_eq!(rec.requeues(), 1);
        assert_eq!(rec.attempts[0].killed, SimTime(40 * 1_000_000_000));
        assert_eq!(
            rec.finished,
            SimTime(140 * 1_000_000_000),
            "restarted at 40 s"
        );
        assert!(r.utilization_lost_to_faults > 0.0);
        // 40 s of 4 nodes thrown away over 16 nodes × 140 s.
        assert!((r.utilization_lost_to_faults - 160.0 / 2240.0).abs() < 1e-9);
    }

    #[test]
    fn unrunnable_jobs_are_reported_not_deadlocked() {
        use des::faults::FaultKind;
        // 2x2 machine; a node dies before the full-machine job can start,
        // so its 2x2 frame never fits again — but the 1x1 behind it runs.
        let mut plan = FaultPlan::none();
        plan.push(SimTime(1_000_000_000), FaultKind::NodeCrash { node: 0 });
        let jobs = vec![job(0, (2, 2), 10, 2), job(1, (1, 1), 5, 3)];
        let r = run_with_faults(2, 2, jobs, Policy::Fcfs, &plan);
        assert_eq!(r.unrunnable, vec![0]);
        assert_eq!(r.jobs, 1);
        assert_eq!(r.records[0].job.id, 1);
    }

    #[test]
    fn recorded_schedule_is_bit_identical_and_emits_job_spans() {
        use des::faults::{FaultKind, MtbfModel};
        use hpcc_trace::{Event, MemRecorder};
        let jobs = consortium_workload(40, 14, 45.0, 5);
        let plan = FaultPlan::seeded(
            4,
            &MtbfModel::node_crashes(Dur::from_secs(3_000)),
            16 * 33,
            0,
            Dur::from_secs(6_000),
        );
        let plain = run_with_faults(16, 33, jobs.clone(), Policy::Backfill, &plan);
        let rec = MemRecorder::new();
        let traced = run_recorded(16, 33, jobs.clone(), Policy::Backfill, &plan, &rec);
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.utilization, traced.utilization);
        assert_eq!(plain.mean_wait, traced.mean_wait);
        assert_eq!(plain.jobs_killed, traced.jobs_killed);
        assert_eq!(plain.unrunnable, traced.unrunnable);
        // Every completed job has exactly one run span and at least one
        // wait span; kill spans match the kill count.
        let (mut runs, mut waits, mut kills) = (0usize, 0usize, 0usize);
        rec.with(|_, events| {
            for e in events {
                if let Event::Span { cat, .. } = e {
                    match *cat {
                        "run" => runs += 1,
                        "wait" => waits += 1,
                        "killed" => kills += 1,
                        _ => {}
                    }
                }
            }
        });
        assert_eq!(runs, traced.jobs);
        assert!(waits >= traced.jobs);
        assert_eq!(kills as u64, traced.jobs_killed);
        // A crash that kills nothing still records the node fault instant.
        let mut tiny = FaultPlan::none();
        tiny.push(SimTime(1_000_000_000), FaultKind::NodeCrash { node: 0 });
        let rec2 = MemRecorder::new();
        let _ = run_recorded(4, 4, vec![], Policy::Fcfs, &tiny, &rec2);
        rec2.with(|_, events| {
            assert!(events
                .iter()
                .any(|e| matches!(e, Event::Instant { name, .. } if name == "node_fault")));
        });
    }

    #[test]
    fn faulty_run_replays_bit_identically_and_loses_utilization() {
        use des::faults::MtbfModel;
        let jobs = consortium_workload(60, 14, 30.0, 11);
        let mk = || {
            let plan = FaultPlan::seeded(
                9,
                &MtbfModel::node_crashes(Dur::from_secs(4_000)),
                16 * 33,
                0,
                Dur::from_secs(8_000),
            );
            run_with_faults(16, 33, jobs.clone(), Policy::Backfill, &plan)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.jobs_killed, b.jobs_killed);
        assert_eq!(a.unrunnable, b.unrunnable);
        assert!(a.jobs_killed > 0, "MTBF plan produced kills");
        let clean = run(16, 33, jobs.clone(), Policy::Backfill);
        assert!(
            a.utilization < clean.utilization,
            "faults must cost utilization: {} vs {}",
            a.utilization,
            clean.utilization
        );
    }
}
