//! `sched::service` — the batch scheduler grown into a long-running,
//! multi-tenant service with admission control and graceful degradation.
//!
//! The batch path ([`super::run_with_faults`]) assumes a finite job list
//! and an unbounded queue: overload just grows the queue and stretches
//! waits. A shared facility (the consortium's actual operating mode —
//! the Cluster Computing White Paper catalogs the same concerns) needs
//! the opposite: a sustained submission stream from thousands of
//! tenants, *bounded* queues with typed backpressure, per-tenant
//! quotas, and deterministic retry when the fault layer kills work.
//!
//! The pipeline, per submission:
//!
//! ```text
//!  Arrive ──▶ shard buffer ──▶ admission ──▶ pending queue ──▶ placement
//!              (bounded,        │ Unrunnable   (bounded,         │ first-fit
//!               per-shard)      │ QuotaExceeded  ordered)        │ + backfill
//!                               │ QueueFull /                    ▼
//!                               ▼ shed tiers                  running ──▶ Completed
//!                            Rejected                            │ fault
//!                                                                ▼
//!                                               backoff timer ◀─ killed
//!                                               (capped, jittered,
//!                                                budgeted) ──▶ Failed
//! ```
//!
//! Determinism: the service is a plain DES on the shared calendar —
//! every decision is a pure function of `(trace, config, fault plan)`,
//! retry jitter included ([`des::backoff::Backoff`] is seeded). With
//! immediate admission (`admit_every == 0`), under-capacity zero-fault
//! runs replay the batch scheduler's event sequence exactly:
//! [`assert_batch_equivalent`] checks the schedules bit-for-bit and is
//! run by both the property tests and the `bench-sched --smoke` gate.
//!
//! Accounting is exact: node-time is integrated in integer node-ns over
//! every event, so `useful + lost_to_kills + dead + idle == total` is an
//! equality of `u128`s, not an approximation (see [`NodeTime`]).

use super::{Job, JobRecord, KilledAttempt, Policy};
use crate::partition::{MeshSpace, SubMesh};
use des::backoff::Backoff;
use des::faults::FaultPlan;
use des::queue::EventQueue;
use des::rng::Rng;
use des::stats::{Histogram, Summary};
use des::time::{Dur, SimTime};
use hpcc_trace::{names, NullRecorder, Recorder, TrackId};
use std::collections::{HashMap, HashSet};

/// Scheduling class; the load shedder rejects the lowest class first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    Low,
    Normal,
    High,
}

impl Priority {
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One job submission on the service's ingest stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Submission {
    /// Dense index; doubles as the job id.
    pub id: usize,
    pub tenant: usize,
    pub priority: Priority,
    /// Requested sub-mesh shape (rows, cols).
    pub shape: (usize, usize),
    pub runtime: Dur,
    pub arrival: SimTime,
}

impl Submission {
    pub fn nodes(&self) -> usize {
        self.shape.0 * self.shape.1
    }

    /// The batch-scheduler view of this submission (`partner` = tenant).
    pub fn as_job(&self) -> Job {
        Job {
            id: self.id,
            shape: self.shape,
            runtime: self.runtime,
            arrival: self.arrival,
            partner: self.tenant,
        }
    }
}

/// Typed backpressure: why admission refused a submission. These are
/// returned to the tenant instead of growing any queue without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// A bounded queue (shard buffer, or the pending queue via a shed
    /// tier) refused the submission. `depth` is the occupancy observed.
    QueueFull { shard: usize, depth: usize },
    /// Admitting would push the tenant past its in-flight node quota.
    QuotaExceeded { tenant: usize, quota: usize },
    /// The requested shape can never fit the machine (even rotated).
    Unrunnable { shape: (usize, usize) },
}

/// Exactly-one terminal state per submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Ran to completion (possibly after fault-kill retries).
    Completed,
    /// Killed by faults more times than the retry budget allows.
    Failed,
    /// Refused at admission with the given typed error.
    Rejected(AdmissionError),
}

/// How the pending queue is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Strict (arrival, id) order — the batch scheduler's order.
    Arrival,
    /// Fair share: tenants with less accumulated node-time go first
    /// (usage snapshotted at admission; ties broken by arrival, id).
    FairShare,
}

/// Occupancy thresholds (fractions of `pending_cap`) above which each
/// priority class is shed. `Low` goes first, `High` last; a threshold
/// of 1.0 means the class is only refused when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedTiers(pub [f64; 3]);

impl Default for ShedTiers {
    fn default() -> ShedTiers {
        ShedTiers([0.50, 0.75, 1.0])
    }
}

/// Retry policy for fault-killed jobs: capped, jittered exponential
/// backoff, and a budget after which the job is retired as `Failed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudget {
    /// Kills tolerated before the job is retired (0 = never retry).
    pub budget: u32,
    pub backoff: Backoff,
}

impl Default for RetryBudget {
    fn default() -> RetryBudget {
        RetryBudget {
            budget: 3,
            backoff: Backoff {
                base: Dur::from_secs(1),
                cap: Dur::from_secs(60),
                jitter: 0.20,
                seed: 0x5EED,
            },
        }
    }
}

/// Service configuration. [`ServiceConfig::new`] gives production-style
/// bounds; [`ServiceConfig::batch_equivalent`] removes every limit so
/// the service reduces exactly to the batch scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    pub rows: usize,
    pub cols: usize,
    /// Placement scan policy (FCFS head-blocking vs aggressive backfill).
    pub policy: Policy,
    /// Pending-queue order.
    pub order: Order,
    /// Submission queues; tenants hash onto shards round-robin.
    pub shards: usize,
    /// Bound on each shard's ingest buffer.
    pub shard_cap: usize,
    /// Bound on the central pending queue (shed tiers key off this).
    pub pending_cap: usize,
    /// Admission cadence. `Dur::ZERO` admits at arrival (the batch-
    /// equivalent mode); otherwise shard buffers drain in batches on
    /// this boundary, amortizing the placement scan.
    pub admit_every: Dur,
    /// Failed placement probes per scan before giving up (bounds the
    /// cost of one `try_start` pass under deep queues). Only real
    /// allocator probes count; entries skipped via the shape cache or
    /// the free-node check are free.
    pub backfill_depth: usize,
    /// Default per-tenant in-flight node quota (pending + running +
    /// awaiting retry). Override per tenant via quota updates.
    pub quota_default: usize,
    pub retry: RetryBudget,
    pub shed: ShedTiers,
    /// Keep full per-job [`JobRecord`]s (memory ∝ jobs; tests and the
    /// equivalence gate need them, million-job benches do not).
    pub keep_records: bool,
}

impl ServiceConfig {
    /// Production-style defaults on a `rows × cols` mesh.
    pub fn new(rows: usize, cols: usize) -> ServiceConfig {
        ServiceConfig {
            rows,
            cols,
            policy: Policy::Backfill,
            order: Order::Arrival,
            shards: 8,
            shard_cap: 4096,
            pending_cap: 4096,
            admit_every: Dur::ZERO,
            backfill_depth: 64,
            quota_default: usize::MAX,
            retry: RetryBudget::default(),
            shed: ShedTiers::default(),
            keep_records: false,
        }
    }

    /// No bounds, no batching, no quotas: the configuration under which
    /// a zero-fault run is bit-identical to [`super::run_with_faults`].
    pub fn batch_equivalent(rows: usize, cols: usize, policy: Policy) -> ServiceConfig {
        ServiceConfig {
            policy,
            shard_cap: usize::MAX,
            pending_cap: usize::MAX,
            backfill_depth: usize::MAX,
            keep_records: true,
            ..ServiceConfig::new(rows, cols)
        }
    }
}

/// The replayable input stream: submissions plus mid-run quota changes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceTrace {
    pub subs: Vec<Submission>,
    /// `(at, tenant, new_quota)` — applied at simulated time `at`.
    pub quota_updates: Vec<(SimTime, usize, usize)>,
}

impl ServiceTrace {
    /// The equivalent batch-scheduler job list.
    pub fn as_jobs(&self) -> Vec<Job> {
        self.subs.iter().map(Submission::as_job).collect()
    }
}

/// Exact node-time ledger in integer node-nanoseconds, integrated over
/// every event up to the last one (`span`). The conservation identity
/// `useful + lost_to_kills + dead + idle == total` holds as a `u128`
/// equality on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeTime {
    /// `nodes × span` — everything there was.
    pub total: u128,
    /// Node-time of runs that completed.
    pub useful: u128,
    /// Partial work thrown away by fault kills.
    pub lost_to_kills: u128,
    /// Node-time spent permanently failed.
    pub dead: u128,
    /// The remainder: allocatable but unallocated.
    pub idle: u128,
}

impl NodeTime {
    /// The conservation identity, exactly.
    pub fn balanced(&self) -> bool {
        self.useful + self.lost_to_kills + self.dead + self.idle == self.total
    }
}

/// Aggregate outcome of one service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    pub submitted: usize,
    pub completed: usize,
    /// Retired after exhausting the retry budget.
    pub failed: usize,
    /// QueueFull rejections per priority class (shed tiers + full queues).
    pub shed: [u64; 3],
    pub quota_rejects: u64,
    pub unrunnable: u64,
    /// Retries scheduled after fault kills.
    pub retries: u64,
    /// Placements killed by node crashes.
    pub jobs_killed: u64,
    pub nodes_failed: usize,
    /// Last Finish/Fault event (batch-compatible makespan).
    pub makespan: Dur,
    /// Last event of any kind (service lifetime; node-time integrates
    /// to here).
    pub span: Dur,
    /// `useful / (nodes × makespan)`.
    pub utilization: f64,
    pub utilization_lost_to_faults: f64,
    pub mean_wait: Dur,
    pub p99_wait: Dur,
    pub max_wait: Dur,
    /// High-water marks — proof the queues stayed bounded.
    pub max_pending: usize,
    pub max_shard_depth: usize,
    pub events: u64,
    pub node_time: NodeTime,
    /// Terminal state per submission, indexed by submission id.
    pub outcomes: Vec<Outcome>,
    /// Full per-job records (only when `keep_records`), in id order.
    pub records: Vec<JobRecord>,
}

impl ServiceReport {
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    pub fn rejected_total(&self) -> u64 {
        self.shed_total() + self.quota_rejects + self.unrunnable
    }
}

enum Ev {
    Arrive(usize),
    /// Batched admission: drain shard `s`'s buffer into pending.
    Admit(usize),
    /// Job index + attempt; stale attempts are ignored.
    Finish(usize, u32),
    Fault(usize),
    /// Backoff expired: re-queue the job for another attempt.
    Retry(usize, u32),
    QuotaSet(usize, usize),
}

struct RunningJob {
    idx: usize,
    attempt: u32,
    started: SimTime,
    placement: SubMesh,
}

/// Pending-queue sort key: (usage snapshot, arrival, id). `Arrival`
/// order zeroes the usage component.
type Key = (u128, u64, u64);

struct Svc<'a> {
    cfg: &'a ServiceConfig,
    subs: &'a [Submission],
    q: EventQueue<Ev>,
    space: MeshSpace,
    /// Ingest buffers (submission indices, arrival order).
    shard_buf: Vec<Vec<usize>>,
    /// An Admit event is already scheduled for this shard.
    shard_armed: Vec<bool>,
    /// Ordered pending queue.
    pending: Vec<(Key, usize)>,
    running: Vec<RunningJob>,
    attempt_of: Vec<u32>,
    outcome: Vec<Option<Outcome>>,
    killed: Vec<Vec<KilledAttempt>>,
    records: Vec<Option<JobRecord>>,
    /// Per-tenant state (dense by tenant id).
    quota: Vec<usize>,
    inflight_nodes: Vec<usize>,
    used_node_ns: Vec<u128>,
    failed_node: Vec<bool>,
    /// Σ nodes of live placements.
    in_use: usize,
    failed_count: usize,
    /// Shapes (normalized) proven not to fit since the last free.
    shape_blocked: HashSet<(usize, usize)>,
    /// Normalized shape → count of pending entries carrying it.
    pending_shapes: HashMap<(usize, usize), usize>,
    /// Shapes proven unable to *ever* fit the surviving mesh. Fail-stop
    /// nodes never return, so this only grows.
    dead_shapes: HashSet<(usize, usize)>,
    /// Fair-share keys are stale (some tenant's usage changed).
    fair_dirty: bool,
    // --- exact node-time integration ---
    prev: SimTime,
    acc: NodeTime,
    // --- counters ---
    completed: usize,
    failed: usize,
    shed: [u64; 3],
    quota_rejects: u64,
    unrunnable: u64,
    retries: u64,
    jobs_killed: u64,
    makespan: Dur,
    max_pending: usize,
    max_shard_depth: usize,
    waits: Summary,
    wait_hist: Histogram,
    max_wait: Dur,
    // --- tracing ---
    rec: &'a dyn Recorder,
    rec_on: bool,
    svc_track: TrackId,
    tenant_track: Vec<Option<TrackId>>,
    tenant_admits: Vec<u64>,
    tenant_rejects: Vec<u64>,
    tenant_retries: Vec<u64>,
}

/// Does `shape` fit an empty `rows × cols` mesh, rotation allowed?
fn fits_machine(shape: (usize, usize), rows: usize, cols: usize) -> bool {
    let (r, c) = shape;
    (r <= rows && c <= cols) || (c <= rows && r <= cols)
}

#[inline]
fn norm_shape(shape: (usize, usize)) -> (usize, usize) {
    let (r, c) = shape;
    (r.min(c), r.max(c))
}

impl<'a> Svc<'a> {
    fn total_nodes(&self) -> usize {
        self.cfg.rows * self.cfg.cols
    }

    fn free_avail(&self) -> usize {
        self.total_nodes() - self.failed_count - self.in_use
    }

    /// Integrate node-time up to `now` (call before mutating state).
    fn integrate_to(&mut self, now: SimTime) {
        let dt = (now - self.prev).nanos() as u128;
        if dt > 0 {
            let busy = self.in_use as u128;
            let dead = self.failed_count as u128;
            let idle = (self.total_nodes() - self.in_use - self.failed_count) as u128;
            self.acc.total += (self.total_nodes() as u128) * dt;
            self.acc.dead += dead * dt;
            self.acc.idle += idle * dt;
            // Busy time is attributed to useful/lost at Finish/Fault; the
            // integral is tracked implicitly as total - dead - idle.
            let _ = busy;
            self.prev = now;
        } else {
            self.prev = now;
        }
    }

    fn settle(&mut self, idx: usize, outcome: Outcome) {
        assert!(
            self.outcome[idx].is_none(),
            "submission {idx} reached a second terminal state {outcome:?}"
        );
        self.outcome[idx] = Some(outcome);
    }

    fn tenant_track(&mut self, tenant: usize) -> TrackId {
        match self.tenant_track[tenant] {
            Some(t) => t,
            None => {
                let t = self
                    .rec
                    .track(names::SCHED_SVC, &format!("tenant {tenant}"));
                self.tenant_track[tenant] = Some(t);
                t
            }
        }
    }

    fn trace_tenant(&mut self, tenant: usize) {
        if !self.rec_on {
            return;
        }
        let now = self.q.now().nanos();
        let track = self.tenant_track(tenant);
        self.rec
            .counter(track, "admits", now, self.tenant_admits[tenant] as f64);
        self.rec
            .counter(track, "rejects", now, self.tenant_rejects[tenant] as f64);
        self.rec
            .counter(track, "retries", now, self.tenant_retries[tenant] as f64);
    }

    fn reject(&mut self, idx: usize, err: AdmissionError) {
        let sub = &self.subs[idx];
        match err {
            AdmissionError::QueueFull { .. } => self.shed[sub.priority.index()] += 1,
            AdmissionError::QuotaExceeded { .. } => self.quota_rejects += 1,
            AdmissionError::Unrunnable { .. } => self.unrunnable += 1,
        }
        let tenant = sub.tenant;
        self.tenant_rejects[tenant] += 1;
        self.settle(idx, Outcome::Rejected(err));
        if self.rec_on {
            let now = self.q.now().nanos();
            let track = self.svc_track;
            self.rec.instant(track, "reject", "rejected", now);
            self.trace_tenant(tenant);
        }
    }

    /// Ordered insert into the pending queue (FIFO among equal keys).
    fn enqueue_pending(&mut self, idx: usize) {
        let sub = &self.subs[idx];
        let usage = match self.cfg.order {
            Order::Arrival => 0,
            Order::FairShare => self.used_node_ns[sub.tenant],
        };
        let key: Key = (usage, sub.arrival.nanos(), sub.id as u64);
        let at = self.pending.partition_point(|(k, _)| *k <= key);
        *self
            .pending_shapes
            .entry(norm_shape(sub.shape))
            .or_insert(0) += 1;
        self.pending.insert(at, (key, idx));
        self.max_pending = self.max_pending.max(self.pending.len());
    }

    /// Bookkeeping for an entry leaving the pending queue.
    fn note_unqueued(&mut self, shape: (usize, usize)) {
        let key = norm_shape(shape);
        let cnt = self
            .pending_shapes
            .get_mut(&key)
            .expect("pending shape count underflow");
        *cnt -= 1;
        if *cnt == 0 {
            self.pending_shapes.remove(&key);
        }
    }

    /// An empty mesh with the current crash set applied: what could
    /// *ever* be placed again.
    fn survivor_space(&self) -> MeshSpace {
        let mut probe = MeshSpace::new(self.cfg.rows, self.cfg.cols);
        for (node, dead) in self.failed_node.iter().enumerate() {
            if *dead {
                probe.fail_node(node);
            }
        }
        probe
    }

    /// Shapes with at least one pending entry that could be placed right
    /// now: not proven blocked since the last free, and within the free
    /// node count.
    fn startable_shapes(&self) -> HashSet<(usize, usize)> {
        let free = self.free_avail();
        self.pending_shapes
            .keys()
            .filter(|&&(r, c)| r * c <= free && !self.shape_blocked.contains(&(r, c)))
            .copied()
            .collect()
    }

    /// Move one submission from its shard buffer through admission.
    fn admit_one(&mut self, idx: usize, shard: usize) {
        let sub = self.subs[idx];
        if !fits_machine(sub.shape, self.cfg.rows, self.cfg.cols)
            || self.dead_shapes.contains(&norm_shape(sub.shape))
        {
            self.reject(idx, AdmissionError::Unrunnable { shape: sub.shape });
            return;
        }
        let quota = self.quota[sub.tenant];
        let nodes = sub.nodes();
        if self.inflight_nodes[sub.tenant].saturating_add(nodes) > quota {
            self.reject(
                idx,
                AdmissionError::QuotaExceeded {
                    tenant: sub.tenant,
                    quota,
                },
            );
            return;
        }
        // Shed tiers: lowest priority is turned away first as the
        // pending queue fills; a full queue refuses every class.
        let depth = self.pending.len();
        let full = depth >= self.cfg.pending_cap;
        let tiered = !full
            && self.cfg.pending_cap != usize::MAX
            && (depth as f64 / self.cfg.pending_cap as f64)
                >= self.cfg.shed.0[sub.priority.index()];
        if full || tiered {
            self.reject(idx, AdmissionError::QueueFull { shard, depth });
            return;
        }
        self.inflight_nodes[sub.tenant] += nodes;
        self.tenant_admits[sub.tenant] += 1;
        self.enqueue_pending(idx);
        if self.rec_on {
            self.trace_tenant(sub.tenant);
        }
    }

    fn flush_shard(&mut self, shard: usize) {
        let buf = std::mem::take(&mut self.shard_buf[shard]);
        for idx in buf {
            self.admit_one(idx, shard);
        }
    }

    /// Start every pending job the policy allows. Faithful to the batch
    /// scheduler's scan (front-first, restart on success, FCFS breaks at
    /// the first refusal) with pure optimizations that cannot change
    /// placements: a free-node quick reject, a cache of shapes that
    /// failed a full probe since the last free (occupancy only grows
    /// between frees, so a failed shape stays failed), and an early exit
    /// once no shape remaining in the queue could start.
    fn try_start(&mut self) {
        if self.cfg.order == Order::FairShare && self.fair_dirty {
            // Usage moved since the queue was last ordered: re-key every
            // entry from current tenant usage and stable-sort, so tenants
            // that consumed node-time sink behind fresher ones.
            for (key, idx) in self.pending.iter_mut() {
                key.0 = self.used_node_ns[self.subs[*idx].tenant];
            }
            self.pending.sort_by_key(|&(key, _)| key);
            self.fair_dirty = false;
        }
        let now = self.q.now();
        // Only real allocator probes consume the backfill budget; entries
        // whose shape already failed this epoch (or exceeds the free-node
        // count) are skipped in O(1), and the scan ends outright once no
        // shape left in the queue could start. Without this, a run of
        // un-placeable entries at the front of a deep queue exhausts the
        // budget and wedges the machine even when placeable work waits
        // just behind them.
        let mut startable = self.startable_shapes();
        let mut i = 0;
        let mut probes = 0usize;
        while i < self.pending.len() && probes < self.cfg.backfill_depth && !startable.is_empty() {
            let idx = self.pending[i].1;
            let (r, c) = self.subs[idx].shape;
            let key = norm_shape((r, c));
            if !startable.contains(&key) {
                // Known not to fit right now. FCFS still stops at the
                // head — a refused head is the policy's break signal.
                match self.cfg.policy {
                    Policy::Fcfs => break,
                    Policy::Backfill => {
                        i += 1;
                        continue;
                    }
                }
            }
            match self.space.allocate(r, c, true) {
                Some(sm) => {
                    let nodes = r * c;
                    self.pending.remove(i);
                    self.note_unqueued((r, c));
                    self.in_use += nodes;
                    let attempt = self.attempt_of[idx];
                    self.q
                        .schedule(now + self.subs[idx].runtime, Ev::Finish(idx, attempt));
                    self.running.push(RunningJob {
                        idx,
                        attempt,
                        started: now,
                        placement: sm,
                    });
                    i = 0;
                    probes = 0;
                    startable = self.startable_shapes();
                }
                None => {
                    self.shape_blocked.insert(key);
                    startable.remove(&key);
                    probes += 1;
                    match self.cfg.policy {
                        Policy::Fcfs => break,
                        Policy::Backfill => i += 1,
                    }
                }
            }
        }
    }

    fn on_finish(&mut self, idx: usize, attempt: u32) {
        if attempt != self.attempt_of[idx] {
            return; // this placement was killed; a retry owns the job now
        }
        let now = self.q.now();
        let pos = self
            .running
            .iter()
            .position(|rj| rj.idx == idx && rj.attempt == attempt)
            .expect("finishing job is running");
        let entry = self.running.swap_remove(pos);
        let sub = self.subs[idx];
        let nodes = sub.nodes();
        let work = (nodes as u128) * (sub.runtime.nanos() as u128);
        self.acc.useful += work;
        self.used_node_ns[sub.tenant] += work;
        self.fair_dirty = true;
        self.in_use -= nodes;
        self.inflight_nodes[sub.tenant] -= nodes;
        self.makespan = self.makespan.max(now - SimTime::ZERO);
        self.space.free(entry.placement);
        self.shape_blocked.clear();
        let wait = entry.started - sub.arrival;
        self.waits.add_dur(wait);
        self.wait_hist.add(wait.as_secs_f64());
        self.max_wait = self.max_wait.max(wait);
        self.completed += 1;
        self.settle(idx, Outcome::Completed);
        if self.cfg.keep_records {
            self.records[idx] = Some(JobRecord {
                job: sub.as_job(),
                attempts: std::mem::take(&mut self.killed[idx]),
                started: entry.started,
                finished: now,
                placement: entry.placement,
            });
        }
    }

    fn on_fault(&mut self, node: usize) {
        if self.failed_node[node] {
            return; // scripted plans may repeat a crash; fail-stop is once
        }
        let now = self.q.now();
        self.failed_node[node] = true;
        let victim = self.space.allocation_containing(node);
        self.space.fail_node(node);
        self.failed_count += 1;
        self.makespan = self.makespan.max(now - SimTime::ZERO);
        if let Some(sm) = victim {
            let pos = self
                .running
                .iter()
                .position(|rj| rj.placement == sm)
                .expect("allocated sub-mesh has a running job");
            let entry = self.running.swap_remove(pos);
            let idx = entry.idx;
            let sub = self.subs[idx];
            let nodes = sub.nodes();
            let partial = (nodes as u128) * ((now - entry.started).nanos() as u128);
            self.acc.lost_to_kills += partial;
            self.used_node_ns[sub.tenant] += partial;
            self.fair_dirty = true;
            self.in_use -= nodes;
            self.space.free(sm);
            self.shape_blocked.clear();
            self.jobs_killed += 1;
            self.attempt_of[idx] += 1;
            if self.cfg.keep_records {
                self.killed[idx].push(KilledAttempt {
                    started: entry.started,
                    killed: now,
                    placement: sm,
                });
            }
            let kills = self.attempt_of[idx];
            if kills > self.cfg.retry.budget {
                // Retry budget exhausted: retire, release the quota.
                self.inflight_nodes[sub.tenant] -= nodes;
                self.failed += 1;
                self.settle(idx, Outcome::Failed);
                if self.rec_on {
                    self.rec
                        .instant(self.svc_track, "fault", "job_failed", now.nanos());
                }
            } else {
                // Deterministic capped backoff + jitter, streamed by job
                // id so co-killed jobs don't retry in lockstep.
                self.retries += 1;
                self.tenant_retries[sub.tenant] += 1;
                let delay = self.cfg.retry.backoff.delay(idx as u64, kills);
                self.q.schedule(now + delay, Ev::Retry(idx, kills));
                if self.rec_on {
                    self.rec
                        .instant(self.svc_track, "fault", "retry_scheduled", now.nanos());
                    self.trace_tenant(sub.tenant);
                }
            }
        }
        // Retire pending work the shrunken mesh can never host again —
        // left queued it would hold its slot and quota forever, and a
        // run of such entries at the queue front starves everything
        // behind it. Dead shapes also reject at admission from here on.
        let newly_dead: Vec<(usize, usize)> = {
            let probe = self.survivor_space();
            self.pending_shapes
                .keys()
                .filter(|&&(r, c)| probe.clone().allocate(r, c, true).is_none())
                .copied()
                .collect()
        };
        if !newly_dead.is_empty() {
            self.dead_shapes.extend(newly_dead.iter().copied());
            let taken = std::mem::take(&mut self.pending);
            for (key, idx) in taken {
                let sub = self.subs[idx];
                if self.dead_shapes.contains(&norm_shape(sub.shape)) {
                    self.note_unqueued(sub.shape);
                    self.inflight_nodes[sub.tenant] -= sub.nodes();
                    self.reject(idx, AdmissionError::Unrunnable { shape: sub.shape });
                } else {
                    self.pending.push((key, idx));
                }
            }
        }
        if self.rec_on {
            self.rec
                .instant(self.svc_track, "fault", "node_fault", now.nanos());
        }
    }

    fn on_retry(&mut self, idx: usize, attempt: u32) {
        if attempt != self.attempt_of[idx] {
            return;
        }
        debug_assert!(self.outcome[idx].is_none());
        // Retries re-enter pending directly: the job already holds
        // quota, and the retry population is bounded by machine capacity
        // (only running jobs can be killed), so this cannot grow the
        // queue without bound.
        self.enqueue_pending(idx);
    }

    fn on_arrive(&mut self, idx: usize) {
        let sub = self.subs[idx];
        let shard = if self.cfg.shards <= 1 {
            0
        } else {
            sub.tenant % self.cfg.shards
        };
        if self.shard_buf[shard].len() >= self.cfg.shard_cap {
            self.reject(
                idx,
                AdmissionError::QueueFull {
                    shard,
                    depth: self.shard_buf[shard].len(),
                },
            );
            return;
        }
        self.shard_buf[shard].push(idx);
        self.max_shard_depth = self.max_shard_depth.max(self.shard_buf[shard].len());
        if self.cfg.admit_every == Dur::ZERO {
            // Immediate admission: flush inline so the event sequence is
            // exactly the batch scheduler's (no extra calendar entries).
            self.flush_shard(shard);
        } else if !self.shard_armed[shard] {
            self.shard_armed[shard] = true;
            let every = self.cfg.admit_every.nanos();
            let now = self.q.now().nanos();
            let boundary = now.div_ceil(every).saturating_mul(every);
            self.q.schedule(SimTime(boundary), Ev::Admit(shard));
        }
    }

    fn trace_queues(&self) {
        if !self.rec_on {
            return;
        }
        let now = self.q.now().nanos();
        let t = self.svc_track;
        self.rec
            .counter(t, "pending_jobs", now, self.pending.len() as f64);
        self.rec
            .counter(t, "running_jobs", now, self.running.len() as f64);
        let shard_depth: usize = self.shard_buf.iter().map(Vec::len).sum();
        self.rec.counter(t, "shard_depth", now, shard_depth as f64);
        self.rec
            .counter(t, "shed_total", now, self.shed.iter().sum::<u64>() as f64);
        self.rec.counter(t, "retries", now, self.retries as f64);
    }
}

/// Run the service over a trace with no faults.
pub fn run(trace: &ServiceTrace, cfg: &ServiceConfig) -> ServiceReport {
    run_with_faults(trace, cfg, &FaultPlan::none())
}

/// Run the service over a trace under a [`FaultPlan`].
pub fn run_with_faults(
    trace: &ServiceTrace,
    cfg: &ServiceConfig,
    plan: &FaultPlan,
) -> ServiceReport {
    run_recorded(trace, cfg, plan, &NullRecorder)
}

/// Run the service with a trace recorder attached (pure observer:
/// recorded runs are bit-identical to unrecorded ones). The recorder
/// carries service-level counters (queue depths, running jobs, sheds,
/// retries) and per-tenant admit/reject/retry counters.
pub fn run_recorded(
    trace: &ServiceTrace,
    cfg: &ServiceConfig,
    plan: &FaultPlan,
    rec: &dyn Recorder,
) -> ServiceReport {
    let mut subs = trace.subs.clone();
    subs.sort_by_key(|s| (s.arrival, s.id));
    let n = subs.len();
    let nodes_total = cfg.rows * cfg.cols;
    assert!(nodes_total > 0, "service needs a machine");
    let n_tenants = subs
        .iter()
        .map(|s| s.tenant)
        .chain(trace.quota_updates.iter().map(|&(_, t, _)| t))
        .max()
        .map_or(0, |t| t + 1);
    let shards = cfg.shards.max(1);

    let rec_on = rec.is_enabled();
    let svc_track = if rec_on {
        rec.track(names::SCHED_SVC, "service")
    } else {
        0
    };

    let mut q: EventQueue<Ev> = EventQueue::with_capacity(n + plan.len() + 16);
    for (i, s) in subs.iter().enumerate() {
        q.schedule(s.arrival, Ev::Arrive(i));
    }
    let mut quota_updates = trace.quota_updates.clone();
    quota_updates.sort_by_key(|&(at, t, _)| (at, t));
    for &(at, tenant, quota) in &quota_updates {
        q.schedule(at, Ev::QuotaSet(tenant, quota));
    }
    for (at, node) in plan.node_crashes() {
        assert!(node < nodes_total, "fault plan targets node {node}");
        q.schedule(at, Ev::Fault(node));
    }

    let mut svc = Svc {
        cfg,
        subs: &subs,
        q,
        space: MeshSpace::new(cfg.rows, cfg.cols),
        shard_buf: vec![Vec::new(); shards],
        shard_armed: vec![false; shards],
        pending: Vec::new(),
        running: Vec::new(),
        attempt_of: vec![0; n],
        outcome: vec![None; n],
        killed: vec![Vec::new(); if cfg.keep_records { n } else { 0 }],
        records: vec![None; if cfg.keep_records { n } else { 0 }],
        quota: vec![cfg.quota_default; n_tenants],
        inflight_nodes: vec![0; n_tenants],
        used_node_ns: vec![0; n_tenants],
        failed_node: vec![false; nodes_total],
        in_use: 0,
        failed_count: 0,
        shape_blocked: HashSet::new(),
        pending_shapes: HashMap::new(),
        dead_shapes: HashSet::new(),
        fair_dirty: false,
        prev: SimTime::ZERO,
        acc: NodeTime::default(),
        completed: 0,
        failed: 0,
        shed: [0; 3],
        quota_rejects: 0,
        unrunnable: 0,
        retries: 0,
        jobs_killed: 0,
        makespan: Dur::ZERO,
        max_pending: 0,
        max_shard_depth: 0,
        waits: Summary::new(),
        // 10-second buckets out to 4 simulated hours of queueing; the
        // overflow bucket catches pathological waits.
        wait_hist: Histogram::new(0.0, 14_400.0, 1_440),
        max_wait: Dur::ZERO,
        rec,
        rec_on,
        svc_track,
        tenant_track: vec![None; if rec_on { n_tenants } else { 0 }],
        tenant_admits: vec![0; n_tenants],
        tenant_rejects: vec![0; n_tenants],
        tenant_retries: vec![0; n_tenants],
    };

    loop {
        while let Some((at, ev)) = svc.q.pop() {
            svc.integrate_to(at);
            match ev {
                Ev::Arrive(i) => svc.on_arrive(i),
                Ev::Admit(s) => {
                    svc.shard_armed[s] = false;
                    svc.flush_shard(s);
                }
                Ev::Finish(i, a) => svc.on_finish(i, a),
                Ev::Fault(node) => svc.on_fault(node),
                Ev::Retry(i, a) => svc.on_retry(i, a),
                Ev::QuotaSet(tenant, quota) => svc.quota[tenant] = quota,
            }
            svc.try_start();
            svc.trace_queues();
        }
        // Calendar drained. Anything still pending cannot be waiting on
        // a Finish — nothing is running — so it either fits (start it)
        // or no longer fits the fault-shrunk mesh (retire it as
        // Unrunnable instead of blocking the queue forever).
        if svc.pending.is_empty() {
            break;
        }
        debug_assert!(svc.running.is_empty() && svc.space.allocations().is_empty());
        let stuck: Vec<(Key, usize)> = std::mem::take(&mut svc.pending);
        for (key, idx) in stuck {
            let (r, c) = svc.subs[idx].shape;
            if svc.space.clone().allocate(r, c, true).is_some() {
                svc.pending.push((key, idx));
            } else {
                let sub = svc.subs[idx];
                svc.note_unqueued(sub.shape);
                svc.inflight_nodes[sub.tenant] -= sub.nodes();
                svc.reject(idx, AdmissionError::Unrunnable { shape: sub.shape });
            }
        }
        if svc.pending.is_empty() {
            break;
        }
        svc.shape_blocked.clear();
        svc.try_start();
    }

    // Close the ledger: idle absorbs what is neither busy nor dead, and
    // busy splits exactly into useful + lost.
    let span = svc.q.now() - SimTime::ZERO;
    debug_assert_eq!(
        svc.acc.total - svc.acc.dead - svc.acc.idle,
        svc.acc.useful + svc.acc.lost_to_kills,
        "busy node-time must equal useful + lost"
    );
    let node_time = svc.acc;
    assert!(node_time.balanced(), "node-time ledger out of balance");

    // Re-index terminal states by submission id (subs were sorted by
    // arrival above); every id must land exactly once.
    let mut outcomes: Vec<Option<Outcome>> = vec![None; n];
    for (i, o) in svc.outcome.iter().enumerate() {
        let o = o.unwrap_or_else(|| panic!("submission {i} has no terminal state"));
        let id = subs[i].id;
        assert!(
            id < n && outcomes[id].is_none(),
            "submission ids must be dense and unique: {id}"
        );
        outcomes[id] = Some(o);
    }
    let outcomes: Vec<Outcome> = outcomes.into_iter().map(Option::unwrap).collect();
    let denom = (nodes_total as f64) * svc.makespan.as_secs_f64();
    let frac = |num: f64| if denom > 0.0 { num / denom } else { 0.0 };
    ServiceReport {
        submitted: n,
        completed: svc.completed,
        failed: svc.failed,
        shed: svc.shed,
        quota_rejects: svc.quota_rejects,
        unrunnable: svc.unrunnable,
        retries: svc.retries,
        jobs_killed: svc.jobs_killed,
        nodes_failed: svc.failed_count,
        makespan: svc.makespan,
        span,
        utilization: frac(node_time.useful as f64 / 1e9),
        utilization_lost_to_faults: frac(node_time.lost_to_kills as f64 / 1e9),
        mean_wait: Dur::from_secs_f64(svc.waits.mean()),
        p99_wait: Dur::from_secs_f64(svc.wait_hist.quantile(0.99).unwrap_or(0.0)),
        max_wait: svc.max_wait,
        max_pending: svc.max_pending,
        max_shard_depth: svc.max_shard_depth,
        events: svc.q.events_processed(),
        node_time,
        outcomes,
        records: svc.records.into_iter().flatten().collect(),
    }
}

/// A sustained multi-tenant stream: `n` submissions from `tenants`
/// tenants at `load` times the machine's service capacity, heavy-tailed
/// in every dimension — Pareto inter-arrivals (bursts), Pareto-indexed
/// shapes (most jobs small, a fat tail of large frames), Pareto
/// runtimes, and a skewed tenant-activity distribution. Deterministic
/// in `(n, tenants, load, rows, cols, seed)`.
pub fn service_workload(
    n: usize,
    tenants: usize,
    load: f64,
    rows: usize,
    cols: usize,
    seed: u64,
) -> ServiceTrace {
    assert!(n > 0 && tenants > 0 && load > 0.0);
    let mut rng = Rng::new(seed);
    let shapes: [(usize, usize); 9] = [
        (1, 1),
        (1, 2),
        (2, 2),
        (2, 4),
        (4, 4),
        (4, 8),
        (8, 8),
        (8, 16),
        (16, 16),
    ];
    // Draw shapes and runtimes first so the arrival clock can be scaled
    // to hit the requested load exactly.
    let mut drawn: Vec<((usize, usize), Dur, usize, Priority)> = Vec::with_capacity(n);
    let mut total_work = 0.0f64;
    for _ in 0..n {
        let tail = rng.pareto(1.0, 1.1);
        let mut si = tail.log2().floor() as usize;
        si = si.min(shapes.len() - 1);
        let shape = shapes[si];
        let runtime = rng.pareto(30.0, 1.5).min(4.0 * 3600.0);
        // Quadratic skew: low tenant ids submit most of the traffic.
        let tenant = ((tenants as f64) * rng.next_f64().powi(2)) as usize % tenants;
        let priority = match rng.below(20) {
            0..=9 => Priority::Low,
            10..=16 => Priority::Normal,
            _ => Priority::High,
        };
        total_work += (shape.0 * shape.1) as f64 * runtime;
        drawn.push((shape, Dur::from_secs_f64(runtime), tenant, priority));
    }
    // Horizon such that offered work = load × capacity over the stream.
    let capacity = (rows * cols) as f64;
    let horizon = total_work / (load * capacity);
    let mean_gap = horizon / n as f64;
    // Pareto(α=1.5) gaps with the right mean: xm = mean × (α−1)/α.
    let xm = (mean_gap / 3.0).max(1e-9);
    let mut t = 0.0f64;
    let subs = drawn
        .into_iter()
        .enumerate()
        .map(|(id, (shape, runtime, tenant, priority))| {
            t += rng.pareto(xm, 1.5);
            Submission {
                id,
                tenant,
                priority,
                shape,
                runtime,
                arrival: SimTime::from_secs_f64(t),
            }
        })
        .collect();
    ServiceTrace {
        subs,
        quota_updates: Vec::new(),
    }
}

/// The batch-equivalence gate: on `trace` with no faults and no limits,
/// the service must produce bit-for-bit the schedule the batch
/// scheduler produces on the equivalent job list — same starts, same
/// finishes, same placements, same makespan. Panics on any divergence.
/// Run by the property tests and by `report bench-sched --smoke`.
pub fn assert_batch_equivalent(trace: &ServiceTrace, rows: usize, cols: usize, policy: Policy) {
    let cfg = ServiceConfig::batch_equivalent(rows, cols, policy);
    let svc = run(trace, &cfg);
    let batch = super::run_with_faults(rows, cols, trace.as_jobs(), policy, &FaultPlan::none());
    assert_eq!(
        svc.completed, batch.jobs,
        "service completed {} jobs, batch {}",
        svc.completed, batch.jobs
    );
    assert_eq!(svc.makespan, batch.makespan, "makespan diverged");
    assert_eq!(svc.max_wait, batch.max_wait, "max wait diverged");
    assert_eq!(
        svc.records.len(),
        batch.records.len(),
        "record counts diverged"
    );
    for (s, b) in svc.records.iter().zip(&batch.records) {
        assert_eq!(s, b, "schedule diverged on job {}", b.job.id);
    }
    assert!(
        svc.outcomes.iter().all(|o| *o == Outcome::Completed),
        "under-capacity zero-fault run must complete everything"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::faults::{FaultKind, MtbfModel};

    fn sub(
        id: usize,
        tenant: usize,
        shape: (usize, usize),
        run_s: u64,
        arrive_s: u64,
    ) -> Submission {
        Submission {
            id,
            tenant,
            priority: Priority::Normal,
            shape,
            runtime: Dur::from_secs(run_s),
            arrival: SimTime(arrive_s * 1_000_000_000),
        }
    }

    fn trace(subs: Vec<Submission>) -> ServiceTrace {
        ServiceTrace {
            subs,
            quota_updates: Vec::new(),
        }
    }

    #[test]
    fn single_job_completes_like_batch() {
        let tr = trace(vec![sub(0, 0, (2, 2), 100, 5)]);
        let r = run(&tr, &ServiceConfig::new(4, 4));
        assert_eq!(r.completed, 1);
        assert_eq!(r.outcomes, vec![Outcome::Completed]);
        assert_eq!(r.makespan, Dur::from_secs(105));
        assert!(r.node_time.balanced());
        assert_eq!(r.node_time.useful, 4 * 100 * 1_000_000_000u128);
    }

    #[test]
    fn batch_equivalence_on_consortium_style_stream() {
        for policy in [Policy::Fcfs, Policy::Backfill] {
            let tr = service_workload(300, 14, 0.6, 16, 33, 1992);
            assert_batch_equivalent(&tr, 16, 33, policy);
        }
    }

    #[test]
    fn deterministic_replay() {
        let tr = service_workload(2_000, 50, 1.4, 16, 33, 7);
        let cfg = ServiceConfig::new(16, 33);
        let plan = FaultPlan::seeded(
            11,
            &MtbfModel::node_crashes(Dur::from_secs(50_000)),
            528,
            0,
            Dur::from_secs(200_000),
        );
        let a = run_with_faults(&tr, &cfg, &plan);
        let b = run_with_faults(&tr, &cfg, &plan);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.node_time, b.node_time);
    }

    #[test]
    fn overload_sheds_low_priority_first_and_bounds_queues() {
        let tr = service_workload(20_000, 200, 2.0, 16, 33, 3);
        let mut cfg = ServiceConfig::new(16, 33);
        cfg.pending_cap = 512;
        cfg.shard_cap = 512;
        let r = run(&tr, &cfg);
        assert!(r.shed_total() > 0, "2x overload must shed");
        assert!(
            r.shed[Priority::Low.index()] >= r.shed[Priority::High.index()],
            "low priority shed at least as much as high: {:?}",
            r.shed
        );
        assert!(r.max_pending <= 512, "pending stayed bounded");
        assert!(r.max_shard_depth <= 512, "shards stayed bounded");
        // Conservation under shedding.
        let rejected = r
            .outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Rejected(_)))
            .count() as u64;
        assert_eq!(rejected, r.rejected_total());
        assert_eq!(
            r.completed + r.failed + rejected as usize,
            r.submitted,
            "every submission reaches exactly one terminal state"
        );
    }

    #[test]
    fn batched_admission_amortizes_but_keeps_totals() {
        let tr = service_workload(5_000, 64, 0.8, 16, 33, 21);
        let mut cfg = ServiceConfig::new(16, 33);
        cfg.pending_cap = usize::MAX; // isolate batching from shedding
        let immediate = run(&tr, &cfg);
        cfg.admit_every = Dur::from_secs(30);
        let batched = run(&tr, &cfg);
        assert_eq!(
            batched.completed + batched.rejected_total() as usize + batched.failed,
            tr.subs.len()
        );
        // Batching delays admission but never loses work under capacity.
        assert_eq!(immediate.completed, batched.completed);
        assert_eq!(immediate.completed, tr.subs.len());
        // The batched run pays extra Admit calendar entries, but each one
        // drains a whole shard buffer (bounded by the shard high-water
        // mark), instead of one admission pass per arrival.
        assert!(batched.events > immediate.events);
        assert!(batched.max_shard_depth > 1, "buffers actually batched");
        assert_eq!(immediate.max_shard_depth, 1);
    }

    #[test]
    fn retry_after_kill_then_failed_after_budget() {
        // A 1x1 job on a 1x4 strip: first-fit restarts it on the next
        // surviving node after each kill, and we crash that node too,
        // until the retry budget (2) is exhausted on the third kill.
        let mut cfg = ServiceConfig::new(1, 4);
        cfg.retry.budget = 2;
        cfg.retry.backoff = Backoff::exponential(Dur::from_secs(1), Dur::from_secs(4));
        cfg.keep_records = true;
        let tr = trace(vec![sub(0, 0, (1, 1), 1_000, 0)]);
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime(10 * 1_000_000_000),
            FaultKind::NodeCrash { node: 0 },
        );
        plan.push(
            SimTime(20 * 1_000_000_000),
            FaultKind::NodeCrash { node: 1 },
        );
        plan.push(
            SimTime(30 * 1_000_000_000),
            FaultKind::NodeCrash { node: 2 },
        );
        let r = run_with_faults(&tr, &cfg, &plan);
        assert_eq!(r.jobs_killed, 3);
        assert_eq!(r.retries, 2, "budget of 2 retries consumed");
        assert_eq!(r.failed, 1);
        assert_eq!(r.completed, 0);
        assert_eq!(r.outcomes, vec![Outcome::Failed]);
        assert!(r.node_time.balanced());
        assert!(r.node_time.lost_to_kills > 0);
        assert_eq!(r.nodes_failed, 3);
    }

    #[test]
    fn retry_backoff_is_capped_and_seeded() {
        // A job killed once retries after base × jitter; the schedule
        // replays exactly and respects the cap.
        let mut cfg = ServiceConfig::new(4, 5);
        cfg.retry.budget = 5;
        cfg.retry.backoff = Backoff {
            base: Dur::from_secs(100),
            cap: Dur::from_secs(150),
            jitter: 0.25,
            seed: 9,
        };
        cfg.keep_records = true;
        // 4x4 job on a 4x5 machine: after node 0 dies the job still fits
        // (columns 1..4), so the retry restarts rather than retiring.
        let tr = trace(vec![sub(0, 0, (4, 4), 500, 0)]);
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime(50 * 1_000_000_000),
            FaultKind::NodeCrash { node: 0 },
        );
        let a = run_with_faults(&tr, &cfg, &plan);
        let b = run_with_faults(&tr, &cfg, &plan);
        assert_eq!(
            a.records[0].started, b.records[0].started,
            "seeded jitter replays"
        );
        let restart = a.records[0].started;
        let expected = cfg.retry.backoff.delay(0, 1);
        assert_eq!(restart, SimTime(50 * 1_000_000_000) + expected);
        assert!(expected <= Dur::from_secs(150).mul_f64(1.25));
    }

    #[test]
    fn zero_quota_tenant_rejects_instead_of_hanging() {
        let mut cfg = ServiceConfig::new(4, 4);
        cfg.quota_default = 0;
        let tr = trace(vec![sub(0, 3, (1, 1), 10, 0), sub(1, 3, (2, 2), 10, 1)]);
        let r = run(&tr, &cfg);
        assert_eq!(r.completed, 0);
        assert_eq!(r.quota_rejects, 2);
        assert!(r
            .outcomes
            .iter()
            .all(|o| matches!(o, Outcome::Rejected(AdmissionError::QuotaExceeded { .. }))));
    }

    #[test]
    fn tenant_at_exactly_quota_is_admitted() {
        let mut cfg = ServiceConfig::new(4, 4);
        cfg.quota_default = 4; // nodes
        let tr = trace(vec![
            sub(0, 0, (2, 2), 100, 0),  // exactly the quota: admitted
            sub(1, 0, (1, 1), 10, 1),   // would exceed while 0 runs: rejected
            sub(2, 0, (2, 2), 10, 200), // after 0 finishes: admitted again
        ]);
        let r = run(&tr, &cfg);
        assert_eq!(r.outcomes[0], Outcome::Completed);
        assert_eq!(
            r.outcomes[1],
            Outcome::Rejected(AdmissionError::QuotaExceeded {
                tenant: 0,
                quota: 4
            })
        );
        assert_eq!(r.outcomes[2], Outcome::Completed);
        assert_eq!(r.quota_rejects, 1);
    }

    #[test]
    fn quota_raised_mid_run_takes_effect() {
        let mut cfg = ServiceConfig::new(4, 4);
        cfg.quota_default = 4;
        let tr = ServiceTrace {
            subs: vec![
                sub(0, 0, (2, 2), 100, 0), // fills the quota
                sub(1, 0, (1, 1), 10, 5),  // rejected: quota still 4
                sub(2, 0, (1, 1), 10, 60), // admitted: quota raised to 8 at t=50
            ],
            quota_updates: vec![(SimTime(50 * 1_000_000_000), 0, 8)],
        };
        let r = run(&tr, &cfg);
        assert_eq!(r.outcomes[0], Outcome::Completed);
        assert!(matches!(
            r.outcomes[1],
            Outcome::Rejected(AdmissionError::QuotaExceeded { quota: 4, .. })
        ));
        assert_eq!(r.outcomes[2], Outcome::Completed, "raise applied");
        assert_eq!(r.quota_rejects, 1);
    }

    #[test]
    fn impossible_shape_is_unrunnable_not_queued() {
        let tr = trace(vec![sub(0, 0, (20, 20), 10, 0), sub(1, 0, (1, 1), 10, 1)]);
        let r = run(&tr, &ServiceConfig::new(4, 4));
        assert_eq!(
            r.outcomes[0],
            Outcome::Rejected(AdmissionError::Unrunnable { shape: (20, 20) })
        );
        assert_eq!(r.outcomes[1], Outcome::Completed);
        assert_eq!(r.unrunnable, 1);
    }

    #[test]
    fn fault_shrunk_mesh_retires_pending_as_unrunnable() {
        // 2x2 machine; node dies before the full-frame job can start.
        let mut plan = FaultPlan::none();
        plan.push(SimTime(1_000_000_000), FaultKind::NodeCrash { node: 0 });
        let tr = trace(vec![sub(0, 0, (2, 2), 10, 2), sub(1, 1, (1, 1), 5, 3)]);
        let mut cfg = ServiceConfig::new(2, 2);
        cfg.policy = Policy::Fcfs;
        let r = run_with_faults(&tr, &cfg, &plan);
        assert_eq!(
            r.outcomes[0],
            Outcome::Rejected(AdmissionError::Unrunnable { shape: (2, 2) })
        );
        assert_eq!(r.outcomes[1], Outcome::Completed);
        assert_eq!(r.nodes_failed, 1);
    }

    #[test]
    fn fair_share_order_interleaves_tenants() {
        // Tenant 0 floods the queue first; fair share lets tenant 1's
        // later submission overtake the backlog once tenant 0 has
        // accumulated usage.
        let mut subs = Vec::new();
        for i in 0..8 {
            subs.push(sub(i, 0, (4, 4), 100, 0)); // serialized: whole machine
        }
        subs.push(sub(8, 1, (4, 4), 100, 1));
        let mut cfg = ServiceConfig::new(4, 4);
        cfg.order = Order::FairShare;
        cfg.keep_records = true;
        let fair = run(&trace(subs.clone()), &cfg);
        cfg.order = Order::Arrival;
        let fifo = run(&trace(subs), &cfg);
        let started = |r: &ServiceReport, id: usize| {
            r.records.iter().find(|j| j.job.id == id).unwrap().started
        };
        assert!(
            started(&fair, 8) < started(&fifo, 8),
            "fair share admits the fresh tenant ahead of the backlog: {} vs {}",
            started(&fair, 8),
            started(&fifo, 8)
        );
        assert_eq!(fair.completed, 9);
    }

    #[test]
    fn recorded_run_is_bit_identical_and_counts_tenants() {
        use hpcc_trace::MemRecorder;
        let tr = service_workload(3_000, 12, 1.6, 16, 33, 5);
        let mut cfg = ServiceConfig::new(16, 33);
        cfg.pending_cap = 256;
        let plan = FaultPlan::seeded(
            4,
            &MtbfModel::node_crashes(Dur::from_secs(40_000)),
            528,
            0,
            Dur::from_secs(80_000),
        );
        let plain = run_with_faults(&tr, &cfg, &plan);
        let rec = MemRecorder::new();
        let traced = run_recorded(&tr, &cfg, &plan, &rec);
        assert_eq!(plain.outcomes, traced.outcomes);
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.node_time, traced.node_time);
        assert!(!rec.is_empty(), "counters were emitted");
        assert!(
            rec.tracks()
                .iter()
                .any(|t| t.process == names::SCHED_SVC && t.thread.starts_with("tenant ")),
            "per-tenant tracks exist"
        );
    }

    #[test]
    fn workload_is_deterministic_and_heavy_tailed() {
        let a = service_workload(10_000, 100, 1.0, 16, 33, 42);
        let b = service_workload(10_000, 100, 1.0, 16, 33, 42);
        assert_eq!(a, b);
        let small = a.subs.iter().filter(|s| s.nodes() <= 4).count();
        let big = a.subs.iter().filter(|s| s.nodes() >= 128).count();
        assert!(small > 6_000, "most jobs are small: {small}");
        assert!(big > 0, "a fat tail of big jobs exists: {big}");
        assert!(a.subs.iter().all(|s| s.tenant < 100));
        // Arrivals are sorted and bursty (max gap >> mean gap).
        let gaps: Vec<f64> = a
            .subs
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 10.0 * mean,
            "heavy-tailed gaps: max {max} mean {mean}"
        );
    }
}
