//! Communicators and collective operations, built entirely on the
//! simulator's tagged point-to-point primitives — the way the Delta's NX
//! library and the early ASTA message-passing toolkits did it.
//!
//! Algorithms (all standard early-90s choices):
//! * barrier — dissemination, ⌈log₂ p⌉ rounds;
//! * broadcast / reduce — binomial tree;
//! * allreduce — recursive doubling with non-power-of-two fold;
//! * allgather — ring (bandwidth-optimal for equal blocks);
//! * alltoall — p−1 pairwise exchange steps;
//! * gather / scatter — linear to/from the root.
//!
//! Every data collective has a `*_virtual` twin that moves timing-only
//! byte counts for paper-scale modelling.

use crate::machine::Kernel;
use crate::sim::{Node, Payload};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

/// High bit marks collective-space tags, second bit comm-p2p tags, so user
/// tags on the raw `Node` API can never collide with comm traffic.
const COLL_BIT: u64 = 1 << 63;
const P2P_BIT: u64 = 1 << 62;

/// A group of ranks with its own tag space, like an MPI communicator.
///
/// Every member must construct the `Comm` with the same `ctx` id and the
/// same member list, and must call collectives in the same order.
pub struct Comm {
    node: Node,
    members: Rc<[usize]>,
    me: usize,
    ctx: u64,
    seq: Cell<u64>,
}

impl Comm {
    /// The world communicator: all ranks, ctx 0.
    pub fn world(node: &Node) -> Comm {
        let members: Vec<usize> = (0..node.nranks()).collect();
        Comm::new(node, members, 0)
    }

    /// Build a communicator over `members` (global ranks, strictly
    /// ascending not required but order defines member indices).
    /// The calling node must be a member.
    pub fn new(node: &Node, members: Vec<usize>, ctx: u64) -> Comm {
        assert!(ctx < (1 << 30), "ctx too large");
        let me = members
            .iter()
            .position(|&r| r == node.rank())
            .unwrap_or_else(|| panic!("rank {} not in comm {ctx}", node.rank()));
        Comm {
            node: node.clone(),
            members: Rc::from(members),
            me,
            ctx,
            seq: Cell::new(0),
        }
    }

    /// Number of members.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This node's index within the communicator.
    #[inline]
    pub fn me(&self) -> usize {
        self.me
    }

    /// Global rank of member `idx`.
    #[inline]
    pub fn global(&self, idx: usize) -> usize {
        self.members[idx]
    }

    /// The underlying node handle.
    pub fn node(&self) -> &Node {
        &self.node
    }

    fn p2p_tag(&self, tag: u64) -> u64 {
        assert!(tag < (1 << 32), "comm p2p tag too large");
        P2P_BIT | (self.ctx << 32) | tag
    }

    fn next_coll_tag(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        COLL_BIT | (self.ctx << 32) | (s & 0xFFFF_FFFF)
    }

    /// Tagged send to member `to` (member index, not global rank).
    pub async fn send(&self, to: usize, tag: u64, payload: Payload) {
        self.node
            .send(self.members[to], self.p2p_tag(tag), payload)
            .await;
    }

    pub async fn send_f64s(&self, to: usize, tag: u64, data: &[f64]) {
        self.send(to, tag, Payload::from_f64s(data)).await;
    }

    /// Tagged receive from member `from` (or any member with `None`).
    pub async fn recv(&self, from: Option<usize>, tag: u64) -> Payload {
        let src = from.map(|i| self.members[i]);
        self.node.recv(src, Some(self.p2p_tag(tag))).await.payload
    }

    pub async fn recv_f64s(&self, from: Option<usize>, tag: u64) -> Arc<[f64]> {
        self.recv(from, tag).await.into_f64s()
    }

    // ----- barrier ---------------------------------------------------------

    /// Dissemination barrier: no member returns until all have entered.
    pub async fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = self.next_coll_tag();
        let mut dist = 1;
        while dist < p {
            let to = (self.me + dist) % p;
            let from = (self.me + p - dist) % p;
            self.node
                .send(self.members[to], tag + dist as u64, Payload::Virtual(8))
                .await;
            self.node
                .recv(Some(self.members[from]), Some(tag + dist as u64))
                .await;
            dist <<= 1;
        }
        // Reserve every per-round tag offset we may have consumed
        // (offsets are powers of two below p).
        self.seq.set(self.seq.get() + p as u64 + 1);
    }

    // ----- broadcast -------------------------------------------------------

    /// Binomial-tree broadcast. The root passes `Some(data)`; everyone
    /// receives the payload.
    pub async fn bcast(&self, root: usize, data: Option<Arc<[f64]>>) -> Arc<[f64]> {
        let out = self.bcast_payload(root, data.map(Payload::F64)).await;
        out.into_f64s()
    }

    /// Timing-only broadcast of `bytes`. Long messages use the
    /// scatter + ring-allgather (van de Geijn) algorithm, whose cost is
    /// ~2·bytes/bw instead of the binomial tree's log(p)·bytes/bw —
    /// the broadcast the era's LINPACK codes actually shipped.
    pub async fn bcast_virtual(&self, root: usize, bytes: u64) {
        const LONG: u64 = 32 * 1024;
        if bytes >= LONG && self.size() > 2 {
            self.bcast_virtual_vdg(root, bytes).await;
        } else {
            self.bcast_payload(root, Some(Payload::Virtual(bytes)))
                .await;
        }
    }

    /// Scatter + ring-allgather broadcast, timing-only.
    async fn bcast_virtual_vdg(&self, root: usize, bytes: u64) {
        let p = self.size();
        let tag = self.next_coll_tag();
        let relative = (self.me + p - root) % p;

        // Phase 1: binomial scatter. At distance `mask`, the parent hands
        // its child the child's subtree share of the message.
        let mut recv_mask = 1usize;
        while recv_mask < p {
            if relative & recv_mask != 0 {
                let parent = (relative - recv_mask + root) % p;
                self.node
                    .recv(Some(self.members[parent]), Some(tag + recv_mask as u64))
                    .await;
                break;
            }
            recv_mask <<= 1;
        }
        let mut mask = if recv_mask >= p {
            // Root: start from the top of the tree.
            p.next_power_of_two() / 2
        } else {
            recv_mask / 2
        };
        while mask > 0 {
            if relative & mask == 0 && relative + mask < p {
                let child = (relative + mask + root) % p;
                // Subtree under the child has min(mask, p - relative - mask) ranks.
                let subtree = mask.min(p - relative - mask) as u64;
                self.node
                    .send(
                        self.members[child],
                        tag + mask as u64,
                        Payload::Virtual((bytes * subtree / p as u64).max(1)),
                    )
                    .await;
            }
            mask >>= 1;
        }

        // Phase 2: ring allgather of the p chunks.
        let chunk = (bytes / p as u64).max(1);
        let right = (self.me + 1) % p;
        let left = (self.me + p - 1) % p;
        for k in 0..p - 1 {
            self.node
                .send(
                    self.members[right],
                    tag + (p + k) as u64,
                    Payload::Virtual(chunk),
                )
                .await;
            self.node
                .recv(Some(self.members[left]), Some(tag + (p + k) as u64))
                .await;
        }
        // Reserve the tag offsets consumed (scatter: < p; ring: p..2p-1).
        self.seq.set(self.seq.get() + 2 * p as u64 + 1);
    }

    async fn bcast_payload(&self, root: usize, data: Option<Payload>) -> Payload {
        let p = self.size();
        let tag = self.next_coll_tag();
        let relative = (self.me + p - root) % p;
        let mut payload = data;
        if p > 1 {
            // Receive from parent (if not root).
            let mut mask = 1usize;
            while mask < p {
                if relative & mask != 0 {
                    let parent = (relative - mask + root) % p;
                    let msg = self.node.recv(Some(self.members[parent]), Some(tag)).await;
                    payload = Some(msg.payload);
                    break;
                }
                mask <<= 1;
            }
            // Forward to children.
            mask >>= 1;
            while mask > 0 {
                if relative & mask == 0 && relative + mask < p {
                    let child = (relative + mask + root) % p;
                    let pl = payload
                        .as_ref()
                        .expect("bcast root must supply data")
                        .clone();
                    self.node.send(self.members[child], tag, pl).await;
                }
                mask >>= 1;
            }
        }
        payload.expect("bcast root must supply data")
    }

    // ----- reduce ----------------------------------------------------------

    /// Binomial-tree sum-reduce to `root`; returns `Some(total)` at the
    /// root, `None` elsewhere. All contributions must be equal length.
    pub async fn reduce_sum(&self, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        let p = self.size();
        let tag = self.next_coll_tag();
        let relative = (self.me + p - root) % p;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let parent = (relative - mask + root) % p;
                self.node
                    .send(self.members[parent], tag, Payload::from_f64s(&acc))
                    .await;
                return None;
            }
            let child = relative + mask;
            if child < p {
                let msg = self
                    .node
                    .recv(Some(self.members[(child + root) % p]), Some(tag))
                    .await;
                let other = msg.payload.into_f64s();
                assert_eq!(other.len(), acc.len(), "reduce length mismatch");
                // Reduction arithmetic costs time too.
                self.node.compute(Kernel::Daxpy, acc.len() as f64).await;
                for (a, b) in acc.iter_mut().zip(other.iter()) {
                    *a += b;
                }
            }
            mask <<= 1;
        }
        Some(acc)
    }

    // ----- allreduce (recursive doubling) -----------------------------------

    /// Element-wise sum allreduce.
    pub async fn allreduce_sum(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce_with(data.to_vec(), |a, b| {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        })
        .await
    }

    /// Max-with-location allreduce (ties go to the lower location), the
    /// primitive LINPACK pivot search is built on.
    pub async fn allreduce_max_loc(&self, value: f64, loc: u64) -> (f64, u64) {
        let out = self
            .allreduce_with(vec![value, loc as f64], |a, b| {
                let better = b[0] > a[0] || (b[0] == a[0] && b[1] < a[1]);
                if better {
                    a[0] = b[0];
                    a[1] = b[1];
                }
            })
            .await;
        (out[0], out[1] as u64)
    }

    /// Generic commutative-associative allreduce via recursive doubling,
    /// with the MPICH-style fold for non-power-of-two sizes.
    pub async fn allreduce_with(
        &self,
        mut data: Vec<f64>,
        combine: impl Fn(&mut Vec<f64>, &[f64]),
    ) -> Vec<f64> {
        let p = self.size();
        if p == 1 {
            return data;
        }
        let tag = self.next_coll_tag();
        let pof2 = 1usize << p.ilog2();
        let rem = p - pof2;

        // Fold the remainder: first 2*rem ranks pair up; odd ranks send
        // their data to the even neighbour and sit out.
        let newrank: isize = if self.me < 2 * rem {
            if self.me % 2 == 1 {
                self.node
                    .send(self.members[self.me - 1], tag, Payload::from_f64s(&data))
                    .await;
                -1
            } else {
                let msg = self
                    .node
                    .recv(Some(self.members[self.me + 1]), Some(tag))
                    .await;
                self.node.compute(Kernel::Daxpy, data.len() as f64).await;
                combine(&mut data, &msg.payload.into_f64s());
                (self.me / 2) as isize
            }
        } else {
            (self.me - rem) as isize
        };

        // Recursive doubling among the pof2 participants.
        if let Ok(nr) = usize::try_from(newrank) {
            let to_real = |v: usize| if v < rem { 2 * v } else { v + rem };
            let mut mask = 1usize;
            while mask < pof2 {
                let partner = to_real(nr ^ mask);
                self.node
                    .send(
                        self.members[partner],
                        tag + mask as u64,
                        Payload::from_f64s(&data),
                    )
                    .await;
                let msg = self
                    .node
                    .recv(Some(self.members[partner]), Some(tag + mask as u64))
                    .await;
                self.node.compute(Kernel::Daxpy, data.len() as f64).await;
                combine(&mut data, &msg.payload.into_f64s());
                mask <<= 1;
            }
        }

        // Unfold: even partners push the result back to the odd ranks.
        if self.me < 2 * rem {
            if self.me.is_multiple_of(2) {
                self.node
                    .send(self.members[self.me + 1], tag, Payload::from_f64s(&data))
                    .await;
            } else {
                let msg = self
                    .node
                    .recv(Some(self.members[self.me - 1]), Some(tag))
                    .await;
                data = msg.payload.into_f64s().to_vec();
            }
        }
        // Reserve every per-round tag offset we may have consumed.
        self.seq.set(self.seq.get() + p as u64 + 1);
        data
    }

    /// Timing-only allreduce of `bytes` per message (recursive-doubling
    /// shape, power-of-two portion only — adequate for cost modelling).
    pub async fn allreduce_virtual(&self, bytes: u64) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = self.next_coll_tag();
        let pof2 = 1usize << p.ilog2();
        let rem = p - pof2;
        let newrank: isize = if self.me < 2 * rem {
            if self.me % 2 == 1 {
                self.node
                    .send(self.members[self.me - 1], tag, Payload::Virtual(bytes))
                    .await;
                -1
            } else {
                self.node
                    .recv(Some(self.members[self.me + 1]), Some(tag))
                    .await;
                (self.me / 2) as isize
            }
        } else {
            (self.me - rem) as isize
        };
        if let Ok(nr) = usize::try_from(newrank) {
            let to_real = |v: usize| if v < rem { 2 * v } else { v + rem };
            let mut mask = 1usize;
            while mask < pof2 {
                let partner = to_real(nr ^ mask);
                self.node
                    .send(
                        self.members[partner],
                        tag + mask as u64,
                        Payload::Virtual(bytes),
                    )
                    .await;
                self.node
                    .recv(Some(self.members[partner]), Some(tag + mask as u64))
                    .await;
                mask <<= 1;
            }
        }
        if self.me < 2 * rem {
            if self.me.is_multiple_of(2) {
                self.node
                    .send(self.members[self.me + 1], tag, Payload::Virtual(bytes))
                    .await;
            } else {
                self.node
                    .recv(Some(self.members[self.me - 1]), Some(tag))
                    .await;
            }
        }
        self.seq.set(self.seq.get() + p as u64 + 1);
    }

    /// Element-wise min allreduce.
    pub async fn allreduce_min(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce_with(data.to_vec(), |a, b| {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                if *y < *x {
                    *x = *y;
                }
            }
        })
        .await
    }

    /// Element-wise max allreduce.
    pub async fn allreduce_max(&self, data: &[f64]) -> Vec<f64> {
        self.allreduce_with(data.to_vec(), |a, b| {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                if *y > *x {
                    *x = *y;
                }
            }
        })
        .await
    }

    /// Inclusive prefix-sum scan in member order: member `i` receives
    /// Σ_{j ≤ i} data_j. Linear chain — the scan the NX toolkits shipped.
    pub async fn scan_sum(&self, data: &[f64]) -> Vec<f64> {
        let p = self.size();
        let tag = self.next_coll_tag();
        let mut acc = data.to_vec();
        if self.me > 0 {
            let msg = self
                .node
                .recv(Some(self.members[self.me - 1]), Some(tag))
                .await;
            let prev = msg.payload.into_f64s();
            assert_eq!(prev.len(), acc.len(), "scan length mismatch");
            self.node.compute(Kernel::Daxpy, acc.len() as f64).await;
            for (a, b) in acc.iter_mut().zip(prev.iter()) {
                *a += b;
            }
        }
        if self.me + 1 < p {
            self.node
                .send(self.members[self.me + 1], tag, Payload::from_f64s(&acc))
                .await;
        }
        acc
    }

    // ----- gather / allgather / scatter / alltoall --------------------------

    /// Linear gather of equal-length blocks to `root`, concatenated in
    /// member order.
    pub async fn gather(&self, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        let p = self.size();
        let tag = self.next_coll_tag();
        if self.me != root {
            self.node
                .send(
                    self.members[root],
                    tag + self.me as u64,
                    Payload::from_f64s(data),
                )
                .await;
            self.seq.set(self.seq.get() + p as u64);
            return None;
        }
        let mut out = vec![0.0; data.len() * p];
        out[root * data.len()..(root + 1) * data.len()].copy_from_slice(data);
        for i in 0..p {
            if i == root {
                continue;
            }
            let msg = self
                .node
                .recv(Some(self.members[i]), Some(tag + i as u64))
                .await;
            let block = msg.payload.into_f64s();
            assert_eq!(block.len(), data.len(), "gather length mismatch");
            out[i * data.len()..(i + 1) * data.len()].copy_from_slice(&block);
        }
        self.seq.set(self.seq.get() + p as u64);
        Some(out)
    }

    /// Ring allgather of equal-length blocks; result concatenated in
    /// member order on every member.
    pub async fn allgather(&self, data: &[f64]) -> Vec<f64> {
        let p = self.size();
        let blk = data.len();
        let tag = self.next_coll_tag();
        let mut out = vec![0.0; blk * p];
        out[self.me * blk..(self.me + 1) * blk].copy_from_slice(data);
        let right = (self.me + 1) % p;
        let left = (self.me + p - 1) % p;
        // Step k: forward the block that originated k hops to the left.
        let mut have = self.me;
        for k in 0..p.saturating_sub(1) {
            let send_block = out[have * blk..(have + 1) * blk].to_vec();
            self.node
                .send(
                    self.members[right],
                    tag + k as u64,
                    Payload::from_f64s(&send_block),
                )
                .await;
            let msg = self
                .node
                .recv(Some(self.members[left]), Some(tag + k as u64))
                .await;
            let incoming = (self.me + p - 1 - k) % p;
            let block = msg.payload.into_f64s();
            assert_eq!(block.len(), blk, "allgather length mismatch");
            out[incoming * blk..(incoming + 1) * blk].copy_from_slice(&block);
            have = incoming;
        }
        self.seq.set(self.seq.get() + p as u64);
        out
    }

    /// Scatter equal-length chunks from `root`; member `i` gets chunk `i`.
    pub async fn scatter(&self, root: usize, chunks: Option<&[Vec<f64>]>) -> Vec<f64> {
        let p = self.size();
        let tag = self.next_coll_tag();
        let mine = if self.me == root {
            let chunks = chunks.expect("scatter root must supply chunks");
            assert_eq!(chunks.len(), p, "scatter needs one chunk per member");
            for (i, c) in chunks.iter().enumerate() {
                if i != root {
                    self.node
                        .send(self.members[i], tag + i as u64, Payload::from_f64s(c))
                        .await;
                }
            }
            chunks[root].clone()
        } else {
            let msg = self
                .node
                .recv(Some(self.members[root]), Some(tag + self.me as u64))
                .await;
            msg.payload.into_f64s().to_vec()
        };
        self.seq.set(self.seq.get() + p as u64);
        mine
    }

    /// Pairwise-exchange all-to-all: member `i`'s chunk `j` ends up as
    /// member `j`'s result chunk `i`. Chunks may have differing lengths.
    pub async fn alltoall(&self, chunks: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let p = self.size();
        assert_eq!(chunks.len(), p, "alltoall needs one chunk per member");
        let tag = self.next_coll_tag();
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
        out[self.me] = chunks[self.me].clone();
        for k in 1..p {
            let to = (self.me + k) % p;
            let from = (self.me + p - k) % p;
            self.node
                .send(
                    self.members[to],
                    tag + k as u64,
                    Payload::from_f64s(&chunks[to]),
                )
                .await;
            let msg = self
                .node
                .recv(Some(self.members[from]), Some(tag + k as u64))
                .await;
            out[from] = msg.payload.into_f64s().to_vec();
        }
        self.seq.set(self.seq.get() + p as u64);
        out
    }

    /// Timing-only all-to-all of `bytes` per pair.
    pub async fn alltoall_virtual(&self, bytes: u64) {
        let p = self.size();
        let tag = self.next_coll_tag();
        for k in 1..p {
            let to = (self.me + k) % p;
            let from = (self.me + p - k) % p;
            self.node
                .send(self.members[to], tag + k as u64, Payload::Virtual(bytes))
                .await;
            self.node
                .recv(Some(self.members[from]), Some(tag + k as u64))
                .await;
        }
        self.seq.set(self.seq.get() + p as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::presets;
    use crate::sim::Machine;
    use des::time::Dur;

    /// Run `f` on a 3x3 Delta (9 ranks — deliberately not a power of two).
    fn on9<T: 'static>(
        f: impl Fn(Comm) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>> + 'static,
    ) -> Vec<T> {
        let m = Machine::new(presets::delta(3, 3));
        let (out, _) = m.run(move |node| f(Comm::world(&node)));
        out
    }

    #[test]
    fn bcast_reaches_everyone() {
        let out = on9(|comm| {
            Box::pin(async move {
                let data = if comm.me() == 4 {
                    Some(Arc::from(vec![1.0, 2.0, 3.0]))
                } else {
                    None
                };
                comm.bcast(4, data).await.to_vec()
            })
        });
        for v in out {
            assert_eq!(v, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn reduce_sum_totals_at_root() {
        let out = on9(|comm| {
            Box::pin(async move {
                let me = comm.me() as f64;
                comm.reduce_sum(2, &[me, 2.0 * me]).await
            })
        });
        for (i, v) in out.iter().enumerate() {
            if i == 2 {
                assert_eq!(v.as_ref().unwrap(), &vec![36.0, 72.0]);
            } else {
                assert!(v.is_none());
            }
        }
    }

    #[test]
    fn allreduce_sum_everywhere() {
        let out = on9(|comm| {
            Box::pin(async move {
                let me = comm.me() as f64;
                comm.allreduce_sum(&[1.0, me]).await
            })
        });
        for v in out {
            assert_eq!(v, vec![9.0, 36.0]);
        }
    }

    #[test]
    fn allreduce_max_loc_picks_max_and_lowest_tie() {
        let out = on9(|comm| {
            Box::pin(async move {
                // Ranks 3 and 7 tie for the max; lowest loc (3) must win.
                let v = if comm.me() == 3 || comm.me() == 7 {
                    10.0
                } else {
                    comm.me() as f64
                };
                comm.allreduce_max_loc(v, comm.me() as u64).await
            })
        });
        for (val, loc) in out {
            assert_eq!(val, 10.0);
            assert_eq!(loc, 3);
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = on9(|comm| {
            Box::pin(async move {
                let me = comm.me() as f64;
                let mn = comm.allreduce_min(&[me, -me]).await;
                let mx = comm.allreduce_max(&[me, -me]).await;
                (mn, mx)
            })
        });
        for (mn, mx) in out {
            assert_eq!(mn, vec![0.0, -8.0]);
            assert_eq!(mx, vec![8.0, 0.0]);
        }
    }

    #[test]
    fn scan_is_inclusive_prefix_sum() {
        let out = on9(|comm| {
            Box::pin(async move {
                let me = comm.me() as f64;
                comm.scan_sum(&[1.0, me]).await
            })
        });
        for (i, v) in out.iter().enumerate() {
            let tri = (i * (i + 1) / 2) as f64;
            assert_eq!(v, &vec![(i + 1) as f64, tri], "member {i}");
        }
    }

    #[test]
    fn gather_concatenates_in_order() {
        let out = on9(|comm| {
            Box::pin(async move {
                let me = comm.me() as f64;
                comm.gather(0, &[me, -me]).await
            })
        });
        let at_root = out[0].as_ref().unwrap();
        let expect: Vec<f64> = (0..9).flat_map(|i| [i as f64, -(i as f64)]).collect();
        assert_eq!(at_root, &expect);
        assert!(out[1..].iter().all(|o| o.is_none()));
    }

    #[test]
    fn allgather_ring_everywhere() {
        let out = on9(|comm| {
            Box::pin(async move {
                let me = comm.me() as f64;
                comm.allgather(&[me * 100.0]).await
            })
        });
        let expect: Vec<f64> = (0..9).map(|i| i as f64 * 100.0).collect();
        for v in out {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let out = on9(|comm| {
            Box::pin(async move {
                let chunks: Option<Vec<Vec<f64>>> =
                    (comm.me() == 1).then(|| (0..comm.size()).map(|i| vec![i as f64; 2]).collect());
                comm.scatter(1, chunks.as_deref()).await
            })
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i as f64; 2]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let out = on9(|comm| {
            Box::pin(async move {
                let me = comm.me() as f64;
                // Chunk j from member i holds [i, j].
                let chunks: Vec<Vec<f64>> = (0..comm.size()).map(|j| vec![me, j as f64]).collect();
                comm.alltoall(chunks).await
            })
        });
        for (j, got) in out.iter().enumerate() {
            for (i, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![i as f64, j as f64], "member {j} chunk {i}");
            }
        }
    }

    #[test]
    fn barrier_blocks_until_all_enter() {
        let m = Machine::new(presets::delta(3, 3));
        let (out, _) = m.run(|node| async move {
            let comm = Comm::world(&node);
            // Stagger entries by up to 80ms.
            node.delay(Dur::from_millis(10 * node.rank() as u64)).await;
            let entered = node.now();
            comm.barrier().await;
            (entered, node.now())
        });
        let last_entry = out.iter().map(|(e, _)| *e).max().unwrap();
        for (_, exit) in &out {
            assert!(
                *exit >= last_entry,
                "exit {exit} before last entry {last_entry}"
            );
        }
    }

    #[test]
    fn subcommunicators_are_isolated() {
        // Two row comms of a 2x4 machine do independent allreduces.
        let m = Machine::new(presets::delta(2, 4));
        let (out, _) = m.run(|node| async move {
            let row = node.rank() / 4;
            let members: Vec<usize> = (0..4).map(|c| row * 4 + c).collect();
            let comm = Comm::new(&node, members, 1 + row as u64);
            comm.allreduce_sum(&[node.rank() as f64]).await[0]
        });
        assert!(out[..4].iter().all(|&v| v == 6.0), "{out:?}"); // 0+1+2+3
        assert!(out[4..].iter().all(|&v| v == 22.0), "{out:?}"); // 4+5+6+7
    }

    #[test]
    fn long_broadcast_beats_binomial() {
        // The van de Geijn broadcast must be materially faster than the
        // tree for long messages on many nodes.
        let elapsed = |force_tree: bool| {
            let m = Machine::new(presets::delta(4, 4));
            let (_, r) = m.run(move |node| async move {
                let comm = Comm::world(&node);
                let bytes = 1 << 20;
                if force_tree {
                    comm.bcast_payload(0, Some(Payload::Virtual(bytes))).await;
                } else {
                    comm.bcast_virtual_vdg(0, bytes).await;
                }
            });
            r.elapsed
        };
        let vdg = elapsed(false);
        let tree = elapsed(true);
        assert!(
            vdg.as_secs_f64() < 0.7 * tree.as_secs_f64(),
            "vdg {vdg} vs tree {tree}"
        );
    }

    #[test]
    fn vdg_runs_on_odd_sizes_and_roots() {
        for (r, c) in [(1, 3), (3, 3), (2, 4), (1, 7)] {
            let m = Machine::new(presets::delta(r, c));
            let (_, report) = m.run(move |node| async move {
                let comm = Comm::world(&node);
                let root = comm.size() - 1;
                comm.bcast_virtual(root, 1 << 20).await;
                // A second collective must not collide with vdg's tags.
                comm.barrier().await;
            });
            assert!(report.messages > 0, "{r}x{c}");
        }
    }

    #[test]
    fn virtual_collectives_advance_time() {
        let m = Machine::new(presets::delta(2, 4));
        let (_, report) = m.run(|node| async move {
            let comm = Comm::world(&node);
            comm.bcast_virtual(0, 1 << 20).await;
            comm.allreduce_virtual(64).await;
            comm.alltoall_virtual(4096).await;
        });
        assert!(report.elapsed > Dur::ZERO);
        assert!(report.messages > 0);
    }

    #[test]
    fn power_of_two_and_odd_sizes_agree() {
        for (r, c) in [(1, 2), (1, 3), (2, 2), (1, 5), (2, 3), (2, 4), (3, 3)] {
            let m = Machine::new(presets::delta(r, c));
            let p = r * c;
            let (out, _) = m.run(|node| async move {
                let comm = Comm::world(&node);
                comm.allreduce_sum(&[1.0]).await[0]
            });
            assert!(out.iter().all(|&v| v == p as f64), "p={p}: {out:?}");
        }
    }
}
