//! Conservative window-synchronized parallel DES: the lane runtime.
//!
//! The machine is split into contiguous node blocks ("lanes", one per
//! group of mesh rows — [`LaneMap`]). Each lane owns an event calendar,
//! an executor ([`LaneTasks`]) and the futures of its node programs, so
//! within a lane the simulation is exactly the legacy engine. Lanes are
//! synchronized with the classic bounded-lag (CMB/YAWNS-style) rule:
//!
//! 1. `T` = minimum next-event time across all lanes,
//! 2. every lane processes its local events in `[T, T + L)` where `L`
//!    is the network's cross-lane lookahead
//!    ([`crate::machine::NetModel::lookahead`]) — a message sent at `t`
//!    can never arrive in another lane before `t + L`, so no event in
//!    the window can be invalidated by a peer lane,
//! 3. cross-lane messages buffered during the window are exchanged
//!    through a per-(destination, source) mailbox and scheduled into the
//!    destination calendars, and the next window begins.
//!
//! ## Determinism contract
//!
//! A sharded run is a pure function of (machine config, fault plan,
//! program, lane count) — thread scheduling cannot change results:
//! lanes only interact at window boundaries, each mailbox slot carries
//! messages from exactly one source lane in that lane's deterministic
//! send order, and every lane drains slots in source-lane order, so the
//! destination calendar's tie-breaking sequence numbers are assigned
//! identically on every run. Remote failure checks read a crash
//! schedule precomputed from the fault plan instead of shared mutable
//! state. The inline (single-thread) and threaded modes produce the
//! same answer; `HPCC_LANE_MODE=threads|inline` forces one for testing.
//!
//! Changing the lane *count* changes cross-lane message timing (see
//! below), so only final results of timing-insensitive programs are
//! lane-count-invariant, not per-event timestamps.
//!
//! ## Modelling concession
//!
//! Intra-lane messages keep the full link-occupancy contention model.
//! Cross-lane messages are timed analytically (sender overhead plus the
//! uncontended transfer time) and ignore link outages: boundary traffic
//! sees no channel contention. With row-block lanes and XY routing,
//! every route between same-lane nodes stays on same-lane channels, so
//! the concession applies exactly to the traffic that crosses a lane
//! boundary and to nothing else.

use crate::machine::MachineConfig;
use crate::partition::LaneMap;
use crate::sim::{Counters, Event, Msg, Node, RunReport, ShardState, SimCore};
use crate::topology::Topology;
use des::faults::{FaultKind, FaultPlan};
use des::time::{Dur, SimTime};
use des::{LaneTasks, TaskId};
use hpcc_trace::NullRecorder;
use std::cell::RefCell;
use std::future::Future;
use std::ops::Range;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

#[derive(Clone, Copy, PartialEq)]
enum LaneMode {
    /// All lanes round-robin on the calling thread. Deterministic and
    /// barrier-free; the right choice on a single-CPU host where OS
    /// threads would only add context switches.
    Inline,
    /// One OS thread per lane, three barriers per window.
    Threads,
}

fn pick_mode() -> LaneMode {
    match std::env::var("HPCC_LANE_MODE").as_deref() {
        Ok("inline") => return LaneMode::Inline,
        Ok("threads") => return LaneMode::Threads,
        _ => {}
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores > 1 {
        LaneMode::Threads
    } else {
        LaneMode::Inline
    }
}

/// First crash instant per node (`SimTime::MAX` = never). Crashes are
/// fail-stop and scripted, so the schedule is known before the run
/// starts — this is what lets a lane answer "is that remote node dead?"
/// without asking the lane that owns it.
fn crash_times(n: usize, plan: &FaultPlan) -> std::sync::Arc<[SimTime]> {
    let mut t = vec![SimTime::MAX; n];
    for e in plan.events() {
        if let FaultKind::NodeCrash { node } = e.kind {
            t[node] = t[node].min(e.at);
        }
    }
    t.into()
}

/// Lane owning each directed channel: the lane of the channel's source
/// node. Only built when the plan contains link faults.
fn link_owners(topo: &Topology, map: &LaneMap) -> Vec<usize> {
    let mut owner = vec![0usize; topo.links()];
    let mut nbrs = Vec::new();
    for node in 0..topo.nodes() {
        nbrs.clear();
        topo.neighbours(node, &mut nbrs);
        for &(_, link) in &nbrs {
            owner[link] = map.lane_of(node);
        }
    }
    owner
}

/// One mailbox slot: messages bound for a single destination lane from
/// a single source lane, each tagged with the receiving node's rank.
type MailSlot = Mutex<Vec<(usize, Msg)>>;

/// Cross-lane coordination state. Everything here is only touched at
/// window boundaries; the hot path never takes a lock.
struct Shared {
    /// `mail[dst][src]`: messages from lane `src` to lane `dst`, in
    /// `src`'s send order. Sharded mutexes — no two writers contend on
    /// a slot, and readers drain after the barrier.
    mail: Vec<Vec<MailSlot>>,
    /// Each lane's next local event time (`u64::MAX` = empty calendar).
    next: Vec<AtomicU64>,
    /// Each lane's count of unfinished node programs.
    live: Vec<AtomicUsize>,
    /// Some lane has applied a hardware fault (orphaned survivors are
    /// then casualties, not deadlocks).
    faulted: AtomicBool,
    /// Synchronization rounds (windows) executed — a diagnostic for the
    /// window/event ratio, surfaced through [`LaneStats`].
    rounds: AtomicU64,
    /// Cross-lane messages exchanged through the mailboxes — boundary
    /// traffic volume, surfaced through [`LaneStats`].
    mail_msgs: AtomicU64,
    /// Blocked-node diagnostics, filled only on the deadlock path.
    stuck: Mutex<Vec<String>>,
}

impl Shared {
    fn new(lanes: usize) -> Shared {
        Shared {
            mail: (0..lanes)
                .map(|_| (0..lanes).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            next: (0..lanes).map(|_| AtomicU64::new(u64::MAX)).collect(),
            live: (0..lanes).map(|_| AtomicUsize::new(0)).collect(),
            faulted: AtomicBool::new(false),
            rounds: AtomicU64::new(0),
            mail_msgs: AtomicU64::new(0),
            stuck: Mutex::new(Vec::new()),
        }
    }
}

/// What every lane decides (identically) at a window boundary.
enum Decision {
    /// Process local events strictly below this horizon.
    Run(SimTime),
    /// Calendars are empty but programs survive a faulted run: abort
    /// them as orphans and finish.
    Orphans,
    Done,
    Deadlock,
}

fn decide(shared: &Shared, lookahead: Dur) -> Decision {
    let t = shared
        .next
        .iter()
        .map(|a| a.load(Ordering::SeqCst))
        .min()
        .expect("at least one lane");
    if t != u64::MAX {
        return Decision::Run(SimTime(t) + lookahead);
    }
    let live: usize = shared.live.iter().map(|a| a.load(Ordering::SeqCst)).sum();
    if live == 0 {
        Decision::Done
    } else if shared.faulted.load(Ordering::SeqCst) {
        Decision::Orphans
    } else {
        Decision::Deadlock
    }
}

fn deadlock_panic(machine: &str, live: usize, stuck: &[String]) -> ! {
    panic!(
        "deadlock on {machine}: {live} tasks parked, no events\n{}",
        stuck.join("\n")
    )
}

/// One lane: a shard-configured [`SimCore`], its executor, and the task
/// handles of the node programs it owns.
struct Lane<T> {
    lane: usize,
    range: Range<usize>,
    core: Rc<RefCell<SimCore>>,
    tasks: LaneTasks,
    task_of: Vec<TaskId>,
    results: Rc<RefCell<Vec<Option<T>>>>,
}

fn setup<T, F, Fut>(
    cfg: &MachineConfig,
    map: &LaneMap,
    crash: &std::sync::Arc<[SimTime]>,
    link_owner: &[usize],
    plan: &FaultPlan,
    lane: usize,
    program: &F,
) -> Lane<T>
where
    T: 'static,
    F: Fn(Node) -> Fut,
    Fut: Future<Output = T> + 'static,
{
    let n = cfg.nodes();
    let nlinks = cfg.topology.links();
    let range = map.range(lane);
    let core = Rc::new(RefCell::new(SimCore::with_queue_capacity(
        Rc::new(cfg.clone()),
        Rc::new(NullRecorder),
        2 * range.len(),
    )));
    core.borrow_mut().shard = Some(ShardState {
        lane,
        map: map.clone(),
        crash_time: std::sync::Arc::clone(crash),
        outbox: Vec::new(),
    });
    let mut tasks = LaneTasks::with_capacity(range.len());
    let results: Rc<RefCell<Vec<Option<T>>>> =
        Rc::new(RefCell::new((0..range.len()).map(|_| None).collect()));

    // This lane's share of the fault plan: node faults by owner lane,
    // link faults by the channel's source-node lane. Same boot-time
    // rule as the legacy engine: t=0 faults apply before any program
    // instruction runs.
    let mut boot = Vec::new();
    {
        let mut c = core.borrow_mut();
        for e in plan.events() {
            let owner = match e.kind {
                FaultKind::NodeCrash { node } | FaultKind::NodeSlow { node, .. } => {
                    assert!(node < n, "fault plan targets node {node} of {n}");
                    map.lane_of(node)
                }
                FaultKind::LinkDown { link, .. } => {
                    assert!(link < nlinks, "fault plan targets link {link} of {nlinks}");
                    link_owner[link]
                }
            };
            if owner != lane {
                continue;
            }
            if e.at == SimTime::ZERO {
                if let Some(node) = c.apply_fault(e.kind) {
                    boot.push(node);
                }
            } else {
                c.q.schedule(e.at, Event::Fault(e.kind));
            }
        }
    }

    let mut task_of = Vec::with_capacity(range.len());
    for rank in range.clone() {
        let node = Node::new_in(Rc::clone(&core), rank, n);
        let fut = program(node);
        let sink = Rc::clone(&results);
        let slot = rank - range.start;
        task_of.push(tasks.spawn(async move {
            let out = fut.await;
            sink.borrow_mut()[slot] = Some(out);
        }));
    }
    for node in boot {
        tasks.abort(task_of[node - range.start]);
    }
    tasks.run_ready();
    Lane {
        lane,
        range,
        core,
        tasks,
        task_of,
        results,
    }
}

impl<T> Lane<T> {
    /// Process every local event strictly below `horizon`, running the
    /// executor after each — the legacy dispatch loop restricted to one
    /// window. Like the legacy loop, it checks for completion *before*
    /// each pop: once every program on this lane has finished, leftover
    /// calendar entries (pending faults, stale timers) are abandoned.
    fn process_window(&mut self, horizon: SimTime) {
        while !self.tasks.all_done() {
            let ev = self.core.borrow_mut().q.pop_before(horizon);
            let Some((_, ev)) = ev else { break };
            match ev {
                Event::Deliver { dst, msg } => self.core.borrow_mut().deliver(dst, msg),
                Event::Wake(c) => c.fulfil(()),
                Event::Fault(kind) => {
                    let crashed = self.core.borrow_mut().apply_fault(kind);
                    if let Some(node) = crashed {
                        self.tasks.abort(self.task_of[node - self.range.start]);
                    }
                }
                Event::LinkUp { link } => self.core.borrow_mut().link_up(link),
                Event::RecvDeadline { dst, token, after } => {
                    self.core.borrow_mut().deadline(dst, token, after);
                }
            }
            self.tasks.run_ready();
        }
    }

    /// Hand this window's cross-lane sends to their destination slots.
    fn flush(&mut self, shared: &Shared) {
        let mut core = self.core.borrow_mut();
        let sh = core.shard.as_mut().expect("lane core is sharded");
        if sh.outbox.is_empty() {
            return;
        }
        shared
            .mail_msgs
            .fetch_add(sh.outbox.len() as u64, Ordering::Relaxed);
        for (dst, msg) in sh.outbox.drain(..) {
            let dlane = sh.map.lane_of(dst);
            shared.mail[dlane][self.lane]
                .lock()
                .expect("mail slot")
                .push((dst, msg));
        }
    }

    /// Schedule everything other lanes sent us; arrivals land at or past
    /// the horizon by the lookahead argument, so the calendar never sees
    /// a past timestamp.
    fn drain(&mut self, shared: &Shared) {
        let mut core = self.core.borrow_mut();
        for src in 0..shared.mail.len() {
            let mut slot = shared.mail[self.lane][src].lock().expect("mail slot");
            for (dst, msg) in slot.drain(..) {
                let at = msg.arrived_at;
                core.q.schedule(at, Event::Deliver { dst, msg });
            }
        }
    }

    fn publish(&self, shared: &Shared) {
        let core = self.core.borrow();
        // A finished lane reports an empty calendar even if events are
        // still queued — the legacy engine stops dispatching the moment
        // its last task completes, and the abandoned events must not
        // keep dragging the global horizon (or the elapsed clock)
        // forward.
        let next = if self.tasks.all_done() {
            u64::MAX
        } else {
            core.q.peek_time().map_or(u64::MAX, |t| t.0)
        };
        shared.next[self.lane].store(next, Ordering::SeqCst);
        shared.live[self.lane].store(self.tasks.live(), Ordering::SeqCst);
        if core.counters.faults.any() {
            shared.faulted.store(true, Ordering::SeqCst);
        }
    }

    /// Abort every unfinished program on this lane (fault aftermath).
    fn abort_orphans(&mut self) {
        let mut orphans = 0;
        for &t in &self.task_of {
            if self.tasks.abort(t) {
                orphans += 1;
            }
        }
        self.core.borrow_mut().counters.faults.orphaned_tasks += orphans;
    }

    fn stuck_report(&self) -> Vec<String> {
        self.core
            .borrow()
            .blocked
            .iter()
            .enumerate()
            .filter_map(|(r, b)| b.as_ref().map(|s| format!("  node {r}: {s}")))
            .collect()
    }
}

/// Per-lane scalar outcome, merged by [`assemble`].
struct LaneOut<T> {
    range: Range<usize>,
    results: Vec<Option<T>>,
    counters: Counters,
    now: SimTime,
    events: u64,
}

fn finish<T>(lane: Lane<T>) -> LaneOut<T> {
    // Drop the executor first: completed/aborted futures are gone, so
    // the lane core and result sink are uniquely held again.
    drop(lane.tasks);
    let core = Rc::try_unwrap(lane.core)
        .unwrap_or_else(|_| unreachable!("lane tasks done"))
        .into_inner();
    let results = Rc::try_unwrap(lane.results)
        .unwrap_or_else(|_| unreachable!("lane tasks done"))
        .into_inner();
    LaneOut {
        range: lane.range,
        results,
        counters: core.counters.clone(),
        now: core.q.now(),
        events: core.q.events_processed(),
    }
}

fn assemble<T>(cfg: &MachineConfig, outs: Vec<LaneOut<T>>) -> (Vec<Option<T>>, RunReport) {
    let n = cfg.nodes();
    let nlinks = cfg.topology.links();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut counters = Counters::default();
    let mut end = SimTime::ZERO;
    let mut events = 0u64;
    for out in outs {
        let start = out.range.start;
        for (i, r) in out.results.into_iter().enumerate() {
            results[start + i] = r;
        }
        counters.absorb(&out.counters);
        end = end.max(out.now);
        events += out.events;
    }
    let elapsed = end - SimTime::ZERO;
    let denom = elapsed.as_secs_f64().max(1e-30);
    let report = RunReport {
        machine: cfg.name.clone(),
        nodes: n,
        elapsed,
        messages: counters.messages,
        bytes: counters.bytes,
        flops: counters.flops,
        events,
        compute_fraction: counters.compute_time.as_secs_f64() / (n as f64 * denom),
        link_utilization: counters.link_busy.as_secs_f64() / (nlinks.max(1) as f64 * denom),
        unexpected_messages: counters.unexpected,
        faults: counters.faults,
    };
    (results, report)
}

/// Lane-runtime diagnostics for one sharded run: window count, event
/// throughput per lane, and cross-lane mailbox traffic. This is the
/// `HPCC_LANE_STATS` diagnostic promoted to a first-class value —
/// returned by [`crate::sim::Machine::run_sharded_stats`] and exportable
/// as [`hpcc_trace::names::DES_LANES`] track counters via
/// [`LaneStats::emit`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStats {
    /// Lanes the machine was split into (1 = legacy single-queue run).
    pub lanes: usize,
    /// Synchronization windows executed (0 on the legacy engine).
    pub rounds: u64,
    /// Events processed, summed over lanes.
    pub events: u64,
    /// Messages exchanged through the cross-lane mailboxes.
    pub mail_msgs: u64,
    /// Events processed by each lane, in lane order.
    pub per_lane_events: Vec<u64>,
}

impl LaneStats {
    /// Mean events per synchronization window — the conservative-parallel
    /// efficiency figure (higher = less barrier overhead per event).
    pub fn events_per_round(&self) -> f64 {
        self.events as f64 / self.rounds.max(1) as f64
    }

    /// Record the lane diagnostics as counters at `at_ns`: an aggregate
    /// `engine` track (rounds, events, mailbox traffic, events/round)
    /// plus one track per lane, all under
    /// [`hpcc_trace::names::DES_LANES`].
    pub fn emit(&self, rec: &dyn hpcc_trace::Recorder, at_ns: u64) {
        if !rec.is_enabled() {
            return;
        }
        let agg = rec.track(hpcc_trace::names::DES_LANES, "engine");
        rec.counter(agg, "lanes", at_ns, self.lanes as f64);
        rec.counter(agg, "rounds", at_ns, self.rounds as f64);
        rec.counter(agg, "events", at_ns, self.events as f64);
        rec.counter(agg, "mail_msgs", at_ns, self.mail_msgs as f64);
        rec.counter(agg, "events_per_round", at_ns, self.events_per_round());
        for (lane, &ev) in self.per_lane_events.iter().enumerate() {
            let t = rec.track(hpcc_trace::names::DES_LANES, &format!("lane {lane}"));
            rec.counter(t, "events", at_ns, ev as f64);
        }
    }
}

/// Entry point used by [`crate::sim::Machine`]: run `program` on every
/// node across `lanes` event-engine shards.
pub(crate) fn run<T, F, Fut>(
    cfg: &MachineConfig,
    lanes: usize,
    plan: &FaultPlan,
    program: &F,
) -> (Vec<Option<T>>, RunReport, LaneStats)
where
    T: Send + 'static,
    F: Fn(Node) -> Fut + Sync,
    Fut: Future<Output = T> + 'static,
{
    let map = LaneMap::new(&cfg.topology, lanes);
    let lanes = map.lanes();
    let lookahead = cfg.net.lookahead();
    let crash = crash_times(cfg.nodes(), plan);
    let link_owner = if plan
        .events()
        .iter()
        .any(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
    {
        link_owners(&cfg.topology, &map)
    } else {
        Vec::new()
    };
    let shared = Shared::new(lanes);
    let mode = if lanes > 1 {
        pick_mode()
    } else {
        LaneMode::Inline
    };
    let outs = match mode {
        LaneMode::Inline => run_inline(
            cfg,
            &map,
            &crash,
            &link_owner,
            plan,
            lanes,
            lookahead,
            &shared,
            program,
        ),
        LaneMode::Threads => run_threads(
            cfg,
            &map,
            &crash,
            &link_owner,
            plan,
            lanes,
            lookahead,
            &shared,
            program,
        ),
    };
    let stats = LaneStats {
        lanes,
        rounds: shared.rounds.load(Ordering::Relaxed),
        events: outs.iter().map(|o| o.events).sum(),
        mail_msgs: shared.mail_msgs.load(Ordering::Relaxed),
        per_lane_events: outs.iter().map(|o| o.events).collect(),
    };
    if std::env::var("HPCC_LANE_STATS").is_ok() {
        eprintln!(
            "[lane-stats] lanes={} rounds={} events={} mail={} ev/round={:.1}",
            stats.lanes,
            stats.rounds,
            stats.events,
            stats.mail_msgs,
            stats.events_per_round()
        );
    }
    let (results, report) = assemble(cfg, outs);
    (results, report, stats)
}

#[allow(clippy::too_many_arguments)]
fn run_inline<T, F, Fut>(
    cfg: &MachineConfig,
    map: &LaneMap,
    crash: &std::sync::Arc<[SimTime]>,
    link_owner: &[usize],
    plan: &FaultPlan,
    lanes: usize,
    lookahead: Dur,
    shared: &Shared,
    program: &F,
) -> Vec<LaneOut<T>>
where
    T: 'static,
    F: Fn(Node) -> Fut,
    Fut: Future<Output = T> + 'static,
{
    let mut ls: Vec<Lane<T>> = (0..lanes)
        .map(|l| setup(cfg, map, crash, link_owner, plan, l, program))
        .collect();
    for l in &mut ls {
        l.flush(shared);
    }
    for l in &mut ls {
        l.drain(shared);
        l.publish(shared);
    }
    loop {
        match decide(shared, lookahead) {
            Decision::Done => break,
            Decision::Deadlock => {
                let stuck: Vec<String> = ls.iter().flat_map(|l| l.stuck_report()).collect();
                let live = ls.iter().map(|l| l.tasks.live()).sum();
                deadlock_panic(&cfg.name, live, &stuck);
            }
            Decision::Orphans => {
                for l in &mut ls {
                    l.abort_orphans();
                    l.publish(shared);
                }
            }
            Decision::Run(horizon) => {
                shared.rounds.fetch_add(1, Ordering::Relaxed);
                for l in &mut ls {
                    l.process_window(horizon);
                    l.flush(shared);
                }
                for l in &mut ls {
                    l.drain(shared);
                    l.publish(shared);
                }
            }
        }
    }
    ls.into_iter().map(finish).collect()
}

#[allow(clippy::too_many_arguments)]
fn run_threads<T, F, Fut>(
    cfg: &MachineConfig,
    map: &LaneMap,
    crash: &std::sync::Arc<[SimTime]>,
    link_owner: &[usize],
    plan: &FaultPlan,
    lanes: usize,
    lookahead: Dur,
    shared: &Shared,
    program: &F,
) -> Vec<LaneOut<T>>
where
    T: Send + 'static,
    F: Fn(Node) -> Fut + Sync,
    Fut: Future<Output = T> + 'static,
{
    let barrier = Barrier::new(lanes);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..lanes)
            .map(|lane| {
                let (barrier, shared, link_owner) = (&barrier, shared, link_owner);
                s.spawn(move || {
                    let mut l: Lane<T> = setup(cfg, map, crash, link_owner, plan, lane, program);
                    // Round structure: work -> flush -> barrier ->
                    // drain + publish -> barrier -> decide. Writes to
                    // `shared` happen strictly between the two barriers,
                    // reads strictly after the second, so every lane
                    // decides on the same snapshot.
                    l.flush(shared);
                    barrier.wait();
                    l.drain(shared);
                    l.publish(shared);
                    barrier.wait();
                    loop {
                        match decide(shared, lookahead) {
                            Decision::Done => break,
                            Decision::Deadlock => {
                                shared
                                    .stuck
                                    .lock()
                                    .expect("stuck list")
                                    .extend(l.stuck_report());
                                let leader = barrier.wait().is_leader();
                                if leader {
                                    let stuck =
                                        std::mem::take(&mut *shared.stuck.lock().expect("stuck"));
                                    let live =
                                        shared.live.iter().map(|a| a.load(Ordering::SeqCst)).sum();
                                    deadlock_panic(&cfg.name, live, &stuck);
                                }
                                break;
                            }
                            Decision::Orphans => {
                                l.abort_orphans();
                                barrier.wait();
                                l.publish(shared);
                                barrier.wait();
                            }
                            Decision::Run(horizon) => {
                                if lane == 0 {
                                    shared.rounds.fetch_add(1, Ordering::Relaxed);
                                }
                                l.process_window(horizon);
                                l.flush(shared);
                                barrier.wait();
                                l.drain(shared);
                                l.publish(shared);
                                barrier.wait();
                            }
                        }
                    }
                    finish(l)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    })
}
