//! Criterion benches for the `netsim` exhibit family (T4-5a/b/c): the
//! consortium staging workload, backbone load sweeps, and the max-min
//! fair-share solver itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::rng::Rng;
use des::time::SimTime;
use nren_netsim::{maxmin_rates, topologies, workload, FlowSim, LinkClass, TransferSpec};
use std::hint::black_box;

fn bench_consortium_staging(c: &mut Criterion) {
    let net = topologies::delta_consortium();
    let delta = net.site(topologies::DELTA_SITE).unwrap();
    let partners = topologies::partner_sites(&net);
    let mut g = c.benchmark_group("netsim/consortium");
    for mb in [10u64, 100] {
        g.bench_with_input(BenchmarkId::new("stage_all", mb), &mb, |bn, &mb| {
            bn.iter(|| {
                let (staging, _) = workload::stage_and_retrieve(&partners, delta, mb << 20, 0);
                let sim = FlowSim::new(&net);
                let recs = sim.run(staging);
                black_box(recs.iter().map(|r| r.finished).max())
            })
        });
    }
    g.finish();
}

fn bench_backbone_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/backbone");
    for (label, class) in [("t1", LinkClass::T1), ("t3", LinkClass::T3)] {
        let net = topologies::nsfnet(class);
        g.bench_with_input(
            BenchmarkId::new("poisson_300flows", label),
            &label,
            |bn, _| {
                bn.iter(|| {
                    let mut rng = Rng::new(42);
                    let specs = workload::poisson_traffic(&net, &mut rng, 3.0, 2e6, 100.0);
                    let sim = FlowSim::new(&net);
                    black_box(sim.run(specs).len())
                })
            },
        );
    }
    g.finish();
}

fn bench_maxmin_solver(c: &mut Criterion) {
    // The allocator is the inner loop of every network event; measure it
    // directly at increasing flow counts on the T3 backbone.
    let net = topologies::nsfnet(LinkClass::T3);
    let mut rng = Rng::new(7);
    let mut g = c.benchmark_group("netsim/maxmin");
    for nflows in [16usize, 64, 256] {
        // Pre-compute routes for random pairs.
        let routes: Vec<Vec<usize>> = (0..nflows)
            .map(|_| {
                let a = rng.below(net.sites() as u64) as usize;
                let mut b = rng.below(net.sites() as u64) as usize;
                while b == a {
                    b = rng.below(net.sites() as u64) as usize;
                }
                net.route(a, b).unwrap().dirs
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("flows", nflows), &nflows, |bn, _| {
            bn.iter(|| {
                let flows: Vec<(&[usize], f64)> = routes
                    .iter()
                    .map(|r| (r.as_slice(), f64::INFINITY))
                    .collect();
                black_box(maxmin_rates(&net, &flows))
            })
        });
    }
    g.finish();
}

fn bench_window_ablation(c: &mut Criterion) {
    // The CASA TCP-window story as a bench: simulate the same 1 GB flow
    // at different window sizes.
    let net = topologies::casa_testbed();
    let cal = net.site(topologies::DELTA_SITE).unwrap();
    let lanl = net.site("Los Alamos").unwrap();
    let mut g = c.benchmark_group("netsim/casa_window");
    for w in [64u64 << 10, 1 << 20, 8 << 20] {
        g.bench_with_input(BenchmarkId::new("window", w >> 10), &w, |bn, &w| {
            bn.iter(|| {
                let sim = FlowSim::new(&net);
                let recs = sim.run(vec![
                    TransferSpec::new(cal, lanl, 1 << 30, SimTime::ZERO).with_window(w)
                ]);
                black_box(recs[0].duration())
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = network;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_consortium_staging,
    bench_backbone_load,
    bench_maxmin_solver,
    bench_window_ablation
);
criterion_main!(network);
