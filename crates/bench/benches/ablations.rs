//! Criterion group `ablations` (exhibit AB-1 and T4-4e): the design
//! choices DESIGN.md calls out, each measured against its alternative —
//! wormhole vs store-and-forward switching, van de Geijn vs binomial
//! broadcast shape, FCFS vs backfill scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delta_mesh::sched::{consortium_workload, run as sched_run, Policy};
use delta_mesh::{presets, Comm, Machine};
use hpcc_kernels::sim::lu2d;
use std::hint::black_box;

fn bench_switching(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations/switching");
    for (label, cfg) in [
        ("wormhole", presets::delta(8, 8)),
        ("store_fwd", presets::delta_store_and_forward(8, 8)),
    ] {
        let machine = Machine::new(cfg);
        g.bench_with_input(BenchmarkId::new("lu_n2000", label), &label, |bn, _| {
            bn.iter(|| black_box(lu2d::run(&machine, 2_000, 32).gflops))
        });
        g.bench_with_input(BenchmarkId::new("bcast_1mb", label), &label, |bn, _| {
            bn.iter(|| {
                let (_, r) = machine.run(|node| async move {
                    let comm = Comm::world(&node);
                    comm.bcast_virtual(0, 1 << 20).await;
                });
                black_box(r.elapsed)
            })
        });
    }
    g.finish();
}

fn bench_broadcast_shape(c: &mut Criterion) {
    // Below vs above the long-message threshold: same total volume.
    let machine = Machine::new(presets::delta(8, 8));
    let mut g = c.benchmark_group("ablations/bcast_shape");
    g.bench_function("tree_32x32KB", |bn| {
        bn.iter(|| {
            let (_, r) = machine.run(|node| async move {
                let comm = Comm::world(&node);
                for _ in 0..32 {
                    comm.bcast_virtual(0, 32 * 1024 - 1).await;
                }
            });
            black_box(r.elapsed)
        })
    });
    g.bench_function("vdg_1x1MB", |bn| {
        bn.iter(|| {
            let (_, r) = machine.run(|node| async move {
                let comm = Comm::world(&node);
                comm.bcast_virtual(0, 32 * (32 * 1024 - 1)).await;
            });
            black_box(r.elapsed)
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let jobs = consortium_workload(150, 14, 120.0, 3);
    let mut g = c.benchmark_group("ablations/scheduler");
    for policy in [Policy::Fcfs, Policy::Backfill] {
        g.bench_with_input(
            BenchmarkId::new("policy", format!("{policy:?}")),
            &policy,
            |bn, &policy| {
                bn.iter(|| {
                    let r = sched_run(16, 33, jobs.clone(), policy);
                    black_box((r.utilization, r.makespan))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_switching,
    bench_broadcast_shape,
    bench_scheduler
);
criterion_main!(ablations);
