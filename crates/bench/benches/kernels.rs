//! Criterion benches for the host-side Grand Challenge kernels (exhibit
//! GC-1): each kernel sequential vs Rayon, the figure the ASTA component
//! motivates. One group per kernel family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use des::rng::Rng;
use hpcc_kernels::{cfd, cg, fft, gemm, lu, mat::Mat, matmul, nbody, shallow};
use std::hint::black_box;

/// Thread counts for the scaling sweeps: 1, 2, 4, ... up to the machine.
fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut ts = vec![1];
    while ts.last().unwrap() * 2 <= max {
        ts.push(ts.last().unwrap() * 2);
    }
    if *ts.last().unwrap() != max {
        ts.push(max);
    }
    ts
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/matmul");
    for n in [64usize, 128, 256] {
        let mut rng = Rng::new(1);
        let a = Mat::random(n, n, &mut rng);
        let b = Mat::random(n, n, &mut rng);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bn, _| {
            bn.iter(|| black_box(matmul::matmul_naive(&a, &b)))
        });
        g.bench_with_input(BenchmarkId::new("blocked48", n), &n, |bn, _| {
            bn.iter(|| black_box(matmul::matmul_blocked(&a, &b, 48)))
        });
        g.bench_with_input(BenchmarkId::new("rayon", n), &n, |bn, _| {
            bn.iter(|| black_box(matmul::matmul_par(&a, &b)))
        });
    }
    g.finish();
}

/// The packed engine vs the cache-blocked baseline, then the parallel
/// path across the thread sweep — the GC-1 "who scales" series for
/// BLAS3.
fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/gemm");
    for n in [256usize, 512, 1024] {
        let mut rng = Rng::new(1);
        let a = Mat::random(n, n, &mut rng);
        let b = Mat::random(n, n, &mut rng);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        if n <= 512 {
            g.bench_with_input(BenchmarkId::new("blocked48", n), &n, |bn, _| {
                bn.iter(|| black_box(matmul::matmul_blocked(&a, &b, 48)))
            });
        }
        g.bench_with_input(BenchmarkId::new("packed_seq", n), &n, |bn, _| {
            bn.iter(|| black_box(gemm::gemm(&a, &b)))
        });
        for t in thread_sweep() {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("pool");
            g.bench_with_input(
                BenchmarkId::new(format!("packed_par_t{t}"), n),
                &n,
                |bn, _| bn.iter(|| pool.install(|| black_box(gemm::gemm_par(&a, &b)))),
            );
        }
    }
    g.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/lu");
    for n in [128usize, 256, 512, 1024] {
        let mut rng = Rng::new(2);
        let a = Mat::random(n, n, &mut rng);
        let nb = if n <= 256 { 16 } else { 64 };
        g.throughput(Throughput::Elements(lu::linpack_flops(n) as u64));
        g.bench_with_input(BenchmarkId::new(format!("seq_nb{nb}"), n), &n, |bn, _| {
            bn.iter(|| {
                let mut f = a.clone();
                black_box(lu::lu_factor(&mut f, nb).unwrap())
            })
        });
        for t in thread_sweep() {
            if t == 1 {
                continue; // the seq row above is the 1-thread point
            }
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("pool");
            g.bench_with_input(
                BenchmarkId::new(format!("rayon_nb{nb}_t{t}"), n),
                &n,
                |bn, _| {
                    bn.iter(|| {
                        pool.install(|| {
                            let mut f = a.clone();
                            black_box(lu::lu_factor_par(&mut f, nb).unwrap())
                        })
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/cfd");
    for n in [128usize, 256] {
        let rhs = cfd::Grid::new(n);
        g.bench_with_input(BenchmarkId::new("jacobi50_seq", n), &n, |bn, _| {
            bn.iter(|| {
                let mut u = cfd::Grid::new(n);
                u.set_boundary(|x, y| x + y);
                black_box(cfd::jacobi(&mut u, &rhs, 0.0, 50, false))
            })
        });
        g.bench_with_input(BenchmarkId::new("jacobi50_rayon", n), &n, |bn, _| {
            bn.iter(|| {
                let mut u = cfd::Grid::new(n);
                u.set_boundary(|x, y| x + y);
                black_box(cfd::jacobi(&mut u, &rhs, 0.0, 50, true))
            })
        });
        g.bench_with_input(BenchmarkId::new("sor50", n), &n, |bn, _| {
            bn.iter(|| {
                let mut u = cfd::Grid::new(n);
                u.set_boundary(|x, y| x + y);
                black_box(cfd::sor(&mut u, &rhs, None, 0.0, 50))
            })
        });
    }
    g.finish();
}

fn bench_shallow(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/shallow");
    for m in [64usize, 192] {
        g.throughput(Throughput::Elements((10.0 * shallow::step_flops(m)) as u64));
        g.bench_with_input(BenchmarkId::new("steps10_seq", m), &m, |bn, _| {
            bn.iter(|| {
                let mut sw = shallow::Shallow::new(m);
                sw.run(10, false);
                black_box(sw.total_mass())
            })
        });
        g.bench_with_input(BenchmarkId::new("steps10_rayon", m), &m, |bn, _| {
            bn.iter(|| {
                let mut sw = shallow::Shallow::new(m);
                sw.run(10, true);
                black_box(sw.total_mass())
            })
        });
    }
    g.finish();
}

fn bench_nbody(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/nbody");
    for n in [500usize, 2000] {
        let bodies = nbody::random_cluster(n, 3);
        g.throughput(Throughput::Elements(nbody::direct_flops(n) as u64));
        g.bench_with_input(BenchmarkId::new("direct_seq", n), &n, |bn, _| {
            bn.iter(|| black_box(nbody::accel_direct(&bodies, 0.05)))
        });
        g.bench_with_input(BenchmarkId::new("direct_rayon", n), &n, |bn, _| {
            bn.iter(|| black_box(nbody::accel_direct_par(&bodies, 0.05)))
        });
        g.bench_with_input(BenchmarkId::new("barnes_hut", n), &n, |bn, _| {
            bn.iter(|| black_box(nbody::accel_barnes_hut(&bodies, 0.5, 0.05)))
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/fft");
    for logn in [12usize, 16] {
        let n = 1 << logn;
        let orig: Vec<fft::Cpx> = (0..n)
            .map(|i| fft::Cpx::new((i as f64 * 0.01).sin(), 0.0))
            .collect();
        g.throughput(Throughput::Elements(fft::fft_flops(n) as u64));
        g.bench_with_input(BenchmarkId::new("fft1d", n), &n, |bn, _| {
            bn.iter(|| {
                let mut d = orig.clone();
                fft::fft(&mut d);
                black_box(d)
            })
        });
    }
    // 2-D: rows sequential vs Rayon.
    let n = 256;
    let orig: Vec<fft::Cpx> = (0..n * n)
        .map(|i| fft::Cpx::new((i % 7) as f64, 0.0))
        .collect();
    g.bench_function("fft2d_256_seq", |bn| {
        bn.iter(|| {
            let mut d = orig.clone();
            fft::fft2d(&mut d, n, false);
            black_box(d)
        })
    });
    g.bench_function("fft2d_256_rayon", |bn| {
        bn.iter(|| {
            let mut d = orig.clone();
            fft::fft2d(&mut d, n, true);
            black_box(d)
        })
    });
    g.finish();
}

fn bench_cg(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/cg");
    for gsz in [48usize, 96] {
        let a = cg::Csr::poisson2d(gsz);
        let b = vec![1.0; a.n()];
        g.bench_with_input(BenchmarkId::new("cg_seq", gsz), &gsz, |bn, _| {
            bn.iter(|| {
                let mut x = vec![0.0; a.n()];
                black_box(cg::cg(&a, &b, &mut x, 1e-8, 10_000, false))
            })
        });
        g.bench_with_input(BenchmarkId::new("cg_rayon", gsz), &gsz, |bn, _| {
            bn.iter(|| {
                let mut x = vec![0.0; a.n()];
                black_box(cg::cg(&a, &b, &mut x, 1e-8, 10_000, true))
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_matmul,
    bench_gemm,
    bench_lu,
    bench_stencil,
    bench_shallow,
    bench_nbody,
    bench_fft,
    bench_cg
);
criterion_main!(kernels);
