//! Criterion benches for the simulated-machine exhibits:
//! `sim_linpack` (T4-4b, F-T4-4c), `sim_machines` (T4-4a, F-T4-4d),
//! and the ASTA simulated applications (stencil, FFT). The quantities
//! Criterion measures here are *host* costs of running the simulator;
//! the virtual-time results themselves are printed by the `report`
//! binary and checked by integration tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delta_mesh::{presets, Comm, Machine};
use hpcc_kernels::sim::{fftsim, lu1d, lu2d, stencil};
use std::hint::black_box;

fn bench_sim_linpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_linpack");
    // Timing model at growing machine sizes (fixed local problem).
    for (r, cnum, n) in [(4usize, 4usize, 2_000usize), (8, 8, 4_000), (8, 16, 5_600)] {
        let machine = Machine::new(presets::delta(r, cnum));
        let nodes = machine.config().nodes();
        g.bench_with_input(
            BenchmarkId::new("lu2d_model", format!("{nodes}n_{n}")),
            &n,
            |bn, &n| bn.iter(|| black_box(lu2d::run(&machine, n, 32).gflops)),
        );
    }
    // Verified real-arithmetic distributed LU (small).
    let machine = Machine::new(presets::delta(2, 2));
    g.bench_function("lu1d_verified_n48", |bn| {
        bn.iter(|| {
            let r = lu1d::run(&machine, 48, 4, 7);
            assert!(r.residual < 16.0);
            black_box(r.gflops)
        })
    });
    g.finish();
}

fn bench_sim_machines(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_machines");
    // The Touchstone series at one problem size, 64 nodes each.
    let n = 4_000;
    for (name, machine) in [
        ("ipsc860_64", Machine::new(presets::ipsc860(6))),
        ("delta_64", Machine::new(presets::delta(8, 8))),
        ("paragon_64", Machine::new(presets::paragon(8, 8))),
        ("ideal_64", Machine::new(presets::ideal(64))),
    ] {
        g.bench_function(name, |bn| {
            bn.iter(|| black_box(lu2d::run(&machine, n, 32).gflops))
        });
    }
    g.finish();
}

fn bench_sim_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_apps");
    let machine = Machine::new(presets::delta(4, 8));
    g.bench_function("stencil_model_512_10it", |bn| {
        bn.iter(|| black_box(stencil::run_model(&machine, 512, 10).gflops))
    });
    g.bench_function("stencil_verified_24_20it", |bn| {
        let m = Machine::new(presets::delta(2, 3));
        bn.iter(|| {
            let r = stencil::run_verified(&m, 24, 20);
            assert_eq!(r.max_error, Some(0.0));
            black_box(r.gflops)
        })
    });
    g.bench_function("fft_transpose_2e18", |bn| {
        bn.iter(|| black_box(fftsim::run(&machine, 1 << 18).gflops))
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    // Host cost of simulating the collective library at Delta scale —
    // the simulator's own performance envelope.
    let mut g = c.benchmark_group("sim_collectives");
    for (label, rows, cols) in [("64n", 8usize, 8usize), ("528n", 16, 33)] {
        let machine = Machine::new(presets::delta(rows, cols));
        g.bench_with_input(BenchmarkId::new("allreduce8B", label), &label, |bn, _| {
            bn.iter(|| {
                let (_, r) = machine.run(|node| async move {
                    let comm = Comm::world(&node);
                    comm.allreduce_sum(&[node.rank() as f64]).await;
                });
                black_box(r.elapsed)
            })
        });
        g.bench_with_input(BenchmarkId::new("bcast1MB", label), &label, |bn, _| {
            bn.iter(|| {
                let (_, r) = machine.run(|node| async move {
                    let comm = Comm::world(&node);
                    comm.bcast_virtual(0, 1 << 20).await;
                });
                black_box(r.elapsed)
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = simulator;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_sim_linpack,
    bench_sim_machines,
    bench_sim_apps,
    bench_collectives
);
criterion_main!(simulator);
