//! Criterion bench `program_model` (exhibits T4-2, T4-3a): regenerating
//! the program tables must be instantaneous and allocation-light — these
//! run inside every `report` invocation.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcc_core::{Agency, Component, FiscalYear, FundingTable};
use std::hint::black_box;

fn bench_program_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("program_model");
    g.bench_function("funding_table_build_and_totals", |bn| {
        bn.iter(|| {
            let t = FundingTable::fy1992_93();
            let a = t.total(FiscalYear::Fy1992);
            let b = t.total(FiscalYear::Fy1993);
            black_box((a, b, t.total_growth_pct()))
        })
    });
    g.bench_function("component_split", |bn| {
        let t = FundingTable::fy1992_93();
        bn.iter(|| {
            black_box(t.component_split(FiscalYear::Fy1993));
        })
    });
    g.bench_function("responsibilities_full_scan", |bn| {
        bn.iter(|| {
            let mut count = 0usize;
            for a in Agency::ALL {
                for comp in Component::ALL {
                    count += hpcc_core::responsibilities::activities(a, comp).len();
                }
            }
            black_box(count)
        })
    });
    g.bench_function("exhibit_registry_walk", |bn| {
        bn.iter(|| {
            black_box(
                hpcc_core::registry()
                    .iter()
                    .filter(|e| e.bench.is_some())
                    .count(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    name = program;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_program_model
);
criterion_main!(program);
