//! `hpcc-bench` — the evaluation harness: everything needed to regenerate
//! the paper's tables and figures.
//!
//! * [`exhibits`] builds each exhibit's reproduction as a printable
//!   report (used by the `report` binary, the integration tests, and
//!   EXPERIMENTS.md).
//! * `benches/` holds the Criterion groups named in the exhibit registry
//!   (`hpcc_core::exhibits`).

pub mod desperf;
pub mod exhibits;
pub mod netperf;
pub mod perf;
pub mod schedperf;
pub mod telemetry;
