//! Regenerate the paper's exhibits: `report <cmd>` or `report all`.
//!
//! Commands mirror `hpcc_core::exhibits` registry entries:
//! goals, responsibilities, funding, components, delta-peak,
//! delta-linpack, linpack-sweep, mpp-series, consortium-net,
//! nren-upgrade, casa, cas, grand-challenges, fft-scaling,
//! resilience (accepts `--smoke` for a fast sweep), index.

use hpcc_bench::{exhibits as ex, perf};

/// Measure the host kernels, print the table, and drop the machine-
/// readable snapshot next to the working directory.
fn bench_kernels() -> String {
    let rows = perf::snapshot();
    let json = perf::json(&rows);
    let path = "BENCH_kernels.json";
    match std::fs::write(path, &json) {
        Ok(()) => format!("{}\nwrote {path}", perf::table(&rows)),
        Err(e) => format!("{}\ncould not write {path}: {e}", perf::table(&rows)),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("index");
    let smoke = args.iter().any(|a| a == "--smoke");

    let run = |name: &str| -> Option<String> {
        Some(match name {
            "goals" => ex::goals(),
            "responsibilities" => ex::responsibilities(),
            "funding" => ex::funding(),
            "components" => ex::components(),
            "delta-peak" => ex::delta_peak(),
            "delta-linpack" => ex::delta_linpack(),
            "linpack-sweep" => ex::linpack_sweep(),
            "mpp-series" => ex::mpp_series(),
            "consortium-net" => ex::consortium_net(),
            "nren-upgrade" => ex::nren_upgrade(),
            "casa" => ex::casa(),
            "cas" => ex::cas(),
            "grand-challenges" => ex::grand_challenges(),
            "fft-scaling" => ex::fft_scaling(),
            "scheduler" => ex::scheduler(),
            "resilience" => ex::resilience(smoke),
            "ablations" => ex::ablations(),
            "kernel-profile" => ex::kernel_profile(),
            "timeline" => ex::timeline(),
            "bench-kernels" => bench_kernels(),
            "index" => ex::index(),
            _ => return None,
        })
    };

    if cmd == "all" {
        for name in [
            "index",
            "goals",
            "responsibilities",
            "funding",
            "components",
            "delta-peak",
            "delta-linpack",
            "linpack-sweep",
            "mpp-series",
            "consortium-net",
            "nren-upgrade",
            "casa",
            "cas",
            "grand-challenges",
            "fft-scaling",
            "scheduler",
            "resilience",
            "ablations",
            "kernel-profile",
            "timeline",
        ] {
            println!("=== {name} ===\n");
            println!("{}", run(name).unwrap());
        }
    } else {
        match run(cmd) {
            Some(s) => println!("{s}"),
            None => {
                eprintln!(
                    "unknown exhibit command '{cmd}'; try: all, index, goals, \
                     responsibilities, funding, components, delta-peak, delta-linpack, \
                     linpack-sweep, mpp-series, consortium-net, nren-upgrade, casa, cas, \
                     grand-challenges, fft-scaling, \
                     scheduler, resilience [--smoke], ablations, kernel-profile, timeline, \
                     bench-kernels"
                );
                std::process::exit(2);
            }
        }
    }
}
