//! Regenerate the paper's exhibits: `report <cmd>` or `report all`.
//!
//! Commands mirror `hpcc_core::exhibits` registry entries:
//! goals, responsibilities, funding, components, delta-peak,
//! delta-linpack, linpack-sweep, mpp-series, consortium-net,
//! nren-upgrade, casa, cas, grand-challenges, fft-scaling,
//! resilience (accepts `--smoke` for a fast sweep),
//! trace (accepts `--smoke`; writes TRACE_chrome.json +
//! TRACE_summary.txt), telemetry (accepts `--smoke`; writes
//! BENCH_telemetry.json), prom-sample (prints one `/metrics`
//! exposition for lint checks), index.
//!
//! `report all --out <path>` writes the concatenated exhibits to a file
//! instead of stdout (used to regenerate `report_all.txt`).

use hpcc_bench::{desperf, exhibits as ex, netperf, perf, schedperf, telemetry};

/// Measure the host kernels, enforce the perf gates (lu_factor_par is
/// never slower than lu_factor; the v2 SIMD kernels hold their speedups
/// — see `perf::gates`), print the table, and drop the machine-readable
/// snapshot next to the working directory. `--smoke` shrinks every size
/// for CI.
fn bench_kernels(smoke: bool) -> String {
    let rows = perf::snapshot(smoke);
    let gates = perf::gates(&rows);
    let json = perf::json(&rows);
    let path = "BENCH_kernels.json";
    match std::fs::write(path, &json) {
        Ok(()) => format!("{}\n{gates}\nwrote {path}", perf::table(&rows)),
        Err(e) => format!(
            "{}\n{gates}\ncould not write {path}: {e}",
            perf::table(&rows)
        ),
    }
}

/// Measure DES engine throughput across mesh sizes and lane counts,
/// print the table, and drop the machine-readable snapshot.
fn bench_des(smoke: bool) -> String {
    let rows = desperf::snapshot(smoke);
    let json = desperf::json(&rows);
    let path = "BENCH_des.json";
    match std::fs::write(path, &json) {
        Ok(()) => format!("{}\nwrote {path}", desperf::table(&rows)),
        Err(e) => format!("{}\ncould not write {path}: {e}", desperf::table(&rows)),
    }
}

/// Drive the scheduler service through the steady / overload / faulted
/// scenarios, print the table, and drop the machine-readable snapshot.
/// `--smoke` shrinks the streams and runs the batch-equivalence gate.
fn bench_sched(smoke: bool) -> String {
    let rows = schedperf::snapshot(smoke);
    let json = schedperf::json(&rows);
    let path = "BENCH_sched.json";
    match std::fs::write(path, &json) {
        Ok(()) => format!("{}\nwrote {path}", schedperf::table(&rows)),
        Err(e) => format!("{}\ncould not write {path}: {e}", schedperf::table(&rows)),
    }
}

/// Replay the WAN upgrade story on modern fabrics and sweep the flow
/// engine to 1M concurrent flows, print the tables, and drop the
/// machine-readable snapshot. `--smoke` shrinks the scales and runs
/// every resolve through the incremental-vs-reference equivalence gate.
fn bench_net(smoke: bool) -> String {
    let rows = netperf::snapshot(smoke);
    let json = netperf::json(&rows);
    let path = "BENCH_net.json";
    match std::fs::write(path, &json) {
        Ok(()) => format!("{}\nwrote {path}", netperf::table(&rows)),
        Err(e) => format!("{}\ncould not write {path}: {e}", netperf::table(&rows)),
    }
}

/// Exhibit OBS-2: drive the streaming recorder through the synthetic
/// pump and the faulted engine scenarios with live HTTP scrapers,
/// enforce the gates (throughput floor, balanced ledgers, bit-identity,
/// overhead budget), print the table, and drop the machine-readable
/// snapshot. `--smoke` shrinks every scenario for CI.
fn bench_telemetry(smoke: bool) -> String {
    let rows = telemetry::snapshot(smoke);
    let gates = telemetry::gates(&rows, smoke);
    let json = telemetry::json(&rows);
    let path = "BENCH_telemetry.json";
    match std::fs::write(path, &json) {
        Ok(()) => format!("{}\n{gates}\nwrote {path}", telemetry::table(&rows)),
        Err(e) => format!(
            "{}\n{gates}\ncould not write {path}: {e}",
            telemetry::table(&rows)
        ),
    }
}

/// Print one deterministic `/metrics` exposition from a small recorded
/// scenario — exactly what a live `TelemetryServer` would serve. CI
/// lints this output for Prometheus text-format essentials.
fn prom_sample() -> String {
    use hpcc_trace::{names, Recorder, StreamRecorder};
    let rec = StreamRecorder::new();
    let compute = rec.track(names::MESH_NODES, "node 0");
    let solver = rec.track(names::WAN_SOLVER, "engine");
    let mut t = 0u64;
    for i in 0u64..64 {
        let dur = 1_000 + i * i * 500;
        rec.span(compute, "compute", "dgefa panel", t, t + dur);
        t += dur + 250;
    }
    rec.counter(solver, "full_resolves", t, 17.0);
    rec.counter(solver, "dirty", t, 3.0);
    rec.instant(compute, "fault", "node crash", t);
    rec.prometheus_text()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("index");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let run = |name: &str| -> Option<String> {
        Some(match name {
            "goals" => ex::goals(),
            "responsibilities" => ex::responsibilities(),
            "funding" => ex::funding(),
            "components" => ex::components(),
            "delta-peak" => ex::delta_peak(),
            "delta-linpack" => ex::delta_linpack(),
            "linpack-sweep" => ex::linpack_sweep(),
            "mpp-series" => ex::mpp_series(),
            "consortium-net" => ex::consortium_net(),
            "nren-upgrade" => ex::nren_upgrade(),
            "casa" => ex::casa(),
            "cas" => ex::cas(),
            "grand-challenges" => ex::grand_challenges(),
            "fft-scaling" => ex::fft_scaling(),
            "scheduler" => ex::scheduler(),
            "sched-service" => ex::sched_service(),
            "resilience" => ex::resilience(smoke),
            "trace" => ex::trace(smoke),
            "ablations" => ex::ablations(),
            "kernel-profile" => ex::kernel_profile(),
            "timeline" => ex::timeline(),
            "bench-kernels" => bench_kernels(smoke),
            "bench-des" => bench_des(smoke),
            "bench-sched" => bench_sched(smoke),
            "bench-net" => bench_net(smoke),
            "telemetry" => bench_telemetry(smoke),
            "prom-sample" => prom_sample(),
            "index" => ex::index(),
            _ => return None,
        })
    };

    if cmd == "all" {
        // `trace` is excluded (it writes artifact files; same precedent
        // as `bench-kernels` and `bench-des`).
        let mut buf = String::new();
        for name in [
            "index",
            "goals",
            "responsibilities",
            "funding",
            "components",
            "delta-peak",
            "delta-linpack",
            "linpack-sweep",
            "mpp-series",
            "consortium-net",
            "nren-upgrade",
            "casa",
            "cas",
            "grand-challenges",
            "fft-scaling",
            "scheduler",
            "sched-service",
            "resilience",
            "ablations",
            "kernel-profile",
            "timeline",
        ] {
            buf.push_str(&format!("=== {name} ===\n\n{}\n", run(name).unwrap()));
        }
        match out_path {
            Some(path) => match std::fs::write(&path, &buf) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    std::process::exit(1);
                }
            },
            None => print!("{buf}"),
        }
    } else {
        match run(cmd) {
            Some(s) => println!("{s}"),
            None => {
                eprintln!(
                    "unknown exhibit command '{cmd}'; try: all [--out <path>], index, goals, \
                     responsibilities, funding, components, delta-peak, delta-linpack, \
                     linpack-sweep, mpp-series, consortium-net, nren-upgrade, casa, cas, \
                     grand-challenges, fft-scaling, \
                     scheduler, sched-service, resilience [--smoke], trace [--smoke], \
                     ablations, kernel-profile, timeline, bench-kernels [--smoke], \
                     bench-des [--smoke], bench-sched [--smoke], bench-net [--smoke], \
                     telemetry [--smoke], prom-sample"
                );
                std::process::exit(2);
            }
        }
    }
}
