//! Calibration helper: sweep LU panel widths on the 528-node Delta.
use delta_mesh::{presets, Machine};
use hpcc_kernels::sim::lu2d;

fn main() {
    let machine = Machine::new(presets::delta_528());
    for nb in [32usize, 48, 64, 96, 128, 160, 200] {
        let r = lu2d::run(&machine, 25_000, nb);
        println!(
            "nb={nb:4}  {:6.2} GFLOPS  eff {:4.1}%  t={:5.0}s  msgs={}",
            r.gflops,
            r.efficiency * 100.0,
            r.seconds,
            r.report.messages
        );
    }
}
