//! Live-telemetry service benchmark (exhibit OBS-2): the streaming
//! recorder and its HTTP front door under load. The `report telemetry`
//! command prints the table and writes `BENCH_telemetry.json`; `--smoke`
//! shrinks the scenarios for CI and (like every bench) asserts the gates
//! in-exhibit:
//!
//! * the synthetic pump sustains the target recorder events/sec with
//!   four concurrent `/metrics` + `/trace` scrapers attached,
//! * every scenario's accounting ledger balances exactly — an event is
//!   aggregated once and is in the ring once (retained, active, or
//!   counted as evicted); nothing is silently dropped,
//! * recorded engine runs are bit-identical to their NullRecorder
//!   twins (the pure-observer contract, checked on the full `Debug`
//!   rendering of results and reports),
//! * recording overhead vs the NullRecorder baseline stays within 10%
//!   for the metrics regime (counters + coarse lifecycle spans: the
//!   scheduler, the WAN solver, the sharded lane diagnostics). The
//!   trace regime — LU-2D emitting a span per message on a simulator
//!   whose events cost ~200ns — pays per event by design and is
//!   reported and bounded (≤2.5x) rather than held to the 10% budget.
//!
//! Scenarios: a synthetic span pump (throughput headline), faulted
//! LU-2D on the mesh, the multi-tenant scheduler service under MTBF
//! crashes, a WAN transfer through a link outage, and the sharded DES
//! runtime exporting its lane diagnostics as first-class
//! [`hpcc_trace::names::DES_LANES`] counters.

use delta_mesh::sched::{consortium_workload, run_recorded, Policy};
use delta_mesh::{presets, FaultKind, FaultPlan, Kernel, Machine, MtbfModel, Node};
use des::time::{Dur, SimTime};
use hpcc_kernels::sim::lu2d;
use hpcc_trace::{names, NullRecorder, Recorder, StreamRecorder, TelemetryServer};
use nren_netsim::{topologies, FlowSim, LinkFault};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One measured scenario.
pub struct TelemetryRow {
    pub scenario: &'static str,
    /// Recorder events the scenario emitted.
    pub events: u64,
    /// Wall time of the recorded run, milliseconds.
    pub wall_ms: f64,
    /// Recorder events per wall second — the pump's figure of merit.
    pub events_per_sec: f64,
    /// Concurrent HTTP scrapers attached during the recorded run.
    pub scrapers: usize,
    /// Scrape round-trips completed across all scrapers.
    pub scrapes: u64,
    pub scrape_p50_ms: f64,
    pub scrape_p99_ms: f64,
    /// Ring-tail events evicted past the retention window (counted
    /// drops — the only place the recorder is allowed to lose data).
    pub ring_evicted: u64,
    /// Ledger imbalance: events that are neither aggregated nor
    /// accounted for in the ring. Must be zero.
    pub unaccounted: u64,
    /// Recorded-vs-NullRecorder wall overhead, percent (engine
    /// scenarios; 0 for the pump, which has no unrecorded twin).
    pub overhead_pct: f64,
    /// Recorded run produced bit-identical results to the unrecorded
    /// one (`true` for the pump, which simulates nothing).
    pub identical: bool,
}

/// Blocking GET against the telemetry server; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut sock = TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        sock,
        "GET {path} HTTP/1.1\r\nHost: hpcc\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    sock.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Latencies (ms) of all scrape round-trips, collected across threads.
struct ScrapeLog {
    lat_ms: Mutex<Vec<f64>>,
}

impl ScrapeLog {
    fn new() -> ScrapeLog {
        ScrapeLog {
            lat_ms: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, ms: f64) {
        self.lat_ms.lock().expect("scrape log").push(ms);
    }

    /// (scrapes, p50 ms, p99 ms) with `Histogram`'s ceil-rank rule.
    fn stats(&self) -> (u64, f64, f64) {
        let mut v = self.lat_ms.lock().expect("scrape log").clone();
        if v.is_empty() {
            return (0, 0.0, 0.0);
        }
        v.sort_by(f64::total_cmp);
        let q = |p: f64| v[((p * v.len() as f64).ceil() as usize).max(1) - 1];
        (v.len() as u64, q(0.5), q(0.99))
    }
}

/// Run `work` with `nscrapers` HTTP readers polling `/metrics` and
/// tailing `/trace` against `rec` the whole time. Returns the work's
/// value plus scrape statistics.
fn with_scrapers<R>(
    rec: &Arc<StreamRecorder>,
    nscrapers: usize,
    work: impl FnOnce() -> R,
) -> (R, u64, f64, f64) {
    let srv = TelemetryServer::start(Arc::clone(rec), "127.0.0.1:0").expect("bind telemetry");
    let addr = srv.addr();
    let done = Arc::new(AtomicBool::new(false));
    let log = Arc::new(ScrapeLog::new());
    let out = std::thread::scope(|scope| {
        for _ in 0..nscrapers {
            let done = Arc::clone(&done);
            let log = Arc::clone(&log);
            scope.spawn(move || {
                let mut cursor = 0u64;
                loop {
                    let t = Instant::now();
                    let (code, body) = http_get(addr, "/metrics").expect("scrape /metrics");
                    assert_eq!(code, 200, "scrape failed");
                    assert!(body.contains("hpcc_recorder_events_total"));
                    let (code, chunk) = http_get(addr, &format!("/trace?since={cursor}&max=2048"))
                        .expect("tail /trace");
                    assert_eq!(code, 200, "tail failed");
                    let doc = hpcc_trace::json::parse(&chunk).expect("chunk is valid JSON");
                    cursor = doc
                        .get("next")
                        .and_then(hpcc_trace::json::Json::as_f64)
                        .expect("chunk cursor") as u64;
                    log.record(t.elapsed().as_secs_f64() * 1e3);
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        let r = work();
        done.store(true, Ordering::SeqCst);
        r
    });
    srv.stop();
    let (scrapes, p50, p99) = log.stats();
    (out, scrapes, p50, p99)
}

/// Ledger residue of a snapshot: events neither aggregated nor in the
/// ring's retained/active/evicted accounting. Zero when nothing leaked.
fn unaccounted(snap: &hpcc_trace::MetricsSnapshot) -> u64 {
    let agg = snap
        .events_total
        .abs_diff(snap.spans_total + snap.counters_total + snap.instants_total);
    let ring = snap
        .events_total
        .abs_diff(snap.ring.retained_events + snap.ring.active_events + snap.ring.evicted_events);
    agg + ring
}

/// The throughput headline: one simulation-thread stand-in emitting
/// spans flat out while four scrapers poll. The recorder keeps a
/// realistic ring (64k-event window) so eviction — the counted drop
/// path — is actually exercised at rate.
fn pump(smoke: bool) -> TelemetryRow {
    let n: u64 = if smoke { 600_000 } else { 4_000_000 };
    let scrapers = 4;
    let rec = Arc::new(StreamRecorder::with_ring(1024, 64));
    let track = rec.track(names::MESH_NODES, "node 0");
    let (wall, scrapes, p50, p99) = with_scrapers(&rec, scrapers, || {
        let t = Instant::now();
        for i in 0..n {
            rec.span(track, "compute", "pump", i, i + 1 + (i & 0x3ff));
        }
        t.elapsed().as_secs_f64()
    });
    rec.flush_ring();
    let snap = rec.metrics_snapshot();
    assert_eq!(snap.events_total, n, "pump lost events");
    TelemetryRow {
        scenario: "pump",
        events: n,
        wall_ms: wall * 1e3,
        events_per_sec: n as f64 / wall,
        scrapers,
        scrapes,
        scrape_p50_ms: p50,
        scrape_p99_ms: p99,
        ring_evicted: snap.ring.evicted_events,
        unaccounted: unaccounted(&snap),
        overhead_pct: 0.0,
        identical: true,
    }
}

/// Best-of-`reps` wall time of `f`, with the result of the first rep.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let first = f();
    let mut best = t.elapsed().as_secs_f64().max(1e-9);
    for _ in 1..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64().max(1e-9));
    }
    (best, first)
}

/// Measure one engine scenario: `run(recorder)` must be a deterministic
/// simulation returning a `Debug`-comparable outcome. Times the
/// NullRecorder baseline and the recorded run (no scrapers, for a fair
/// overhead figure), then repeats the recorded run under `scrapers`
/// concurrent readers for the scrape stats and the identity assertion.
fn engine_scenario(
    name: &'static str,
    smoke: bool,
    run: impl Fn(Rc<dyn Recorder>) -> String,
) -> TelemetryRow {
    let reps = if smoke { 3 } else { 2 };
    let (t_null, base) = best_of(reps, || run(Rc::new(NullRecorder)));
    let (t_rec, recd) = best_of(reps, || {
        let rec = Arc::new(StreamRecorder::new());
        run(Rc::new(Arc::clone(&rec)) as Rc<dyn Recorder>)
    });
    assert_eq!(base, recd, "{name}: recording perturbed the simulation");

    let scrapers = 2;
    let rec = Arc::new(StreamRecorder::new());
    let ((scraped, wall), scrapes, p50, p99) = with_scrapers(&rec, scrapers, || {
        let t = Instant::now();
        let out = run(Rc::new(Arc::clone(&rec)) as Rc<dyn Recorder>);
        (out, t.elapsed().as_secs_f64())
    });
    rec.flush_ring();
    let identical = scraped == base;
    let snap = rec.metrics_snapshot();
    TelemetryRow {
        scenario: name,
        events: snap.events_total,
        wall_ms: wall * 1e3,
        events_per_sec: snap.events_total as f64 / wall,
        scrapers,
        scrapes,
        scrape_p50_ms: p50,
        scrape_p99_ms: p99,
        ring_evicted: snap.ring.evicted_events,
        unaccounted: unaccounted(&snap),
        overhead_pct: (t_rec - t_null) / t_null * 100.0,
        identical,
    }
}

/// Faulted LU-2D (the OBS-1 scenario shapes) through the streaming
/// recorder.
fn lu2d_scenario(smoke: bool) -> TelemetryRow {
    let (mesh, n, nb) = if smoke {
        ((2, 4), 1_200, 32)
    } else {
        ((4, 4), 2_500, 32)
    };
    engine_scenario("lu2d-faulted", smoke, move |rec| {
        let machine = Machine::new(presets::delta(mesh.0, mesh.1));
        let mut plan = FaultPlan::none();
        plan.push(
            SimTime::from_secs_f64(0.01),
            FaultKind::LinkDown {
                link: 0,
                until: SimTime::from_secs_f64(0.05),
            },
        );
        plan.push(
            SimTime::from_secs_f64(0.02),
            FaultKind::NodeSlow {
                node: mesh.0 * mesh.1 - 1,
                factor: 4.0,
                until: SimTime::from_secs_f64(0.2),
            },
        );
        format!("{:?}", lu2d::run_traced(&machine, n, nb, &plan, rec))
    })
}

/// The multi-tenant scheduler under MTBF node crashes. Sized so the
/// placement-search work per job dwarfs the handful of counters and
/// lifecycle spans each job records — one-time track interning
/// amortizes away above ~100 jobs.
fn sched_scenario(smoke: bool) -> TelemetryRow {
    let njobs = if smoke { 150 } else { 400 };
    engine_scenario("sched-faulted", smoke, move |rec| {
        let jobs = consortium_workload(njobs, 14, 60.0, 1992);
        let plan = FaultPlan::seeded(
            1992,
            &MtbfModel::node_crashes(Dur::from_secs(1_500_000)),
            16 * 33,
            0,
            Dur::from_secs(4 * 3_600),
        );
        format!(
            "{:?}",
            run_recorded(16, 33, jobs, Policy::Backfill, &plan, &*rec)
        )
    })
}

/// WAN background traffic through a first-hop outage: a Poisson flow
/// mix large enough that the max-min solver's resolve work dominates
/// the per-flow lifecycle spans and rate counters it records.
fn wan_scenario(smoke: bool) -> TelemetryRow {
    let horizon_s = if smoke { 40.0 } else { 160.0 };
    engine_scenario("wan-faulted", smoke, move |rec| {
        let net = topologies::delta_consortium();
        let delta = net.site(topologies::DELTA_SITE).unwrap();
        let jpl = net.site("JPL").unwrap();
        let sim = FlowSim::new(&net);
        let mut rng = des::rng::Rng::new(0x1992);
        let specs = nren_netsim::workload::poisson_traffic(&net, &mut rng, 12.0, 80.0e6, horizon_s);
        let first_link = net.route(jpl, delta).unwrap().dirs[0] / 2;
        let fault = LinkFault {
            link: first_link,
            down_at: SimTime::from_secs_f64(0.5),
            up_at: SimTime::from_secs_f64(30.0),
        };
        format!(
            "{:?}",
            sim.run_with_faults_recorded(specs, &[fault], &*rec)
                .unwrap()
        )
    })
}

/// The sharded conservative-parallel DES runtime: a halo + long-range
/// workload across 4 event lanes, with the lane diagnostics (windows,
/// per-lane events, mailbox traffic) exported as `DES_LANES` counters.
fn sharded_scenario(smoke: bool) -> TelemetryRow {
    let (rows, cols, steps) = if smoke { (16, 33, 2) } else { (32, 33, 2) };
    let row = engine_scenario("sharded-mesh", smoke, move |rec| {
        let m = Machine::new(presets::delta(rows, cols));
        let (results, report, stats) =
            m.run_sharded_stats(4, &FaultPlan::none(), move |node: Node| async move {
                let me = node.rank();
                let right = (me + 1) % (rows * cols);
                let left = (me + rows * cols - 1) % (rows * cols);
                let mut acc = 0.0;
                for s in 0..steps {
                    node.compute(Kernel::Stencil, 2.0e4).await;
                    node.send_f64s(right, s as u64, &[me as f64]).await;
                    acc += node.recv_f64s(Some(left), Some(s as u64)).await[0];
                }
                acc
            });
        stats.emit(&*rec, report.elapsed.nanos());
        format!("{results:?} {report:?} {stats:?}")
    });
    row
}

pub fn snapshot(smoke: bool) -> Vec<TelemetryRow> {
    vec![
        pump(smoke),
        lu2d_scenario(smoke),
        sched_scenario(smoke),
        wan_scenario(smoke),
        sharded_scenario(smoke),
    ]
}

/// Assert the acceptance gates; panics on violation, returns the
/// summary lines printed under the table.
pub fn gates(rows: &[TelemetryRow], smoke: bool) -> String {
    let mut s = String::new();
    let pump = rows
        .iter()
        .find(|r| r.scenario == "pump")
        .expect("pump row");
    let floor = if smoke { 2.5e5 } else { 1.0e6 };
    assert!(
        pump.events_per_sec >= floor,
        "pump sustained {:.0} events/sec < {floor:.0} floor",
        pump.events_per_sec
    );
    assert!(
        pump.scrapes >= pump.scrapers as u64,
        "scrapers starved: {} scrapes from {}",
        pump.scrapes,
        pump.scrapers
    );
    let _ = writeln!(
        s,
        "gate: pump {:.2} M events/s with {} live scrapers (floor {:.2} M) — ok",
        pump.events_per_sec / 1e6,
        pump.scrapers,
        floor / 1e6
    );

    for r in rows {
        assert_eq!(
            r.unaccounted, 0,
            "{}: {} events unaccounted — the ledger must balance",
            r.scenario, r.unaccounted
        );
        assert!(r.identical, "{}: recorded run diverged", r.scenario);
    }
    let _ = writeln!(
        s,
        "gate: every scenario balanced its ledger (0 unaccounted events) — ok"
    );
    let _ = writeln!(
        s,
        "gate: recorded engine runs bit-identical to NullRecorder twins — ok"
    );

    // Overhead budget. Two regimes, gated separately:
    //
    // * metrics regime (sched, wan, sharded lanes) — counters and
    //   coarse lifecycle spans, the always-on live-service mode. The
    //   mean must stay within 10% of the NullRecorder baseline (the
    //   mean, because per-scenario sub-10ms walls jitter at smoke
    //   sizes while the mean is stable).
    // * trace regime (lu2d) — a span for every message and compute
    //   interval on a simulator whose events cost ~200ns each, i.e. a
    //   deliberate pay-per-event Perfetto capture. Recording roughly
    //   doubles the wall by construction; the gate only bounds it from
    //   drifting past 2.5x.
    let metrics: Vec<&TelemetryRow> = rows
        .iter()
        .filter(|r| !matches!(r.scenario, "pump" | "lu2d-faulted"))
        .collect();
    let agg: f64 = metrics.iter().map(|r| r.overhead_pct).sum::<f64>() / metrics.len() as f64;
    assert!(
        agg <= 10.0,
        "mean metrics-regime recording overhead {agg:.1}% exceeds the 10% budget"
    );
    let _ = writeln!(
        s,
        "gate: metrics-regime overhead {agg:.1}% (mean of sched/wan/sharded) <= 10% — ok"
    );
    let lu = rows
        .iter()
        .find(|r| r.scenario == "lu2d-faulted")
        .expect("lu2d row");
    assert!(
        lu.overhead_pct <= 150.0,
        "trace-regime overhead {:.1}% exceeds the 150% bound",
        lu.overhead_pct
    );
    let _ = writeln!(
        s,
        "gate: trace-regime (per-message spans) overhead {:.1}% <= 150% — ok",
        lu.overhead_pct
    );
    s
}

/// Human-readable table.
pub fn table(rows: &[TelemetryRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Live telemetry service (StreamRecorder + HTTP scrape)");
    let _ = writeln!(s, "{:-<100}", "");
    let _ = writeln!(
        s,
        "{:>14} {:>9} {:>9} {:>12} {:>5} {:>7} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "scenario",
        "events",
        "ms",
        "events/s",
        "scrp",
        "scrapes",
        "p50 ms",
        "p99 ms",
        "evicted",
        "overhead",
        "identical"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>14} {:>9} {:>9.1} {:>12.0} {:>5} {:>7} {:>8.2} {:>8.2} {:>9} {:>8.1}% {:>10}",
            r.scenario,
            r.events,
            r.wall_ms,
            r.events_per_sec,
            r.scrapers,
            r.scrapes,
            r.scrape_p50_ms,
            r.scrape_p99_ms,
            r.ring_evicted,
            r.overhead_pct,
            if r.identical { "yes" } else { "NO" }
        );
    }
    s
}

/// The JSON snapshot (hand-rolled — the harness carries no serde).
pub fn json(rows: &[TelemetryRow]) -> String {
    let mut s = String::from("{\n  \"bench\": \"telemetry\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"events\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.1}, \"scrapers\": {}, \"scrapes\": {}, \
             \"scrape_p50_ms\": {:.3}, \"scrape_p99_ms\": {:.3}, \
             \"ring_evicted\": {}, \"unaccounted\": {}, \
             \"overhead_pct\": {:.2}, \"identical\": {}}}",
            r.scenario,
            r.events,
            r.wall_ms,
            r.events_per_sec,
            r.scrapers,
            r.scrapes,
            r.scrape_p50_ms,
            r.scrape_p99_ms,
            r.ring_evicted,
            r.unaccounted,
            r.overhead_pct,
            r.identical
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scrape harness measures and the ledger check catches nothing
    /// on a quiet recorder.
    #[test]
    fn scrape_harness_round_trips() {
        let rec = Arc::new(StreamRecorder::new());
        let t = rec.track("p", "t");
        rec.span(t, "c", "x", 0, 10);
        let ((), scrapes, p50, p99) = with_scrapers(&rec, 2, || {
            std::thread::sleep(Duration::from_millis(20));
        });
        assert!(scrapes >= 2);
        assert!(p50 > 0.0 && p99 >= p50);
        let snap = rec.metrics_snapshot();
        assert_eq!(unaccounted(&snap), 0);
    }

    /// Smoke-sized sharded scenario exports the DES_LANES counters and
    /// stays deterministic.
    #[test]
    fn sharded_scenario_exports_lane_counters() {
        let row = sharded_scenario(true);
        assert!(row.identical);
        assert_eq!(row.unaccounted, 0);
        // engine track counters + one per lane.
        assert!(row.events >= 5 + 4);
    }
}
