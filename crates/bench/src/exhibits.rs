//! Exhibit reproductions: one function per table/figure of the deck,
//! each returning a printable report comparing "paper" with "measured".
//!
//! Sizes are chosen so the full `report all` run completes in minutes on
//! a laptop while still exercising the paper-scale configuration (528
//! nodes, order 25,000) for the headline exhibit.

use delta_mesh::{presets, Machine};
use hpcc_core::{fnum, Agency, Component, FiscalYear, FundingTable, Table};
use hpcc_kernels::sim::{fftsim, lu2d, stencil};
use nren_netsim::{topologies, FlowSim, LinkClass, TransferSpec};

use des::time::SimTime;

/// T4-1: goals, authority, approach.
pub fn goals() -> String {
    let mut out = String::new();
    out.push_str("Exhibit T4-1 — Federal program goal and objectives\n");
    for g in hpcc_core::GOALS {
        out.push_str(&format!("  o {g}\n"));
    }
    out.push_str(&format!("\nAuthority: {}\n", hpcc_core::AUTHORITY));
    out.push_str("\nExhibit T4-3c — Approach\n");
    for a in hpcc_core::APPROACH {
        out.push_str(&format!("  [] {a}\n"));
    }
    out
}

/// T4-2: the responsibilities matrix.
pub fn responsibilities() -> String {
    let mut t = Table::new(
        "Exhibit T4-2 — Federal HPCC program responsibilities (activity counts)",
        &["Agency", "HPCS", "ASTA", "NREN", "BRHR"],
    );
    for a in Agency::ALL {
        let cells: Vec<String> = Component::ALL
            .iter()
            .map(|&c| {
                let n = hpcc_core::responsibilities::activities(a, c).len();
                if n == 0 {
                    "-".to_string()
                } else {
                    n.to_string()
                }
            })
            .collect();
        t.row(&[vec![a.label().to_string()], cells].concat());
    }
    let mut out = t.to_string();
    out.push_str(&format!("\n* {}\n", hpcc_core::responsibilities::FOOTNOTE));
    out.push_str("\nDARPA/HPCS detail (lead agency):\n");
    for act in hpcc_core::responsibilities::activities(Agency::Darpa, Component::Hpcs) {
        out.push_str(&format!("  - {act}\n"));
    }
    out
}

/// T4-3a: the funding table, regenerated digit for digit.
pub fn funding() -> String {
    let f = FundingTable::fy1992_93();
    let mut t = Table::new(
        "Exhibit T4-3a — Federal HPCC program funding FY 92-93 ($M)",
        &["Agency", "FY 1992", "FY 1993", "Growth %", "FY93 share %"],
    );
    for a in f.agencies().collect::<Vec<_>>() {
        t.row(&[
            a.label().to_string(),
            f.budget(a, FiscalYear::Fy1992).to_string(),
            f.budget(a, FiscalYear::Fy1993).to_string(),
            fnum(f.growth_pct(a), 1),
            fnum(f.share_pct(a, FiscalYear::Fy1993), 1),
        ]);
    }
    t.begin_footer();
    t.row(&[
        "Total".to_string(),
        f.total(FiscalYear::Fy1992).to_string(),
        f.total(FiscalYear::Fy1993).to_string(),
        fnum(f.total_growth_pct(), 1),
        "100.0".to_string(),
    ]);
    format!(
        "{t}\nPaper totals: 654.8 / 802.9  — regenerated: {} / {}  (exact match required)\n",
        f.total(FiscalYear::Fy1992),
        f.total(FiscalYear::Fy1993)
    )
}

/// T4-3b: component split (documented reconstruction).
pub fn components() -> String {
    let f = FundingTable::fy1992_93();
    let mut t = Table::new(
        "Exhibit T4-3b — Funding by program component ($M, reconstruction)",
        &["Component", "FY 1992", "FY 1993", "FY93 share %"],
    );
    let total93 = f.total(FiscalYear::Fy1993).0 as f64;
    let split92 = f.component_split(FiscalYear::Fy1992);
    let split93 = f.component_split(FiscalYear::Fy1993);
    for (i, c) in Component::ALL.iter().enumerate() {
        t.row(&[
            format!("{} ({})", c.label(), c.full_name()),
            split92[i].1.to_string(),
            split93[i].1.to_string(),
            fnum(split93[i].1 .0 as f64 / total93 * 100.0, 1),
        ]);
    }
    format!(
        "{t}\nNote: the deck's pie chart carries no printed numerals; weights are a\n\
         documented reconstruction (see hpcc_core::funding::component_weights).\n"
    )
}

/// T4-4a: Delta peak — derived from the machine model, not hard-coded.
pub fn delta_peak() -> String {
    use hpcc_core::consortium::delta_facts as facts;
    let m = presets::delta_528();
    let mut t = Table::new(
        "Exhibit T4-4a — Intel Touchstone Delta (model vs paper)",
        &["Quantity", "Paper", "Model"],
    );
    t.row(&[
        "Numeric processors".into(),
        facts::NUMERIC_PROCESSORS.to_string(),
        m.nodes().to_string(),
    ]);
    t.row(&[
        "Peak speed (GFLOPS)".into(),
        fnum(facts::PEAK_GFLOPS, 1),
        fnum(m.peak_flops() / 1e9, 1),
    ]);
    t.row(&[
        "Mesh".into(),
        "16 x 33 (2-D wormhole)".into(),
        format!("{:?}", m.topology),
    ]);
    t.row(&[
        "Max LINPACK order (memory)".into(),
        ">= 25,000".into(),
        m.max_linpack_order().to_string(),
    ]);
    t.row(&[
        "Bisection bandwidth (MB/s)".into(),
        "-".into(),
        fnum(m.bisection_bandwidth() / 1e6, 0),
    ]);
    t.to_string()
}

/// T4-4b: the headline — simulated LINPACK at order 25,000 on 528 nodes.
pub fn delta_linpack() -> String {
    use hpcc_core::consortium::delta_facts as facts;
    let machine = Machine::new(presets::delta_528());
    let r = lu2d::run(&machine, facts::LINPACK_ORDER, 32);
    let mut t = Table::new(
        "Exhibit T4-4b — LINPACK on the Touchstone Delta (simulated)",
        &["Quantity", "Paper", "Simulated"],
    );
    t.row(&["Order".into(), "25,000".into(), r.n.to_string()]);
    t.row(&[
        "LINPACK speed (GFLOPS)".into(),
        fnum(facts::LINPACK_GFLOPS, 1),
        fnum(r.gflops, 1),
    ]);
    t.row(&[
        "Fraction of 32 GFLOPS peak".into(),
        fnum(facts::LINPACK_GFLOPS / facts::PEAK_GFLOPS, 2),
        fnum(r.efficiency, 2),
    ]);
    t.row(&["Run time (s)".into(), "-".into(), fnum(r.seconds, 0)]);
    t.row(&[
        "Process grid".into(),
        "-".into(),
        format!("{} x {}", r.grid.0, r.grid.1),
    ]);
    t.row(&["Messages".into(), "-".into(), r.report.messages.to_string()]);
    t.to_string()
}

/// F-T4-4c: GFLOPS vs order sweep on the 528-node Delta.
pub fn linpack_sweep() -> String {
    let machine = Machine::new(presets::delta_528());
    let mut t = Table::new(
        "Figure F-T4-4c — Simulated Delta LINPACK vs matrix order",
        &["Order", "GFLOPS", "Efficiency %", "Time (s)"],
    );
    for n in [2_000, 5_000, 10_000, 15_000, 20_000, 25_000, 30_000] {
        let r = lu2d::run(&machine, n, 32);
        t.row(&[
            n.to_string(),
            fnum(r.gflops, 2),
            fnum(r.efficiency * 100.0, 1),
            fnum(r.seconds, 1),
        ]);
    }
    format!("{t}\nShape check: efficiency must rise monotonically with order\n(communication amortised), passing ~40% at order 25,000.\n")
}

/// F-T4-4d: the DARPA Touchstone series.
pub fn mpp_series() -> String {
    let mut t = Table::new(
        "Figure F-T4-4d — 'One of a series of DARPA developed massively parallel computers'",
        &[
            "Machine",
            "Nodes",
            "Peak GF",
            "LINPACK GF",
            "Eff %",
            "Order",
        ],
    );
    let runs: Vec<(Machine, usize)> = vec![
        (Machine::new(presets::ipsc860(7)), 8_000),
        (Machine::new(presets::delta_528()), 25_000),
        (Machine::new(presets::paragon(16, 33)), 25_000),
        (Machine::new(presets::ideal(528)), 25_000),
    ];
    for (m, n) in runs {
        let peak = m.config().peak_flops() / 1e9;
        let r = lu2d::run(&m, n, 32);
        t.row(&[
            m.config().name.clone(),
            m.config().nodes().to_string(),
            fnum(peak, 1),
            fnum(r.gflops, 1),
            fnum(r.efficiency * 100.0, 1),
            n.to_string(),
        ]);
    }
    t.to_string()
}

/// T4-5a: the consortium network — per-partner connectivity to the Delta.
pub fn consortium_net() -> String {
    let net = topologies::delta_consortium();
    let delta = net.site(topologies::DELTA_SITE).unwrap();
    let sim = FlowSim::new(&net);
    let mut t = Table::new(
        "Exhibit T4-5a — Delta Consortium partners: connectivity to the Delta",
        &[
            "Partner site",
            "Hops",
            "RTT (ms)",
            "Bottleneck",
            "100 MB stage (s)",
        ],
    );
    let bytes = 100 << 20;
    for p in topologies::partner_sites(&net) {
        let route = net.route(p, delta).unwrap();
        let bw = net.bottleneck(&route);
        let class = [
            LinkClass::Regional56k,
            LinkClass::T1,
            LinkClass::T3,
            LinkClass::HippiSonet800,
        ]
        .into_iter()
        .find(|c| (c.bytes_per_sec() - bw).abs() < 1.0)
        .map(|c| c.label())
        .unwrap_or("mixed");
        let single = sim
            .single_flow_time(&TransferSpec::new(p, delta, bytes, SimTime::ZERO))
            .unwrap();
        t.row(&[
            net.name(p).to_string(),
            route.hops().to_string(),
            fnum((route.latency * 2).as_millis_f64(), 1),
            class.to_string(),
            fnum(single.as_secs_f64(), 1),
        ]);
    }
    // Concurrent staging: everyone pushes 100 MB at once.
    let partners = topologies::partner_sites(&net);
    let (staging, _) = nren_netsim::workload::stage_and_retrieve(&partners, delta, bytes, bytes);
    let recs = sim.run(staging);
    let makespan = recs.iter().map(|r| r.finished).max().unwrap().as_secs_f64();
    let mut out = t.to_string();
    out.push_str(&format!(
        "\nConcurrent staging of 100 MB from all {} partners: makespan {:.0} s\n\
         ({} members on the roster; figure legend classes reproduced above)\n",
        partners.len(),
        makespan,
        hpcc_core::consortium::CSC_MEMBERS.len(),
    ));
    out
}

/// F-T4-5b: the NREN upgrade path.
pub fn nren_upgrade() -> String {
    let mut t = Table::new(
        "Figure F-T4-5b — NREN backbone upgrade (coast-to-coast, 100 MB field)",
        &[
            "Backbone",
            "Single flow (s)",
            "w/ 64 KB TCP window (s)",
            "Speedup vs T1",
        ],
    );
    let bytes = 100 << 20;
    let mut base = None;
    for class in [LinkClass::T1, LinkClass::T3, LinkClass::Gigabit] {
        let net = topologies::nsfnet(class);
        let sim = FlowSim::new(&net);
        let a = net.site("Palo Alto").unwrap();
        let b = net.site("College Park").unwrap();
        let plain = sim
            .single_flow_time(&TransferSpec::new(a, b, bytes, SimTime::ZERO))
            .unwrap()
            .as_secs_f64();
        let windowed = sim
            .single_flow_time(&TransferSpec::new(a, b, bytes, SimTime::ZERO).with_window(64 * 1024))
            .unwrap()
            .as_secs_f64();
        let speedup = base.map_or(1.0, |b: f64| b / plain);
        if base.is_none() {
            base = Some(plain);
        }
        t.row(&[
            format!("NSFnet {}", class.label()),
            fnum(plain, 1),
            fnum(windowed, 1),
            fnum(speedup, 1),
        ]);
    }
    format!(
        "{t}\nShape check: T3 ~29x over T1 (line-rate ratio); the 64 KB TCP window\n\
         erases the gigabit gain — the reason NREN funds protocol research.\n"
    )
}

/// T4-5c: the CASA gigabit testbed.
pub fn casa() -> String {
    let net = topologies::casa_testbed();
    let sim = FlowSim::new(&net);
    let caltech = net.site(topologies::DELTA_SITE).unwrap();
    let lanl = net.site("Los Alamos").unwrap();
    let bytes: u64 = 1 << 30; // a 1 GB remote-visualisation field
    let mut t = Table::new(
        "Exhibit T4-5c — CASA HIPPI/SONET (800 Mb/s) testbed: Caltech -> Los Alamos, 1 GB",
        &["TCP window", "Achieved MB/s", "Transfer (s)"],
    );
    for w in [
        Some(64u64 * 1024),
        Some(512 * 1024),
        Some(4 * 1024 * 1024),
        None,
    ] {
        let mut spec = TransferSpec::new(caltech, lanl, bytes, SimTime::ZERO);
        if let Some(w) = w {
            spec = spec.with_window(w);
        }
        let d = sim.single_flow_time(&spec).unwrap().as_secs_f64();
        t.row(&[
            w.map_or("unlimited".into(), |w| format!("{} KB", w / 1024)),
            fnum(bytes as f64 / d / 1e6, 1),
            fnum(d, 1),
        ]);
    }
    format!(
        "{t}\nThe 800 Mb/s pipe only fills once windows reach megabytes — the 1992\n\
         gigabit-testbed research agenda in one table.\n"
    )
}

/// T4-6: the CAS consortium + its workload.
pub fn cas() -> String {
    let mut out = String::new();
    out.push_str("Exhibit T4-5b/6 — Computational Aerosciences Consortium\n\nPurposes:\n");
    for p in hpcc_core::consortium::CAS_PURPOSES {
        out.push_str(&format!("  o {p}\n"));
    }
    out.push_str(&format!(
        "\nIndustry ({}): {}\n",
        hpcc_core::consortium::CAS_INDUSTRY.len(),
        hpcc_core::consortium::CAS_INDUSTRY.join(", ")
    ));
    out.push_str(&format!(
        "Academia ({}): {}\n",
        hpcc_core::consortium::CAS_ACADEMIA.len(),
        hpcc_core::consortium::CAS_ACADEMIA.join(", ")
    ));

    // The CAS workload on the testbed: an aerosciences stencil solve.
    let machine = Machine::new(presets::delta_528());
    let r = stencil::run_model(&machine, 4096, 50);
    out.push_str(&format!(
        "\nCAS-class workload on the simulated Delta: 4096^2 transport grid,\n\
         50 sweeps on {} nodes ({} x {} decomposition): {:.2} s virtual,\n\
         {:.2} GFLOPS sustained, {} messages.\n",
        machine.config().nodes(),
        r.grid.0,
        r.grid.1,
        r.seconds,
        r.gflops,
        r.report.messages
    ));
    out
}

/// GC-1: host-parallel Grand Challenge kernels (Rayon vs sequential).
pub fn grand_challenges() -> String {
    use std::time::Instant;
    let mut t = Table::new(
        "GC-1 — Grand Challenge kernels on the host (sequential vs Rayon)",
        &[
            "Kernel (Grand Challenge)",
            "Size",
            "Seq (ms)",
            "Par (ms)",
            "Speedup",
        ],
    );
    let threads = rayon::current_num_threads();

    let time = |f: &mut dyn FnMut()| {
        let s = Instant::now();
        f();
        s.elapsed().as_secs_f64() * 1e3
    };

    // Dense matmul (LINPACK substrate).
    {
        let mut rng = des::rng::Rng::new(1);
        let a = hpcc_kernels::mat::Mat::random(384, 384, &mut rng);
        let b = hpcc_kernels::mat::Mat::random(384, 384, &mut rng);
        let ts = time(&mut || {
            std::hint::black_box(hpcc_kernels::matmul::matmul_blocked(&a, &b, 48));
        });
        let tp = time(&mut || {
            std::hint::black_box(hpcc_kernels::matmul::matmul_par(&a, &b));
        });
        t.row(&[
            "Matmul (dense LA)".into(),
            "384^2".into(),
            fnum(ts, 1),
            fnum(tp, 1),
            fnum(ts / tp, 2),
        ]);
    }
    // CFD Jacobi sweeps.
    {
        use hpcc_kernels::cfd::{jacobi, Grid};
        let rhs = Grid::new(512);
        let run = |par: bool| {
            let mut u = Grid::new(512);
            u.set_boundary(|x, y| x + y);
            jacobi(&mut u, &rhs, 0.0, 150, par);
        };
        let ts = time(&mut || run(false));
        let tp = time(&mut || run(true));
        t.row(&[
            "Jacobi (aerosciences)".into(),
            "512^2 x150".into(),
            fnum(ts, 1),
            fnum(tp, 1),
            fnum(ts / tp, 2),
        ]);
    }
    // Shallow water.
    {
        use hpcc_kernels::shallow::Shallow;
        let run = |par: bool| {
            let mut sw = Shallow::new(256);
            sw.run(60, par);
        };
        let ts = time(&mut || run(false));
        let tp = time(&mut || run(true));
        t.row(&[
            "Shallow water (ocean/atmos)".into(),
            "256^2 x60".into(),
            fnum(ts, 1),
            fnum(tp, 1),
            fnum(ts / tp, 2),
        ]);
    }
    // N-body.
    {
        use hpcc_kernels::nbody::*;
        let bodies = random_cluster(3000, 5);
        let ts = time(&mut || {
            std::hint::black_box(accel_direct(&bodies, 0.05));
        });
        let tp = time(&mut || {
            std::hint::black_box(accel_direct_par(&bodies, 0.05));
        });
        t.row(&[
            "N-body direct (space sci)".into(),
            "3000".into(),
            fnum(ts, 1),
            fnum(tp, 1),
            fnum(ts / tp, 2),
        ]);
    }
    // 2-D FFT.
    {
        use hpcc_kernels::fft::*;
        let orig: Vec<Cpx> = (0..512 * 512)
            .map(|i| Cpx::new((i as f64 * 0.001).sin(), 0.0))
            .collect();
        let ts = time(&mut || {
            let mut d = orig.clone();
            fft2d(&mut d, 512, false);
            std::hint::black_box(d);
        });
        let tp = time(&mut || {
            let mut d = orig.clone();
            fft2d(&mut d, 512, true);
            std::hint::black_box(d);
        });
        t.row(&[
            "2-D FFT (earth/space)".into(),
            "512^2".into(),
            fnum(ts, 1),
            fnum(tp, 1),
            fnum(ts / tp, 2),
        ]);
    }
    // Multigrid (the algorithm story: same machine, better math).
    {
        use hpcc_kernels::multigrid::{MgConfig, Multigrid};
        use std::f64::consts::PI;
        let rhs = |x: f64, y: f64| -2.0 * PI * PI * (PI * x).sin() * (PI * y).sin();
        let cfg = MgConfig {
            tol: 1e-8,
            ..MgConfig::default()
        };
        let tm = time(&mut || {
            let mut mg = Multigrid::new(255, cfg);
            std::hint::black_box(mg.solve(rhs).1);
        });
        let ts = time(&mut || {
            let mut u = hpcc_kernels::cfd::Grid::new(255);
            let mut r = hpcc_kernels::cfd::Grid::new(255);
            let h = 1.0 / 256.0;
            for i in 0..257 {
                for j in 0..257 {
                    r.set(i, j, rhs(i as f64 * h, j as f64 * h));
                }
            }
            std::hint::black_box(hpcc_kernels::cfd::sor(&mut u, &r, None, 1e-8, 200_000));
        });
        t.row(&[
            "Multigrid vs SOR (aerosci)".into(),
            "255^2".into(),
            fnum(ts, 1),
            fnum(tm, 1),
            fnum(ts / tm, 2),
        ]);
    }
    // Sparse CG.
    {
        use hpcc_kernels::cg::*;
        let a = Csr::poisson2d(200);
        let b = vec![1.0; a.n()];
        let ts = time(&mut || {
            let mut x = vec![0.0; a.n()];
            std::hint::black_box(cg(&a, &b, &mut x, 1e-8, 600, false));
        });
        let tp = time(&mut || {
            let mut x = vec![0.0; a.n()];
            std::hint::black_box(cg(&a, &b, &mut x, 1e-8, 600, true));
        });
        t.row(&[
            "Sparse CG (energy)".into(),
            "200^2 grid".into(),
            fnum(ts, 1),
            fnum(tp, 1),
            fnum(ts / tp, 2),
        ]);
    }
    format!(
        "{t}\nHost threads: {threads}. Shape check: compute-dense kernels (matmul,\n\
         n-body) approach the thread count; memory-bound kernels (Jacobi, CG)\n\
         plateau well below it — the 1992 ASTA lesson, reproduced on 2026 hardware.\n"
    )
}

/// A simulated-FFT appendix for the ASTA communication-bound story.
pub fn fft_scaling() -> String {
    let mut t = Table::new(
        "ASTA appendix — distributed FFT on the simulated Delta (transpose algorithm)",
        &["Nodes", "N", "Time (ms)", "GFLOPS", "Compute fraction %"],
    );
    for (r, c) in [(4, 8), (8, 8), (8, 16), (16, 33)] {
        let m = Machine::new(presets::delta(r, c));
        let n = 1 << 20;
        let res = fftsim::run(&m, n);
        t.row(&[
            m.config().nodes().to_string(),
            "2^20".to_string(),
            fnum(res.seconds * 1e3, 1),
            fnum(res.gflops, 2),
            fnum(res.compute_fraction * 100.0, 1),
        ]);
    }
    format!("{t}\nShape check: compute fraction falls as nodes rise — FFT scaling is\ncommunication-limited on a 25 MB/s mesh.\n")
}

/// T4-4e: "ACQUIRE AND UTILIZE" — space-sharing the Delta among the
/// consortium partners: FCFS vs backfill on the 16×33 mesh.
pub fn scheduler() -> String {
    use delta_mesh::sched::{consortium_workload, run, Policy};
    let jobs = consortium_workload(300, 14, 90.0, 1992);
    let mut t = Table::new(
        "Exhibit T4-4e — Space-sharing the Delta (300 consortium jobs, 14 partners)",
        &[
            "Policy",
            "Utilization %",
            "Mean wait (min)",
            "Max wait (min)",
            "Frag. refusals",
            "Makespan (h)",
        ],
    );
    for policy in [Policy::Fcfs, Policy::Backfill] {
        let r = run(16, 33, jobs.clone(), policy);
        t.row(&[
            format!("{policy:?}"),
            fnum(r.utilization * 100.0, 1),
            fnum(r.mean_wait.as_secs_f64() / 60.0, 1),
            fnum(r.max_wait.as_secs_f64() / 60.0, 1),
            r.fragmentation_refusals.to_string(),
            fnum(r.makespan.as_secs_f64() / 3600.0, 2),
        ]);
    }
    format!(
        "{t}\nShape check: backfill lifts utilisation and cuts waits on the same\n\
         job stream — how the CSC actually kept 528 nodes busy.\n"
    )
}

/// SCHED-1: the long-running scheduler *service* on the same 528-node
/// Delta — admission control, per-tenant quotas, priority shed tiers,
/// and seeded retry/backoff across three operating regimes. Every
/// number is deterministic (fixed seeds); the wall-clock companion that
/// writes `BENCH_sched.json` is `report bench-sched`.
pub fn sched_service() -> String {
    use delta_mesh::sched::service::{self, ServiceConfig};
    use delta_mesh::{service_workload, FaultPlan, MtbfModel};
    use des::time::Dur;

    let mut t = Table::new(
        "Exhibit SCHED-1 — Scheduler service under steady load, 2x overload, and faults",
        &[
            "Scenario",
            "Submitted",
            "Completed",
            "Shed",
            "Quota rej.",
            "Retries",
            "Failed",
            "Util %",
            "p99 wait (min)",
            "Max queue",
        ],
    );
    // `mtbf_factor`: MTBF as a multiple of the stream's arrival span
    // (~528/k of the machine dies mid-run); `None` runs fault-free.
    let mut run = |name: &str, n: usize, load: f64, cfg: &ServiceConfig, mtbf: Option<f64>| {
        let tr = service_workload(n, 64, load, 16, 33, 1992);
        let plan = match mtbf {
            Some(k) => {
                let span_s = tr
                    .subs
                    .last()
                    .map_or(0.0, |s| s.arrival.nanos() as f64 / 1e9);
                FaultPlan::seeded(
                    1992,
                    &MtbfModel::node_crashes(Dur::from_secs_f64(k * span_s)),
                    16 * 33,
                    0,
                    Dur::from_secs_f64(span_s),
                )
            }
            None => FaultPlan::none(),
        };
        let r = service::run_with_faults(&tr, cfg, &plan);
        t.row(&[
            name.into(),
            r.submitted.to_string(),
            r.completed.to_string(),
            r.shed_total().to_string(),
            r.quota_rejects.to_string(),
            r.retries.to_string(),
            r.failed.to_string(),
            fnum(r.utilization * 100.0, 1),
            fnum(r.p99_wait.nanos() as f64 / 60e9, 1),
            r.max_pending.to_string(),
        ]);
    };
    // The heavy-tailed shape mix caps packable utilization near two
    // thirds of the mesh, so 0.6x offered is "under capacity" and 2.0x
    // is a ~3x overload of the packable rate.
    run(
        "steady 0.6x",
        12_000,
        0.6,
        &ServiceConfig::new(16, 33),
        None,
    );
    let mut bounded = ServiceConfig::new(16, 33);
    bounded.pending_cap = 128;
    bounded.shard_cap = 128;
    bounded.quota_default = 128;
    run("overload 2x", 8_000, 2.0, &bounded, None);
    run(
        "faulted 0.6x",
        12_000,
        0.6,
        &ServiceConfig::new(16, 33),
        Some(20.0),
    );
    format!(
        "{t}\nShape check: at 2x offered load the pending queue holds its 128-entry\n\
         cap and the excess is shed lowest-tier-first with typed errors; under\n\
         node crashes killed jobs retry on capped seeded backoff until the\n\
         budget ends. Zero-fault, unlimited-config runs replay the batch\n\
         scheduler bit-for-bit (asserted by `report bench-sched --smoke`).\n"
    )
}

/// Ablation: what the Touchstone wormhole routers bought, and what the
/// long-message broadcast algorithm bought.
pub fn ablations() -> String {
    use delta_mesh::Comm;
    let mut t = Table::new(
        "Ablation — router and collective design choices on the Delta model",
        &[
            "Configuration",
            "1 MB bcast, 64 nodes (ms)",
            "LINPACK n=4000, 64n (GF)",
        ],
    );
    let bcast_ms = |cfg: delta_mesh::MachineConfig| {
        let m = Machine::new(cfg);
        let (_, r) = m.run(|node| async move {
            let comm = Comm::world(&node);
            comm.bcast_virtual(0, 1 << 20).await;
        });
        r.elapsed.as_secs_f64() * 1e3
    };
    let lu_gf = |cfg: delta_mesh::MachineConfig| lu2d::run(&Machine::new(cfg), 4_000, 32).gflops;
    t.row(&[
        "wormhole (production)".into(),
        fnum(bcast_ms(presets::delta(8, 8)), 2),
        fnum(lu_gf(presets::delta(8, 8)), 2),
    ]);
    t.row(&[
        "store-and-forward (ablated)".into(),
        fnum(bcast_ms(presets::delta_store_and_forward(8, 8)), 2),
        fnum(lu_gf(presets::delta_store_and_forward(8, 8)), 2),
    ]);
    format!(
        "{t}\nShape check: store-and-forward pays the serial message time per hop,\n\
         so both the broadcast and the factorisation degrade on the same wires.\n"
    )
}

/// RES-1: the fault model exercised end to end — Young's optimal
/// checkpoint interval on the LU run, scheduler utilization under node
/// crashes, and WAN flows surviving (or stalling on) link outages.
/// Every number replays from the printed seed (`HPCC_FAULT_SEED`).
pub fn resilience(smoke: bool) -> String {
    use delta_mesh::sched::{consortium_workload, run, run_with_faults, Policy};
    use delta_mesh::{FaultPlan, MtbfModel};
    use des::faults::seed_from_env;
    use des::time::Dur;
    use nren_netsim::{FlowOutcome, LinkFault};

    let seed = seed_from_env(1992);
    let mut out = String::new();
    out.push_str(&format!(
        "Exhibit RES-1 — Fault injection and recovery (seed {seed}; set HPCC_FAULT_SEED to vary)\n\n"
    ));

    // --- 1. Checkpoint interval vs MTBF on the LU run (Young 1974). ---
    let (mesh, n, nb, trials) = if smoke {
        ((2, 4), 1_200, 32, 8)
    } else {
        ((4, 4), 4_000, 64, 48)
    };
    let machine = Machine::new(presets::delta(mesh.0, mesh.1));
    // Price one checkpoint, then sweep intervals around Young's optimum.
    let probe = lu2d::run_checkpointed(&machine, n, nb, 4);
    let base = lu2d::run(&machine, n, nb);
    let cost = (probe.result.seconds - base.seconds) / probe.ckpt_times_s.len().max(1) as f64;
    let mtbf_s = base.seconds * 0.4; // failures are a real hazard, not a tail event
    let opt = lu2d::young_optimal_interval(mtbf_s, cost);
    let factors = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let intervals: Vec<f64> = factors.iter().map(|f| f * opt).collect();
    let sweep = lu2d::resilience_sweep(&machine, n, nb, mtbf_s, &intervals, seed, trials);

    let mut t = Table::new(
        format!(
            "Checkpoint interval sweep — LU n={n} on {}x{} Delta model, MTBF {:.0} s, \
             ckpt cost {:.2} s",
            mesh.0, mesh.1, mtbf_s, cost
        ),
        &[
            "Interval (s)",
            "x Young opt",
            "Ckpts",
            "Fault-free (s)",
            "Mean w/ faults (s)",
            "Mean failures",
        ],
    );
    let best = sweep
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.mean_completion_s.total_cmp(&b.1.mean_completion_s))
        .map(|(i, _)| i)
        .unwrap();
    for (i, p) in sweep.iter().enumerate() {
        let mark = if i == best { " <- min" } else { "" };
        t.row(&[
            fnum(p.interval_s, 1),
            fnum(factors[i], 3),
            p.checkpoints.to_string(),
            fnum(p.run_seconds, 1),
            format!("{}{mark}", fnum(p.mean_completion_s, 1)),
            fnum(p.mean_failures, 2),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(&format!(
        "\nShape check: expected completion has an interior minimum near Young's\n\
         sqrt(2 x MTBF x cost) = {opt:.1} s — checkpoint too often and the I/O\n\
         dominates, too rarely and each failure rolls back too much work.\n\n"
    ));

    // --- 2. Space-sharing under node crashes. ---
    // Per-node MTBF chosen so the 528-node machine sees a crash every
    // half hour or so — a Delta-era hazard rate, not a meltdown.
    let (njobs, sched_mtbf_s, horizon_s) = if smoke {
        (80, 1_500_000, 4 * 3_600)
    } else {
        (300, 4_000_000, 12 * 3_600)
    };
    let jobs = consortium_workload(njobs, 14, 90.0, 1992);
    let plan = FaultPlan::seeded(
        seed,
        &MtbfModel::node_crashes(Dur::from_secs(sched_mtbf_s)),
        16 * 33,
        0,
        Dur::from_secs(horizon_s),
    );
    let mut t = Table::new(
        format!("Scheduler under node crashes — {njobs} consortium jobs, 16x33 mesh"),
        &[
            "Policy",
            "Utilization %",
            "Util lost %",
            "Jobs killed",
            "Nodes failed",
            "Unrunnable",
        ],
    );
    for policy in [Policy::Fcfs, Policy::Backfill] {
        let clean = run(16, 33, jobs.clone(), policy);
        let faulty = run_with_faults(16, 33, jobs.clone(), policy, &plan);
        assert!(
            faulty.utilization < clean.utilization,
            "faults must cost utilization"
        );
        t.row(&[
            format!("{policy:?} (fault-free {:.1}%)", clean.utilization * 100.0),
            fnum(faulty.utilization * 100.0, 1),
            fnum(faulty.utilization_lost_to_faults * 100.0, 2),
            faulty.jobs_killed.to_string(),
            faulty.nodes_failed.to_string(),
            faulty.unrunnable.len().to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nShape check: killed placements re-queue and re-run, so throughput survives\n\
         but utilization lands strictly below the fault-free run.\n\n",
    );

    // --- 3. WAN link outages: re-route or stall. ---
    let net = topologies::delta_consortium();
    let delta = net.site(topologies::DELTA_SITE).unwrap();
    let jpl = net.site("JPL").unwrap();
    let sim = FlowSim::new(&net);
    let spec = TransferSpec::new(jpl, delta, 200 << 20, SimTime::ZERO);
    let first_link = net.route(jpl, delta).unwrap().dirs[0] / 2;
    let quiet = sim.run(vec![spec.clone()])[0].duration().as_secs_f64();
    let mut t = Table::new(
        "WAN outage on the JPL -> Delta staging path (200 MB transfer)",
        &["Scenario", "Outcome", "Time (s)"],
    );
    t.row(&["healthy".into(), "completed".into(), fnum(quiet, 2)]);
    for (label, up_at) in [
        ("outage, repaired at 30 s", SimTime::from_secs_f64(30.0)),
        ("outage, never repaired", SimTime::MAX),
    ] {
        let fault = LinkFault {
            link: first_link,
            down_at: SimTime::from_secs_f64(0.5),
            up_at,
        };
        let (outcomes, _) = sim.run_with_faults(vec![spec.clone()], &[fault]).unwrap();
        match &outcomes[0] {
            FlowOutcome::Completed(r) => {
                t.row(&[
                    label.into(),
                    format!("completed via {} hops", r.hops),
                    fnum(r.duration().as_secs_f64(), 2),
                ]);
            }
            FlowOutcome::Stalled {
                delivered,
                stalled_at,
                ..
            } => {
                t.row(&[
                    label.into(),
                    format!("STALLED ({:.0} MB through)", delivered / (1 << 20) as f64),
                    format!("at {}", fnum(stalled_at.as_secs_f64(), 2)),
                ]);
            }
        }
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nShape check: live flows re-route around a cut when the graph allows it\n\
         and report Stalled — not a crash — when it partitions them.\n",
    );
    out
}

/// OBS-1: the tracing layer exercised end to end — a faulted LU-2D on
/// the mesh, the JPL -> Delta staging transfer under a WAN outage, and a
/// scheduler burst under node crashes, all recorded into one trace.
/// Writes `TRACE_chrome.json` (load in Perfetto / chrome://tracing: one
/// row per mesh node, channel, WAN flow, and link) and
/// `TRACE_summary.txt` (latency histograms, hottest links, per-node
/// busy-time breakdown).
pub fn trace(smoke: bool) -> String {
    use delta_mesh::sched::{consortium_workload, run_recorded, Policy};
    use delta_mesh::{FaultKind, FaultPlan, MtbfModel};
    use des::faults::seed_from_env;
    use des::time::Dur;
    use hpcc_trace::{MemRecorder, Recorder};
    use nren_netsim::LinkFault;
    use std::rc::Rc;

    let seed = seed_from_env(1992);
    let rec = Rc::new(MemRecorder::new());
    let mut out = String::new();
    out.push_str(&format!(
        "Exhibit OBS-1 — End-to-end trace (seed {seed}; load TRACE_chrome.json in Perfetto)\n\n"
    ));

    // --- 1. Faulted LU-2D on the mesh under full recording. ---
    let (mesh, n, nb) = if smoke {
        ((2, 4), 1_200, 32)
    } else {
        ((4, 4), 2_500, 32)
    };
    let machine = Machine::new(presets::delta(mesh.0, mesh.1));
    let mut plan = FaultPlan::none();
    plan.push(
        SimTime::from_secs_f64(0.01),
        FaultKind::LinkDown {
            link: 0,
            until: SimTime::from_secs_f64(0.05),
        },
    );
    plan.push(
        SimTime::from_secs_f64(0.02),
        FaultKind::NodeSlow {
            node: mesh.0 * mesh.1 - 1,
            factor: 4.0,
            until: SimTime::from_secs_f64(0.2),
        },
    );
    let lu = lu2d::run_traced(&machine, n, nb, &plan, Rc::clone(&rec) as Rc<dyn Recorder>);
    let elapsed_ns = lu.result.report.elapsed.nanos();
    // The invariant the acceptance test pins: every node's busy + idle
    // time sums exactly to the simulated elapsed time.
    for row in rec.node_breakdown(elapsed_ns) {
        assert_eq!(row.total_ns(), elapsed_ns, "node {} breakdown", row.thread);
    }
    out.push_str(&format!(
        "LU-2D n={n} nb={nb} on {}x{} mesh with a transient link outage and a\n\
         4x node slowdown: {:.2} GFLOPS over {:.3} s simulated.\n",
        mesh.0, mesh.1, lu.result.gflops, lu.result.seconds
    ));

    // --- 2. WAN staging transfer under an outage (repaired at 30 s). ---
    let net = topologies::delta_consortium();
    let delta = net.site(topologies::DELTA_SITE).unwrap();
    let jpl = net.site("JPL").unwrap();
    let sim = FlowSim::new(&net);
    let spec = TransferSpec::new(jpl, delta, 200 << 20, SimTime::ZERO);
    let first_link = net.route(jpl, delta).unwrap().dirs[0] / 2;
    let fault = LinkFault {
        link: first_link,
        down_at: SimTime::from_secs_f64(0.5),
        up_at: SimTime::from_secs_f64(30.0),
    };
    let (outcomes, _) = sim
        .run_with_faults_recorded(vec![spec], &[fault], &*rec)
        .unwrap();
    match &outcomes[0] {
        nren_netsim::FlowOutcome::Completed(r) => out.push_str(&format!(
            "WAN: 200 MB JPL -> Delta with the first-hop link cut at 0.5 s,\n\
             repaired at 30 s: completed via {} hops in {:.2} s.\n",
            r.hops,
            r.duration().as_secs_f64()
        )),
        nren_netsim::FlowOutcome::Stalled { .. } => out.push_str("WAN: transfer stalled.\n"),
    }

    // --- 3. Scheduler burst under node crashes. ---
    let njobs = if smoke { 60 } else { 200 };
    let jobs = consortium_workload(njobs, 14, 60.0, 1992);
    let splan = FaultPlan::seeded(
        seed,
        &MtbfModel::node_crashes(Dur::from_secs(1_500_000)),
        16 * 33,
        0,
        Dur::from_secs(4 * 3_600),
    );
    let sr = run_recorded(16, 33, jobs, Policy::Backfill, &splan, &*rec);
    out.push_str(&format!(
        "Scheduler: {njobs} jobs, backfill, {} killed by crashes, \
         utilization {:.1}%.\n\n",
        sr.jobs_killed,
        sr.utilization * 100.0
    ));

    // --- Export both artifacts. ---
    let chrome = rec.to_chrome_json();
    hpcc_trace::json::parse(&chrome).expect("chrome exporter must emit valid JSON");
    let summary = rec.metrics_summary(Some(elapsed_ns));
    out.push_str(&summary);
    out.push('\n');
    for (path, content) in [
        ("TRACE_chrome.json", &chrome),
        ("TRACE_summary.txt", &summary),
    ] {
        match std::fs::write(path, content) {
            Ok(()) => out.push_str(&format!("wrote {path}\n")),
            Err(e) => out.push_str(&format!("could not write {path}: {e}\n")),
        }
    }
    out.push_str(&format!(
        "({} events on {} tracks)\n",
        rec.len(),
        rec.track_count()
    ));
    out
}

/// ASTA kernel profile: efficiency of each simulated kernel class on the
/// same 64-node Delta — the "not all codes scale" summary figure.
pub fn kernel_profile() -> String {
    use hpcc_kernels::sim::{cgsim, summa};
    let machine = Machine::new(presets::delta(8, 8));
    let peak = machine.config().peak_flops() / 1e9;
    let mut t = Table::new(
        "ASTA kernel profile — 64-node Delta model, % of machine peak sustained",
        &["Kernel", "GFLOPS", "% of peak", "Binding constraint"],
    );
    let summa = summa::run(&machine, 4_000, 64);
    t.row(&[
        "SUMMA matmul".into(),
        fnum(summa.gflops, 2),
        fnum(summa.efficiency * 100.0, 1),
        "dgemm kernel rate".into(),
    ]);
    let lu = lu2d::run(&machine, 4_000, 32);
    t.row(&[
        "LINPACK LU".into(),
        fnum(lu.gflops, 2),
        fnum(lu.efficiency * 100.0, 1),
        "panel critical path".into(),
    ]);
    let st = stencil::run_model(&machine, 2048, 50);
    t.row(&[
        "Jacobi stencil".into(),
        fnum(st.gflops, 2),
        fnum(st.gflops / peak * 100.0, 1),
        "memory-bound sweeps".into(),
    ]);
    let cg = cgsim::run(&machine, 1024, 50);
    t.row(&[
        "Conjugate gradient".into(),
        fnum(cg.gflops, 2),
        fnum(cg.gflops / peak * 100.0, 1),
        "allreduce latency".into(),
    ]);
    let ff = fftsim::run(&machine, 1 << 18);
    t.row(&[
        "Distributed FFT".into(),
        fnum(ff.gflops, 2),
        fnum(ff.gflops / peak * 100.0, 1),
        "all-to-all transpose".into(),
    ]);
    format!(
        "{t}\nShape check: a strict ordering SUMMA > LU >> stencil/CG/FFT — the\n\
         spread the ASTA software programme existed to attack.\n"
    )
}

/// The program timeline with the out-year gaps quantified.
pub fn timeline() -> String {
    use hpcc_core::timeline::{goals_1996, MILESTONES};
    let mut out = String::from("Program timeline (reconstructed from the deck's narrative):\n");
    for m in MILESTONES {
        out.push_str(&format!("  {}  [{:?}] {}\n", m.year, m.thread, m.what));
    }
    out.push_str(&format!(
        "\nDistance to the out-year goals at the time of the talk:\n  \
         teraops: {:.0}x beyond the Delta's 13 GFLOPS LINPACK\n  \
         gigabit NREN: {:.0}x beyond the NSFnet T3 backbone\n",
        goals_1996::compute_gap_from_delta(),
        goals_1996::network_gap_from_t3()
    ));
    out
}

/// The full exhibit list with reproduction status.
pub fn index() -> String {
    let mut t = Table::new(
        "Exhibit index (hpcc_core::exhibits registry)",
        &["Id", "Kind", "Report cmd", "Bench", "Title"],
    );
    for e in hpcc_core::registry() {
        t.row(&[
            e.id.to_string(),
            format!("{:?}", e.kind),
            e.report_cmd.to_string(),
            e.bench.unwrap_or("-").to_string(),
            e.title.chars().take(58).collect(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funding_report_is_exact() {
        let s = funding();
        assert!(s.contains("654.8"));
        assert!(s.contains("802.9"));
        assert!(s.contains("232.2"));
        assert!(s.contains("exact match required"));
    }

    #[test]
    fn goals_and_responsibilities_render() {
        assert!(goals().contains("Extend U.S. leadership"));
        let r = responsibilities();
        assert!(r.contains("DARPA"));
        assert!(r.contains("teraops"));
    }

    #[test]
    fn delta_peak_matches_paper() {
        let s = delta_peak();
        assert!(s.contains("528"));
        assert!(s.contains("32.0"), "{s}");
    }

    #[test]
    fn components_sum_visible() {
        let s = components();
        assert!(s.contains("HPCS"));
        assert!(s.contains("reconstruction"));
    }

    #[test]
    fn index_covers_registry() {
        let s = index();
        for e in hpcc_core::registry() {
            assert!(s.contains(e.id), "{} missing", e.id);
        }
    }

    #[test]
    fn casa_table_shows_window_effect() {
        let s = casa();
        assert!(s.contains("64 KB"));
        assert!(s.contains("unlimited"));
    }

    #[test]
    fn nren_upgrade_monotone() {
        let s = nren_upgrade();
        assert!(s.contains("T1"));
        assert!(s.contains("Gigabit"));
    }

    // The heavyweight exhibits (delta_linpack, linpack_sweep, mpp_series,
    // consortium_net, cas, grand_challenges) are covered by integration
    // tests and the report binary to keep unit-test time bounded.
}
