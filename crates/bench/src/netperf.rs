//! WAN flow-engine throughput: the incremental max-min solver against
//! the full-recompute baseline, and the paper's T1→T3→gigabit upgrade
//! story replayed with modern fat-tree/dragonfly fabrics on each coast.
//! The `report bench-net` command prints the tables and writes
//! `BENCH_net.json`; `--smoke` runs CI-sized scales with the per-event
//! equivalence verifier enabled — every resolve is checked against the
//! reference `maxmin_rates` re-solve to 1e-9 relative.
//!
//! Two scenarios:
//!
//! * `upgrade` — 16 west-fabric hosts each push a file to an east-
//!   fabric host across the consortium WAN, swept over the WAN tier
//!   from T1 to 400G. The fabrics are modern either way; until the
//!   long-haul tier catches up, the WAN is the whole story — the same
//!   shape as the 1992 NREN argument, three decades of tiers later.
//! * `scale` — a 128-host fat-tree fan-out (16 senders, heavy-tailed
//!   Pareto sizes) at 10k/100k/1M concurrent flows. The baseline is a
//!   full max-min re-solve of the whole roster on every event
//!   (`SolverMode::Global`) with the same aggregation config, so the
//!   ratio isolates the incremental solver. The baseline runs at the
//!   scales it can finish; at 1M flows only the incremental engine is
//!   measured, and the speedup column is the events/sec ratio against
//!   the baseline at the same flow count.

use des::rng::Rng;
use des::time::SimTime;
use nren_netsim::{
    fabric_to_wan, fat_tree, workload, FlowConfig, FlowSim, LinkClass, SolverMode, TransferSpec,
};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured network-engine configuration.
pub struct NetRow {
    /// `"upgrade"` or `"scale"`.
    pub scenario: &'static str,
    /// WAN tier label, or the solver under test.
    pub label: String,
    /// Concurrent transfers offered.
    pub flows: usize,
    /// Simulator events processed (arrivals batched per instant).
    pub events: u64,
    /// Wall time, milliseconds.
    pub ms: f64,
    /// events / wall second — the figure of merit for `scale`.
    pub events_per_sec: f64,
    /// Virtual time of the last completion.
    pub makespan_s: f64,
    /// Aggregate goodput, MB/s of virtual time — the figure of merit
    /// for `upgrade`.
    pub mbytes_per_sec: f64,
    /// Peak concurrent flows the engine actually held.
    pub peak_flows: u64,
    /// Mean affected-set size per resolve.
    pub mean_dirty: f64,
    /// Resolves that fell back to a full re-solve.
    pub full_resolves: u64,
    /// events/sec over the baseline at the same scale (0 = n/a).
    pub speedup: f64,
}

/// The incremental engine as shipped: affected-set solver plus
/// short-flow aggregation under 16 MiB.
fn incremental_cfg(verify: bool) -> FlowConfig {
    FlowConfig {
        solver: SolverMode::Incremental {
            full_fraction: 0.25,
        },
        aggregate_below: 16 << 20,
        verify,
    }
}

/// The full-recompute baseline: every event re-solves max-min rates
/// for the whole roster (`SolverMode::Global`). Aggregation is kept
/// identical to the incremental config so the events/sec ratio
/// isolates the solver; the legacy engine — global re-solve over every
/// *individual* flow — is strictly slower than this baseline.
fn baseline_cfg() -> FlowConfig {
    FlowConfig {
        solver: SolverMode::Global,
        aggregate_below: 16 << 20,
        verify: false,
    }
}

fn run_once(
    net: &nren_netsim::Net,
    specs: Vec<TransferSpec>,
    cfg: FlowConfig,
    scenario: &'static str,
    label: String,
) -> NetRow {
    let flows = specs.len();
    let bytes: f64 = specs.iter().map(|s| s.bytes as f64).sum();
    let t = Instant::now();
    let (outcomes, stats) = FlowSim::with_config(net, cfg)
        .run_with_faults(specs, &[])
        .expect("fault-free run cannot error");
    let wall = t.elapsed().as_secs_f64().max(1e-9);
    eprintln!("  [{scenario}] {label} @ {flows}: {:.1}s", wall);
    assert_eq!(outcomes.len(), flows, "{scenario}/{label}: lost flows");
    let makespan = stats.makespan.as_secs_f64();
    NetRow {
        scenario,
        label,
        flows,
        events: stats.solver.events,
        ms: wall * 1e3,
        events_per_sec: stats.solver.events as f64 / wall,
        makespan_s: makespan,
        mbytes_per_sec: bytes / makespan.max(1e-9) / 1e6,
        peak_flows: stats.solver.peak_flows as u64,
        mean_dirty: stats.solver.mean_dirty(),
        full_resolves: stats.solver.full_resolves,
        speedup: 0.0,
    }
}

/// The upgrade story: coast-to-coast transfers between modern fabrics,
/// WAN tier swept from the 1992 starting point to 400G.
fn upgrade_rows(smoke: bool) -> Vec<NetRow> {
    let tiers = [
        LinkClass::T1,
        LinkClass::T3,
        LinkClass::Gigabit,
        LinkClass::Gig100,
        LinkClass::Gig400,
    ];
    let bytes: u64 = if smoke { 1 << 20 } else { 16 << 20 };
    tiers
        .iter()
        .map(|&wan| {
            let (net, west, east) = fabric_to_wan(4, wan, LinkClass::Gig400);
            let specs: Vec<TransferSpec> = west
                .iter()
                .zip(&east)
                .map(|(&w, &e)| TransferSpec::new(w, e, bytes, SimTime::ZERO))
                .collect();
            run_once(
                &net,
                specs,
                incremental_cfg(smoke),
                "upgrade",
                wan.label().to_string(),
            )
        })
        .collect()
}

/// Fan-out workload on a 128-host fat-tree: heavy-tailed flow sizes,
/// everything arriving at t=0, so `flows` is also the peak concurrency.
fn fan_out(fab: &nren_netsim::Fabric, flows: usize) -> Vec<TransferSpec> {
    let mut rng = Rng::new(0x9e37);
    workload::fan_out_traffic(&fab.hosts, 16, &mut rng, flows, 1e6, SimTime::ZERO)
}

/// The scale sweep: baseline where it can finish, incremental
/// throughout, speedup computed at matched flow counts.
fn scale_rows(smoke: bool) -> Vec<NetRow> {
    let fab = fat_tree(8, LinkClass::Gigabit, LinkClass::Gig100, "f.");
    let (baseline_scales, incr_scales): (&[usize], &[usize]) = if smoke {
        (&[2_000], &[2_000])
    } else {
        (&[10_000, 100_000], &[10_000, 100_000, 1_000_000])
    };
    let mut rows = Vec::new();
    for &n in baseline_scales {
        rows.push(run_once(
            &fab.net,
            fan_out(&fab, n),
            baseline_cfg(),
            "scale",
            "global (baseline)".into(),
        ));
    }
    for &n in incr_scales {
        // Smoke keeps the per-event verifier on: each resolve is
        // checked against the reference solver — the equivalence gate.
        let mut r = run_once(
            &fab.net,
            fan_out(&fab, n),
            incremental_cfg(smoke),
            "scale",
            if smoke {
                "incremental (verified)".into()
            } else {
                "incremental".into()
            },
        );
        if let Some(base) = rows.iter().find(|b| {
            b.scenario == "scale"
                && b.flows == n
                && b.speedup == 0.0
                && b.label.starts_with("global")
        }) {
            r.speedup = r.events_per_sec / base.events_per_sec;
        }
        assert_eq!(r.peak_flows as usize, n, "engine dropped concurrency");
        rows.push(r);
    }
    rows
}

/// The sweep. `smoke` shrinks every scale to CI size and turns on the
/// per-event incremental-vs-reference verifier; the full run asserts
/// the headline claims — 1M concurrent flows held, and ≥10× baseline
/// events/sec at the largest scale the baseline finishes.
pub fn snapshot(smoke: bool) -> Vec<NetRow> {
    let mut rows = upgrade_rows(smoke);
    let scale = scale_rows(smoke);
    if !smoke {
        let top = scale
            .iter()
            .filter(|r| r.speedup > 0.0)
            .max_by_key(|r| r.flows)
            .expect("scale sweep lost its baseline comparison");
        assert!(
            top.speedup >= 10.0,
            "incremental engine only {:.1}x over full recompute at {} flows",
            top.speedup,
            top.flows
        );
        let million = scale.iter().find(|r| r.flows == 1_000_000).unwrap();
        assert_eq!(million.peak_flows, 1_000_000);
    }
    rows.extend(scale);
    rows
}

/// Human-readable tables, one per scenario.
pub fn table(rows: &[NetRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "WAN upgrade story (modern fabrics, WAN tier swept)");
    let _ = writeln!(s, "{:-<72}", "");
    let _ = writeln!(
        s,
        "{:>18} {:>6} {:>12} {:>12} {:>12}",
        "WAN tier", "flows", "makespan s", "MB/s", "events"
    );
    for r in rows.iter().filter(|r| r.scenario == "upgrade") {
        let _ = writeln!(
            s,
            "{:>18} {:>6} {:>12.2} {:>12.2} {:>12}",
            r.label, r.flows, r.makespan_s, r.mbytes_per_sec, r.events
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "Flow-engine scaling (128-host fat-tree fan-out)");
    let _ = writeln!(s, "{:-<88}", "");
    let _ = writeln!(
        s,
        "{:>24} {:>8} {:>9} {:>10} {:>12} {:>10} {:>8}",
        "solver", "flows", "events", "ms", "events/s", "dirty/ev", "speedup"
    );
    for r in rows.iter().filter(|r| r.scenario == "scale") {
        let speed = if r.speedup > 0.0 {
            format!("{:.1}x", r.speedup)
        } else {
            "-".into()
        };
        let _ = writeln!(
            s,
            "{:>24} {:>8} {:>9} {:>10.1} {:>12.0} {:>10.1} {:>8}",
            r.label, r.flows, r.events, r.ms, r.events_per_sec, r.mean_dirty, speed
        );
    }
    s
}

/// The JSON snapshot (hand-rolled — the harness carries no serde).
pub fn json(rows: &[NetRow]) -> String {
    let mut s = String::from("{\n  \"bench\": \"net\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"label\": \"{}\", \"flows\": {}, \
             \"events\": {}, \"ms\": {:.3}, \"events_per_sec\": {:.1}, \
             \"makespan_s\": {:.6}, \"mbytes_per_sec\": {:.3}, \
             \"peak_flows\": {}, \"mean_dirty\": {:.2}, \
             \"full_resolves\": {}, \"speedup\": {:.2}}}",
            r.scenario,
            r.label,
            r.flows,
            r.events,
            r.ms,
            r.events_per_sec,
            r.makespan_s,
            r.mbytes_per_sec,
            r.peak_flows,
            r.mean_dirty,
            r.full_resolves,
            r.speedup
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upgrade_story_monotone_in_wan_tier() {
        let rows = upgrade_rows(true);
        assert_eq!(rows.len(), 5);
        for w in rows.windows(2) {
            assert!(
                w[1].mbytes_per_sec >= w[0].mbytes_per_sec * 0.999,
                "{} slower than {}",
                w[1].label,
                w[0].label
            );
        }
        // T1 cannot move 16 coast-to-coast megabytes quickly; 400G can.
        assert!(rows[0].makespan_s > rows[4].makespan_s * 10.0);
    }

    #[test]
    fn smoke_scale_rows_verify_and_compare() {
        let rows = scale_rows(true);
        assert_eq!(rows.len(), 2);
        let base = &rows[0];
        let incr = &rows[1];
        assert!(base.label.starts_with("global"));
        assert!(incr.speedup > 0.0, "speedup not computed");
        // Both engines deliver the same bytes in the same virtual time
        // (aggregation and lazy drains are schedule-preserving).
        let rel = (base.makespan_s - incr.makespan_s).abs() / base.makespan_s;
        assert!(rel < 1e-6, "makespans diverged: {rel}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![NetRow {
            scenario: "scale",
            label: "incremental".into(),
            flows: 1000,
            events: 2000,
            ms: 12.0,
            events_per_sec: 166_000.0,
            makespan_s: 42.0,
            mbytes_per_sec: 55.5,
            peak_flows: 1000,
            mean_dirty: 17.2,
            full_resolves: 3,
            speedup: 25.0,
        }];
        let j = json(&rows);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = table(&rows);
        assert!(t.contains("events/s") && t.contains("incremental"));
    }
}
