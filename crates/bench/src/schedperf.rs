//! Scheduler-service throughput: wall-clock submissions/sec of
//! `delta_mesh::sched::service` driving the 528-node Delta through a
//! sustained multi-tenant stream. The `report bench-sched` command
//! prints the table and writes `BENCH_sched.json`; `--smoke` runs
//! CI-sized streams and first asserts the batch-equivalence gate
//! in-exhibit (a zero-fault, unlimited-config service run must replay
//! the batch scheduler bit-for-bit).
//!
//! Three scenarios, each a different operating regime:
//!
//! - `steady` — 0.6x offered load (under the packable capacity of the
//!   heavy-tailed shape mix), no faults: the sustained-rate headline
//!   (the full run pushes 1,000,000 submissions end-to-end through
//!   admission, placement, and completion).
//! - `overload-2x` — 2.0x offered load with bounded queues and finite
//!   tenant quotas: the service must stay bounded and shed with typed
//!   errors rather than grow its queues.
//! - `faulted` — 0.6x load under a seeded MTBF crash plan: killed jobs
//!   retry under capped, jittered backoff, and shapes the shrunken
//!   mesh can never host again are retired as `Unrunnable`.

use delta_mesh::sched::service::{self, assert_batch_equivalent, ServiceConfig, ServiceReport};
use delta_mesh::{service_workload, FaultPlan, MtbfModel, Policy};
use des::time::Dur;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured scenario.
pub struct SchedRow {
    /// Scenario name (`steady`, `overload-2x`, `faulted`).
    pub scenario: &'static str,
    /// Submissions in the stream.
    pub subs: usize,
    /// Distinct tenants.
    pub tenants: usize,
    /// Offered load as a fraction of machine capacity.
    pub load: f64,
    /// Wall time, milliseconds.
    pub ms: f64,
    /// Submissions processed per wall second — the figure of merit.
    pub subs_per_sec: f64,
    /// Simulator events dispatched.
    pub events: u64,
    pub completed: usize,
    pub failed: usize,
    /// Load-shedding rejections across the three priority tiers.
    pub shed: u64,
    pub quota_rejects: u64,
    pub unrunnable: u64,
    pub retries: u64,
    /// Busy node-time over total node-time.
    pub utilization: f64,
    pub mean_wait_s: f64,
    pub p99_wait_s: f64,
    /// High-water mark of the central pending queue.
    pub max_pending: usize,
    /// High-water mark across submission shards.
    pub max_shard_depth: usize,
}

/// One scenario: a workload recipe plus the service config and fault
/// model it runs under.
///
/// Offered-load calibration: the heavy-tailed shape mix (up to 16x16
/// sub-meshes on the 16x33 machine) caps achievable utilization near
/// two thirds of the node count — fragmentation, not the scheduler, is
/// the binding constraint. "Under capacity" therefore means ~0.6x, and
/// the 2.0x overload point is ~3x the packable rate.
struct Scenario {
    name: &'static str,
    subs: usize,
    tenants: usize,
    load: f64,
    cfg: ServiceConfig,
    /// `Some(k)` draws node crashes from an MTBF of `k x` the stream's
    /// arrival span, so the expected dead-node fraction (~528/k of the
    /// machine) is the same at smoke and full scale.
    fault_mtbf_factor: Option<f64>,
}

fn steady(subs: usize) -> Scenario {
    Scenario {
        name: "steady",
        subs,
        tenants: 4096,
        load: 0.6,
        cfg: ServiceConfig::new(16, 33),
        fault_mtbf_factor: None,
    }
}

fn overload(subs: usize, cap: usize) -> Scenario {
    // Bounded queues and finite quotas: under 2x offered load the
    // backlog must hit the caps and shed, not grow without bound. The
    // cap scales with the stream so the shed tiers engage at smoke size
    // too, not only after a 300k-submission backlog.
    let mut cfg = ServiceConfig::new(16, 33);
    cfg.pending_cap = cap;
    cfg.shard_cap = cap;
    cfg.quota_default = 256;
    Scenario {
        name: "overload-2x",
        subs,
        tenants: 1024,
        load: 2.0,
        cfg,
        fault_mtbf_factor: None,
    }
}

fn faulted(subs: usize) -> Scenario {
    // MTBF = 20x the stream span: ~5% of the 528 nodes die mid-run.
    Scenario {
        name: "faulted",
        subs,
        tenants: 512,
        load: 0.6,
        cfg: ServiceConfig::new(16, 33),
        fault_mtbf_factor: Some(20.0),
    }
}

fn measure(sc: &Scenario) -> SchedRow {
    // Workload generation is untimed; only the service run is measured.
    let tr = service_workload(
        sc.subs,
        sc.tenants,
        sc.load,
        sc.cfg.rows,
        sc.cfg.cols,
        0x5EED,
    );
    let plan = match sc.fault_mtbf_factor {
        Some(k) => {
            // The crash horizon is the arrival span itself: failures land
            // while the stream is live, not in the drain tail.
            let span_s = tr
                .subs
                .last()
                .map_or(0.0, |s| s.arrival.nanos() as f64 / 1e9);
            FaultPlan::seeded(
                0xFA11,
                &MtbfModel::node_crashes(Dur::from_secs_f64(k * span_s)),
                sc.cfg.rows * sc.cfg.cols,
                0,
                Dur::from_secs_f64(span_s),
            )
        }
        None => FaultPlan::none(),
    };
    let t = Instant::now();
    let r = service::run_with_faults(&tr, &sc.cfg, &plan);
    let wall = t.elapsed().as_secs_f64().max(1e-9);
    row_from(sc, &r, wall)
}

fn row_from(sc: &Scenario, r: &ServiceReport, wall: f64) -> SchedRow {
    SchedRow {
        scenario: sc.name,
        subs: sc.subs,
        tenants: sc.tenants,
        load: sc.load,
        ms: wall * 1e3,
        subs_per_sec: sc.subs as f64 / wall,
        events: r.events,
        completed: r.completed,
        failed: r.failed,
        shed: r.shed_total(),
        quota_rejects: r.quota_rejects,
        unrunnable: r.unrunnable,
        retries: r.retries,
        utilization: r.utilization,
        mean_wait_s: r.mean_wait.nanos() as f64 / 1e9,
        p99_wait_s: r.p99_wait.nanos() as f64 / 1e9,
        max_pending: r.max_pending,
        max_shard_depth: r.max_shard_depth,
    }
}

/// The batch-equivalence gate: a zero-fault service run under the
/// unlimited config must replay the batch scheduler bit-for-bit, under
/// both placement policies. Panics on any divergence; run by `--smoke`
/// so CI trips before a drift can ship.
fn assert_equivalence_gate() {
    let tr = service_workload(2_000, 16, 0.7, 16, 33, 0xE0);
    assert_batch_equivalent(&tr, 16, 33, Policy::Fcfs);
    assert_batch_equivalent(&tr, 16, 33, Policy::Backfill);
}

/// Run the three scenarios. `smoke` shrinks the streams to CI size and
/// runs the equivalence gate first; the full run pushes 1,000,000
/// submissions through the steady scenario.
pub fn snapshot(smoke: bool) -> Vec<SchedRow> {
    if smoke {
        assert_equivalence_gate();
    }
    let scenarios = if smoke {
        vec![steady(20_000), overload(10_000, 256), faulted(10_000)]
    } else {
        vec![
            steady(1_000_000),
            overload(300_000, 2_048),
            faulted(200_000),
        ]
    };
    let rows: Vec<SchedRow> = scenarios.iter().map(measure).collect();
    // The overload contract, asserted on every run: bounded queues held
    // their caps and the excess was shed with typed errors.
    let (ov, sc) = rows
        .iter()
        .zip(&scenarios)
        .find(|(r, _)| r.scenario == "overload-2x")
        .unwrap();
    let cap = sc.cfg.pending_cap;
    assert!(
        ov.max_pending <= cap,
        "overload run burst the pending cap: {} > {cap}",
        ov.max_pending
    );
    assert!(
        ov.shed > 0,
        "2x overload shed nothing — the load-shedding tiers are not engaging"
    );
    rows
}

/// Human-readable table.
pub fn table(rows: &[SchedRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Scheduler service throughput (multi-tenant stream on the 16x33 Delta)"
    );
    let _ = writeln!(s, "{:-<100}", "");
    let _ = writeln!(
        s,
        "{:>11} {:>9} {:>6} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7} {:>6} {:>9} {:>8}",
        "scenario",
        "subs",
        "load",
        "subs/s",
        "completed",
        "shed",
        "quota",
        "retries",
        "failed",
        "util",
        "p99 wait",
        "ms"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>11} {:>9} {:>5.2}x {:>9.0} {:>9} {:>8} {:>7} {:>7} {:>7} {:>5.1}% {:>8.1}s {:>8.0}",
            r.scenario,
            r.subs,
            r.load,
            r.subs_per_sec,
            r.completed,
            r.shed,
            r.quota_rejects,
            r.retries,
            r.failed,
            r.utilization * 100.0,
            r.p99_wait_s,
            r.ms
        );
    }
    let _ = writeln!(
        s,
        "\nEvery submission reaches exactly one terminal state; queue high-water\n\
         marks stay within the configured caps (overload contract asserted)."
    );
    s
}

/// The JSON snapshot (hand-rolled — the harness carries no serde).
pub fn json(rows: &[SchedRow]) -> String {
    let mut s = String::from("{\n  \"bench\": \"sched\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"subs\": {}, \"tenants\": {}, \"load\": {:.2}, \
             \"ms\": {:.3}, \"subs_per_sec\": {:.1}, \"events\": {}, \"completed\": {}, \
             \"failed\": {}, \"shed\": {}, \"quota_rejects\": {}, \"unrunnable\": {}, \
             \"retries\": {}, \"utilization\": {:.4}, \"mean_wait_s\": {:.3}, \
             \"p99_wait_s\": {:.3}, \"max_pending\": {}, \"max_shard_depth\": {}}}",
            r.scenario,
            r.subs,
            r.tenants,
            r.load,
            r.ms,
            r.subs_per_sec,
            r.events,
            r.completed,
            r.failed,
            r.shed,
            r.quota_rejects,
            r.unrunnable,
            r.retries,
            r.utilization,
            r.mean_wait_s,
            r.p99_wait_s,
            r.max_pending,
            r.max_shard_depth
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let sc = overload(100, 64);
        let tr = service_workload(100, 8, 2.0, 16, 33, 7);
        let r = service::run(&tr, &sc.cfg);
        let rows = vec![row_from(&sc, &r, 0.01)];
        let j = json(&rows);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let t = table(&rows);
        assert!(t.contains("subs/s") && t.contains("overload-2x"));
    }

    #[test]
    fn equivalence_gate_passes() {
        assert_equivalence_gate();
    }
}
