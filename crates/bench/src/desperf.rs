//! DES engine throughput: wall-clock events/sec of the sharded
//! conservative runtime against the legacy single-queue engine, swept
//! over mesh size × lane count. The `report bench-des` command prints
//! the table and writes `BENCH_des.json`; `--smoke` runs a small sweep
//! and additionally asserts single-lane bit-identity in-exhibit.
//!
//! The workload is a halo exchange with a long-range partner per node:
//! nearest-neighbour traffic keeps every lane busy, and the cross-mesh
//! messages are where the engines genuinely differ — the legacy
//! wormhole model walks the whole route to reserve channels (O(hops)
//! per message, and routes on a 250×400 mesh run to hundreds of hops),
//! while the sharded runtime times cross-lane messages analytically in
//! O(1). Per-lane calendars and the allocation-free lane executor do
//! the rest.

use delta_mesh::{presets, FaultPlan, Kernel, Machine, Node};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured (mesh, engine, lanes) configuration.
pub struct DesRow {
    /// Mesh shape.
    pub rows: usize,
    pub cols: usize,
    /// Event-engine lanes (1 = the legacy single-queue engine).
    pub lanes: usize,
    /// Halo steps the workload ran.
    pub steps: usize,
    /// Simulator events dispatched across all lanes.
    pub events: u64,
    /// Wall time, milliseconds.
    pub ms: f64,
    /// events / wall second — the figure of merit.
    pub events_per_sec: f64,
}

/// Rank of the transpose-style long-range partner: half the mesh away
/// in both dimensions, the communication shape of a 2-D FFT or block
/// transpose. Applying it twice returns to the start only when both
/// extents are even, so the inverse is computed explicitly.
fn far_partner(me: usize, rows: usize, cols: usize) -> usize {
    let (r, c) = (me / cols, me % cols);
    ((r + rows / 2) % rows) * cols + (c + cols / 2) % cols
}

fn far_inverse(me: usize, rows: usize, cols: usize) -> usize {
    let (r, c) = (me / cols, me % cols);
    ((r + rows - rows / 2) % rows) * cols + (c + cols - cols / 2) % cols
}

/// Halo exchange plus one long-range (transpose) partner, repeated
/// `steps` times. Results are timing-insensitive (exact source/tag
/// receive filters, no timeouts), so every engine and lane count must
/// agree on the outputs.
async fn workload(node: Node, rows: usize, cols: usize, steps: usize) -> f64 {
    let me = node.rank();
    let (r, c) = (me / cols, me % cols);
    let mut nbrs = Vec::new();
    if r > 0 {
        nbrs.push(me - cols);
    }
    if r + 1 < rows {
        nbrs.push(me + cols);
    }
    if c > 0 {
        nbrs.push(me - 1);
    }
    if c + 1 < cols {
        nbrs.push(me + 1);
    }
    let far = far_partner(me, rows, cols);
    let near = far_inverse(me, rows, cols);
    let mut acc = 0.0;
    for s in 0..steps {
        node.compute(Kernel::Stencil, 2.0e4).await;
        for &nb in &nbrs {
            node.send_f64s(nb, s as u64, &[me as f64]).await;
        }
        node.send_f64s(far, 1_000 + s as u64, &[(me * 3) as f64])
            .await;
        for &nb in &nbrs {
            acc += node.recv_f64s(Some(nb), Some(s as u64)).await[0];
        }
        acc += node.recv_f64s(Some(near), Some(1_000 + s as u64)).await[0];
    }
    acc
}

fn measure(rows: usize, cols: usize, lanes: usize, steps: usize) -> DesRow {
    let m = Machine::new(presets::delta(rows, cols));
    // Best-of-2 damps scheduler noise; a single rep made the biggest
    // configs swing ±15% run to run.
    let reps = 2;
    let mut best = f64::MAX;
    let mut events = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let (_, rep) = if lanes <= 1 {
            m.run(|node| workload(node, rows, cols, steps))
        } else {
            m.run_sharded(lanes, |node| workload(node, rows, cols, steps))
        };
        best = best.min(t.elapsed().as_secs_f64().max(1e-9));
        events = rep.events;
    }
    DesRow {
        rows,
        cols,
        lanes,
        steps,
        events,
        ms: best * 1e3,
        events_per_sec: events as f64 / best,
    }
}

/// Single-lane bit-identity gate: the window runtime forced through one
/// lane must reproduce the legacy engine exactly — same outputs, same
/// report, down to elapsed virtual time and event count. Panics on any
/// mismatch; run by `--smoke` so CI trips before a divergence can ship.
fn assert_single_lane_identity(rows: usize, cols: usize, steps: usize) {
    let m = Machine::new(presets::delta(rows, cols));
    let plan = FaultPlan::none();
    let (legacy_out, legacy_rep) =
        m.run_with_faults(&plan, |node| workload(node, rows, cols, steps));
    let (win_out, win_rep) =
        m.run_windowed_exact(1, &plan, |node| workload(node, rows, cols, steps));
    assert_eq!(
        legacy_out, win_out,
        "single-lane window runtime diverged from the legacy engine (outputs)"
    );
    assert_eq!(
        legacy_rep, win_rep,
        "single-lane window runtime diverged from the legacy engine (report)"
    );
}

/// The sweep: mesh sizes from the 528-node Delta to past 100k nodes,
/// lane counts 1..8. `smoke` restricts to the Delta and two lane counts
/// (CI-sized) and runs the bit-identity gate first.
pub fn snapshot(smoke: bool) -> Vec<DesRow> {
    // (rows, cols, halo steps): fewer steps as the mesh grows, so every
    // configuration finishes in seconds even on the legacy engine.
    let sizes: &[(usize, usize, usize)] = if smoke {
        &[(16, 33, 2)]
    } else {
        &[(16, 33, 8), (64, 64, 4), (128, 128, 2), (250, 400, 2)]
    };
    let lane_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    if smoke {
        assert_single_lane_identity(16, 33, 2);
    }
    let mut rows = Vec::new();
    for &(r, c, steps) in sizes {
        for &lanes in lane_counts {
            rows.push(measure(r, c, lanes, steps));
        }
    }
    rows
}

/// Human-readable table with per-size speedup over the lanes=1 baseline.
pub fn table(rows: &[DesRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "DES engine throughput (halo + long-range workload)");
    let _ = writeln!(s, "{:-<72}", "");
    let _ = writeln!(
        s,
        "{:>9} {:>9} {:>6} {:>6} {:>10} {:>10} {:>12} {:>8}",
        "mesh", "nodes", "lanes", "steps", "events", "ms", "events/s", "speedup"
    );
    for r in rows {
        let base = rows
            .iter()
            .find(|b| b.rows == r.rows && b.cols == r.cols && b.lanes == 1)
            .map_or(r.events_per_sec, |b| b.events_per_sec);
        let _ = writeln!(
            s,
            "{:>9} {:>9} {:>6} {:>6} {:>10} {:>10.1} {:>12.0} {:>7.2}x",
            format!("{}x{}", r.rows, r.cols),
            r.rows * r.cols,
            r.lanes,
            r.steps,
            r.events,
            r.ms,
            r.events_per_sec,
            r.events_per_sec / base
        );
    }
    s
}

/// The JSON snapshot (hand-rolled — the harness carries no serde).
pub fn json(rows: &[DesRow]) -> String {
    let mut s = String::from("{\n  \"bench\": \"des\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"rows\": {}, \"cols\": {}, \"nodes\": {}, \"lanes\": {}, \
             \"steps\": {}, \"events\": {}, \"ms\": {:.3}, \"events_per_sec\": {:.1}}}",
            r.rows,
            r.cols,
            r.rows * r.cols,
            r.lanes,
            r.steps,
            r.events,
            r.ms,
            r.events_per_sec
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_agrees_across_engines() {
        let (rows, cols, steps) = (4, 4, 2);
        let m = Machine::new(presets::delta(rows, cols));
        let (a, _) = m.run(|node| workload(node, rows, cols, steps));
        let (b, _) = m.run_sharded(2, |node| workload(node, rows, cols, steps));
        assert_eq!(a, b);
        assert_single_lane_identity(rows, cols, steps);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![DesRow {
            rows: 4,
            cols: 4,
            lanes: 2,
            steps: 2,
            events: 100,
            ms: 1.5,
            events_per_sec: 66_666.7,
        }];
        let j = json(&rows);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = table(&rows);
        assert!(t.contains("events/s") && t.contains("4x4"));
    }
}
