//! Host-kernel performance snapshot: measured GFLOP/s for the packed
//! GEMM engine and every kernel the v2 engine accelerates — LU, FFT,
//! SpMV/CG and the shallow-water sweep — each against its scalar seed
//! baseline. The `report bench-kernels` command prints the table,
//! enforces the perf gates ([`gates`]) and writes `BENCH_kernels.json`
//! so perf regressions show up in diffs.

use des::rng::Rng;
use hpcc_kernels::{cg, fft, gemm, lu, mat::Mat, matmul, shallow};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured kernel configuration.
pub struct PerfRow {
    /// Kernel label, e.g. `gemm_par`.
    pub kernel: &'static str,
    /// Problem order n (square problems).
    pub n: usize,
    /// Threads the configuration ran with (1 = sequential path).
    pub threads: usize,
    /// Best-of-reps wall time, milliseconds.
    pub ms: f64,
    /// FLOPs credited / wall time.
    pub gflops: f64,
}

/// The seed's LU trailing update (row-oriented axpy loops, no packing),
/// kept here as the perf baseline the engine is measured against. Same
/// pivoting and panel code as `lu::lu_factor`, so the timing difference
/// is purely the BLAS3 update.
fn lu_factor_rowupdate(a: &mut Mat, nb: usize) -> Result<Vec<usize>, lu::Singular> {
    let n = a.rows();
    let mut piv = vec![0usize; n];
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        for j in k..k + kb {
            let mut p = j;
            let mut best = a[(j, j)].abs();
            for i in j + 1..n {
                let v = a[(i, j)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(lu::Singular(j));
            }
            piv[j] = p;
            a.swap_rows(j, p);
            let inv = 1.0 / a[(j, j)];
            for i in j + 1..n {
                a[(i, j)] *= inv;
            }
            for i in j + 1..n {
                let lij = a[(i, j)];
                if lij != 0.0 {
                    for c in j + 1..k + kb {
                        a[(i, c)] -= lij * a[(j, c)];
                    }
                }
            }
        }
        if k + kb < n {
            for j in k + 1..k + kb {
                for i in k..j {
                    let lji = a[(j, i)];
                    if lji != 0.0 {
                        let ncols = a.cols();
                        let (top, bot) = a.as_mut_slice().split_at_mut(j * ncols);
                        let ri = &top[i * ncols..(i + 1) * ncols];
                        let rj = &mut bot[..ncols];
                        for c in k + kb..n {
                            rj[c] -= lji * ri[c];
                        }
                    }
                }
            }
            let ncols = a.cols();
            let split = (k + kb) * ncols;
            let (upper, lower) = a.as_mut_slice().split_at_mut(split);
            for row in lower.chunks_mut(ncols) {
                for l in k..k + kb {
                    let lil = row[l];
                    if lil != 0.0 {
                        let urow = &upper[l * ncols..(l + 1) * ncols];
                        for c in k + kb..ncols {
                            row[c] -= lil * urow[c];
                        }
                    }
                }
            }
        }
        k += kb;
    }
    Ok(piv)
}

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm-up: page in buffers, spin up the pool
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn row<F: FnMut()>(kernel: &'static str, n: usize, threads: usize, flops: f64, f: F) -> PerfRow {
    let reps = if n >= 1024 { 2 } else { 3 };
    let secs = time_best(reps, f);
    PerfRow {
        kernel,
        n,
        threads,
        ms: secs * 1e3,
        gflops: flops / secs / 1e9,
    }
}

/// Thread counts to sweep for the parallel kernels: powers of two up to
/// the host's parallelism, always ending at the true maximum. A 1-CPU
/// host gets `[1]` — an honest single row instead of an unpinned
/// measurement mislabelled with the default pool size.
fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut ts = vec![1usize];
    let mut t = 2;
    while t <= max {
        ts.push(t);
        t *= 2;
    }
    if *ts.last().unwrap() != max {
        ts.push(max);
    }
    ts
}

/// Run the snapshot: GEMM up to the LU comparison size (2048), LU
/// sequential vs Rayon at the seed block (nb=64) and the v2 default
/// ([`lu::DEFAULT_NB`]), then the rest of the v2 engine against its scalar seed
/// baselines — FFT, SpMV (packed plan vs CSR row loop), a CG iteration
/// and the shallow-water step. Each parallel row pins the Rayon pool to
/// its thread count — the sweep *measures* parallel speedup instead of
/// assuming the default pool did something. `smoke` shrinks every size
/// so CI can run the full path (and the [`gates`]) in seconds.
pub fn snapshot(smoke: bool) -> Vec<PerfRow> {
    let sweep = thread_sweep();
    let pool_for = |t: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("thread pool")
    };
    let mut rows = Vec::new();

    // The n=2048 GEMM reference for the lu/gemm gate is measured inside
    // the LU section below, interleaved with the LU reps.
    let gemm_sizes: &[usize] = if smoke { &[256] } else { &[256, 512, 1024] };
    for &n in gemm_sizes {
        let mut rng = Rng::new(1);
        let a = Mat::random(n, n, &mut rng);
        let b = Mat::random(n, n, &mut rng);
        let flops = matmul::matmul_flops(n, n, n);
        if n <= 512 {
            rows.push(row("matmul_blocked48", n, 1, flops, || {
                std::hint::black_box(matmul::matmul_blocked(&a, &b, 48));
            }));
        }
        rows.push(row("gemm", n, 1, flops, || {
            std::hint::black_box(gemm::gemm(&a, &b));
        }));
        for &t in &sweep {
            let pool = pool_for(t);
            rows.push(row("gemm_par", n, t, flops, || {
                pool.install(|| std::hint::black_box(gemm::gemm_par(&a, &b)));
            }));
        }
    }

    let lu_sizes: &[usize] = if smoke { &[512] } else { &[512, 1024, 2048] };
    for &n in lu_sizes {
        let mut rng = Rng::new(2);
        let a = Mat::random(n, n, &mut rng);
        // Factor-only FLOPs (2n³/3), not the full LINPACK credit: the
        // solve is not timed here.
        let flops = 2.0 * (n as f64).powi(3) / 3.0;
        rows.push(row("lu_legacy_nb64", n, 1, flops, || {
            let mut f = a.clone();
            std::hint::black_box(lu_factor_rowupdate(&mut f, 64).unwrap());
        }));
        // The par-never-slower gate compares the next two rows per nb,
        // so their reps are interleaved: slow thermal drift (the usual
        // few-percent wobble on a busy host) then hits both sides
        // equally instead of penalising whichever ran second. The
        // lu/gemm ratio gate gets the same treatment: its n=2048 GEMM
        // reference is timed in this rep loop (same sample count, same
        // conditions), not minutes earlier. The input clone stays
        // outside every timed region — the factorisation is in-place.
        let gemm_b = (n == 2048).then(|| Mat::random(n, n, &mut rng));
        let mut gemm_best = f64::MAX;
        for (nb, seq_name, par_name) in [
            (64usize, "lu_factor_nb64", "lu_factor_par_nb64"),
            (lu::DEFAULT_NB, "lu_factor", "lu_factor_par"),
        ] {
            let reps = match n {
                n if n >= 2048 => 3,
                1024 => 5,
                _ => 6,
            };
            {
                let mut f = a.clone(); // warm-up
                std::hint::black_box(lu::lu_factor(&mut f, nb).unwrap());
            }
            let mut seq_best = f64::MAX;
            let mut par_best = vec![f64::MAX; sweep.len()];
            let pools: Vec<_> = sweep.iter().map(|&t| pool_for(t)).collect();
            for rep in 0..reps {
                let time_seq = |best: &mut f64| {
                    let mut f = a.clone();
                    let t0 = Instant::now();
                    std::hint::black_box(lu::lu_factor(&mut f, nb).unwrap());
                    *best = (*best).min(t0.elapsed().as_secs_f64());
                };
                let time_par = |par_best: &mut [f64]| {
                    for (pool, best) in pools.iter().zip(par_best) {
                        let mut f = a.clone();
                        let t0 = Instant::now();
                        pool.install(|| {
                            std::hint::black_box(lu::lu_factor_par(&mut f, nb).unwrap())
                        });
                        *best = (*best).min(t0.elapsed().as_secs_f64());
                    }
                };
                // Alternate which side runs first so any per-rep warm-up
                // effect cancels instead of always favouring one row.
                if rep % 2 == 0 {
                    time_seq(&mut seq_best);
                    time_par(&mut par_best);
                } else {
                    time_par(&mut par_best);
                    time_seq(&mut seq_best);
                }
                if nb == lu::DEFAULT_NB {
                    if let Some(b) = &gemm_b {
                        let t0 = Instant::now();
                        std::hint::black_box(gemm::gemm(&a, b));
                        gemm_best = gemm_best.min(t0.elapsed().as_secs_f64());
                    }
                }
            }
            rows.push(PerfRow {
                kernel: seq_name,
                n,
                threads: 1,
                ms: seq_best * 1e3,
                gflops: flops / seq_best / 1e9,
            });
            for (&t, &secs) in sweep.iter().zip(&par_best) {
                rows.push(PerfRow {
                    kernel: par_name,
                    n,
                    threads: t,
                    ms: secs * 1e3,
                    gflops: flops / secs / 1e9,
                });
            }
        }
        if gemm_best < f64::MAX {
            let gflops = matmul::matmul_flops(n, n, n);
            rows.push(PerfRow {
                kernel: "gemm",
                n,
                threads: 1,
                ms: gemm_best * 1e3,
                gflops: gflops / gemm_best / 1e9,
            });
        }
    }

    // FFT: a forward+inverse pair per rep (credited as two transforms)
    // so the timing needs no per-rep buffer reset.
    let fft_n = if smoke { 1 << 14 } else { 1 << 20 };
    {
        let mut rng = Rng::new(4);
        let mut x: Vec<fft::Cpx> = (0..fft_n)
            .map(|_| fft::Cpx::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let flops = 2.0 * fft::fft_flops(fft_n);
        rows.push(row("fft_baseline", fft_n, 1, flops, || {
            fft::fft_baseline(&mut x);
            fft::ifft_baseline(&mut x);
            std::hint::black_box(&mut x);
        }));
        rows.push(row("fft", fft_n, 1, flops, || {
            fft::fft(&mut x);
            fft::ifft(&mut x);
            std::hint::black_box(&mut x);
        }));
    }

    // SpMV on the 5-point Poisson operator. g=256 keeps x L2-resident
    // (the compute-bound regime the interleaved plan targets); the
    // larger grid is DRAM-bound and honest about it. 50 products per
    // rep so each timing is well above clock granularity.
    let spmv_grids: &[usize] = if smoke { &[64] } else { &[256, 1024] };
    for &g in spmv_grids {
        let a = cg::Csr::poisson2d(g);
        let n = a.n();
        let plan = cg::SpmvPlan::new(&a);
        let mut rng = Rng::new(5);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let mut y = vec![0.0; n];
        const PRODUCTS: usize = 50;
        let flops = PRODUCTS as f64 * 2.0 * a.nnz() as f64;
        rows.push(row("spmv_csr", n, 1, flops, || {
            for _ in 0..PRODUCTS {
                a.spmv(&x, &mut y);
            }
            std::hint::black_box(&mut y);
        }));
        rows.push(row("spmv_plan", n, 1, flops, || {
            for _ in 0..PRODUCTS {
                plan.spmv(&x, &mut y);
            }
            std::hint::black_box(&mut y);
        }));
        // A full CG iteration (SpMV + 5 vector ops) through the same plan.
        let b: Vec<f64> = vec![1.0; n];
        let iters = 25;
        let flops = iters as f64 * cg::cg_iter_flops(n, a.nnz());
        rows.push(row("cg_iter", n, 1, flops, || {
            let mut xs = vec![0.0; n];
            std::hint::black_box(cg::cg(&a, &b, &mut xs, 0.0, iters, false));
        }));
    }

    // Shallow water: the fused/vectorised v2 step against the seed
    // sweep, several steps per rep.
    let sw_m = if smoke { 128 } else { 512 };
    {
        const STEPS: usize = 10;
        let flops = STEPS as f64 * shallow::step_flops(sw_m);
        let mut base = shallow::Shallow::new(sw_m);
        base.step_baseline(false); // past the leapfrog start-up
        rows.push(row("shallow_baseline", sw_m, 1, flops, || {
            for _ in 0..STEPS {
                base.step_baseline(false);
            }
            std::hint::black_box(&base.p);
        }));
        let mut v2 = shallow::Shallow::new(sw_m);
        v2.step(false);
        rows.push(row("shallow_step", sw_m, 1, flops, || {
            for _ in 0..STEPS {
                v2.step(false);
            }
            std::hint::black_box(&v2.p);
        }));
    }
    rows
}

/// The perf gates `report bench-kernels` enforces, returned as summary
/// lines. Panics (fails the report) when a gate is violated:
///
/// * `lu_factor_par` must never be slower than `lu_factor` — the pool
///   fan-out must fall through to the identical sequential sweep when it
///   cannot help (10% measurement tolerance).
/// * At n=2048 (full runs) LU must sustain ≥ 80% of the same-run GEMM
///   rate — the near-peak target the packed TRSM/panel kernels exist for.
/// * The v2 FFT, SpMV-plan and shallow sweeps must hold ≥ 1.5× over
///   their scalar seed baselines in the compute-bound rows (full runs).
pub fn gates(rows: &[PerfRow]) -> String {
    let mut s = String::new();
    let best = |kernel: &str, n: usize| -> Option<&PerfRow> {
        rows.iter()
            .filter(|r| r.kernel == kernel && r.n == n)
            .min_by(|a, b| a.ms.total_cmp(&b.ms))
    };

    for (seq, par) in [
        ("lu_factor_nb64", "lu_factor_par_nb64"),
        ("lu_factor", "lu_factor_par"),
    ] {
        for r in rows.iter().filter(|r| r.kernel == seq) {
            if let Some(p) = best(par, r.n) {
                assert!(
                    p.ms <= r.ms * 1.10,
                    "gate: {par} ({:.1} ms) slower than {seq} ({:.1} ms) at n={}",
                    p.ms,
                    r.ms,
                    r.n
                );
            }
        }
    }
    let _ = writeln!(s, "gate lu_factor_par >= lu_factor: ok");

    if let (Some(l), Some(g)) = (best("lu_factor", 2048), best("gemm", 2048)) {
        let ratio = l.gflops / g.gflops;
        assert!(
            ratio >= 0.80,
            "gate: LU at n=2048 is {:.0}% of GEMM (< 80%)",
            ratio * 100.0
        );
        let _ = writeln!(
            s,
            "gate lu/gemm at n=2048: {:.0}% of the packed GEMM rate (>= 80%)",
            ratio * 100.0
        );
    }

    for (fast, base, n, need) in [
        ("fft", "fft_baseline", 1 << 20, 1.5),
        ("spmv_plan", "spmv_csr", 256 * 256, 1.5),
        ("shallow_step", "shallow_baseline", 512, 1.5),
    ] {
        if let (Some(f), Some(b)) = (best(fast, n), best(base, n)) {
            let speedup = b.ms / f.ms;
            assert!(
                speedup >= need,
                "gate: {fast} only {speedup:.2}x over {base} at n={n} (< {need}x)"
            );
            let _ = writeln!(s, "gate {fast}/{base} at n={n}: {speedup:.2}x (>= {need}x)");
        }
    }
    s
}

/// Human-readable table for the report output.
pub fn table(rows: &[PerfRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Host kernel performance snapshot (best-of-reps)");
    let _ = writeln!(s, "{:-<64}", "");
    let _ = writeln!(
        s,
        "{:<20} {:>6} {:>8} {:>12} {:>10}",
        "kernel", "n", "threads", "time (ms)", "GFLOP/s"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<20} {:>6} {:>8} {:>12.2} {:>10.2}",
            r.kernel, r.n, r.threads, r.ms, r.gflops
        );
    }
    let blocked = rows
        .iter()
        .find(|r| r.kernel == "matmul_blocked48" && r.n == 512);
    let packed = rows.iter().find(|r| r.kernel == "gemm" && r.n == 512);
    if let (Some(b), Some(g)) = (blocked, packed) {
        let _ = writeln!(
            s,
            "\npacked/blocked speedup at n=512 (1 thread): {:.2}x",
            g.gflops / b.gflops
        );
    }
    s
}

/// The JSON snapshot (hand-rolled — the harness carries no serde).
pub fn json(rows: &[PerfRow]) -> String {
    let mut s = String::from("{\n  \"bench\": \"kernels\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"threads\": {}, \
             \"ms\": {:.3}, \"gflops\": {:.3}}}",
            r.kernel, r.n, r.threads, r.ms, r.gflops
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_baseline_matches_engine_lu() {
        let mut rng = Rng::new(3);
        let a = Mat::random(90, 90, &mut rng);
        let mut legacy = a.clone();
        let mut engine = a.clone();
        let pl = lu_factor_rowupdate(&mut legacy, 16).unwrap();
        let pe = lu::lu_factor(&mut engine, 16).unwrap();
        assert_eq!(pl, pe, "same pivots");
        assert!(
            legacy.dist(&engine) < 1e-10,
            "dist {}",
            legacy.dist(&engine)
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![
            PerfRow {
                kernel: "gemm",
                n: 64,
                threads: 1,
                ms: 1.25,
                gflops: 0.42,
            },
            PerfRow {
                kernel: "gemm_par",
                n: 64,
                threads: 4,
                ms: 0.5,
                gflops: 1.0,
            },
        ];
        let j = json(&rows);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"kernel\"").count(), 2);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = table(&rows);
        assert!(t.contains("gemm_par") && t.contains("GFLOP/s"));
    }
}
