//! Host-kernel performance snapshot: measured GFLOP/s for the GEMM
//! engine and the LU factorisation it drives, against the cache-blocked
//! baseline. The `report bench-kernels` command prints the table and
//! writes `BENCH_kernels.json` so perf regressions show up in diffs.

use des::rng::Rng;
use hpcc_kernels::{gemm, lu, mat::Mat, matmul};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured kernel configuration.
pub struct PerfRow {
    /// Kernel label, e.g. `gemm_par`.
    pub kernel: &'static str,
    /// Problem order n (square problems).
    pub n: usize,
    /// Threads the configuration ran with (1 = sequential path).
    pub threads: usize,
    /// Best-of-reps wall time, milliseconds.
    pub ms: f64,
    /// FLOPs credited / wall time.
    pub gflops: f64,
}

/// The seed's LU trailing update (row-oriented axpy loops, no packing),
/// kept here as the perf baseline the engine is measured against. Same
/// pivoting and panel code as `lu::lu_factor`, so the timing difference
/// is purely the BLAS3 update.
fn lu_factor_rowupdate(a: &mut Mat, nb: usize) -> Result<Vec<usize>, lu::Singular> {
    let n = a.rows();
    let mut piv = vec![0usize; n];
    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);
        for j in k..k + kb {
            let mut p = j;
            let mut best = a[(j, j)].abs();
            for i in j + 1..n {
                let v = a[(i, j)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(lu::Singular(j));
            }
            piv[j] = p;
            a.swap_rows(j, p);
            let inv = 1.0 / a[(j, j)];
            for i in j + 1..n {
                a[(i, j)] *= inv;
            }
            for i in j + 1..n {
                let lij = a[(i, j)];
                if lij != 0.0 {
                    for c in j + 1..k + kb {
                        a[(i, c)] -= lij * a[(j, c)];
                    }
                }
            }
        }
        if k + kb < n {
            for j in k + 1..k + kb {
                for i in k..j {
                    let lji = a[(j, i)];
                    if lji != 0.0 {
                        let ncols = a.cols();
                        let (top, bot) = a.as_mut_slice().split_at_mut(j * ncols);
                        let ri = &top[i * ncols..(i + 1) * ncols];
                        let rj = &mut bot[..ncols];
                        for c in k + kb..n {
                            rj[c] -= lji * ri[c];
                        }
                    }
                }
            }
            let ncols = a.cols();
            let split = (k + kb) * ncols;
            let (upper, lower) = a.as_mut_slice().split_at_mut(split);
            for row in lower.chunks_mut(ncols) {
                for l in k..k + kb {
                    let lil = row[l];
                    if lil != 0.0 {
                        let urow = &upper[l * ncols..(l + 1) * ncols];
                        for c in k + kb..ncols {
                            row[c] -= lil * urow[c];
                        }
                    }
                }
            }
        }
        k += kb;
    }
    Ok(piv)
}

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm-up: page in buffers, spin up the pool
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn row<F: FnMut()>(kernel: &'static str, n: usize, threads: usize, flops: f64, f: F) -> PerfRow {
    let reps = if n >= 1024 { 2 } else { 3 };
    let secs = time_best(reps, f);
    PerfRow {
        kernel,
        n,
        threads,
        ms: secs * 1e3,
        gflops: flops / secs / 1e9,
    }
}

/// Thread counts to sweep for the parallel kernels: powers of two up to
/// the host's parallelism, always ending at the true maximum. A 1-CPU
/// host gets `[1]` — an honest single row instead of an unpinned
/// measurement mislabelled with the default pool size.
fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut ts = vec![1usize];
    let mut t = 2;
    while t <= max {
        ts.push(t);
        t *= 2;
    }
    if *ts.last().unwrap() != max {
        ts.push(max);
    }
    ts
}

/// Run the snapshot: GEMM at the acceptance size (512) plus a larger
/// point, LU sequential vs Rayon up to n=2048 (the LINPACK-style
/// trailing update is where the engine earns its keep). Each parallel
/// row pins the Rayon pool to its thread count — the sweep *measures*
/// parallel speedup instead of assuming the default pool did something.
pub fn snapshot() -> Vec<PerfRow> {
    let sweep = thread_sweep();
    let pool_for = |t: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("thread pool")
    };
    let mut rows = Vec::new();

    for n in [256usize, 512, 1024] {
        let mut rng = Rng::new(1);
        let a = Mat::random(n, n, &mut rng);
        let b = Mat::random(n, n, &mut rng);
        let flops = matmul::matmul_flops(n, n, n);
        if n <= 512 {
            rows.push(row("matmul_blocked48", n, 1, flops, || {
                std::hint::black_box(matmul::matmul_blocked(&a, &b, 48));
            }));
        }
        rows.push(row("gemm", n, 1, flops, || {
            std::hint::black_box(gemm::gemm(&a, &b));
        }));
        for &t in &sweep {
            let pool = pool_for(t);
            rows.push(row("gemm_par", n, t, flops, || {
                pool.install(|| std::hint::black_box(gemm::gemm_par(&a, &b)));
            }));
        }
    }

    for n in [512usize, 1024, 2048] {
        let mut rng = Rng::new(2);
        let a = Mat::random(n, n, &mut rng);
        // Factor-only FLOPs (2n³/3), not the full LINPACK credit: the
        // solve is not timed here.
        let flops = 2.0 * (n as f64).powi(3) / 3.0;
        rows.push(row("lu_legacy_nb64", n, 1, flops, || {
            let mut f = a.clone();
            std::hint::black_box(lu_factor_rowupdate(&mut f, 64).unwrap());
        }));
        rows.push(row("lu_factor_nb64", n, 1, flops, || {
            let mut f = a.clone();
            std::hint::black_box(lu::lu_factor(&mut f, 64).unwrap());
        }));
        for &t in &sweep {
            let pool = pool_for(t);
            rows.push(row("lu_factor_par_nb64", n, t, flops, || {
                let mut f = a.clone();
                pool.install(|| std::hint::black_box(lu::lu_factor_par(&mut f, 64).unwrap()));
            }));
        }
    }
    rows
}

/// Human-readable table for the report output.
pub fn table(rows: &[PerfRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Host kernel performance snapshot (best-of-reps)");
    let _ = writeln!(s, "{:-<64}", "");
    let _ = writeln!(
        s,
        "{:<20} {:>6} {:>8} {:>12} {:>10}",
        "kernel", "n", "threads", "time (ms)", "GFLOP/s"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<20} {:>6} {:>8} {:>12.2} {:>10.2}",
            r.kernel, r.n, r.threads, r.ms, r.gflops
        );
    }
    let blocked = rows
        .iter()
        .find(|r| r.kernel == "matmul_blocked48" && r.n == 512);
    let packed = rows.iter().find(|r| r.kernel == "gemm" && r.n == 512);
    if let (Some(b), Some(g)) = (blocked, packed) {
        let _ = writeln!(
            s,
            "\npacked/blocked speedup at n=512 (1 thread): {:.2}x",
            g.gflops / b.gflops
        );
    }
    s
}

/// The JSON snapshot (hand-rolled — the harness carries no serde).
pub fn json(rows: &[PerfRow]) -> String {
    let mut s = String::from("{\n  \"bench\": \"kernels\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"threads\": {}, \
             \"ms\": {:.3}, \"gflops\": {:.3}}}",
            r.kernel, r.n, r.threads, r.ms, r.gflops
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_baseline_matches_engine_lu() {
        let mut rng = Rng::new(3);
        let a = Mat::random(90, 90, &mut rng);
        let mut legacy = a.clone();
        let mut engine = a.clone();
        let pl = lu_factor_rowupdate(&mut legacy, 16).unwrap();
        let pe = lu::lu_factor(&mut engine, 16).unwrap();
        assert_eq!(pl, pe, "same pivots");
        assert!(
            legacy.dist(&engine) < 1e-10,
            "dist {}",
            legacy.dist(&engine)
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![
            PerfRow {
                kernel: "gemm",
                n: 64,
                threads: 1,
                ms: 1.25,
                gflops: 0.42,
            },
            PerfRow {
                kernel: "gemm_par",
                n: 64,
                threads: 4,
                ms: 0.5,
                gflops: 1.0,
            },
        ];
        let j = json(&rows);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"kernel\"").count(), 2);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = table(&rows);
        assert!(t.contains("gemm_par") && t.contains("GFLOP/s"));
    }
}
