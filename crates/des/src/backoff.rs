//! Capped exponential backoff with deterministic seeded jitter.
//!
//! Every retry loop in the simulators (the mesh's `send_with_retry`, the
//! scheduler service's kill-and-retry path) shares this policy object so
//! backoff behaviour is uniform and — crucially for replayable runs —
//! fully determined by `(policy, stream, attempt)`. There is no hidden
//! RNG state: the jitter for attempt `k` of stream `s` is a pure
//! function, so a retry schedule can be recomputed offline and a run
//! replays bit-for-bit from its seed.
//!
//! The schedule is the classic one: delay for attempt `k` (1-based)
//! grows as `base * 2^(k-1)`, saturating at `cap`, then spread by a
//! symmetric jitter factor in `[1 - jitter, 1 + jitter]`. The cap is
//! what keeps long retry chains inside simulated-time budgets — an
//! uncapped doubling schedule exceeds any horizon after a few tens of
//! attempts — and the jitter is what keeps thousands of tenants from
//! retrying in lockstep after a correlated fault.

use crate::rng::Rng;
use crate::time::Dur;

/// Mix distinguishing words into one 64-bit stream key (SplitMix-style
/// finalizer per word). Used to derive independent jitter streams from
/// e.g. `(rank, dst, tag)` or a job id.
pub fn mix64(words: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        let mut z = h ^ w.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// Capped exponential backoff policy with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry (attempt 1).
    pub base: Dur,
    /// Hard ceiling on any single delay, before jitter. Jitter may add
    /// at most `cap * jitter` on top.
    pub cap: Dur,
    /// Symmetric jitter fraction in `[0, 1)`: the exponential delay is
    /// scaled by a factor drawn uniformly from `[1 - jitter, 1 + jitter]`.
    /// Zero disables jitter entirely (no RNG is consulted).
    pub jitter: f64,
    /// Seed for the jitter streams; combined with the caller's stream
    /// key so distinct retriers decorrelate.
    pub seed: u64,
}

impl Backoff {
    /// A jitter-free schedule: `base * 2^(k-1)` capped at `cap`.
    pub fn exponential(base: Dur, cap: Dur) -> Backoff {
        Backoff {
            base,
            cap,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// The exponential delay for 1-based `attempt`, capped, no jitter.
    pub fn raw_delay(&self, attempt: u32) -> Dur {
        assert!(attempt >= 1, "attempt numbering is 1-based");
        let factor = 1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX);
        Dur(self.base.nanos().saturating_mul(factor)).min(self.cap)
    }

    /// The jittered delay for 1-based `attempt` of `stream`. Pure in all
    /// three arguments: the same `(policy, stream, attempt)` always
    /// yields the same duration.
    pub fn delay(&self, stream: u64, attempt: u32) -> Dur {
        assert!(
            (0.0..1.0).contains(&self.jitter),
            "jitter fraction must be in [0, 1): {}",
            self.jitter
        );
        let d = self.raw_delay(attempt);
        if self.jitter == 0.0 {
            return d;
        }
        let mut r = Rng::new(mix64(&[self.seed, stream, attempt as u64]));
        let factor = 1.0 + self.jitter * (2.0 * r.next_f64() - 1.0);
        d.mul_f64(factor)
    }
}

impl Default for Backoff {
    /// 1 ms doubling to a 1 s cap, 10% jitter.
    fn default() -> Backoff {
        Backoff {
            base: Dur::from_millis(1),
            cap: Dur::from_secs(1),
            jitter: 0.10,
            seed: 0x5EED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_delay_doubles_then_caps() {
        let b = Backoff::exponential(Dur::from_millis(1), Dur::from_millis(100));
        assert_eq!(b.raw_delay(1), Dur::from_millis(1));
        assert_eq!(b.raw_delay(2), Dur::from_millis(2));
        assert_eq!(b.raw_delay(5), Dur::from_millis(16));
        assert_eq!(b.raw_delay(8), Dur::from_millis(100), "capped");
        assert_eq!(b.raw_delay(60), Dur::from_millis(100));
        // Shift amounts past 63 must not wrap or panic.
        assert_eq!(b.raw_delay(200), Dur::from_millis(100));
    }

    #[test]
    fn zero_jitter_is_exact() {
        let b = Backoff::exponential(Dur::from_micros(10), Dur::from_secs(1));
        for attempt in 1..20 {
            assert_eq!(b.delay(7, attempt), b.raw_delay(attempt));
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let b = Backoff {
            base: Dur::from_millis(2),
            cap: Dur::from_millis(64),
            jitter: 0.25,
            seed: 42,
        };
        for stream in 0..50u64 {
            for attempt in 1..12 {
                let d = b.delay(stream, attempt);
                let raw = b.raw_delay(attempt).as_secs_f64();
                let lo = raw * (1.0 - 0.25) - 1e-9;
                let hi = raw * (1.0 + 0.25) + 1e-9;
                let s = d.as_secs_f64();
                assert!(s >= lo && s <= hi, "delay {s} outside [{lo}, {hi}]");
                assert_eq!(d, b.delay(stream, attempt), "pure function");
            }
        }
    }

    #[test]
    fn streams_and_seeds_decorrelate() {
        let b = Backoff {
            jitter: 0.5,
            ..Backoff::default()
        };
        let same = (0..100u64)
            .filter(|&s| b.delay(s, 3) == b.delay(s + 1, 3))
            .count();
        assert!(same < 5, "neighbouring streams mostly differ: {same}");
        let b2 = Backoff { seed: 1, ..b };
        assert_ne!(b.delay(9, 2), b2.delay(9, 2), "seed matters");
    }

    #[test]
    fn mix64_separates_words() {
        assert_ne!(mix64(&[1, 2]), mix64(&[2, 1]));
        assert_ne!(mix64(&[0]), mix64(&[0, 0]));
        assert_eq!(mix64(&[3, 4, 5]), mix64(&[3, 4, 5]));
    }
}
