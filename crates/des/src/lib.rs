//! `des` — a small, deterministic discrete-event simulation engine.
//!
//! This crate is the substrate under both simulators in the HPCC 1992
//! reproduction:
//!
//! * `delta-mesh` — the Touchstone Delta-class multicomputer simulator —
//!   uses the [`exec`] cooperative executor to run hundreds of simulated
//!   node programs as `async fn`s, and the [`queue`] event calendar to
//!   order message/compute events.
//! * `nren-netsim` — the NREN-era WAN flow simulator — uses the event
//!   calendar and [`rng`] workload generators.
//!
//! Everything here is single-threaded and bit-reproducible: integer virtual
//! time, FIFO tie-breaking, a locally implemented Xoshiro256** generator.

pub mod backoff;
pub mod exec;
pub mod faults;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use backoff::Backoff;
pub use exec::{yield_now, Completion, LaneTasks, TaskId, Tasks};
pub use faults::{seed_from_env, FaultEvent, FaultKind, FaultPlan, MtbfModel};
pub use queue::EventQueue;
pub use rng::Rng;
pub use stats::{Histogram, Summary};
pub use time::{Dur, SimTime};
