//! The event calendar: a time-ordered priority queue with deterministic
//! FIFO tie-breaking.
//!
//! Events scheduled for the same instant pop in the order they were pushed
//! (a monotone sequence number breaks ties), which makes whole-simulation
//! runs bit-reproducible regardless of heap internals.

use crate::time::{Dur, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A future-event list. `pop` advances the clock; scheduling into the past
/// is a logic error and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// A calendar pre-sized for `cap` in-flight events, so the steady
    /// state of a simulation never regrows the heap. Simulators that
    /// know their population (e.g. one outstanding event per node) should
    /// prefer this over [`EventQueue::new`].
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Events the calendar can hold before reallocating.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever popped — a cheap progress metric.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at absolute time `at` (must not be in the past).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Schedule `event` at `now + delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: Dur, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.event))
    }

    /// Pop the earliest event only if it is strictly before `horizon`.
    ///
    /// This is the primitive of conservative parallel simulation: a lane
    /// may safely process every local event below the cross-lane message
    /// horizon, and must stop there. Events at or past the horizon stay
    /// queued and the clock does not advance.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? < horizon {
            self.pop()
        } else {
            None
        }
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), "first");
        q.pop();
        q.schedule_in(Dur(50), "later");
        assert_eq!(q.peek_time(), Some(SimTime(150)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 10);
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_presizes() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        let cap = q.capacity();
        for i in 0..64u64 {
            q.schedule(SimTime(i), i as u32);
        }
        assert_eq!(q.capacity(), cap, "no regrowth within capacity");
        assert_eq!(q.pop(), Some((SimTime(0), 0)));
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(99), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime(10));
    }
}
