//! A cooperative, single-threaded task executor for simulated processes.
//!
//! Simulated node programs are ordinary `async fn`s. Awaiting a simulator
//! operation parks the task; the embedding simulator fulfils a
//! [`Completion`] when the operation's event fires, which re-queues the
//! task. Exactly one task runs at a time and the ready queue is FIFO, so
//! execution is deterministic.
//!
//! This is the mechanism that lets the Touchstone Delta simulator run 528
//! "node programs" without 528 OS threads.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Identifies a spawned task within one [`Tasks`] executor.
pub type TaskId = usize;

#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

struct TaskWaker {
    ready: Arc<ReadyQueue>,
    id: TaskId,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.queue.lock().unwrap().push_back(self.id);
    }
}

type BoxedTask = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// The task set: spawn futures, then alternate `run_ready()` with event
/// processing in the embedding simulator's main loop.
pub struct Tasks {
    slots: Vec<Option<BoxedTask>>,
    ready: Arc<ReadyQueue>,
    /// Local scratch the ready queue is swapped into once per pass, so
    /// `run_ready` takes the lock once per batch instead of once per poll.
    scratch: VecDeque<TaskId>,
    live: usize,
    polls: u64,
}

impl Default for Tasks {
    fn default() -> Self {
        Self::new()
    }
}

impl Tasks {
    pub fn new() -> Tasks {
        Tasks {
            slots: Vec::new(),
            ready: Arc::new(ReadyQueue::default()),
            scratch: VecDeque::new(),
            live: 0,
            polls: 0,
        }
    }

    /// Spawn a task; it will run on the next `run_ready()`.
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let id = self.slots.len();
        self.slots.push(Some(Box::pin(fut)));
        self.live += 1;
        self.ready.queue.lock().unwrap().push_back(id);
        id
    }

    /// Number of tasks that have not yet completed.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// True once every spawned task has run to completion.
    #[inline]
    pub fn all_done(&self) -> bool {
        self.live == 0
    }

    /// Total poll calls — a progress/diagnostic counter.
    #[inline]
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Whether any task is queued to run.
    pub fn has_ready(&self) -> bool {
        !self.ready.queue.lock().unwrap().is_empty()
    }

    /// Number of tasks queued to run — the executor's ready-queue depth,
    /// sampled by the trace layer alongside the event-queue depth.
    pub fn ready_len(&self) -> usize {
        self.ready.queue.lock().unwrap().len()
    }

    /// Abort a live task: drop its future without running it further.
    /// Returns true if the task was live. Stale wakes already queued for
    /// the id are drained here so later `run_ready` passes never touch
    /// them. This is how the embedding simulator kills the program of a
    /// crashed node.
    pub fn abort(&mut self, id: TaskId) -> bool {
        match self.slots.get_mut(id).and_then(Option::take) {
            Some(_fut) => {
                self.live -= 1;
                self.ready.queue.lock().unwrap().retain(|&q| q != id);
                self.scratch.retain(|&q| q != id);
                true
            }
            None => false,
        }
    }

    /// Poll every ready task until the ready queue drains. Returns the
    /// number of polls performed. Tasks woken while running are processed
    /// in the same call (FIFO), so this returns only at a quiescent point
    /// where every live task is parked on a simulator event.
    ///
    /// The shared queue is swapped into a local batch once per pass — one
    /// lock acquisition per batch, not one per poll. Processing a drained
    /// batch in order and then re-draining preserves the exact global
    /// FIFO order of the old pop-one-under-the-lock loop.
    pub fn run_ready(&mut self) -> u64 {
        let start = self.polls;
        loop {
            {
                let mut q = self.ready.queue.lock().unwrap();
                if q.is_empty() {
                    break;
                }
                std::mem::swap(&mut *q, &mut self.scratch);
            }
            while let Some(id) = self.scratch.pop_front() {
                // A task may be woken after it finished; skip silently.
                let Some(mut fut) = self.slots[id].take() else {
                    continue;
                };
                let waker = Waker::from(Arc::new(TaskWaker {
                    ready: Arc::clone(&self.ready),
                    id,
                }));
                let mut cx = Context::from_waker(&waker);
                self.polls += 1;
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {
                        self.live -= 1;
                    }
                    Poll::Pending => {
                        self.slots[id] = Some(fut);
                    }
                }
            }
        }
        self.polls - start
    }
}

/// The per-lane executor of the sharded DES engine: one `LaneTasks` per
/// event lane, each with its own ready queue, so lanes never contend on a
/// global `Mutex<VecDeque>`.
///
/// Scheduling semantics are identical to [`Tasks`] (FIFO ready queue,
/// wakes during a pass processed in the same call), so a single lane
/// running every task executes in exactly the legacy order. The
/// difference is mechanical: each task's [`Waker`] is built once at spawn
/// and reused for every poll, where [`Tasks`] allocates a fresh
/// `Arc<TaskWaker>` per poll — at millions of polls per simulated second
/// that allocation is a measurable share of the dispatch loop.
pub struct LaneTasks {
    slots: Vec<Option<BoxedTask>>,
    wakers: Vec<Waker>,
    ready: Arc<ReadyQueue>,
    scratch: VecDeque<TaskId>,
    live: usize,
    polls: u64,
}

impl Default for LaneTasks {
    fn default() -> Self {
        Self::new()
    }
}

impl LaneTasks {
    pub fn new() -> LaneTasks {
        LaneTasks {
            slots: Vec::new(),
            wakers: Vec::new(),
            ready: Arc::new(ReadyQueue::default()),
            scratch: VecDeque::new(),
            live: 0,
            polls: 0,
        }
    }

    /// A lane pre-sized for `cap` tasks (one per node it owns).
    pub fn with_capacity(cap: usize) -> LaneTasks {
        LaneTasks {
            slots: Vec::with_capacity(cap),
            wakers: Vec::with_capacity(cap),
            ready: Arc::new(ReadyQueue::default()),
            scratch: VecDeque::with_capacity(cap),
            live: 0,
            polls: 0,
        }
    }

    /// Spawn a task; it will run on the next `run_ready()`. Ids are local
    /// to this lane.
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let id = self.slots.len();
        self.slots.push(Some(Box::pin(fut)));
        self.wakers.push(Waker::from(Arc::new(TaskWaker {
            ready: Arc::clone(&self.ready),
            id,
        })));
        self.live += 1;
        self.ready.queue.lock().unwrap().push_back(id);
        id
    }

    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn all_done(&self) -> bool {
        self.live == 0
    }

    #[inline]
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Abort a live task (drop its future unrun) and drain any stale
    /// wakes queued for it. Returns true if the task was live.
    pub fn abort(&mut self, id: TaskId) -> bool {
        match self.slots.get_mut(id).and_then(Option::take) {
            Some(_fut) => {
                self.live -= 1;
                self.ready.queue.lock().unwrap().retain(|&q| q != id);
                self.scratch.retain(|&q| q != id);
                true
            }
            None => false,
        }
    }

    /// Poll every ready task until the lane's ready queue drains, batch-
    /// swapping the queue once per pass. Same quiescence contract as
    /// [`Tasks::run_ready`].
    pub fn run_ready(&mut self) -> u64 {
        let start = self.polls;
        loop {
            {
                let mut q = self.ready.queue.lock().unwrap();
                if q.is_empty() {
                    break;
                }
                std::mem::swap(&mut *q, &mut self.scratch);
            }
            while let Some(id) = self.scratch.pop_front() {
                let Some(mut fut) = self.slots[id].take() else {
                    continue;
                };
                let mut cx = Context::from_waker(&self.wakers[id]);
                self.polls += 1;
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {
                        self.live -= 1;
                    }
                    Poll::Pending => {
                        self.slots[id] = Some(fut);
                    }
                }
            }
        }
        self.polls - start
    }
}

struct CompletionInner<T> {
    value: Option<T>,
    waker: Option<Waker>,
}

/// A single-shot rendezvous between a parked task and the simulator.
///
/// The task side awaits [`Completion::wait`]; the simulator side calls
/// [`Completion::fulfil`] when the corresponding event fires. Cloning
/// shares the same cell.
pub struct Completion<T> {
    inner: Rc<RefCell<CompletionInner<T>>>,
}

impl<T> Clone for Completion<T> {
    fn clone(&self) -> Self {
        Completion {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Default for Completion<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Completion<T> {
    pub fn new() -> Completion<T> {
        Completion {
            inner: Rc::new(RefCell::new(CompletionInner {
                value: None,
                waker: None,
            })),
        }
    }

    /// Deliver the value and wake the waiting task (if it is parked).
    /// Fulfilling twice before the value is consumed is a logic error.
    pub fn fulfil(&self, value: T) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.value.is_none(), "Completion fulfilled twice");
        inner.value = Some(value);
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
    }

    /// True once a value has been delivered but not yet consumed.
    pub fn is_fulfilled(&self) -> bool {
        self.inner.borrow().value.is_some()
    }

    /// Await the value.
    pub fn wait(&self) -> CompletionFuture<T> {
        CompletionFuture {
            inner: Rc::clone(&self.inner),
        }
    }
}

pub struct CompletionFuture<T> {
    inner: Rc<RefCell<CompletionInner<T>>>,
}

impl<T> Future for CompletionFuture<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut inner = self.inner.borrow_mut();
        if let Some(v) = inner.value.take() {
            Poll::Ready(v)
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Yield control back to the executor once (the task is immediately
/// re-queued). Useful for fairness in tight simulated loops.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_runs_to_completion() {
        let mut tasks = Tasks::new();
        let hit = Rc::new(RefCell::new(false));
        let h = Rc::clone(&hit);
        tasks.spawn(async move {
            *h.borrow_mut() = true;
        });
        assert_eq!(tasks.live(), 1);
        tasks.run_ready();
        assert!(*hit.borrow());
        assert!(tasks.all_done());
    }

    #[test]
    fn completion_parks_and_resumes() {
        let mut tasks = Tasks::new();
        let c: Completion<u32> = Completion::new();
        let out = Rc::new(RefCell::new(0u32));
        let (c2, o2) = (c.clone(), Rc::clone(&out));
        tasks.spawn(async move {
            let v = c2.wait().await;
            *o2.borrow_mut() = v;
        });
        tasks.run_ready();
        assert!(!tasks.all_done(), "task parked on completion");
        assert_eq!(*out.borrow(), 0);
        c.fulfil(99);
        tasks.run_ready();
        assert!(tasks.all_done());
        assert_eq!(*out.borrow(), 99);
    }

    #[test]
    fn fulfil_before_wait_is_immediate() {
        let mut tasks = Tasks::new();
        let c: Completion<&str> = Completion::new();
        c.fulfil("early");
        let out = Rc::new(RefCell::new(""));
        let (c2, o2) = (c.clone(), Rc::clone(&out));
        tasks.spawn(async move {
            *o2.borrow_mut() = c2.wait().await;
        });
        tasks.run_ready();
        assert!(tasks.all_done());
        assert_eq!(*out.borrow(), "early");
    }

    #[test]
    fn many_tasks_fifo_deterministic() {
        let mut tasks = Tasks::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let l = Rc::clone(&log);
            tasks.spawn(async move {
                l.borrow_mut().push(i);
            });
        }
        tasks.run_ready();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn yield_now_interleaves() {
        let mut tasks = Tasks::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let l = Rc::clone(&log);
            tasks.spawn(async move {
                l.borrow_mut().push(format!("{name}1"));
                yield_now().await;
                l.borrow_mut().push(format!("{name}2"));
            });
        }
        tasks.run_ready();
        assert_eq!(*log.borrow(), ["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn fulfilling_a_dropped_waiter_is_harmless() {
        // A task may abandon a Completion (e.g. an irecv it never waits
        // on); the simulator still fulfils it later.
        let mut tasks = Tasks::new();
        let c: Completion<u32> = Completion::new();
        let c2 = c.clone();
        tasks.spawn(async move {
            let _abandoned = c2; // dropped at task end without waiting
        });
        tasks.run_ready();
        assert!(tasks.all_done());
        c.fulfil(7); // must not panic or wake anything
        assert!(c.is_fulfilled());
    }

    #[test]
    fn wake_after_completion_is_ignored() {
        let mut tasks = Tasks::new();
        let c: Completion<()> = Completion::new();
        let c2 = c.clone();
        let id = tasks.spawn(async move {
            c2.wait().await;
        });
        tasks.run_ready();
        c.fulfil(());
        tasks.run_ready();
        assert!(tasks.all_done());
        // Late spurious wake of a finished task: silently skipped.
        let _ = id;
        assert_eq!(tasks.run_ready(), 0, "no polls for spurious wake");
    }

    #[test]
    fn thousands_of_tasks() {
        // The Delta needs 528; make sure an order of magnitude more is fine.
        let mut tasks = Tasks::new();
        let done = Rc::new(RefCell::new(0usize));
        let gate: Completion<()> = Completion::new();
        for _ in 0..5000 {
            let d = Rc::clone(&done);
            let g = gate.clone();
            tasks.spawn(async move {
                // All tasks park on one shared gate...
                while !g.is_fulfilled() {
                    yield_now().await;
                }
                *d.borrow_mut() += 1;
            });
        }
        gate.fulfil(());
        tasks.run_ready();
        assert!(tasks.all_done());
        assert_eq!(*done.borrow(), 5000);
    }

    #[test]
    fn abort_drops_a_parked_task() {
        let mut tasks = Tasks::new();
        let c: Completion<()> = Completion::new();
        let c2 = c.clone();
        let out = Rc::new(RefCell::new(false));
        let o2 = Rc::clone(&out);
        let id = tasks.spawn(async move {
            c2.wait().await;
            *o2.borrow_mut() = true;
        });
        tasks.run_ready();
        assert!(tasks.abort(id), "task was live");
        assert!(tasks.all_done());
        assert!(!tasks.abort(id), "second abort is a no-op");
        // The fulfilment after death must be harmless and never run the body.
        c.fulfil(());
        tasks.run_ready();
        assert!(!*out.borrow());
    }

    #[test]
    fn abort_drains_stale_ready_ids() {
        // A freshly spawned task's id sits in the ready queue; aborting
        // it must remove the stale id so the queue is truly empty and a
        // later pass never polls a dead slot.
        let mut tasks = Tasks::new();
        let keep = tasks.spawn(async {});
        let id = tasks.spawn(async {
            panic!("aborted task must never run");
        });
        assert!(tasks.abort(id));
        assert_eq!(tasks.ready_len(), 1, "stale id drained on abort");
        assert_eq!(tasks.run_ready(), 1, "only the surviving task polls");
        let _ = keep;
        assert!(tasks.all_done());
    }

    #[test]
    fn lane_tasks_execution_order_matches_tasks() {
        // The lane executor must replay the legacy executor's exact FIFO
        // interleaving — that equivalence is what keeps a 1-lane sharded
        // run bit-identical to the legacy engine.
        let prog = |name: &'static str, l: Rc<RefCell<Vec<String>>>| async move {
            l.borrow_mut().push(format!("{name}1"));
            yield_now().await;
            l.borrow_mut().push(format!("{name}2"));
            yield_now().await;
            l.borrow_mut().push(format!("{name}3"));
        };
        let log_a = Rc::new(RefCell::new(Vec::new()));
        let mut legacy = Tasks::new();
        for name in ["a", "b", "c"] {
            legacy.spawn(prog(name, Rc::clone(&log_a)));
        }
        legacy.run_ready();
        let log_b = Rc::new(RefCell::new(Vec::new()));
        let mut lane = LaneTasks::new();
        for name in ["a", "b", "c"] {
            lane.spawn(prog(name, Rc::clone(&log_b)));
        }
        lane.run_ready();
        assert_eq!(*log_a.borrow(), *log_b.borrow());
        assert_eq!(legacy.polls(), lane.polls());
        assert!(legacy.all_done() && lane.all_done());
    }

    #[test]
    fn lane_tasks_abort_and_completion() {
        let mut lane = LaneTasks::new();
        let c: Completion<u32> = Completion::new();
        let out = Rc::new(RefCell::new(0u32));
        let (c2, o2) = (c.clone(), Rc::clone(&out));
        let id = lane.spawn(async move {
            *o2.borrow_mut() = c2.wait().await;
        });
        lane.run_ready();
        assert_eq!(lane.live(), 1, "parked on completion");
        assert!(lane.abort(id));
        assert!(lane.all_done());
        c.fulfil(9); // wake of an aborted task is harmless
        assert_eq!(lane.run_ready(), 0);
        assert_eq!(*out.borrow(), 0, "aborted body never ran");
        assert!(!lane.abort(id), "second abort is a no-op");
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_fulfil_panics() {
        let c: Completion<()> = Completion::new();
        c.fulfil(());
        c.fulfil(());
    }

    #[test]
    fn chained_completions() {
        // Task A fulfils task B's completion: wake during run_ready drains
        // in the same call.
        let mut tasks = Tasks::new();
        let c1: Completion<u32> = Completion::new();
        let c2: Completion<u32> = Completion::new();
        let out = Rc::new(RefCell::new(0));
        let (c1a, c2a) = (c1.clone(), c2.clone());
        tasks.spawn(async move {
            let v = c1a.wait().await;
            c2a.fulfil(v + 1);
        });
        let (c2b, ob) = (c2.clone(), Rc::clone(&out));
        tasks.spawn(async move {
            *ob.borrow_mut() = c2b.wait().await;
        });
        tasks.run_ready();
        assert!(!tasks.all_done());
        c1.fulfil(41);
        tasks.run_ready();
        assert!(tasks.all_done());
        assert_eq!(*out.borrow(), 42);
    }
}
