//! Simulation time: a `u64` count of nanoseconds since simulation start.
//!
//! Virtual time is exact integer arithmetic — no floating-point drift — so
//! every run is bit-reproducible. Durations are a separate newtype ([`Dur`])
//! to keep points and spans from being confused at compile time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

pub const NS_PER_US: u64 = 1_000;
pub const NS_PER_MS: u64 = 1_000_000;
pub const NS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    #[inline]
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * NS_PER_SEC as f64).round() as u64)
    }

    /// Elapsed span since `earlier`. Saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    #[inline]
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * NS_PER_US)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * NS_PER_MS)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * NS_PER_SEC)
    }

    #[inline]
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        Dur((s * NS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NS_PER_US as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NS_PER_MS as f64
    }

    /// Scale a duration by a non-negative factor, rounding to nearest ns.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Dur {
        assert!(k >= 0.0 && k.is_finite(), "invalid scale {k}");
        Dur((self.0 as f64 * k).round() as u64)
    }

    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: SimTime) -> Dur {
        self.since(rhs)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Dur(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= NS_PER_SEC {
            write!(f, "{:.3}s", ns as f64 / NS_PER_SEC as f64)
        } else if ns >= NS_PER_MS {
            write!(f, "{:.3}ms", ns as f64 / NS_PER_MS as f64)
        } else if ns >= NS_PER_US {
            write!(f, "{:.3}us", ns as f64 / NS_PER_US as f64)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_plus_span() {
        let t = SimTime(100) + Dur::from_nanos(50);
        assert_eq!(t, SimTime(150));
    }

    #[test]
    fn span_between_points() {
        assert_eq!(SimTime(500) - SimTime(200), Dur(300));
        // saturating: never negative
        assert_eq!(SimTime(200) - SimTime(500), Dur(0));
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(Dur::from_secs(2).nanos(), 2 * NS_PER_SEC);
        assert_eq!(Dur::from_millis(3).nanos(), 3 * NS_PER_MS);
        assert_eq!(Dur::from_micros(7).nanos(), 7 * NS_PER_US);
    }

    #[test]
    fn float_roundtrip() {
        let d = Dur::from_secs_f64(1.5);
        assert_eq!(d.nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        let t = SimTime::from_secs_f64(0.25);
        assert_eq!(t.nanos(), 250_000_000);
    }

    #[test]
    fn scaling() {
        assert_eq!(Dur::from_secs(1).mul_f64(0.5), Dur::from_millis(500));
        assert_eq!(Dur::from_secs(1) * 3, Dur::from_secs(3));
        assert_eq!(Dur::from_secs(3) / 3, Dur::from_secs(1));
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + Dur::from_secs(1), SimTime::MAX);
        assert_eq!(Dur(u64::MAX) * 2, Dur(u64::MAX));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Dur::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", Dur::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", Dur::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000s");
    }

    #[test]
    #[should_panic]
    fn negative_duration_rejected() {
        let _ = Dur::from_secs_f64(-1.0);
    }
}
