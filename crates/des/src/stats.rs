//! Online statistics used by the simulators and the exhibit harness.

use crate::time::Dur;

/// Welford's online mean/variance plus min/max.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    pub fn new() -> Summary {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn add_dur(&mut self, d: Dur) {
        self.add(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another summary into this one (parallel reduction friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Why two histograms could not be merged: their bucket geometries
/// (origin, bucket width, bucket count) differ, so bucket `i` of one
/// covers a different value range than bucket `i` of the other and a
/// count-wise merge would silently misfile every sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometryMismatch {
    pub self_lo: f64,
    pub self_width: f64,
    pub self_buckets: usize,
    pub other_lo: f64,
    pub other_width: f64,
    pub other_buckets: usize,
}

impl std::fmt::Display for GeometryMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "histogram geometries differ: [{}, w={}, n={}] vs [{}, w={}, n={}]",
            self.self_lo,
            self.self_width,
            self.self_buckets,
            self.other_lo,
            self.other_width,
            self.other_buckets
        )
    }
}

impl std::error::Error for GeometryMismatch {}

/// Fixed-width linear histogram with overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    underflow: u64,
}

impl Histogram {
    /// `nbuckets` equal buckets covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Histogram {
        assert!(hi > lo && nbuckets > 0);
        Histogram {
            lo,
            width: (hi - lo) / nbuckets as f64,
            buckets: vec![0; nbuckets],
            overflow: 0,
            underflow: 0,
        }
    }

    /// Rebuild a histogram from pre-aggregated bucket counts covering
    /// `[lo, hi)` — the bridge used by streaming recorders that keep
    /// their counts in atomic cells and only materialize a `Histogram`
    /// at scrape time (for [`Histogram::try_merge`] and
    /// [`Histogram::quantile`]).
    pub fn from_counts(lo: f64, hi: f64, counts: &[u64]) -> Histogram {
        assert!(hi > lo && !counts.is_empty());
        Histogram {
            lo,
            width: (hi - lo) / counts.len() as f64,
            buckets: counts.to_vec(),
            overflow: 0,
            underflow: 0,
        }
    }

    /// Lower edge of bucket 0.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Bucket width.
    pub fn width(&self) -> f64 {
        self.width
    }

    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow + self.underflow
    }

    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Approximate quantile by linear scan (`q` in `[0, 1]`).
    /// `None` when the histogram holds no samples — an empty histogram has
    /// no quantiles, and the old `lo` fallback silently read as "0.0".
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return Some(self.lo);
        }
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return Some(self.lo + (i as f64 + 1.0) * self.width);
            }
        }
        Some(self.lo + self.buckets.len() as f64 * self.width)
    }

    /// Merge another histogram into this one, or report exactly how the
    /// geometries disagree. On `Err` this histogram is unchanged.
    pub fn try_merge(&mut self, other: &Histogram) -> Result<(), GeometryMismatch> {
        if self.lo != other.lo
            || self.width != other.width
            || self.buckets.len() != other.buckets.len()
        {
            return Err(GeometryMismatch {
                self_lo: self.lo,
                self_width: self.width,
                self_buckets: self.buckets.len(),
                other_lo: other.lo,
                other_width: other.width,
                other_buckets: other.buckets.len(),
            });
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.underflow += other.underflow;
        Ok(())
    }

    /// Merge another histogram into this one. Both must share the same
    /// geometry (`lo`, bucket width, bucket count); panics otherwise —
    /// use [`Histogram::try_merge`] when the geometries come from
    /// untrusted or independently-configured sources.
    pub fn merge(&mut self, other: &Histogram) {
        if let Err(e) = self.try_merge(other) {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 9.99, -1.0, 10.0, 25.0] {
            h.add(x);
        }
        assert_eq!(h.bucket(0), 2); // 0.0, 0.5
        assert_eq!(h.bucket(1), 1); // 1.0
        assert_eq!(h.bucket(9), 1); // 9.99
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.add((i % 100) as f64);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q90 && q90 <= q99);
        assert!((q50 - 50.0).abs() <= 2.0);
        assert!((q90 - 90.0).abs() <= 2.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(0.0, 100.0, 10);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_merge_equals_sequential() {
        let mut whole = Histogram::new(0.0, 50.0, 25);
        let mut a = Histogram::new(0.0, 50.0, 25);
        let mut b = Histogram::new(0.0, 50.0, 25);
        for i in 0..200 {
            let x = (i as f64 * 0.37) - 5.0; // exercises underflow + overflow
            whole.add(x);
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.buckets(), whole.buckets());
        assert_eq!(a.overflow(), whole.overflow());
        assert_eq!(a.underflow(), whole.underflow());
        assert_eq!(a.quantile(0.5), whole.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "geometries differ")]
    fn histogram_merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 50.0, 25);
        let b = Histogram::new(0.0, 60.0, 25);
        a.merge(&b);
    }

    #[test]
    fn try_merge_reports_both_geometries_and_leaves_self_intact() {
        let mut a = Histogram::new(0.0, 50.0, 25);
        a.add(10.0);
        let mut b = Histogram::new(0.0, 60.0, 30);
        b.add(10.0);
        let err = a.try_merge(&b).unwrap_err();
        assert_eq!(err.self_lo, 0.0);
        assert_eq!(err.self_buckets, 25);
        assert_eq!(err.other_buckets, 30);
        assert_eq!(err.other_width, 2.0);
        assert!(err.to_string().contains("geometries differ"));
        // a must be untouched by the failed merge.
        assert_eq!(a.count(), 1);
        assert_eq!(a.bucket(5), 1);
    }

    #[test]
    fn merged_empty_histograms_still_have_no_quantiles() {
        let mut a = Histogram::new(0.0, 100.0, 10);
        let b = Histogram::new(0.0, 100.0, 10);
        a.try_merge(&b).unwrap();
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile(0.5), None);
        assert_eq!(a.quantile(1.0), None);
    }

    #[test]
    fn from_counts_round_trips_geometry_and_quantiles() {
        let mut h = Histogram::new(0.0, 64.0, 32);
        for i in 0..640 {
            h.add((i % 64) as f64);
        }
        let rebuilt = Histogram::from_counts(0.0, 64.0, h.buckets());
        assert_eq!(rebuilt.lo(), h.lo());
        assert_eq!(rebuilt.width(), h.width());
        assert_eq!(rebuilt.count(), h.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(rebuilt.quantile(q), h.quantile(q));
        }
        // And the rebuilt histogram merges with the original geometry.
        let mut m = rebuilt.clone();
        m.try_merge(&h).unwrap();
        assert_eq!(m.count(), 2 * h.count());
    }
}
