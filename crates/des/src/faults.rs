//! Deterministic fault-injection plans.
//!
//! The machines the paper funds were famously unreliable — a 528-node
//! Touchstone Delta had a machine-level MTBF measured in hours — so the
//! simulators accept a [`FaultPlan`]: a time-ordered script of node
//! crashes, node slowdowns, and link outages to inject at simulated
//! times. Plans are either written explicitly (scripted) or drawn from a
//! seeded exponential inter-arrival [`MtbfModel`]; in both cases the
//! plan is a plain sorted `Vec` computed up front, so any run is
//! bit-identically replayable from `(seed, model)` or from the script.
//!
//! The taxonomy:
//! * **NodeCrash** — permanent fail-stop; the node's program is aborted.
//! * **NodeSlow** — transient thermal/ECC-retry degradation; compute on
//!   the node is scaled by `factor` until `until`.
//! * **LinkDown** — the link carries no traffic until `until`. A *flap*
//!   is simply a `LinkDown` with a short repair window.
//!
//! An empty plan injects nothing and schedules nothing, which is what
//! guarantees zero-fault runs stay bit-identical to the pre-fault
//! simulator (same event calendar, same tie-break sequence numbers).

use crate::rng::Rng;
use crate::time::{Dur, SimTime};

/// One kind of injected hardware fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Permanent fail-stop failure of `node`.
    NodeCrash { node: usize },
    /// `node` computes `factor`× slower until `until`.
    NodeSlow {
        node: usize,
        factor: f64,
        until: SimTime,
    },
    /// Link `link` carries no traffic until `until`.
    LinkDown { link: usize, until: SimTime },
}

/// A fault occurring at a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// Exponential inter-arrival (memoryless) fault-rate model. All rates
/// are per *entity* (per node, per link); `None` disables that class.
#[derive(Debug, Clone)]
pub struct MtbfModel {
    /// Mean time between permanent crashes, per node.
    pub node_mtbf: Option<Dur>,
    /// Mean time between slowdown episodes, per node.
    pub slow_mtbf: Option<Dur>,
    /// Compute-time multiplier during a slowdown episode (> 1).
    pub slow_factor: f64,
    /// Length of one slowdown episode.
    pub slow_duration: Dur,
    /// Mean time between hard link failures, per link.
    pub link_mtbf: Option<Dur>,
    /// Repair time for a hard link failure.
    pub link_repair: Dur,
    /// Mean time between short link flaps, per link.
    pub flap_mtbf: Option<Dur>,
    /// Length of one flap.
    pub flap_duration: Dur,
}

impl MtbfModel {
    /// A model that never faults anything.
    pub fn none() -> MtbfModel {
        MtbfModel {
            node_mtbf: None,
            slow_mtbf: None,
            slow_factor: 1.0,
            slow_duration: Dur::ZERO,
            link_mtbf: None,
            link_repair: Dur::ZERO,
            flap_mtbf: None,
            flap_duration: Dur::ZERO,
        }
    }

    /// Only permanent node crashes, at the given per-node MTBF.
    pub fn node_crashes(mtbf: Dur) -> MtbfModel {
        MtbfModel {
            node_mtbf: Some(mtbf),
            ..MtbfModel::none()
        }
    }

    /// Only link outages: hard failures at `mtbf` repaired after `repair`.
    pub fn link_outages(mtbf: Dur, repair: Dur) -> MtbfModel {
        MtbfModel {
            link_mtbf: Some(mtbf),
            link_repair: repair,
            ..MtbfModel::none()
        }
    }
}

/// A time-ordered script of faults to inject into one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, schedules nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Build a plan from explicit events (any order; sorted internally).
    pub fn scripted(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at);
        FaultPlan { events, seed: None }
    }

    /// Append one scripted event, keeping the plan time-ordered.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
    }

    /// Draw a plan from `model` for a machine of `nodes` nodes and
    /// `links` links over `[0, horizon)`. Fully determined by the
    /// arguments: entity streams are forked from the seed in a fixed
    /// order, so the same call always yields the same plan.
    pub fn seeded(
        seed: u64,
        model: &MtbfModel,
        nodes: usize,
        links: usize,
        horizon: Dur,
    ) -> FaultPlan {
        let mut root = Rng::new(seed);
        let hz = horizon.as_secs_f64();
        let mut events = Vec::new();

        // Permanent crashes: at most one per node (fail-stop).
        if let Some(mtbf) = model.node_mtbf {
            let mean = mtbf.as_secs_f64();
            for node in 0..nodes {
                let mut r = root.fork();
                let t = r.exp(mean);
                if t < hz {
                    events.push(FaultEvent {
                        at: SimTime::from_secs_f64(t),
                        kind: FaultKind::NodeCrash { node },
                    });
                }
            }
        }

        // Transient slowdown episodes: renewals per node.
        if let Some(mtbf) = model.slow_mtbf {
            let mean = mtbf.as_secs_f64();
            let dur = model.slow_duration;
            for node in 0..nodes {
                let mut r = root.fork();
                let mut t = r.exp(mean);
                while t < hz {
                    let at = SimTime::from_secs_f64(t);
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::NodeSlow {
                            node,
                            factor: model.slow_factor,
                            until: at + dur,
                        },
                    });
                    t += dur.as_secs_f64() + r.exp(mean);
                }
            }
        }

        // Link outages: hard failures and flaps are renewals per link.
        for (mtbf, repair) in [
            (model.link_mtbf, model.link_repair),
            (model.flap_mtbf, model.flap_duration),
        ] {
            let Some(mtbf) = mtbf else { continue };
            let mean = mtbf.as_secs_f64();
            for link in 0..links {
                let mut r = root.fork();
                let mut t = r.exp(mean);
                while t < hz {
                    let at = SimTime::from_secs_f64(t);
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::LinkDown {
                            link,
                            until: at + repair,
                        },
                    });
                    t += repair.as_secs_f64() + r.exp(mean);
                }
            }
        }

        events.sort_by_key(|e| e.at);
        FaultPlan {
            events,
            seed: Some(seed),
        }
    }

    /// The seed the plan was drawn from, if it was seeded.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The time-ordered event script.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Times and targets of permanent node crashes, in time order.
    pub fn node_crashes(&self) -> impl Iterator<Item = (SimTime, usize)> + '_ {
        self.events.iter().filter_map(|e| match e.kind {
            FaultKind::NodeCrash { node } => Some((e.at, node)),
            _ => None,
        })
    }
}

/// Read the exhibit fault seed from `HPCC_FAULT_SEED`, falling back to
/// `default`. This is how CI varies the seed across whole test runs to
/// flush out seed-dependent nondeterminism.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("HPCC_FAULT_SEED") {
        Ok(s) => s.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MtbfModel {
        MtbfModel {
            node_mtbf: Some(Dur::from_secs(40)),
            slow_mtbf: Some(Dur::from_secs(90)),
            slow_factor: 3.0,
            slow_duration: Dur::from_secs(5),
            link_mtbf: Some(Dur::from_secs(120)),
            link_repair: Dur::from_secs(10),
            flap_mtbf: Some(Dur::from_secs(60)),
            flap_duration: Dur::from_millis(200),
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::seeded(42, &model(), 64, 224, Dur::from_secs(100));
        let b = FaultPlan::seeded(42, &model(), 64, 224, Dur::from_secs(100));
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, &model(), 64, 224, Dur::from_secs(100));
        let b = FaultPlan::seeded(2, &model(), 64, 224, Dur::from_secs(100));
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_time_ordered() {
        let p = FaultPlan::seeded(7, &model(), 32, 100, Dur::from_secs(300));
        for w in p.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn at_most_one_crash_per_node() {
        let p = FaultPlan::seeded(
            9,
            &MtbfModel::node_crashes(Dur::from_secs(10)),
            16,
            0,
            Dur::from_secs(1000),
        );
        let mut crashed = [false; 16];
        for (_, n) in p.node_crashes() {
            assert!(!crashed[n], "node {n} crashed twice");
            crashed[n] = true;
        }
        assert!(
            crashed.iter().filter(|&&c| c).count() >= 14,
            "mtbf << horizon"
        );
    }

    #[test]
    fn empty_model_empty_plan() {
        let p = FaultPlan::seeded(3, &MtbfModel::none(), 528, 2048, Dur::from_secs(1000));
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn scripted_sorts() {
        let mut p = FaultPlan::none();
        p.push(
            SimTime::from_secs_f64(2.0),
            FaultKind::NodeCrash { node: 1 },
        );
        p.push(
            SimTime::from_secs_f64(1.0),
            FaultKind::NodeCrash { node: 0 },
        );
        assert_eq!(p.events()[0].at, SimTime::from_secs_f64(1.0));
        assert_eq!(p.seed(), None);
    }

    #[test]
    fn seed_env_fallback() {
        // Not set in the test environment by default.
        if std::env::var("HPCC_FAULT_SEED").is_err() {
            assert_eq!(seed_from_env(1992), 1992);
        } else {
            let _ = seed_from_env(1992); // must not panic on any value
        }
    }
}
