//! Deterministic pseudo-random numbers for simulation workloads.
//!
//! Xoshiro256** seeded through SplitMix64, implemented locally so the
//! simulators have zero external dependencies and identical streams on
//! every platform. This is the generator the reproduction harness seeds
//! for every exhibit run.

/// SplitMix64 — used only to expand a single `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Xoshiro256** 1.0 (Blackman & Vigna). Period 2^256 − 1.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal variate from Box–Muller.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Seed from a single word; any value (including 0) is fine.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift (unbiased).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential variate with mean `mean` (inter-arrival times).
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        // 1 - U in (0,1] so ln never sees zero.
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Standard normal via Box–Muller (caches the spare variate).
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        let z = if let Some(z) = self.spare_normal.take() {
            z
        } else {
            let u1 = 1.0 - self.next_f64();
            let u2 = self.next_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare_normal = Some(r * theta.sin());
            r * theta.cos()
        };
        mu + sigma * z
    }

    /// Pareto variate (heavy-tailed file sizes), shape `alpha`, scale `xm`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0);
        xm / (1.0 - self.next_f64()).powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty());
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Derive an independent child stream (for per-node generators).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.03, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn pareto_at_least_scale() {
        let mut r = Rng::new(19);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(23);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = Rng::new(31);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
