//! Built-in topologies: the Delta Consortium connectivity figure (exhibit
//! T4-5) and the NSFnet backbones of the NREN story.
//!
//! The consortium member list and link classes come from the paper's
//! "Delta Consortium Partners" figure ("over 14 government, industry and
//! academia organizations"; legend: NSFnet T1, NSFnet T3, ESnet T1, CASA
//! HIPPI/SONET 800 Mb/s, Regional T1, Regional 56 kb/s). Exact site-level
//! wiring was simplified on the original figure too ("topologies ... have
//! been simplified to better illustrate connectivity"); ours is a faithful
//! reconstruction at the same granularity, with great-circle-ish
//! propagation delays.

use crate::graph::Net;
use crate::link::{LinkClass, SiteId};
use des::time::Dur;

/// Where the Delta lives in every built-in topology.
pub const DELTA_SITE: &str = "Caltech (Delta)";

fn ms(v: u64) -> Dur {
    Dur::from_millis(v)
}

/// The Delta Consortium network (exhibit T4-5): partners reach the
/// Touchstone Delta at Caltech over the six link classes of the figure.
pub fn delta_consortium() -> Net {
    let mut net = Net::new();

    // Hub and backbone infrastructure.
    let caltech = net.add_site(DELTA_SITE);
    let nsf_w = net.add_site("NSFnet-West");
    let nsf_mw = net.add_site("NSFnet-Midwest");
    let nsf_e = net.add_site("NSFnet-East");
    let esnet = net.add_site("ESnet-Hub");

    // NSFnet T3 backbone (1992 state) + Caltech's T3 attachment.
    net.add_link(nsf_w, nsf_mw, LinkClass::T3, ms(14));
    net.add_link(nsf_mw, nsf_e, LinkClass::T3, ms(9));
    net.add_link(caltech, nsf_w, LinkClass::T3, ms(3));
    // Legacy NSFnet T1 path kept in parallel (the figure shows both).
    net.add_link(caltech, nsf_mw, LinkClass::T1, ms(16));
    // ESnet T1 into the hub, which peers with NSFnet-West.
    net.add_link(esnet, nsf_w, LinkClass::T1, ms(4));

    // CASA gigabit testbed: HIPPI/SONET among Caltech, JPL, LANL, SDSC.
    let jpl = net.add_site("JPL");
    let lanl = net.add_site("Los Alamos");
    let sdsc = net.add_site("San Diego (SDSC)");
    net.add_link(caltech, jpl, LinkClass::HippiSonet800, ms(1));
    net.add_link(caltech, lanl, LinkClass::HippiSonet800, ms(6));
    net.add_link(caltech, sdsc, LinkClass::HippiSonet800, ms(2));
    net.add_link(lanl, sdsc, LinkClass::HippiSonet800, ms(6));

    // Agency and academic partners on the classes the legend names.
    let darpa = net.add_site("DARPA");
    net.add_link(darpa, nsf_e, LinkClass::T1, ms(2));
    let nasa_ames = net.add_site("NASA Ames");
    net.add_link(nasa_ames, nsf_w, LinkClass::T1, ms(2));
    let nasa_hq = net.add_site("NASA HQ");
    net.add_link(nasa_hq, nsf_e, LinkClass::T1, ms(2));
    let nsf_hq = net.add_site("NSF");
    net.add_link(nsf_hq, nsf_e, LinkClass::T1, ms(2));
    let argonne = net.add_site("Argonne");
    net.add_link(argonne, esnet, LinkClass::T1, ms(12));
    let rice = net.add_site("Rice (CRPC)");
    net.add_link(rice, nsf_mw, LinkClass::T1, ms(8));
    let intel = net.add_site("Intel SSD");
    net.add_link(intel, nsf_w, LinkClass::T1, ms(5));
    let purdue = net.add_site("Purdue");
    net.add_link(purdue, nsf_mw, LinkClass::Regional56k, ms(4));
    let ucdavis = net.add_site("UC Davis");
    net.add_link(ucdavis, nsf_w, LinkClass::Regional56k, ms(3));
    let pnl = net.add_site("Pacific Northwest Lab");
    net.add_link(pnl, esnet, LinkClass::Regional56k, ms(6));

    net
}

/// Consortium partner sites: everything except the Delta host itself and
/// backbone infrastructure.
pub fn partner_sites(net: &Net) -> Vec<SiteId> {
    (0..net.sites())
        .filter(|&s| {
            let n = net.name(s);
            n != DELTA_SITE && !n.starts_with("NSFnet") && !n.starts_with("ESnet")
        })
        .collect()
}

/// The 13-node NSFnet backbone ring-and-chords, at a selectable class.
/// `nsfnet(LinkClass::T1)` is the late-80s net, `T3` the 1992 upgrade,
/// `Gigabit` the NREN target the program funds.
pub fn nsfnet(class: LinkClass) -> Net {
    let mut net = Net::new();
    let names = [
        "Seattle",
        "Palo Alto",
        "San Diego",
        "Salt Lake City",
        "Boulder",
        "Lincoln",
        "Houston",
        "Champaign",
        "Ann Arbor",
        "Pittsburgh",
        "Ithaca",
        "Princeton",
        "College Park",
    ];
    let ids: Vec<SiteId> = names.iter().map(|n| net.add_site(*n)).collect();
    // (a, b, one-way ms) — simplified geography of the real backbone.
    let edges: [(usize, usize, u64); 16] = [
        (0, 1, 9),   // Seattle - Palo Alto
        (0, 3, 8),   // Seattle - Salt Lake
        (1, 2, 5),   // Palo Alto - San Diego
        (1, 3, 7),   // Palo Alto - Salt Lake
        (2, 6, 13),  // San Diego - Houston
        (3, 4, 5),   // Salt Lake - Boulder
        (4, 5, 5),   // Boulder - Lincoln
        (5, 7, 5),   // Lincoln - Champaign
        (6, 7, 9),   // Houston - Champaign
        (6, 12, 12), // Houston - College Park
        (7, 8, 3),   // Champaign - Ann Arbor
        (8, 9, 3),   // Ann Arbor - Pittsburgh
        (9, 10, 3),  // Pittsburgh - Ithaca
        (9, 12, 2),  // Pittsburgh - College Park
        (10, 11, 2), // Ithaca - Princeton
        (11, 12, 2), // Princeton - College Park
    ];
    for (a, b, l) in edges {
        net.add_link(ids[a], ids[b], class, ms(l));
    }
    net
}

/// A datacenter fabric plus the host sites attached to it — what the
/// generators below return, and what workload builders consume.
#[derive(Debug, Clone)]
pub struct Fabric {
    pub net: Net,
    /// End-host sites (the only valid flow endpoints inside the fabric).
    pub hosts: Vec<SiteId>,
    /// Switch/router sites, in generator order.
    pub switches: Vec<SiteId>,
}

fn us(v: u64) -> Dur {
    Dur::from_micros(v)
}

/// A k-ary fat-tree (Clos) fabric: k pods of k/2 edge and k/2
/// aggregation switches, (k/2)² core switches, and k²/4 hosts per pod —
/// k³/4 hosts total. `host` is the NIC/edge link class, `fabric` the
/// edge→agg and agg→core class; full bisection needs
/// `fabric ≥ host × k/2`, which the 100G/400G pairing provides for
/// k ≤ 8. `k` must be even and ≥ 2.
///
/// Site names are prefixed with `tag` so a fabric can be grafted into a
/// larger net (see [`fabric_to_wan`]) without name collisions.
pub fn fat_tree(k: usize, host: LinkClass, fabric: LinkClass, tag: &str) -> Fabric {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even, got {k}"
    );
    let mut net = Net::new();
    let half = k / 2;
    let mut hosts = Vec::new();
    let mut switches = Vec::new();
    // Core layer: (k/2)^2 switches, addressed (i, j).
    let cores: Vec<SiteId> = (0..half * half)
        .map(|c| net.add_site(format!("{tag}core{c}")))
        .collect();
    switches.extend(&cores);
    for pod in 0..k {
        let aggs: Vec<SiteId> = (0..half)
            .map(|a| net.add_site(format!("{tag}p{pod}a{a}")))
            .collect();
        let edges: Vec<SiteId> = (0..half)
            .map(|e| net.add_site(format!("{tag}p{pod}e{e}")))
            .collect();
        switches.extend(&aggs);
        switches.extend(&edges);
        // Agg a of every pod uplinks to cores [a*half, (a+1)*half).
        for (a, &agg) in aggs.iter().enumerate() {
            for j in 0..half {
                net.add_link(agg, cores[a * half + j], fabric, us(2));
            }
            // Full bipartite agg <-> edge inside the pod.
            for &edge in &edges {
                net.add_link(agg, edge, fabric, us(1));
            }
        }
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let hs = net.add_site(format!("{tag}p{pod}h{}", e * half + h));
                net.add_link(edge, hs, host, us(1));
                hosts.push(hs);
            }
        }
    }
    Fabric {
        net,
        hosts,
        switches,
    }
}

/// A dragonfly fabric: `groups` groups of `routers` routers each,
/// all-to-all local links inside a group, `hosts_per_router` hosts on
/// every router, and one global link between every pair of groups
/// (rotating which router carries it, as the canonical balanced
/// dragonfly does). `local` is the intra-group and host class, `global`
/// the inter-group class.
pub fn dragonfly(
    groups: usize,
    routers: usize,
    hosts_per_router: usize,
    local: LinkClass,
    global: LinkClass,
    tag: &str,
) -> Fabric {
    assert!(groups >= 2 && routers >= 1 && hosts_per_router >= 1);
    let mut net = Net::new();
    let mut hosts = Vec::new();
    let mut switches = Vec::new();
    let mut rt = vec![vec![0usize; routers]; groups];
    for (g, row) in rt.iter_mut().enumerate() {
        for (r, slot) in row.iter_mut().enumerate() {
            let id = net.add_site(format!("{tag}g{g}r{r}"));
            *slot = id;
            switches.push(id);
            for h in 0..hosts_per_router {
                let hs = net.add_site(format!("{tag}g{g}r{r}h{h}"));
                net.add_link(id, hs, local, us(1));
                hosts.push(hs);
            }
        }
        // All-to-all local mesh inside the group.
        for a in 0..routers {
            for b in (a + 1)..routers {
                net.add_link(row[a], row[b], local, us(1));
            }
        }
    }
    // One global link per group pair; the (a, b) pair lands on router
    // index chosen round-robin so global links spread across routers.
    let mut spin = 0usize;
    for a in 0..groups {
        for b in (a + 1)..groups {
            let ra = rt[a][spin % routers];
            let rb = rt[b][(spin + 1) % routers];
            net.add_link(ra, rb, global, us(5));
            spin += 1;
        }
    }
    Fabric {
        net,
        hosts,
        switches,
    }
}

/// One scenario spanning NIC → datacenter fabric → NREN: a k-ary
/// fat-tree ("west", at Palo Alto) and a dragonfly ("east", at College
/// Park) grafted onto the 13-site NSFnet backbone running at `wan`
/// class. Each fabric's first switches gate onto the backbone site over
/// two `gateway`-class links. Returns the composed net plus both host
/// lists (west, east).
pub fn fabric_to_wan(
    k: usize,
    wan: LinkClass,
    gateway: LinkClass,
) -> (Net, Vec<SiteId>, Vec<SiteId>) {
    let mut net = nsfnet(wan);
    let west = fat_tree(k, LinkClass::Gig100, LinkClass::Gig400, "W.");
    let east = dragonfly(
        4,
        4,
        k.max(2) / 2,
        LinkClass::Gig100,
        LinkClass::Gig400,
        "E.",
    );
    let w_hosts = graft(&mut net, &west, "Palo Alto", gateway);
    let e_hosts = graft(&mut net, &east, "College Park", gateway);
    (net, w_hosts, e_hosts)
}

/// Copy `fab` into `net`, then tie its first two switches to `at` with
/// `gateway`-class links. Returns the host ids remapped into `net`.
fn graft(net: &mut Net, fab: &Fabric, at: &str, gateway: LinkClass) -> Vec<SiteId> {
    let base = net.sites();
    for s in 0..fab.net.sites() {
        net.add_site(fab.net.name(s).to_string());
    }
    for l in fab.net.links() {
        net.add_link(base + l.a, base + l.b, l.class, l.latency);
    }
    let hub = net.site(at).expect("WAN attachment site exists");
    for &sw in fab.switches.iter().take(2) {
        net.add_link(hub, base + sw, gateway, us(50));
    }
    fab.hosts.iter().map(|&h| base + h).collect()
}

/// The CASA gigabit testbed on its own: four sites, HIPPI/SONET.
pub fn casa_testbed() -> Net {
    let mut net = Net::new();
    let caltech = net.add_site(DELTA_SITE);
    let jpl = net.add_site("JPL");
    let lanl = net.add_site("Los Alamos");
    let sdsc = net.add_site("San Diego (SDSC)");
    net.add_link(caltech, jpl, LinkClass::HippiSonet800, ms(1));
    net.add_link(caltech, lanl, LinkClass::HippiSonet800, ms(6));
    net.add_link(caltech, sdsc, LinkClass::HippiSonet800, ms(2));
    net.add_link(lanl, sdsc, LinkClass::HippiSonet800, ms(6));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowSim, TransferSpec};
    use des::time::SimTime;

    #[test]
    fn consortium_has_over_14_partners() {
        let net = delta_consortium();
        let partners = partner_sites(&net);
        assert!(
            partners.len() >= 11,
            "figure says 'over 14 organizations' (incl. Caltech/NSF/Intel): got {}",
            partners.len()
        );
    }

    #[test]
    fn every_partner_reaches_the_delta() {
        let net = delta_consortium();
        let delta = net.site(DELTA_SITE).unwrap();
        for p in partner_sites(&net) {
            let r = net.route(p, delta);
            assert!(r.is_some(), "{} unreachable", net.name(p));
        }
    }

    #[test]
    fn casa_sites_get_hippi_rate() {
        let net = delta_consortium();
        let delta = net.site(DELTA_SITE).unwrap();
        let jpl = net.site("JPL").unwrap();
        let r = net.route(jpl, delta).unwrap();
        assert_eq!(net.bottleneck(&r), LinkClass::HippiSonet800.bytes_per_sec());
    }

    #[test]
    fn tail_sites_are_56k_limited() {
        let net = delta_consortium();
        let delta = net.site(DELTA_SITE).unwrap();
        let purdue = net.site("Purdue").unwrap();
        let r = net.route(purdue, delta).unwrap();
        assert_eq!(net.bottleneck(&r), LinkClass::Regional56k.bytes_per_sec());
    }

    #[test]
    fn nsfnet_connected_at_all_classes() {
        for class in [LinkClass::T1, LinkClass::T3, LinkClass::Gigabit] {
            let net = nsfnet(class);
            for a in 0..net.sites() {
                for b in 0..net.sites() {
                    assert!(net.route(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn t3_upgrade_speeds_up_coast_to_coast() {
        let bytes = 100_000_000; // a 100 MB result field
        let mut times = Vec::new();
        for class in [LinkClass::T1, LinkClass::T3, LinkClass::Gigabit] {
            let net = nsfnet(class);
            let sim = FlowSim::new(&net);
            let a = net.site("Palo Alto").unwrap();
            let b = net.site("College Park").unwrap();
            let recs = sim.run(vec![TransferSpec::new(a, b, bytes, SimTime::ZERO)]);
            times.push(recs[0].duration().as_secs_f64());
        }
        assert!(times[0] > 20.0 * times[1], "T3 ~29x faster than T1");
        assert!(times[1] > 10.0 * times[2], "gigabit ~22x faster than T3");
    }

    #[test]
    fn fat_tree_shape_and_reach() {
        for k in [2usize, 4, 6] {
            let fab = fat_tree(k, LinkClass::Gig100, LinkClass::Gig400, "");
            assert_eq!(fab.hosts.len(), k * k * k / 4, "k={k} host count");
            assert_eq!(
                fab.switches.len(),
                k * k / 4 + k * k,
                "k={k}: (k/2)^2 cores + k pods x k switches"
            );
            // Link census: host links k^3/4, edge-agg (k/2)^2 per pod,
            // agg-core k/2 per agg.
            let expect_links = k * k * k / 4 + k * (k / 2) * (k / 2) + k * (k / 2) * (k / 2);
            assert_eq!(fab.net.links().len(), expect_links, "k={k} link count");
            // Any two hosts reach each other in <= 6 hops (up to core,
            // down again), and intra-pod pairs stay inside the pod.
            let a = fab.hosts[0];
            let b = *fab.hosts.last().unwrap();
            let r = fab.net.route(a, b).unwrap();
            assert!(r.hops() <= 6, "k={k}: {} hops", r.hops());
            assert_eq!(r.bottleneck, LinkClass::Gig100.bytes_per_sec());
        }
    }

    #[test]
    fn dragonfly_shape_and_reach() {
        let (g, r, p) = (5usize, 4usize, 2usize);
        let fab = dragonfly(g, r, p, LinkClass::Gig100, LinkClass::Gig400, "");
        assert_eq!(fab.hosts.len(), g * r * p);
        assert_eq!(fab.switches.len(), g * r);
        // local: all-to-all per group + host links; global: one per pair.
        let expect = g * (r * (r - 1) / 2) + g * r * p + g * (g - 1) / 2;
        assert_eq!(fab.net.links().len(), expect);
        let a = fab.hosts[0];
        let b = *fab.hosts.last().unwrap();
        let route = fab.net.route(a, b).unwrap();
        // host->router, <=1 local, global, <=1 local, router->host.
        assert!(route.hops() <= 5, "{} hops", route.hops());
    }

    #[test]
    fn fabric_to_wan_spans_nic_to_nren() {
        let (net, west, east) = fabric_to_wan(4, LinkClass::Gigabit, LinkClass::Gig100);
        assert!(!west.is_empty() && !east.is_empty());
        let r = net.route(west[0], east[0]).unwrap();
        // Coast-to-coast: through the west fabric, across the backbone,
        // into the east fabric — bottlenecked by the WAN class.
        assert!(r.hops() >= 5, "crosses fabric + WAN: {} hops", r.hops());
        assert_eq!(r.bottleneck, LinkClass::Gigabit.bytes_per_sec());
        // Intra-fabric traffic never touches the WAN bottleneck.
        let rw = net.route(west[0], *west.last().unwrap()).unwrap();
        assert_eq!(rw.bottleneck, LinkClass::Gig100.bytes_per_sec());
    }

    #[test]
    fn casa_standalone_is_fully_hippi() {
        let net = casa_testbed();
        for a in 0..net.sites() {
            for b in 0..net.sites() {
                if a != b {
                    let r = net.route(a, b).unwrap();
                    assert_eq!(net.bottleneck(&r), LinkClass::HippiSonet800.bytes_per_sec());
                }
            }
        }
    }
}
