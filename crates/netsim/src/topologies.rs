//! Built-in topologies: the Delta Consortium connectivity figure (exhibit
//! T4-5) and the NSFnet backbones of the NREN story.
//!
//! The consortium member list and link classes come from the paper's
//! "Delta Consortium Partners" figure ("over 14 government, industry and
//! academia organizations"; legend: NSFnet T1, NSFnet T3, ESnet T1, CASA
//! HIPPI/SONET 800 Mb/s, Regional T1, Regional 56 kb/s). Exact site-level
//! wiring was simplified on the original figure too ("topologies ... have
//! been simplified to better illustrate connectivity"); ours is a faithful
//! reconstruction at the same granularity, with great-circle-ish
//! propagation delays.

use crate::graph::Net;
use crate::link::{LinkClass, SiteId};
use des::time::Dur;

/// Where the Delta lives in every built-in topology.
pub const DELTA_SITE: &str = "Caltech (Delta)";

fn ms(v: u64) -> Dur {
    Dur::from_millis(v)
}

/// The Delta Consortium network (exhibit T4-5): partners reach the
/// Touchstone Delta at Caltech over the six link classes of the figure.
pub fn delta_consortium() -> Net {
    let mut net = Net::new();

    // Hub and backbone infrastructure.
    let caltech = net.add_site(DELTA_SITE);
    let nsf_w = net.add_site("NSFnet-West");
    let nsf_mw = net.add_site("NSFnet-Midwest");
    let nsf_e = net.add_site("NSFnet-East");
    let esnet = net.add_site("ESnet-Hub");

    // NSFnet T3 backbone (1992 state) + Caltech's T3 attachment.
    net.add_link(nsf_w, nsf_mw, LinkClass::T3, ms(14));
    net.add_link(nsf_mw, nsf_e, LinkClass::T3, ms(9));
    net.add_link(caltech, nsf_w, LinkClass::T3, ms(3));
    // Legacy NSFnet T1 path kept in parallel (the figure shows both).
    net.add_link(caltech, nsf_mw, LinkClass::T1, ms(16));
    // ESnet T1 into the hub, which peers with NSFnet-West.
    net.add_link(esnet, nsf_w, LinkClass::T1, ms(4));

    // CASA gigabit testbed: HIPPI/SONET among Caltech, JPL, LANL, SDSC.
    let jpl = net.add_site("JPL");
    let lanl = net.add_site("Los Alamos");
    let sdsc = net.add_site("San Diego (SDSC)");
    net.add_link(caltech, jpl, LinkClass::HippiSonet800, ms(1));
    net.add_link(caltech, lanl, LinkClass::HippiSonet800, ms(6));
    net.add_link(caltech, sdsc, LinkClass::HippiSonet800, ms(2));
    net.add_link(lanl, sdsc, LinkClass::HippiSonet800, ms(6));

    // Agency and academic partners on the classes the legend names.
    let darpa = net.add_site("DARPA");
    net.add_link(darpa, nsf_e, LinkClass::T1, ms(2));
    let nasa_ames = net.add_site("NASA Ames");
    net.add_link(nasa_ames, nsf_w, LinkClass::T1, ms(2));
    let nasa_hq = net.add_site("NASA HQ");
    net.add_link(nasa_hq, nsf_e, LinkClass::T1, ms(2));
    let nsf_hq = net.add_site("NSF");
    net.add_link(nsf_hq, nsf_e, LinkClass::T1, ms(2));
    let argonne = net.add_site("Argonne");
    net.add_link(argonne, esnet, LinkClass::T1, ms(12));
    let rice = net.add_site("Rice (CRPC)");
    net.add_link(rice, nsf_mw, LinkClass::T1, ms(8));
    let intel = net.add_site("Intel SSD");
    net.add_link(intel, nsf_w, LinkClass::T1, ms(5));
    let purdue = net.add_site("Purdue");
    net.add_link(purdue, nsf_mw, LinkClass::Regional56k, ms(4));
    let ucdavis = net.add_site("UC Davis");
    net.add_link(ucdavis, nsf_w, LinkClass::Regional56k, ms(3));
    let pnl = net.add_site("Pacific Northwest Lab");
    net.add_link(pnl, esnet, LinkClass::Regional56k, ms(6));

    net
}

/// Consortium partner sites: everything except the Delta host itself and
/// backbone infrastructure.
pub fn partner_sites(net: &Net) -> Vec<SiteId> {
    (0..net.sites())
        .filter(|&s| {
            let n = net.name(s);
            n != DELTA_SITE && !n.starts_with("NSFnet") && !n.starts_with("ESnet")
        })
        .collect()
}

/// The 13-node NSFnet backbone ring-and-chords, at a selectable class.
/// `nsfnet(LinkClass::T1)` is the late-80s net, `T3` the 1992 upgrade,
/// `Gigabit` the NREN target the program funds.
pub fn nsfnet(class: LinkClass) -> Net {
    let mut net = Net::new();
    let names = [
        "Seattle",
        "Palo Alto",
        "San Diego",
        "Salt Lake City",
        "Boulder",
        "Lincoln",
        "Houston",
        "Champaign",
        "Ann Arbor",
        "Pittsburgh",
        "Ithaca",
        "Princeton",
        "College Park",
    ];
    let ids: Vec<SiteId> = names.iter().map(|n| net.add_site(*n)).collect();
    // (a, b, one-way ms) — simplified geography of the real backbone.
    let edges: [(usize, usize, u64); 16] = [
        (0, 1, 9),   // Seattle - Palo Alto
        (0, 3, 8),   // Seattle - Salt Lake
        (1, 2, 5),   // Palo Alto - San Diego
        (1, 3, 7),   // Palo Alto - Salt Lake
        (2, 6, 13),  // San Diego - Houston
        (3, 4, 5),   // Salt Lake - Boulder
        (4, 5, 5),   // Boulder - Lincoln
        (5, 7, 5),   // Lincoln - Champaign
        (6, 7, 9),   // Houston - Champaign
        (6, 12, 12), // Houston - College Park
        (7, 8, 3),   // Champaign - Ann Arbor
        (8, 9, 3),   // Ann Arbor - Pittsburgh
        (9, 10, 3),  // Pittsburgh - Ithaca
        (9, 12, 2),  // Pittsburgh - College Park
        (10, 11, 2), // Ithaca - Princeton
        (11, 12, 2), // Princeton - College Park
    ];
    for (a, b, l) in edges {
        net.add_link(ids[a], ids[b], class, ms(l));
    }
    net
}

/// The CASA gigabit testbed on its own: four sites, HIPPI/SONET.
pub fn casa_testbed() -> Net {
    let mut net = Net::new();
    let caltech = net.add_site(DELTA_SITE);
    let jpl = net.add_site("JPL");
    let lanl = net.add_site("Los Alamos");
    let sdsc = net.add_site("San Diego (SDSC)");
    net.add_link(caltech, jpl, LinkClass::HippiSonet800, ms(1));
    net.add_link(caltech, lanl, LinkClass::HippiSonet800, ms(6));
    net.add_link(caltech, sdsc, LinkClass::HippiSonet800, ms(2));
    net.add_link(lanl, sdsc, LinkClass::HippiSonet800, ms(6));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowSim, TransferSpec};
    use des::time::SimTime;

    #[test]
    fn consortium_has_over_14_partners() {
        let net = delta_consortium();
        let partners = partner_sites(&net);
        assert!(
            partners.len() >= 11,
            "figure says 'over 14 organizations' (incl. Caltech/NSF/Intel): got {}",
            partners.len()
        );
    }

    #[test]
    fn every_partner_reaches_the_delta() {
        let net = delta_consortium();
        let delta = net.site(DELTA_SITE).unwrap();
        for p in partner_sites(&net) {
            let r = net.route(p, delta);
            assert!(r.is_some(), "{} unreachable", net.name(p));
        }
    }

    #[test]
    fn casa_sites_get_hippi_rate() {
        let net = delta_consortium();
        let delta = net.site(DELTA_SITE).unwrap();
        let jpl = net.site("JPL").unwrap();
        let r = net.route(jpl, delta).unwrap();
        assert_eq!(net.bottleneck(&r), LinkClass::HippiSonet800.bytes_per_sec());
    }

    #[test]
    fn tail_sites_are_56k_limited() {
        let net = delta_consortium();
        let delta = net.site(DELTA_SITE).unwrap();
        let purdue = net.site("Purdue").unwrap();
        let r = net.route(purdue, delta).unwrap();
        assert_eq!(net.bottleneck(&r), LinkClass::Regional56k.bytes_per_sec());
    }

    #[test]
    fn nsfnet_connected_at_all_classes() {
        for class in [LinkClass::T1, LinkClass::T3, LinkClass::Gigabit] {
            let net = nsfnet(class);
            for a in 0..net.sites() {
                for b in 0..net.sites() {
                    assert!(net.route(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn t3_upgrade_speeds_up_coast_to_coast() {
        let bytes = 100_000_000; // a 100 MB result field
        let mut times = Vec::new();
        for class in [LinkClass::T1, LinkClass::T3, LinkClass::Gigabit] {
            let net = nsfnet(class);
            let sim = FlowSim::new(&net);
            let a = net.site("Palo Alto").unwrap();
            let b = net.site("College Park").unwrap();
            let recs = sim.run(vec![TransferSpec::new(a, b, bytes, SimTime::ZERO)]);
            times.push(recs[0].duration().as_secs_f64());
        }
        assert!(times[0] > 20.0 * times[1], "T3 ~29x faster than T1");
        assert!(times[1] > 10.0 * times[2], "gigabit ~22x faster than T3");
    }

    #[test]
    fn casa_standalone_is_fully_hippi() {
        let net = casa_testbed();
        for a in 0..net.sites() {
            for b in 0..net.sites() {
                if a != b {
                    let r = net.route(a, b).unwrap();
                    assert_eq!(net.bottleneck(&r), LinkClass::HippiSonet800.bytes_per_sec());
                }
            }
        }
    }
}
