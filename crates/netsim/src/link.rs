//! Link technology classes of the 1992 NREN / Delta Consortium era.
//!
//! The bandwidths are the classes named on the paper's "Delta Consortium
//! Partners" figure: NSFnet T1 (1.5 Mb/s), NSFnet T3 (45 Mb/s), ESnet T1,
//! CASA HIPPI/SONET (800 Mb/s), regional T1 and 56 kb/s tails — plus the
//! gigabit class the NREN component is funded to reach.

use des::time::Dur;

/// A physical link technology with its line rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// 56 kb/s DDS tail circuit ("Regional (56 kbps)" on the figure).
    Regional56k,
    /// T1: 1.544 Mb/s (NSFnet T1, ESnet T1, regional T1).
    T1,
    /// T3: 44.736 Mb/s (the NSFnet T3 backbone of 1992).
    T3,
    /// 10 Mb/s Ethernet campus segment.
    Ethernet10,
    /// 100 Mb/s FDDI campus ring.
    Fddi,
    /// HIPPI over SONET at 800 Mb/s (the CASA gigabit testbed).
    HippiSonet800,
    /// Full gigabit — the NREN program goal.
    Gigabit,
    /// 100 Gb/s Ethernet — the modern datacenter-fabric edge tier, the
    /// T3 of the NREN upgrade story replayed thirty years on.
    Gig100,
    /// 400 Gb/s Ethernet — modern fabric spine / DCI tier.
    Gig400,
}

impl LinkClass {
    /// Line rate in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        match self {
            LinkClass::Regional56k => 56.0e3,
            LinkClass::T1 => 1.544e6,
            LinkClass::T3 => 44.736e6,
            LinkClass::Ethernet10 => 10.0e6,
            LinkClass::Fddi => 100.0e6,
            LinkClass::HippiSonet800 => 800.0e6,
            LinkClass::Gigabit => 1.0e9,
            LinkClass::Gig100 => 100.0e9,
            LinkClass::Gig400 => 400.0e9,
        }
    }

    /// Usable payload rate in bytes per second, after framing overhead.
    pub fn bytes_per_sec(self) -> f64 {
        self.bits_per_sec() * self.efficiency() / 8.0
    }

    /// Fraction of line rate available to payload (framing/protocol tax).
    pub fn efficiency(self) -> f64 {
        match self {
            LinkClass::Regional56k => 0.90,
            LinkClass::T1 => 0.95,
            LinkClass::T3 => 0.95,
            LinkClass::Ethernet10 => 0.85,
            LinkClass::Fddi => 0.90,
            LinkClass::HippiSonet800 => 0.93,
            LinkClass::Gigabit => 0.95,
            LinkClass::Gig100 => 0.97,
            LinkClass::Gig400 => 0.97,
        }
    }

    /// Label used in regenerated exhibits.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::Regional56k => "Regional (56 kbps)",
            LinkClass::T1 => "T1 (1.5 Mbps)",
            LinkClass::T3 => "T3 (45 Mbps)",
            LinkClass::Ethernet10 => "Ethernet (10 Mbps)",
            LinkClass::Fddi => "FDDI (100 Mbps)",
            LinkClass::HippiSonet800 => "HIPPI/SONET (800 Mbps)",
            LinkClass::Gigabit => "Gigabit",
            LinkClass::Gig100 => "100G Ethernet",
            LinkClass::Gig400 => "400G Ethernet",
        }
    }

    /// The modern fabric tiers the NET-1 exhibit sweeps, slowest first —
    /// the T1→T3→gigabit upgrade story replayed at 2020s line rates.
    pub fn modern_tiers() -> [LinkClass; 3] {
        [LinkClass::Gigabit, LinkClass::Gig100, LinkClass::Gig400]
    }

    /// All classes that appear on the consortium figure, slowest first.
    pub fn consortium_classes() -> [LinkClass; 4] {
        [
            LinkClass::Regional56k,
            LinkClass::T1,
            LinkClass::T3,
            LinkClass::HippiSonet800,
        ]
    }
}

/// A site (network endpoint) id.
pub type SiteId = usize;

/// A duplex link; each direction has independent capacity.
#[derive(Debug, Clone)]
pub struct Link {
    pub a: SiteId,
    pub b: SiteId,
    pub class: LinkClass,
    /// One-way propagation delay.
    pub latency: Dur,
}

impl Link {
    pub fn capacity(&self) -> f64 {
        self.class.bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_matches_era() {
        let mut prev = 0.0;
        for c in [
            LinkClass::Regional56k,
            LinkClass::T1,
            LinkClass::Ethernet10,
            LinkClass::T3,
            LinkClass::Fddi,
            LinkClass::HippiSonet800,
            LinkClass::Gigabit,
            LinkClass::Gig100,
            LinkClass::Gig400,
        ] {
            assert!(c.bits_per_sec() > prev, "{c:?}");
            prev = c.bits_per_sec();
        }
    }

    #[test]
    fn modern_tiers_replay_the_upgrade_ratios() {
        let [gig, g100, g400] = LinkClass::modern_tiers();
        // Gigabit→100G is a ~100x jump, larger than the T1→T3 29x the
        // paper celebrates; 100G→400G is the incremental follow-on.
        assert!((g100.bits_per_sec() / gig.bits_per_sec() - 100.0).abs() < 1e-6);
        assert!((g400.bits_per_sec() / g100.bits_per_sec() - 4.0).abs() < 1e-6);
        for c in [g100, g400] {
            assert!(c.bytes_per_sec() * 8.0 < c.bits_per_sec());
            assert!(c.bytes_per_sec() * 8.0 > 0.9 * c.bits_per_sec());
        }
    }

    #[test]
    fn t3_to_t1_ratio() {
        // The NSFnet T1->T3 upgrade bought ~29x line rate.
        let r = LinkClass::T3.bits_per_sec() / LinkClass::T1.bits_per_sec();
        assert!((r - 28.97).abs() < 0.1, "ratio {r}");
    }

    #[test]
    fn payload_rate_below_line_rate() {
        for c in LinkClass::consortium_classes() {
            assert!(c.bytes_per_sec() * 8.0 < c.bits_per_sec());
            assert!(c.bytes_per_sec() * 8.0 > 0.8 * c.bits_per_sec());
        }
    }

    #[test]
    fn hippi_is_the_gigabit_testbed_class() {
        assert_eq!(LinkClass::HippiSonet800.bits_per_sec(), 800.0e6);
        assert!(LinkClass::HippiSonet800.label().contains("HIPPI"));
    }
}
