//! Incremental max-min fair-share solver.
//!
//! The legacy engine re-ran global progressive filling on every flow
//! event — O(flows × links) per arrival or completion, which caps the
//! simulator around 10⁴ concurrent flows. This module keeps the fair
//! allocation *materialised* between events: per-directed-link load and
//! saturation state, plus per-entry rates, are updated in place and only
//! the entries whose fair share can actually change are re-solved.
//!
//! On each event the solver:
//!
//! 1. seeds a worklist with the changed entries and the directed links
//!    they touch (an arrival, completion, reroute or link flap),
//! 2. closes the set transitively: any *pre-event saturated* link pulls
//!    every entry crossing it into the affected set `A`, and those
//!    entries' links join the frontier — rate changes can only propagate
//!    through saturated links, so the closure is exact,
//! 3. re-runs weighted progressive filling over `A` with the boundary
//!    (all other entries) frozen at their current rates — their load is
//!    subtracted from link capacity up front,
//! 4. post-checks every touched link that ended saturated: a boundary
//!    entry running *above* the fill level of such a link would have had
//!    to cede bandwidth, so it is pulled into `A` and the closure/fill
//!    repeats. The loop terminates because `A` only grows.
//!
//! When `A` exceeds a configured fraction of the live roster the solver
//! falls back to one full re-solve (same code path, `A` = everyone,
//! residual reset from raw capacity), keeping the worst case no worse
//! than the legacy engine and flushing accumulated float drift.
//!
//! Entries are *aggregates*: flows below a byte threshold on the same
//! (src, dst, window) collapse into one entry with an integer weight.
//! Weighted filling treats an entry as `weight` identical flows, which
//! yields exactly the rates the expanded flow list would get — the
//! per-dir weight sums equal the per-dir flow counts of the expanded
//! list, so the increments (and freeze order) are identical.
//!
//! Completion times use lazy drains: each entry keeps a cumulative
//! `drained` bytes-per-member counter synced on rate changes only, and
//! members are a min-heap keyed by `bytes + drained-at-join`, so an
//! event touches O(|A|) entries instead of every live flow.

use crate::flow::maxmin_rates;
use crate::graph::{Net, Route};
use crate::link::SiteId;
use des::time::{Dur, SimTime};
use std::rc::Rc;

/// How [`crate::flow::FlowSim`] recomputes the fair allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverMode {
    /// Worklist-driven incremental updates, falling back to one full
    /// re-solve whenever the affected set exceeds `full_fraction` of the
    /// live entries (0.0 = always full, 1.0 = never fall back).
    Incremental { full_fraction: f64 },
    /// Full progressive filling on every event — the legacy behaviour,
    /// kept as the benchmark baseline and as a cross-check.
    Global,
}

/// Configuration for [`crate::flow::FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    pub solver: SolverMode,
    /// Flows strictly smaller than this many bytes aggregate with other
    /// small flows on the same (src, dst, window). 0 disables.
    pub aggregate_below: u64,
    /// After every resolve, re-derive the allocation with the reference
    /// [`maxmin_rates`] and assert each flow matches within 1e-9
    /// relative. Expensive — for tests and the `--smoke` gate.
    pub verify: bool,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            solver: SolverMode::Incremental {
                full_fraction: 0.25,
            },
            aggregate_below: 0,
            verify: false,
        }
    }
}

/// Counters describing how hard the solver worked during a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Simulation events processed (arrivals, completions, transitions).
    pub events: u64,
    /// Resolves that had a non-empty affected set.
    pub resolves: u64,
    /// Resolves that fell back to (or ran as) a full re-solve.
    pub full_resolves: u64,
    /// Sum of affected-set sizes across resolves.
    pub entries_touched: u64,
    /// Affected-set size of the most recent resolve.
    pub last_dirty: usize,
    /// High-water mark of live solver entries (post-aggregation).
    pub peak_entries: usize,
    /// High-water mark of live flows (aggregate members).
    pub peak_flows: usize,
    /// Flows that joined an existing aggregate instead of opening one.
    pub aggregated_joins: u64,
}

impl SolverStats {
    /// Mean affected-set size per resolve.
    pub fn mean_dirty(&self) -> f64 {
        if self.resolves == 0 {
            0.0
        } else {
            self.entries_touched as f64 / self.resolves as f64
        }
    }
}

pub(crate) type EntryId = usize;

/// One flow inside an aggregate entry. `key` is the member's bytes plus
/// the entry's `drained` at join time, so `key - drained` is always the
/// bytes it has left.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Member {
    pub key: f64,
    pub flow: u32,
    pub started: SimTime,
}

struct Entry {
    route: Rc<Route>,
    src: SiteId,
    dst: SiteId,
    window: Option<u64>,
    /// Per-member rate cap (window / RTT), `INFINITY` when uncapped.
    cap: f64,
    /// Live member count as a float (exact for < 2^53 members).
    weight: f64,
    /// Current per-member rate, bytes/s.
    rate: f64,
    /// Cumulative bytes drained per member since the entry was created.
    drained: f64,
    /// Last time `drained` (and carried-bytes) were brought current.
    synced: SimTime,
    /// Min-heap on (key, flow).
    members: Vec<Member>,
    /// For each dir in `route.dirs`, this entry's index in `on[dir]`.
    pos: Vec<u32>,
    /// Bumped on any rate or membership change; stale heap handles
    /// carry the epoch they were issued under.
    epoch: u64,
    alive: bool,
}

fn member_lt(a: &Member, b: &Member) -> bool {
    match a.key.total_cmp(&b.key) {
        std::cmp::Ordering::Equal => a.flow < b.flow,
        o => o == std::cmp::Ordering::Less,
    }
}

fn heap_push(v: &mut Vec<Member>, m: Member) {
    v.push(m);
    let mut i = v.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        if member_lt(&v[i], &v[p]) {
            v.swap(i, p);
            i = p;
        } else {
            break;
        }
    }
}

fn heap_pop(v: &mut Vec<Member>) -> Member {
    let n = v.len();
    v.swap(0, n - 1);
    let out = v.pop().expect("pop from empty member heap");
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut s = i;
        if l < v.len() && member_lt(&v[l], &v[s]) {
            s = l;
        }
        if r < v.len() && member_lt(&v[r], &v[s]) {
            s = r;
        }
        if s == i {
            break;
        }
        v.swap(i, s);
        i = s;
    }
    out
}

/// The materialised allocation state for one simulation run.
pub(crate) struct Engine {
    mode: SolverMode,
    verify: bool,
    ndirs: usize,
    /// Directed-link capacity, bytes/s (mirrors `Net::capacity`).
    cap_v: Vec<f64>,
    /// Current total allocated rate per directed link.
    load: Vec<f64>,
    /// Saturation under the same tolerance `maxmin_rates` freezes with.
    sat: Vec<bool>,
    /// Live entries crossing each directed link.
    on: Vec<Vec<EntryId>>,
    entries: Vec<Entry>,
    free: Vec<EntryId>,
    /// Live entries in a stable order (swap-removed); full re-solves and
    /// verification walk this, so results are deterministic.
    roster: Vec<EntryId>,
    roster_pos: Vec<usize>,
    live_members: usize,
    /// Bytes carried per directed link, accrued at sync points.
    carried: Vec<f64>,
    // Event-scoped seeds: entries/links whose state changed since the
    // last resolve. Deduplicated by stamp at resolve time.
    seeds_e: Vec<EntryId>,
    seeds_d: Vec<usize>,
    seed_stamp: Vec<u64>,
    seed_no: u64,
    // Resolve-scoped scratch, reused across events.
    stamp: u64,
    e_stamp: Vec<u64>,
    d_stamp: Vec<u64>,
    dirty: Vec<EntryId>,
    touched_d: Vec<usize>,
    fr_rate: Vec<f64>,
    fr_frozen: Vec<bool>,
    residual: Vec<f64>,
    wsum: Vec<f64>,
    lvl: Vec<f64>,
    pub(crate) stats: SolverStats,
}

impl Engine {
    pub(crate) fn new(net: &Net, cfg: &FlowConfig) -> Engine {
        let ndirs = net.dir_links();
        let cap_v: Vec<f64> = (0..ndirs).map(|d| net.capacity(d)).collect();
        Engine {
            mode: cfg.solver,
            verify: cfg.verify,
            ndirs,
            cap_v,
            load: vec![0.0; ndirs],
            sat: vec![false; ndirs],
            on: vec![Vec::new(); ndirs],
            entries: Vec::new(),
            free: Vec::new(),
            roster: Vec::new(),
            roster_pos: Vec::new(),
            live_members: 0,
            carried: vec![0.0; ndirs],
            seeds_e: Vec::new(),
            seeds_d: Vec::new(),
            seed_stamp: Vec::new(),
            seed_no: 1,
            stamp: 0,
            e_stamp: Vec::new(),
            d_stamp: vec![0; ndirs],
            dirty: Vec::new(),
            touched_d: Vec::new(),
            fr_rate: Vec::new(),
            fr_frozen: Vec::new(),
            residual: vec![0.0; ndirs],
            wsum: vec![0.0; ndirs],
            lvl: vec![0.0; ndirs],
            stats: SolverStats::default(),
        }
    }

    pub(crate) fn live_entries(&self) -> usize {
        self.roster.len()
    }

    pub(crate) fn alive(&self, e: EntryId) -> bool {
        self.entries[e].alive
    }

    pub(crate) fn rate(&self, e: EntryId) -> f64 {
        self.entries[e].rate
    }

    pub(crate) fn load(&self, d: usize) -> f64 {
        self.load[d]
    }

    pub(crate) fn key(&self, e: EntryId) -> (SiteId, SiteId, Option<u64>) {
        let ent = &self.entries[e];
        (ent.src, ent.dst, ent.window)
    }

    pub(crate) fn route_info(&self, e: EntryId) -> (usize, Dur) {
        let r = &self.entries[e].route;
        (r.hops(), r.latency)
    }

    pub(crate) fn members(&self, e: EntryId) -> &[Member] {
        &self.entries[e].members
    }

    pub(crate) fn member_count(&self, e: EntryId) -> usize {
        self.entries[e].members.len()
    }

    pub(crate) fn touched_dirs(&self) -> &[usize] {
        &self.touched_d
    }

    pub(crate) fn into_carried(self) -> Vec<f64> {
        self.carried
    }

    /// When the entry's head member finishes at current rates, with the
    /// epoch a heap handle must match to still be valid.
    pub(crate) fn due(&self, e: EntryId) -> Option<(SimTime, u64)> {
        let ent = &self.entries[e];
        if !ent.alive || ent.members.is_empty() || ent.rate <= 0.0 {
            return None;
        }
        let rem = (ent.members[0].key - ent.drained).max(0.0);
        Some((
            ent.synced + Dur::from_secs_f64(rem / ent.rate).max(Dur(1)),
            ent.epoch,
        ))
    }

    /// Bytes left for the head member (after a `sync`), if any.
    pub(crate) fn peek_rem(&self, e: EntryId) -> Option<f64> {
        let ent = &self.entries[e];
        ent.members.first().map(|m| m.key - ent.drained)
    }

    /// Bring the entry's drained-bytes and per-link carriage current.
    pub(crate) fn sync(&mut self, e: EntryId, now: SimTime) {
        let ent = &self.entries[e];
        if ent.synced >= now {
            return;
        }
        let dt = (now - ent.synced).as_secs_f64();
        let (rate, weight) = (ent.rate, ent.weight);
        self.entries[e].synced = now;
        if rate > 0.0 && dt > 0.0 {
            self.entries[e].drained += rate * dt;
            let add = weight * rate * dt;
            let route = self.entries[e].route.clone();
            for &d in &route.dirs {
                self.carried[d] += add;
            }
        }
    }

    fn seed_entry(&mut self, e: EntryId) {
        self.seed_stamp[e] = self.seed_no;
        self.seeds_e.push(e);
    }

    fn link_into_lists(&mut self, e: EntryId) {
        let route = self.entries[e].route.clone();
        self.entries[e].pos.clear();
        for &d in &route.dirs {
            self.entries[e].pos.push(self.on[d].len() as u32);
            self.on[d].push(e);
        }
    }

    fn unlink_from_lists(&mut self, e: EntryId) {
        let route = self.entries[e].route.clone();
        for (slot, &d) in route.dirs.iter().enumerate() {
            let p = self.entries[e].pos[slot] as usize;
            debug_assert_eq!(self.on[d][p], e);
            let last = self.on[d].len() - 1;
            self.on[d].swap(p, last);
            self.on[d].pop();
            if p < self.on[d].len() {
                let moved = self.on[d][p];
                let ms = self.entries[moved]
                    .route
                    .dirs
                    .iter()
                    .position(|&x| x == d)
                    .expect("moved entry crosses this dir");
                self.entries[moved].pos[ms] = p as u32;
            }
        }
    }

    /// Open a new entry with one member. The entry starts at rate 0 (so
    /// it contributes no load) and is seeded for the next resolve.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert(
        &mut self,
        route: Rc<Route>,
        src: SiteId,
        dst: SiteId,
        window: Option<u64>,
        cap: f64,
        bytes: f64,
        flow: u32,
        started: SimTime,
        now: SimTime,
    ) -> EntryId {
        let e = match self.free.pop() {
            Some(e) => e,
            None => {
                self.entries.push(Entry {
                    route: route.clone(),
                    src: 0,
                    dst: 0,
                    window: None,
                    cap: 0.0,
                    weight: 0.0,
                    rate: 0.0,
                    drained: 0.0,
                    synced: SimTime::ZERO,
                    members: Vec::new(),
                    pos: Vec::new(),
                    epoch: 0,
                    alive: false,
                });
                self.e_stamp.push(0);
                self.seed_stamp.push(0);
                self.roster_pos.push(usize::MAX);
                self.entries.len() - 1
            }
        };
        let ent = &mut self.entries[e];
        debug_assert!(!ent.alive);
        ent.route = route;
        ent.src = src;
        ent.dst = dst;
        ent.window = window;
        ent.cap = cap;
        ent.weight = 1.0;
        ent.rate = 0.0;
        ent.drained = 0.0;
        ent.synced = now;
        ent.members.clear();
        ent.members.push(Member {
            key: bytes,
            flow,
            started,
        });
        ent.epoch += 1;
        ent.alive = true;
        self.link_into_lists(e);
        self.roster_pos[e] = self.roster.len();
        self.roster.push(e);
        self.live_members += 1;
        self.stats.peak_entries = self.stats.peak_entries.max(self.roster.len());
        self.stats.peak_flows = self.stats.peak_flows.max(self.live_members);
        self.seed_entry(e);
        e
    }

    /// Add a member to an open aggregate. The joining flow's remaining
    /// bytes are keyed relative to the entry's drain counter.
    pub(crate) fn join(
        &mut self,
        e: EntryId,
        bytes: f64,
        flow: u32,
        started: SimTime,
        now: SimTime,
    ) {
        self.sync(e, now);
        let r = self.entries[e].rate;
        let key = bytes + self.entries[e].drained;
        self.entries[e].weight += 1.0;
        self.entries[e].epoch += 1;
        heap_push(&mut self.entries[e].members, Member { key, flow, started });
        let route = self.entries[e].route.clone();
        for &d in &route.dirs {
            self.load[d] += r;
        }
        self.live_members += 1;
        self.stats.peak_flows = self.stats.peak_flows.max(self.live_members);
        self.stats.aggregated_joins += 1;
        self.seed_entry(e);
    }

    /// Pop the head member (the one with the least bytes left). The
    /// caller must have `sync`ed the entry to `now`.
    pub(crate) fn pop_member(&mut self, e: EntryId) -> Member {
        let m = heap_pop(&mut self.entries[e].members);
        let r = self.entries[e].rate;
        self.entries[e].weight -= 1.0;
        self.entries[e].epoch += 1;
        let route = self.entries[e].route.clone();
        for &d in &route.dirs {
            self.load[d] -= r;
        }
        self.live_members -= 1;
        self.seed_entry(e);
        m
    }

    /// Drain every member out (for parking), least-remaining first.
    pub(crate) fn drain_members(
        &mut self,
        e: EntryId,
        now: SimTime,
        mut f: impl FnMut(u32, f64, SimTime),
    ) {
        self.sync(e, now);
        while !self.entries[e].members.is_empty() {
            let drained = self.entries[e].drained;
            let m = heap_pop(&mut self.entries[e].members);
            self.live_members -= 1;
            f(m.flow, (m.key - drained).max(0.0), m.started);
        }
        let w = std::mem::replace(&mut self.entries[e].weight, 0.0);
        let r = self.entries[e].rate;
        let route = self.entries[e].route.clone();
        for &d in &route.dirs {
            self.load[d] -= w * r;
        }
        self.entries[e].epoch += 1;
    }

    /// Retire an entry (all members completed or parked), releasing its
    /// load and seeding its links so survivors can claim the capacity.
    pub(crate) fn remove_entry(&mut self, e: EntryId, now: SimTime) {
        self.sync(e, now);
        let ent = &self.entries[e];
        debug_assert!(ent.alive && ent.members.is_empty());
        let (w, r) = (ent.weight, ent.rate);
        let route = ent.route.clone();
        for &d in &route.dirs {
            self.load[d] -= w * r;
            self.seeds_d.push(d);
        }
        self.unlink_from_lists(e);
        let p = self.roster_pos[e];
        let last = self.roster.pop().expect("roster holds e");
        if last != e {
            self.roster[p] = last;
            self.roster_pos[last] = p;
        }
        self.roster_pos[e] = usize::MAX;
        self.entries[e].alive = false;
        self.entries[e].epoch += 1;
        self.free.push(e);
    }

    /// Move the entry to a new pinned route (link flap), keeping its
    /// members and rate; both old and new links are seeded.
    pub(crate) fn reroute(&mut self, e: EntryId, route: Rc<Route>, cap: f64, now: SimTime) {
        self.sync(e, now);
        let (w, r) = (self.entries[e].weight, self.entries[e].rate);
        let old = self.entries[e].route.clone();
        for &d in &old.dirs {
            self.load[d] -= w * r;
            self.seeds_d.push(d);
        }
        self.unlink_from_lists(e);
        self.entries[e].route = route;
        self.entries[e].cap = cap;
        self.link_into_lists(e);
        let new = self.entries[e].route.clone();
        for &d in &new.dirs {
            self.load[d] += w * r;
        }
        self.entries[e].epoch += 1;
        self.seed_entry(e);
    }

    /// Live entries crossing either direction of undirected link `l`,
    /// in roster order (deterministic).
    pub(crate) fn entries_on_link(&self, l: usize, out: &mut Vec<EntryId>) {
        out.clear();
        out.extend_from_slice(&self.on[2 * l]);
        out.extend_from_slice(&self.on[2 * l + 1]);
        out.sort_unstable_by_key(|&e| self.roster_pos[e]);
    }

    /// Re-solve the allocation for everything the seeds can affect.
    /// Entries whose rate or membership changed this event are appended
    /// to `out` (the caller re-arms their completion timers).
    pub(crate) fn resolve(&mut self, net: &Net, now: SimTime, out: &mut Vec<EntryId>) {
        out.clear();
        if self.seeds_e.is_empty() && self.seeds_d.is_empty() {
            self.touched_d.clear();
            self.stats.last_dirty = 0;
            return;
        }
        self.stats.resolves += 1;
        self.stamp += 1;
        let st = self.stamp;
        self.dirty.clear();
        self.touched_d.clear();
        for i in 0..self.seeds_e.len() {
            let e = self.seeds_e[i];
            if self.entries[e].alive && self.e_stamp[e] != st {
                self.e_stamp[e] = st;
                self.dirty.push(e);
            }
        }
        for i in 0..self.seeds_d.len() {
            let d = self.seeds_d[i];
            if self.d_stamp[d] != st {
                self.d_stamp[d] = st;
                self.touched_d.push(d);
            }
        }
        self.seeds_e.clear();
        self.seeds_d.clear();

        let n_alive = self.roster.len();
        let mut full = matches!(self.mode, SolverMode::Global);
        let (mut scan, mut lscan) = (0usize, 0usize);
        loop {
            if !full {
                // Closure: pull in everything a rate change can reach
                // through links that were saturated before the event.
                while scan < self.dirty.len() || lscan < self.touched_d.len() {
                    while scan < self.dirty.len() {
                        let e = self.dirty[scan];
                        scan += 1;
                        let nd = self.entries[e].route.dirs.len();
                        for k in 0..nd {
                            let d = self.entries[e].route.dirs[k];
                            if self.d_stamp[d] != st {
                                self.d_stamp[d] = st;
                                self.touched_d.push(d);
                            }
                        }
                    }
                    while lscan < self.touched_d.len() {
                        let d = self.touched_d[lscan];
                        lscan += 1;
                        if self.sat[d] {
                            for k in 0..self.on[d].len() {
                                let m = self.on[d][k];
                                if self.e_stamp[m] != st {
                                    self.e_stamp[m] = st;
                                    self.dirty.push(m);
                                }
                            }
                        }
                    }
                }
                let frac = match self.mode {
                    SolverMode::Incremental { full_fraction } => full_fraction,
                    SolverMode::Global => 0.0,
                };
                if self.dirty.len() as f64 > frac * n_alive as f64 {
                    full = true;
                }
            }
            if full {
                // Bounded fallback: one re-solve of everyone from raw
                // capacity. Also flushes incremental float drift.
                self.stats.full_resolves += 1;
                self.dirty.clear();
                self.dirty.extend_from_slice(&self.roster);
                self.touched_d.clear();
                self.touched_d.extend(0..self.ndirs);
                for d in 0..self.ndirs {
                    self.residual[d] = self.cap_v[d];
                }
            } else {
                // Frozen boundary: subtract everyone-not-in-A's load
                // from capacity before filling.
                for k in 0..self.touched_d.len() {
                    let d = self.touched_d[k];
                    self.residual[d] = self.load[d];
                }
                for i in 0..self.dirty.len() {
                    let e = self.dirty[i];
                    let wr = self.entries[e].weight * self.entries[e].rate;
                    let nd = self.entries[e].route.dirs.len();
                    for k in 0..nd {
                        let d = self.entries[e].route.dirs[k];
                        self.residual[d] -= wr;
                    }
                }
                for k in 0..self.touched_d.len() {
                    let d = self.touched_d[k];
                    self.residual[d] = (self.cap_v[d] - self.residual[d].max(0.0)).max(0.0);
                }
            }
            self.fill();
            if full {
                break;
            }
            if !self.post_check(st) {
                break;
            }
        }
        self.commit(now, out);
        if self.verify {
            self.verify_against_reference(net);
        }
    }

    /// Weighted progressive filling over the affected set, mirroring
    /// [`maxmin_rates`] step for step (weight sums stand in for flow
    /// counts; both are exact integers in f64, so the increments — and
    /// therefore the freeze order — are identical to the expanded list).
    fn fill(&mut self) {
        let n = self.dirty.len();
        self.fr_rate.clear();
        self.fr_rate.resize(n, 0.0);
        self.fr_frozen.clear();
        self.fr_frozen.resize(n, false);
        let mut unfrozen = 0usize;
        for i in 0..n {
            let e = self.dirty[i];
            if self.entries[e].route.dirs.is_empty() {
                self.fr_rate[i] = self.entries[e].cap;
                self.fr_frozen[i] = true;
            } else {
                unfrozen += 1;
            }
        }
        while unfrozen > 0 {
            for k in 0..self.touched_d.len() {
                let d = self.touched_d[k];
                self.wsum[d] = 0.0;
            }
            for i in 0..n {
                if self.fr_frozen[i] {
                    continue;
                }
                let e = self.dirty[i];
                let w = self.entries[e].weight;
                let nd = self.entries[e].route.dirs.len();
                for k in 0..nd {
                    let d = self.entries[e].route.dirs[k];
                    self.wsum[d] += w;
                }
            }
            let mut inc = f64::INFINITY;
            for k in 0..self.touched_d.len() {
                let d = self.touched_d[k];
                if self.wsum[d] > 0.0 {
                    inc = inc.min(self.residual[d].max(0.0) / self.wsum[d]);
                }
            }
            for i in 0..n {
                if !self.fr_frozen[i] {
                    let e = self.dirty[i];
                    inc = inc.min(self.entries[e].cap - self.fr_rate[i]);
                }
            }
            if !inc.is_finite() {
                break;
            }
            let inc = inc.max(0.0);
            for i in 0..n {
                if self.fr_frozen[i] {
                    continue;
                }
                let e = self.dirty[i];
                let w = self.entries[e].weight;
                self.fr_rate[i] += inc;
                let nd = self.entries[e].route.dirs.len();
                for k in 0..nd {
                    let d = self.entries[e].route.dirs[k];
                    self.residual[d] -= w * inc;
                }
            }
            let mut any = false;
            for i in 0..n {
                if self.fr_frozen[i] {
                    continue;
                }
                let e = self.dirty[i];
                let cap = self.entries[e].cap;
                let capped = self.fr_rate[i] >= cap - 1e-9 * cap.max(1.0);
                let mut saturated = false;
                let nd = self.entries[e].route.dirs.len();
                for k in 0..nd {
                    let d = self.entries[e].route.dirs[k];
                    if self.residual[d] <= 1e-9 * self.cap_v[d].max(1.0) {
                        saturated = true;
                        break;
                    }
                }
                if capped || saturated {
                    self.fr_frozen[i] = true;
                    unfrozen -= 1;
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }

    /// A boundary entry running above the fill level of a link that
    /// ended saturated would have to cede bandwidth in the true global
    /// allocation — pull it (and, transitively, its neighbours on the
    /// next closure pass) into the affected set. Returns whether any
    /// entry was added.
    fn post_check(&mut self, st: u64) -> bool {
        for k in 0..self.touched_d.len() {
            let d = self.touched_d[k];
            self.lvl[d] = f64::NEG_INFINITY;
        }
        for i in 0..self.dirty.len() {
            let e = self.dirty[i];
            let r = self.fr_rate[i];
            let nd = self.entries[e].route.dirs.len();
            for k in 0..nd {
                let d = self.entries[e].route.dirs[k];
                if r > self.lvl[d] {
                    self.lvl[d] = r;
                }
            }
        }
        let mut added = false;
        for k in 0..self.touched_d.len() {
            let d = self.touched_d[k];
            if self.residual[d] > 1e-9 * self.cap_v[d].max(1.0) {
                continue;
            }
            let level = self.lvl[d];
            let tol = 1e-9 * level.abs().max(1.0);
            for j in 0..self.on[d].len() {
                let m = self.on[d][j];
                if self.e_stamp[m] != st && self.entries[m].rate > level + tol {
                    self.e_stamp[m] = st;
                    self.dirty.push(m);
                    added = true;
                }
            }
        }
        added
    }

    /// Write the fill results back: sync and re-rate changed entries,
    /// refresh per-link load and saturation from the fill residuals.
    fn commit(&mut self, now: SimTime, out: &mut Vec<EntryId>) {
        let n = self.dirty.len();
        self.stats.entries_touched += n as u64;
        self.stats.last_dirty = n;
        for i in 0..n {
            let e = self.dirty[i];
            let new = self.fr_rate[i];
            if !self.entries[e].members.is_empty() {
                assert!(new > 0.0, "flow starved");
            }
            if new != self.entries[e].rate {
                self.sync(e, now);
                self.entries[e].rate = new;
                self.entries[e].epoch += 1;
                out.push(e);
            } else if self.seed_stamp[e] == self.seed_no {
                // Membership changed but the fair share didn't: the
                // completion timer still needs re-arming (epoch moved).
                out.push(e);
            }
        }
        for k in 0..self.touched_d.len() {
            let d = self.touched_d[k];
            self.load[d] = (self.cap_v[d] - self.residual[d]).max(0.0);
            self.sat[d] = self.residual[d] <= 1e-9 * self.cap_v[d].max(1.0);
        }
        self.seed_no += 1;
    }

    /// Cross-check the materialised allocation against the reference
    /// global solver, member by member.
    fn verify_against_reference(&self, net: &Net) {
        let mut flows: Vec<(&[usize], f64)> = Vec::new();
        let mut want: Vec<f64> = Vec::new();
        for &e in &self.roster {
            let ent = &self.entries[e];
            for _ in 0..ent.members.len() {
                flows.push((ent.route.dirs.as_slice(), ent.cap));
                want.push(ent.rate);
            }
        }
        let reference = maxmin_rates(net, &flows);
        for (i, (&w, &r)) in want.iter().zip(&reference).enumerate() {
            let tol = 1e-9 * r.abs().max(1.0);
            assert!(
                (w - r).abs() <= tol,
                "incremental rate diverged at flow {i}: {w} vs reference {r}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn line() -> (Net, Rc<Route>, Rc<Route>) {
        let mut net = Net::new();
        let a = net.add_site("a");
        let b = net.add_site("b");
        let c = net.add_site("c");
        net.add_link(a, b, LinkClass::T1, Dur::from_millis(1));
        net.add_link(b, c, LinkClass::T1, Dur::from_millis(1));
        let r_ac = Rc::new(net.route(a, c).unwrap());
        let r_ab = Rc::new(net.route(a, b).unwrap());
        (net, r_ac, r_ab)
    }

    #[test]
    fn incremental_matches_reference_on_insert_and_remove() {
        let (net, r_ac, r_ab) = line();
        let cfg = FlowConfig {
            verify: true,
            ..FlowConfig::default()
        };
        let mut eng = Engine::new(&net, &cfg);
        let mut out = Vec::new();
        let t0 = SimTime::ZERO;
        let e1 = eng.insert(r_ac, 0, 2, None, f64::INFINITY, 1e6, 0, t0, t0);
        eng.resolve(&net, t0, &mut out);
        let cap = LinkClass::T1.bytes_per_sec();
        assert!((eng.rate(e1) - cap).abs() / cap < 1e-9);
        // Second flow shares the first hop: both drop to cap/2.
        let t1 = SimTime::from_secs_f64(0.5);
        let e2 = eng.insert(r_ab, 0, 1, None, f64::INFINITY, 1e6, 1, t1, t1);
        eng.sync(e1, t1);
        eng.resolve(&net, t1, &mut out);
        assert!((eng.rate(e1) - cap / 2.0).abs() / cap < 1e-9);
        assert!((eng.rate(e2) - cap / 2.0).abs() / cap < 1e-9);
        // Removing e2 hands the full link back to e1.
        let t2 = SimTime::from_secs_f64(1.0);
        eng.sync(e2, t2);
        while eng.member_count(e2) > 0 {
            eng.pop_member(e2);
        }
        eng.remove_entry(e2, t2);
        eng.resolve(&net, t2, &mut out);
        assert!((eng.rate(e1) - cap).abs() / cap < 1e-9);
        assert!(out.contains(&e1));
    }

    #[test]
    fn aggregate_weight_equals_member_count_rates() {
        let (net, r_ac, _) = line();
        let cfg = FlowConfig {
            verify: true,
            ..FlowConfig::default()
        };
        let mut eng = Engine::new(&net, &cfg);
        let mut out = Vec::new();
        let t0 = SimTime::ZERO;
        let e = eng.insert(r_ac.clone(), 0, 2, None, f64::INFINITY, 500.0, 0, t0, t0);
        for f in 1..4u32 {
            eng.join(e, 500.0, f, t0, t0);
        }
        eng.resolve(&net, t0, &mut out);
        // Four members share the bottleneck: per-member rate is cap/4,
        // exactly what four separate flows would get.
        let cap = LinkClass::T1.bytes_per_sec();
        assert!((eng.rate(e) - cap / 4.0).abs() / cap < 1e-9);
        assert_eq!(eng.member_count(e), 4);
        assert_eq!(eng.stats.aggregated_joins, 3);
    }

    #[test]
    fn lazy_drain_tracks_carried_bytes() {
        let (net, r_ac, _) = line();
        let mut eng = Engine::new(&net, &FlowConfig::default());
        let mut out = Vec::new();
        let t0 = SimTime::ZERO;
        let e = eng.insert(r_ac, 0, 2, None, f64::INFINITY, 1e9, 0, t0, t0);
        eng.resolve(&net, t0, &mut out);
        let t1 = SimTime::from_secs_f64(2.0);
        eng.sync(e, t1);
        let cap = LinkClass::T1.bytes_per_sec();
        let rem = eng.peek_rem(e).unwrap();
        assert!((1e9 - rem - 2.0 * cap).abs() < 1.0, "2 s of drain");
        let carried = eng.into_carried();
        let total: f64 = carried.iter().sum();
        // Two hops, each carried 2 s at the bottleneck rate.
        assert!((total - 2.0 * 2.0 * cap).abs() < 1.0);
    }
}
