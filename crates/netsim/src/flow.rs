//! Flow-level dynamics: transfers share the network under max-min
//! fairness, recomputed at every arrival and completion.
//!
//! This is the standard fluid approximation for long file transfers —
//! appropriate for the consortium's workload (staging input decks and
//! retrieving result fields from the Delta). An optional per-flow TCP
//! window cap (`rate ≤ window / RTT`) models the era's protocol limit,
//! which is what made "gigabit testbeds" a research program rather than
//! a procurement.

use crate::engine::{Engine, EntryId, FlowConfig, SolverStats};
use crate::graph::{Net, Route, RouteCache};
use crate::link::SiteId;
use des::time::{Dur, SimTime};
use hpcc_trace::{names, NullRecorder, Recorder, TrackId};
use std::collections::HashMap;
use std::fmt;

/// One requested transfer.
#[derive(Debug, Clone)]
pub struct TransferSpec {
    pub src: SiteId,
    pub dst: SiteId,
    pub bytes: u64,
    pub start: SimTime,
    /// TCP window in bytes; `None` disables the protocol cap.
    pub window: Option<u64>,
}

impl TransferSpec {
    pub fn new(src: SiteId, dst: SiteId, bytes: u64, start: SimTime) -> TransferSpec {
        TransferSpec {
            src,
            dst,
            bytes,
            start,
            window: None,
        }
    }

    pub fn with_window(mut self, window: u64) -> TransferSpec {
        self.window = Some(window);
        self
    }
}

/// Outcome of one transfer.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    pub spec: TransferSpec,
    pub hops: usize,
    pub path_latency: Dur,
    pub started: SimTime,
    pub finished: SimTime,
}

impl FlowRecord {
    pub fn duration(&self) -> Dur {
        self.finished - self.started
    }

    /// Mean achieved rate, bytes/s.
    pub fn avg_rate(&self) -> f64 {
        self.spec.bytes as f64 / self.duration().as_secs_f64().max(1e-12)
    }
}

/// A scheduled outage of one (undirected) link: down at `down_at`,
/// repaired at `up_at`. An `up_at` of [`SimTime::MAX`] means the link
/// is never repaired.
#[derive(Debug, Clone, Copy)]
pub struct LinkFault {
    pub link: usize,
    pub down_at: SimTime,
    pub up_at: SimTime,
}

/// A transfer batch rejected before simulation started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// No path exists between the endpoints even on the healthy network.
    Unroutable {
        index: usize,
        src: String,
        dst: String,
    },
    /// Source and destination are the same site.
    SelfTransfer { index: usize, site: String },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Unroutable { index, src, dst } => write!(
                f,
                "transfer #{index} is unroutable: no path between {src} and {dst}"
            ),
            FlowError::SelfTransfer { index, site } => {
                write!(f, "transfer #{index} is a self-transfer at {site}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Outcome of one transfer under a fault schedule.
#[derive(Debug, Clone)]
pub enum FlowOutcome {
    Completed(FlowRecord),
    /// The flow's endpoints were partitioned and no later repair
    /// reconnected them before the run ended.
    Stalled {
        spec: TransferSpec,
        /// When the flow first started moving bytes, if it ever did.
        started: Option<SimTime>,
        /// Bytes delivered before the partition.
        delivered: f64,
        /// When the flow (last) lost its route.
        stalled_at: SimTime,
    },
}

impl FlowOutcome {
    pub fn completed(&self) -> Option<&FlowRecord> {
        match self {
            FlowOutcome::Completed(r) => Some(r),
            FlowOutcome::Stalled { .. } => None,
        }
    }

    pub fn is_stalled(&self) -> bool {
        matches!(self, FlowOutcome::Stalled { .. })
    }
}

struct Parked {
    id: usize,
    remaining: f64,
    started: Option<SimTime>,
    since: SimTime,
}

/// One link state transition derived from a [`LinkFault`].
struct Transition {
    at: SimTime,
    link: usize,
    down: bool,
}

/// Max-min fair rates via progressive filling with per-flow caps.
///
/// `flows` supplies each flow's directed-link list and its rate cap.
/// Returns one rate per flow. Runs in O(iterations × links) where each
/// iteration freezes at least one flow.
pub fn maxmin_rates(net: &Net, flows: &[(&[usize], f64)]) -> Vec<f64> {
    let n = flows.len();
    let mut rate = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut residual = vec![0.0f64; net.dir_links()];
    for (d, r) in residual.iter_mut().enumerate() {
        *r = net.capacity(d);
    }
    // Flows with no links (degenerate) are frozen at their cap.
    for (i, (dirs, cap)) in flows.iter().enumerate() {
        if dirs.is_empty() {
            rate[i] = *cap;
            frozen[i] = true;
        }
    }
    let mut unfrozen = frozen.iter().filter(|&&f| !f).count();
    let mut counts = vec![0u32; net.dir_links()];
    while unfrozen > 0 {
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, (dirs, _)) in flows.iter().enumerate() {
            if !frozen[i] {
                for &d in *dirs {
                    counts[d] += 1;
                }
            }
        }
        // The uniform increment every unfrozen flow can still take.
        let mut inc = f64::INFINITY;
        for d in 0..net.dir_links() {
            if counts[d] > 0 {
                inc = inc.min(residual[d].max(0.0) / counts[d] as f64);
            }
        }
        for (i, (_, cap)) in flows.iter().enumerate() {
            if !frozen[i] {
                inc = inc.min(cap - rate[i]);
            }
        }
        if !inc.is_finite() {
            break;
        }
        let inc = inc.max(0.0);
        for (i, (dirs, _)) in flows.iter().enumerate() {
            if !frozen[i] {
                rate[i] += inc;
                for &d in *dirs {
                    residual[d] -= inc;
                }
            }
        }
        // Freeze flows at their cap or on a saturated link.
        let mut any = false;
        for (i, (dirs, cap)) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let capped = rate[i] >= cap - 1e-9 * cap.max(1.0);
            let saturated = dirs
                .iter()
                .any(|&d| residual[d] <= 1e-9 * net.capacity(d).max(1.0));
            if capped || saturated {
                frozen[i] = true;
                unfrozen -= 1;
                any = true;
            }
        }
        if !any {
            // Numerical stall: freeze everything rather than loop.
            break;
        }
    }
    rate
}

/// Network-side statistics of one simulated batch.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Bytes carried per directed link over the run.
    pub carried: Vec<f64>,
    /// Time of the last completion.
    pub makespan: des::time::SimTime,
    /// How hard the incremental solver worked.
    pub solver: SolverStats,
}

impl NetStats {
    /// Mean utilisation of a directed link over the run.
    pub fn utilization(&self, net: &Net, dir: usize) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.carried[dir] / (net.capacity(dir) * secs)
    }

    /// The `k` busiest directed links as (dir, bytes), descending.
    pub fn busiest(&self, k: usize) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .carried
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, b)| *b > 0.0)
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.truncate(k);
        v
    }
}

/// Indexed min-heap of entry completion timers: one node per armed
/// entry, updated in place when the solver re-rates it. An append-only
/// heap with lazy invalidation grows by the affected-set size on every
/// event — across a million-flow run that is 10^8 stale nodes and
/// gigabytes of dead timers — while this one stays O(live entries).
///
/// Nodes order by (due, epoch, entry): the epoch tie-break reproduces
/// the pop order of the lazy heap this replaced, so schedules are
/// unchanged bit for bit.
struct DueHeap {
    nodes: Vec<(SimTime, u64, EntryId)>,
    /// Entry slot -> node index; `usize::MAX` when unarmed.
    pos: Vec<usize>,
}

impl DueHeap {
    fn new() -> DueHeap {
        DueHeap {
            nodes: Vec::new(),
            pos: Vec::new(),
        }
    }

    fn peek(&self) -> Option<(SimTime, u64, EntryId)> {
        self.nodes.first().copied()
    }

    /// Arm (or re-arm) entry `e` at due time `t`.
    fn set(&mut self, e: EntryId, t: SimTime, ep: u64) {
        if e >= self.pos.len() {
            self.pos.resize(e + 1, usize::MAX);
        }
        let i = self.pos[e];
        if i == usize::MAX {
            self.pos[e] = self.nodes.len();
            self.nodes.push((t, ep, e));
            self.sift_up(self.nodes.len() - 1);
        } else {
            self.nodes[i] = (t, ep, e);
            let i = self.sift_up(i);
            self.sift_down(i);
        }
    }

    /// Disarm entry `e`, if armed.
    fn remove(&mut self, e: EntryId) {
        let Some(&i) = self.pos.get(e) else { return };
        if i == usize::MAX {
            return;
        }
        self.pos[e] = usize::MAX;
        self.nodes.swap_remove(i);
        if i < self.nodes.len() {
            self.pos[self.nodes[i].2] = i;
            let i = self.sift_up(i);
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) -> usize {
        while i > 0 {
            let p = (i - 1) / 2;
            if self.nodes[i] < self.nodes[p] {
                self.nodes.swap(i, p);
                self.pos[self.nodes[i].2] = i;
                self.pos[self.nodes[p].2] = p;
                i = p;
            } else {
                break;
            }
        }
        i
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            if l >= self.nodes.len() {
                break;
            }
            let c = if l + 1 < self.nodes.len() && self.nodes[l + 1] < self.nodes[l] {
                l + 1
            } else {
                l
            };
            if self.nodes[c] < self.nodes[i] {
                self.nodes.swap(c, i);
                self.pos[self.nodes[i].2] = i;
                self.pos[self.nodes[c].2] = c;
                i = c;
            } else {
                break;
            }
        }
    }
}

/// Event-driven fluid simulation of a batch of transfers.
pub struct FlowSim<'a> {
    net: &'a Net,
    cfg: FlowConfig,
}

impl<'a> FlowSim<'a> {
    pub fn new(net: &'a Net) -> FlowSim<'a> {
        FlowSim {
            net,
            cfg: FlowConfig::default(),
        }
    }

    /// Pick the solver mode, short-flow aggregation threshold, and the
    /// reference cross-check (see [`FlowConfig`]).
    pub fn with_config(net: &'a Net, cfg: FlowConfig) -> FlowSim<'a> {
        FlowSim { net, cfg }
    }

    /// Closed-form time for a single transfer on an idle network:
    /// propagation + bytes over the (possibly window-capped) bottleneck.
    pub fn single_flow_time(&self, spec: &TransferSpec) -> Option<Dur> {
        let route = self.net.route(spec.src, spec.dst)?;
        let mut rate = self.net.bottleneck(&route);
        if let Some(w) = spec.window {
            let rtt = (route.latency * 2).as_secs_f64().max(1e-9);
            rate = rate.min(w as f64 / rtt);
        }
        Some(route.latency + Dur::from_secs_f64(spec.bytes as f64 / rate))
    }

    /// Validate a batch against the healthy network: every spec must
    /// join two distinct, connected sites. Returns the first offender
    /// with both site names spelled out.
    pub fn check(&self, specs: &[TransferSpec]) -> Result<(), FlowError> {
        for (index, s) in specs.iter().enumerate() {
            if s.src == s.dst {
                return Err(FlowError::SelfTransfer {
                    index,
                    site: self.net.name(s.src).to_string(),
                });
            }
            if self.net.route(s.src, s.dst).is_none() {
                return Err(FlowError::Unroutable {
                    index,
                    src: self.net.name(s.src).to_string(),
                    dst: self.net.name(s.dst).to_string(),
                });
            }
        }
        Ok(())
    }

    /// Run the transfer batch to completion; records are returned in the
    /// order the specs were given. Panics (with the [`FlowError`]
    /// message) if any spec is unroutable — use [`FlowSim::try_run`] for
    /// a recoverable error.
    pub fn run(&self, specs: Vec<TransferSpec>) -> Vec<FlowRecord> {
        self.run_with_stats(specs).0
    }

    /// Like [`FlowSim::run`], returning `Err` instead of panicking when
    /// a spec names a disconnected or degenerate site pair.
    pub fn try_run(&self, specs: Vec<TransferSpec>) -> Result<Vec<FlowRecord>, FlowError> {
        self.check(&specs)?;
        Ok(self.run_with_stats(specs).0)
    }

    /// Like [`FlowSim::run`], also returning per-link carriage stats.
    pub fn run_with_stats(&self, specs: Vec<TransferSpec>) -> (Vec<FlowRecord>, NetStats) {
        if let Err(e) = self.check(&specs) {
            panic!("{e}");
        }
        let (outcomes, stats) = self
            .run_with_faults(specs, &[])
            .expect("batch already checked");
        let records = outcomes
            .into_iter()
            .map(|o| match o {
                FlowOutcome::Completed(r) => r,
                FlowOutcome::Stalled { .. } => unreachable!("no faults, no stalls"),
            })
            .collect();
        (records, stats)
    }

    /// Run the batch under a schedule of link outages. Flows whose route
    /// crosses a failing link are re-routed (Dijkstra over the surviving
    /// links); flows whose endpoints are partitioned park until a repair
    /// reconnects them, and finish as [`FlowOutcome::Stalled`] if none
    /// does. Active flows keep their detour after a repair — routes stay
    /// pinned, as 1992 static routing did.
    pub fn run_with_faults(
        &self,
        specs: Vec<TransferSpec>,
        faults: &[LinkFault],
    ) -> Result<(Vec<FlowOutcome>, NetStats), FlowError> {
        self.run_with_faults_recorded(specs, faults, &NullRecorder)
    }

    /// [`FlowSim::run_with_faults`] under a [`Recorder`]: each flow gets a
    /// lifecycle track ("wan flows"), each directed link a rate-counter
    /// track ("wan links"). The recorder observes timestamps the solver
    /// already computed, so recorded runs are bit-identical to plain ones.
    pub fn run_with_faults_recorded(
        &self,
        mut specs: Vec<TransferSpec>,
        faults: &[LinkFault],
        rec: &dyn Recorder,
    ) -> Result<(Vec<FlowOutcome>, NetStats), FlowError> {
        self.check(&specs)?;
        let rec_on = rec.is_enabled();
        let flow_track: Vec<TrackId> = if rec_on {
            specs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    rec.track(
                        names::WAN_FLOWS,
                        &format!(
                            "flow {i} {}->{}",
                            self.net.name(s.src),
                            self.net.name(s.dst)
                        ),
                    )
                })
                .collect()
        } else {
            vec![0; specs.len()]
        };
        let link_track: Vec<TrackId> = if rec_on {
            (0..self.net.dir_links())
                .map(|d| {
                    let l = &self.net.links()[d / 2];
                    let (from, to) = if d % 2 == 0 { (l.a, l.b) } else { (l.b, l.a) };
                    rec.track(
                        names::WAN_LINKS,
                        &format!("{}->{}", self.net.name(from), self.net.name(to)),
                    )
                })
                .collect()
        } else {
            vec![0; self.net.dir_links()]
        };
        let mut last_rate = vec![0.0f64; self.net.dir_links()];
        let solver_track = if rec_on {
            rec.track(names::WAN_SOLVER, "dirty set")
        } else {
            0
        };
        let mut last_full_resolves = 0u64;
        let mut trans: Vec<Transition> = Vec::with_capacity(2 * faults.len());
        for f in faults {
            assert!(f.link < self.net.links().len(), "fault on link {}", f.link);
            assert!(f.down_at < f.up_at, "repair must follow the outage");
            trans.push(Transition {
                at: f.down_at,
                link: f.link,
                down: true,
            });
            if f.up_at != SimTime::MAX {
                trans.push(Transition {
                    at: f.up_at,
                    link: f.link,
                    down: false,
                });
            }
        }
        // Repairs before outages at equal times, then by link id: the
        // schedule is a total order, so replays are bit-identical.
        trans.sort_by_key(|t| (t.at, t.down, t.link));
        let mut down = vec![false; self.net.links().len()];
        let mut down_count = vec![0u32; self.net.links().len()];

        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..specs.len()).collect();
            idx.sort_by_key(|&i| (specs[i].start, i));
            idx
        };
        let mut records: Vec<Option<FlowRecord>> = specs.iter().map(|_| None).collect();
        let mut parked: Vec<Parked> = Vec::new();
        let mut next = 0usize;
        let mut ti = 0usize;
        let mut now;
        let mut engine = Engine::new(self.net, &self.cfg);
        let mut cache = RouteCache::new();
        let mut open_aggs: HashMap<(SiteId, SiteId, Option<u64>), EntryId> = HashMap::new();
        let mut heap = DueHeap::new();
        let mut out_scratch: Vec<EntryId> = Vec::new();
        let mut repush: Vec<EntryId> = Vec::new();
        let mut on_link: Vec<EntryId> = Vec::new();
        let mut events: u64 = 0;

        let window_cap = |window: Option<u64>, route: &Route| match window {
            Some(w) => {
                let rtt = (route.latency * 2).as_secs_f64().max(1e-9);
                w as f64 / rtt
            }
            None => f64::INFINITY,
        };

        loop {
            if engine.live_entries() == 0 && next >= order.len() && ti >= trans.len() {
                break;
            }
            // Earliest completion under current (constant) rates. Heap
            // nodes are kept current in place, so the head is valid.
            let finish = heap.peek().map(|(t, _, _)| t);
            let arrival = (next < order.len()).then(|| specs[order[next]].start);
            let transition = (ti < trans.len()).then(|| trans[ti].at);

            // Tie-break at equal times: transition, then arrival, then
            // finish — an outage is in effect before a flow routes over
            // it. (With no faults this is the original arrival<=finish
            // rule, so zero-fault runs are bit-identical.)
            #[derive(PartialEq)]
            enum Kind {
                Finish,
                Arrival,
                Transition,
            }
            let mut pick: Option<(SimTime, Kind)> = finish.map(|f| (f, Kind::Finish));
            if let Some(a) = arrival {
                if pick.as_ref().is_none_or(|(t, _)| a <= *t) {
                    pick = Some((a, Kind::Arrival));
                }
            }
            if let Some(tr) = transition {
                if pick.as_ref().is_none_or(|(t, _)| tr <= *t) {
                    pick = Some((tr, Kind::Transition));
                }
            }
            let (t, kind) = match pick {
                Some(p) => p,
                None => break,
            };

            // No eager drain: entries sync lazily when their rate or
            // membership changes, so an event costs O(affected set).
            now = t;
            events += 1;

            match kind {
                Kind::Transition => {
                    while ti < trans.len() && trans[ti].at <= now {
                        let tr = &trans[ti];
                        ti += 1;
                        if tr.down {
                            down_count[tr.link] += 1;
                            down[tr.link] = true;
                        } else {
                            down_count[tr.link] -= 1;
                            down[tr.link] = down_count[tr.link] > 0;
                        }
                        // Memoized routes and open aggregates assume a
                        // fixed outage mask.
                        cache.invalidate();
                        open_aggs.clear();
                        if rec_on {
                            let name = if tr.down { "down" } else { "up" };
                            rec.instant(link_track[2 * tr.link], "fault", name, now.nanos());
                        }
                        if tr.down {
                            // Re-route live flows off the dead link; park
                            // the ones the outage partitions.
                            engine.entries_on_link(tr.link, &mut on_link);
                            for &e in on_link.iter() {
                                let (src, dst, window) = engine.key(e);
                                match cache.route(self.net, src, dst, &down) {
                                    Some(route) => {
                                        let cap = window_cap(window, &route);
                                        engine.reroute(e, route, cap, now);
                                        if rec_on {
                                            for m in engine.members(e) {
                                                rec.instant(
                                                    flow_track[m.flow as usize],
                                                    "fault",
                                                    "reroute",
                                                    now.nanos(),
                                                );
                                            }
                                        }
                                    }
                                    None => {
                                        if rec_on {
                                            for m in engine.members(e) {
                                                rec.instant(
                                                    flow_track[m.flow as usize],
                                                    "fault",
                                                    "parked",
                                                    now.nanos(),
                                                );
                                            }
                                        }
                                        engine.drain_members(e, now, |flow, rem, started| {
                                            parked.push(Parked {
                                                id: flow as usize,
                                                remaining: rem,
                                                started: Some(started),
                                                since: now,
                                            });
                                        });
                                        heap.remove(e);
                                        engine.remove_entry(e, now);
                                    }
                                }
                            }
                        } else {
                            // A repair may reconnect parked flows.
                            let mut i = 0;
                            while i < parked.len() {
                                let spec = &specs[parked[i].id];
                                match cache.route(self.net, spec.src, spec.dst, &down) {
                                    Some(route) => {
                                        let p = parked.remove(i);
                                        if rec_on {
                                            rec.span(
                                                flow_track[p.id],
                                                "parked",
                                                "parked",
                                                p.since.nanos(),
                                                now.nanos(),
                                            );
                                            rec.instant(
                                                flow_track[p.id],
                                                "fault",
                                                "revive",
                                                now.nanos(),
                                            );
                                        }
                                        let cap = window_cap(spec.window, &route);
                                        engine.insert(
                                            route,
                                            spec.src,
                                            spec.dst,
                                            spec.window,
                                            cap,
                                            p.remaining,
                                            p.id as u32,
                                            p.started.unwrap_or(now),
                                            now,
                                        );
                                    }
                                    None => i += 1,
                                }
                            }
                        }
                    }
                }
                Kind::Arrival => {
                    while next < order.len() && specs[order[next]].start <= now {
                        let id = order[next];
                        next += 1;
                        let spec = &specs[id];
                        match cache.route(self.net, spec.src, spec.dst, &down) {
                            Some(route) => {
                                if rec_on {
                                    rec.instant(flow_track[id], "fault", "start", now.nanos());
                                }
                                let cap = window_cap(spec.window, &route);
                                let key = (spec.src, spec.dst, spec.window);
                                let agg = spec.bytes < self.cfg.aggregate_below;
                                // Short flows pile into the open aggregate
                                // for their route, if one is live.
                                let joined = agg
                                    && match open_aggs.get(&key) {
                                        Some(&e) if engine.alive(e) => {
                                            engine.join(e, spec.bytes as f64, id as u32, now, now);
                                            true
                                        }
                                        _ => false,
                                    };
                                if !joined {
                                    let e = engine.insert(
                                        route,
                                        spec.src,
                                        spec.dst,
                                        spec.window,
                                        cap,
                                        spec.bytes as f64,
                                        id as u32,
                                        now,
                                        now,
                                    );
                                    if agg {
                                        open_aggs.insert(key, e);
                                    }
                                }
                            }
                            None => {
                                if rec_on {
                                    rec.instant(flow_track[id], "fault", "parked", now.nanos());
                                }
                                parked.push(Parked {
                                    id,
                                    remaining: spec.bytes as f64,
                                    started: None,
                                    since: now,
                                });
                            }
                        }
                    }
                }
                Kind::Finish => {
                    // Record and drop every due member (remaining ~ 0).
                    while let Some((t, _ep, e)) = heap.peek() {
                        if t > now {
                            break;
                        }
                        heap.remove(e);
                        engine.sync(e, now);
                        let (hops, path_latency) = engine.route_info(e);
                        let mut popped = false;
                        while let Some(rem) = engine.peek_rem(e) {
                            // Done when less than ~2 ns of work remains at
                            // the current rate (sub-clock-tick residue).
                            let done_below = (engine.rate(e) * 2e-9).max(1e-6);
                            if rem > done_below {
                                break;
                            }
                            let m = engine.pop_member(e);
                            popped = true;
                            let id = m.flow as usize;
                            records[id] = Some(FlowRecord {
                                spec: specs[id].clone(),
                                hops,
                                path_latency,
                                started: m.started,
                                // Last byte still has to propagate.
                                finished: now + path_latency,
                            });
                            if rec_on {
                                rec.span(
                                    flow_track[id],
                                    "flow",
                                    "xfer",
                                    m.started.nanos(),
                                    (now + path_latency).nanos(),
                                );
                            }
                        }
                        if engine.member_count(e) == 0 {
                            let key = engine.key(e);
                            if open_aggs.get(&key) == Some(&e) {
                                open_aggs.remove(&key);
                            }
                            engine.remove_entry(e, now);
                        } else if !popped {
                            // Timer fired a hair early (float residue):
                            // re-arm without touching the allocation.
                            repush.push(e);
                        }
                    }
                }
            }

            // Re-solve the fair allocation for the affected subset and
            // re-arm completion timers for everything that changed.
            engine.resolve(self.net, now, &mut out_scratch);
            for &e in out_scratch.iter().chain(&repush) {
                match engine.due(e) {
                    Some((t, ep)) => heap.set(e, t, ep),
                    None => heap.remove(e),
                }
            }
            repush.clear();
            // Sample per-link aggregate rate whenever the allocation
            // changed: Perfetto renders these as step counters. Only
            // links the solver touched can have moved.
            if rec_on {
                if engine.stats.last_dirty > 0 {
                    rec.counter(
                        solver_track,
                        "dirty",
                        now.nanos(),
                        engine.stats.last_dirty as f64,
                    );
                }
                // Step the cumulative fallback counter only when a full
                // resolve actually happened — a flat line would drown
                // the interesting edges in Perfetto.
                if engine.stats.full_resolves != last_full_resolves {
                    last_full_resolves = engine.stats.full_resolves;
                    rec.counter(
                        solver_track,
                        "full_resolves",
                        now.nanos(),
                        last_full_resolves as f64,
                    );
                }
                for &d in engine.touched_dirs() {
                    let a = engine.load(d);
                    if (a - last_rate[d]).abs() > 1e-6 {
                        rec.counter(link_track[d], "rate_mbps", now.nanos(), a / 1e6);
                        last_rate[d] = a;
                    }
                }
            }
        }
        let makespan = records
            .iter()
            .flatten()
            .map(|r| r.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        let outcomes: Vec<FlowOutcome> = records
            .into_iter()
            .enumerate()
            .map(|(id, r)| match r {
                Some(rec) => FlowOutcome::Completed(rec),
                None => {
                    let p = parked
                        .iter()
                        .find(|p| p.id == id)
                        .expect("unfinished flow is parked");
                    if rec_on {
                        rec.instant(flow_track[id], "fault", "stalled", p.since.nanos());
                    }
                    FlowOutcome::Stalled {
                        spec: specs[id].clone(),
                        started: p.started,
                        delivered: specs[id].bytes as f64 - p.remaining,
                        stalled_at: p.since,
                    }
                }
            })
            .collect();
        specs.clear();
        let mut solver = engine.stats;
        solver.events = events;
        let carried = engine.into_carried();
        Ok((
            outcomes,
            NetStats {
                carried,
                makespan,
                solver,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn dumbbell() -> (Net, SiteId, SiteId, SiteId, SiteId) {
        // a --\            /-- c
        //      m1 == T1 == m2
        // b --/            \-- d
        let mut net = Net::new();
        let a = net.add_site("a");
        let b = net.add_site("b");
        let c = net.add_site("c");
        let d = net.add_site("d");
        let m1 = net.add_site("m1");
        let m2 = net.add_site("m2");
        let fast = LinkClass::Fddi;
        net.add_link(a, m1, fast, Dur::from_millis(1));
        net.add_link(b, m1, fast, Dur::from_millis(1));
        net.add_link(c, m2, fast, Dur::from_millis(1));
        net.add_link(d, m2, fast, Dur::from_millis(1));
        net.add_link(m1, m2, LinkClass::T1, Dur::from_millis(20));
        (net, a, b, c, d)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        let (net, a, _, c, _) = dumbbell();
        let sim = FlowSim::new(&net);
        let bytes = 1_000_000;
        let recs = sim.run(vec![TransferSpec::new(a, c, bytes, SimTime::ZERO)]);
        let expect = bytes as f64 / LinkClass::T1.bytes_per_sec();
        let got = recs[0].duration().as_secs_f64();
        // duration includes path latency (22 ms both ways of measurement)
        assert!(
            (got - expect).abs() / expect < 0.02,
            "got {got} want ~{expect}"
        );
    }

    #[test]
    fn closed_form_matches_simulation_for_single_flow() {
        let (net, a, _, c, _) = dumbbell();
        let sim = FlowSim::new(&net);
        let spec = TransferSpec::new(a, c, 5_000_000, SimTime::ZERO);
        let analytic = sim.single_flow_time(&spec).unwrap();
        let recs = sim.run(vec![spec]);
        let simd = recs[0].finished - recs[0].started;
        let err = (analytic.as_secs_f64() - simd.as_secs_f64()).abs() / analytic.as_secs_f64();
        assert!(err < 0.01, "analytic {analytic} vs sim {simd}");
    }

    #[test]
    fn two_flows_share_bottleneck_equally() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let bytes = 2_000_000;
        let recs = sim.run(vec![
            TransferSpec::new(a, c, bytes, SimTime::ZERO),
            TransferSpec::new(b, d, bytes, SimTime::ZERO),
        ]);
        // Equal demands on the shared T1: both take ~2x the solo time.
        let solo = bytes as f64 / LinkClass::T1.bytes_per_sec();
        for r in &recs {
            let got = r.duration().as_secs_f64();
            assert!(
                (got - 2.0 * solo).abs() / (2.0 * solo) < 0.05,
                "got {got}, want ~{}",
                2.0 * solo
            );
        }
    }

    #[test]
    fn finished_flow_releases_bandwidth() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let small = 500_000;
        let big = 4_000_000;
        let recs = sim.run(vec![
            TransferSpec::new(a, c, small, SimTime::ZERO),
            TransferSpec::new(b, d, big, SimTime::ZERO),
        ]);
        // While both run, each gets half; after the small one drains the
        // big one speeds up. Expected drain time for big flow:
        // small drains at t1 = 2*small/C; big then has big - small left at C.
        let cap = LinkClass::T1.bytes_per_sec();
        let expect = (2.0 * small as f64 / cap) + (big - small) as f64 / cap;
        let got = recs[1].duration().as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got} want {expect}"
        );
    }

    #[test]
    fn window_cap_limits_long_fat_pipe() {
        // HIPPI coast-to-coast: 800 Mb/s but 30 ms one-way. A 64 KB TCP
        // window caps the rate at w/RTT ~= 1.09 MB/s — the era's lesson.
        let mut net = Net::new();
        let x = net.add_site("x");
        let y = net.add_site("y");
        net.add_link(x, y, LinkClass::HippiSonet800, Dur::from_millis(30));
        let sim = FlowSim::new(&net);
        let bytes = 10_000_000;
        let capped = sim.run(vec![
            TransferSpec::new(x, y, bytes, SimTime::ZERO).with_window(64 * 1024)
        ]);
        let uncapped = sim.run(vec![TransferSpec::new(x, y, bytes, SimTime::ZERO)]);
        let w_rate = 64.0 * 1024.0 / 0.060;
        let capped_expect = bytes as f64 / w_rate;
        let got = capped[0].duration().as_secs_f64();
        assert!(
            (got - capped_expect).abs() / capped_expect < 0.05,
            "got {got} want {capped_expect}"
        );
        assert!(
            capped[0].duration().as_secs_f64() > 50.0 * uncapped[0].duration().as_secs_f64(),
            "window cap must dominate on a long fat pipe"
        );
    }

    #[test]
    fn staggered_arrivals() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let cap = LinkClass::T1.bytes_per_sec();
        // Flow 1 alone for 5 s, then flow 2 joins.
        let recs = sim.run(vec![
            TransferSpec::new(a, c, (10.0 * cap) as u64, SimTime::ZERO),
            TransferSpec::new(b, d, (1.0 * cap) as u64, SimTime::from_secs_f64(5.0)),
        ]);
        // Flow 2 shares: rate cap/2 -> 2 s to move 1 s worth.
        let d2 = recs[1].duration().as_secs_f64();
        assert!((d2 - 2.0).abs() < 0.1, "flow2 {d2}");
        // Flow 1: 5 s alone (5 cap) + 2 s shared (1 cap) + 4 s alone = 11 s.
        let d1 = recs[0].duration().as_secs_f64();
        assert!((d1 - 11.0).abs() < 0.2, "flow1 {d1}");
    }

    #[test]
    fn maxmin_respects_caps_and_capacity() {
        let (net, a, b, c, d) = dumbbell();
        let ra = net.route(a, c).unwrap();
        let rb = net.route(b, d).unwrap();
        let cap_t1 = LinkClass::T1.bytes_per_sec();
        // Flow A capped well below fair share; flow B takes the rest.
        let rates = maxmin_rates(
            &net,
            &[
                (ra.dirs.as_slice(), cap_t1 * 0.1),
                (rb.dirs.as_slice(), f64::INFINITY),
            ],
        );
        assert!((rates[0] - cap_t1 * 0.1).abs() < 1.0);
        assert!((rates[1] - cap_t1 * 0.9).abs() / cap_t1 < 0.01);
        // Total never exceeds capacity.
        assert!(rates[0] + rates[1] <= cap_t1 * 1.0001);
    }

    #[test]
    fn stats_account_all_bytes() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let (recs, stats) = sim.run_with_stats(vec![
            TransferSpec::new(a, c, 1_000_000, SimTime::ZERO),
            TransferSpec::new(b, d, 500_000, SimTime::ZERO),
        ]);
        assert_eq!(recs.len(), 2);
        // Both flows cross the shared T1 in the same direction: the link
        // must have carried the sum (allowing sub-ns residue).
        let (busiest, bytes) = stats.busiest(1)[0];
        assert!((bytes - 1_500_000.0).abs() < 1.0, "carried {bytes}");
        let util = stats.utilization(&net, busiest);
        assert!(util > 0.9 && util <= 1.0001, "bottleneck util {util}");
    }

    #[test]
    fn background_traffic_slows_staging() {
        // The consortium staging story under load: background flows on
        // the shared backbone stretch a foreground transfer.
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let fg = TransferSpec::new(a, c, 2_000_000, SimTime::ZERO);
        let quiet = sim.run(vec![fg.clone()])[0].duration();
        let bg: Vec<TransferSpec> = (0..3)
            .map(|_| TransferSpec::new(b, d, 50_000_000, SimTime::ZERO))
            .collect();
        let mut all = vec![fg];
        all.extend(bg);
        let busy = sim.run(all)[0].duration();
        let ratio = busy.as_secs_f64() / quiet.as_secs_f64();
        assert!(
            (3.5..4.5).contains(&ratio),
            "4 equal flows on one pipe: expected ~4x, got {ratio}"
        );
    }

    #[test]
    fn unroutable_spec_is_rejected_up_front() {
        let mut net = Net::new();
        let a = net.add_site("CalTech");
        let b = net.add_site("island");
        let c = net.add_site("JPL");
        net.add_link(a, c, LinkClass::T1, Dur::from_millis(1));
        let sim = FlowSim::new(&net);
        let err = sim
            .try_run(vec![
                TransferSpec::new(a, c, 100, SimTime::ZERO),
                TransferSpec::new(a, b, 100, SimTime::ZERO),
            ])
            .unwrap_err();
        assert_eq!(
            err,
            FlowError::Unroutable {
                index: 1,
                src: "CalTech".into(),
                dst: "island".into(),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("CalTech") && msg.contains("island"), "{msg}");
        let err = sim
            .try_run(vec![TransferSpec::new(c, c, 100, SimTime::ZERO)])
            .unwrap_err();
        assert!(matches!(err, FlowError::SelfTransfer { index: 0, .. }));
    }

    #[test]
    #[should_panic(expected = "no path between CalTech and island")]
    fn run_panics_with_site_names() {
        let mut net = Net::new();
        let a = net.add_site("CalTech");
        let b = net.add_site("island");
        net.add_site("JPL");
        let sim = FlowSim::new(&net);
        sim.run(vec![TransferSpec::new(a, b, 100, SimTime::ZERO)]);
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let specs = vec![
            TransferSpec::new(a, c, 3_000_000, SimTime::ZERO),
            TransferSpec::new(b, d, 1_000_000, SimTime::from_secs_f64(1.5)),
        ];
        let (plain, stats_a) = sim.run_with_stats(specs.clone());
        let (outcomes, stats_b) = sim.run_with_faults(specs, &[]).unwrap();
        for (p, o) in plain.iter().zip(&outcomes) {
            let r = o.completed().expect("no faults, no stalls");
            assert_eq!(p.started, r.started);
            assert_eq!(p.finished, r.finished);
            assert_eq!(p.hops, r.hops);
        }
        assert_eq!(stats_a.makespan, stats_b.makespan);
        assert_eq!(stats_a.carried, stats_b.carried);
    }

    #[test]
    fn outage_reroutes_a_live_flow() {
        // Square: A-B direct (fast), A-C-B detour. Cut A-B mid-flight.
        let mut net = Net::new();
        let a = net.add_site("A");
        let b = net.add_site("B");
        let c = net.add_site("C");
        net.add_link(a, b, LinkClass::T1, Dur::from_millis(1)); // link 0
        net.add_link(a, c, LinkClass::T1, Dur::from_millis(5)); // link 1
        net.add_link(c, b, LinkClass::T1, Dur::from_millis(5)); // link 2
        let sim = FlowSim::new(&net);
        let cap = LinkClass::T1.bytes_per_sec();
        let spec = TransferSpec::new(a, b, (10.0 * cap) as u64, SimTime::ZERO);
        let fault = LinkFault {
            link: 0,
            down_at: SimTime::from_secs_f64(4.0),
            up_at: SimTime::from_secs_f64(1000.0),
        };
        let (outcomes, _) = sim.run_with_faults(vec![spec], &[fault]).unwrap();
        let r = outcomes[0].completed().expect("rerouted, not stalled");
        // Same T1 rate on the detour: ~10 s of transfer either way.
        let d = r.duration().as_secs_f64();
        assert!((d - 10.0).abs() < 0.1, "duration {d}");
        assert_eq!(r.hops, 2, "record carries the final (detour) route");
    }

    #[test]
    fn partition_stalls_then_repair_revives() {
        let (net, a, _, c, _) = dumbbell();
        let sim = FlowSim::new(&net);
        let cap = LinkClass::T1.bytes_per_sec();
        let spec = TransferSpec::new(a, c, (10.0 * cap) as u64, SimTime::ZERO);
        // The backbone (link 4) is the only path; 20 s outage at t=2 s.
        let fault = LinkFault {
            link: 4,
            down_at: SimTime::from_secs_f64(2.0),
            up_at: SimTime::from_secs_f64(22.0),
        };
        let (outcomes, _) = sim.run_with_faults(vec![spec.clone()], &[fault]).unwrap();
        let r = outcomes[0].completed().expect("repair revived the flow");
        let d = r.duration().as_secs_f64();
        assert!((d - 30.0).abs() < 0.2, "2 s moved + 20 s parked + 8 s: {d}");

        // Without a repair the flow stalls.
        let forever = LinkFault {
            link: 4,
            down_at: SimTime::from_secs_f64(2.0),
            up_at: SimTime::MAX,
        };
        let (outcomes, _) = sim.run_with_faults(vec![spec], &[forever]).unwrap();
        match &outcomes[0] {
            FlowOutcome::Stalled {
                delivered,
                stalled_at,
                started,
                ..
            } => {
                assert_eq!(*started, Some(SimTime::ZERO));
                assert_eq!(*stalled_at, SimTime::from_secs_f64(2.0));
                assert!((delivered / cap - 2.0).abs() < 0.01, "2 s of bytes moved");
            }
            FlowOutcome::Completed(_) => panic!("must stall across the horizon"),
        }
    }

    #[test]
    fn fault_runs_replay_bit_identically() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let mk = || {
            let specs = vec![
                TransferSpec::new(a, c, 5_000_000, SimTime::ZERO),
                TransferSpec::new(b, d, 5_000_000, SimTime::from_secs_f64(3.0)),
            ];
            let faults = [LinkFault {
                link: 4,
                down_at: SimTime::from_secs_f64(5.0),
                up_at: SimTime::from_secs_f64(9.0),
            }];
            sim.run_with_faults(specs, &faults).unwrap()
        };
        let (oa, sa) = mk();
        let (ob, sb) = mk();
        assert_eq!(sa.makespan, sb.makespan);
        assert_eq!(sa.carried, sb.carried);
        for (x, y) in oa.iter().zip(&ob) {
            match (x, y) {
                (FlowOutcome::Completed(p), FlowOutcome::Completed(q)) => {
                    assert_eq!(p.finished, q.finished);
                }
                (
                    FlowOutcome::Stalled { stalled_at: p, .. },
                    FlowOutcome::Stalled { stalled_at: q, .. },
                ) => {
                    assert_eq!(p, q);
                }
                _ => panic!("outcome kinds diverged"),
            }
        }
    }

    #[test]
    fn recorded_flows_are_bit_identical_and_emit_lifecycle() {
        use hpcc_trace::{Event, MemRecorder};
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let specs = vec![
            TransferSpec::new(a, c, 5_000_000, SimTime::ZERO),
            TransferSpec::new(b, d, 5_000_000, SimTime::from_secs_f64(3.0)),
        ];
        // Backbone outage + repair mid-run: reroute is impossible on the
        // dumbbell, so flow 0 parks and revives.
        let faults = [LinkFault {
            link: 4,
            down_at: SimTime::from_secs_f64(2.0),
            up_at: SimTime::from_secs_f64(6.0),
        }];
        let (plain, stats_p) = sim.run_with_faults(specs.clone(), &faults).unwrap();
        let rec = MemRecorder::new();
        let (traced, stats_t) = sim.run_with_faults_recorded(specs, &faults, &rec).unwrap();
        assert_eq!(stats_p.makespan, stats_t.makespan);
        assert_eq!(stats_p.carried, stats_t.carried);
        for (x, y) in plain.iter().zip(&traced) {
            match (x, y) {
                (FlowOutcome::Completed(p), FlowOutcome::Completed(q)) => {
                    assert_eq!(p.started, q.started);
                    assert_eq!(p.finished, q.finished);
                }
                _ => panic!("outcome kinds diverged"),
            }
        }
        // One lifecycle span per completed flow; a parked span for the
        // partition interval; rate counters on the backbone.
        let (mut xfers, mut parked_spans, mut counters) = (0usize, 0usize, 0usize);
        let mut instants: Vec<String> = Vec::new();
        rec.with(|_, events| {
            for e in events {
                match e {
                    Event::Span { name, .. } if name == "xfer" => xfers += 1,
                    Event::Span { name, .. } if name == "parked" => parked_spans += 1,
                    Event::Instant { name, .. } => instants.push(name.clone()),
                    Event::Counter { .. } => counters += 1,
                    _ => {}
                }
            }
        });
        assert_eq!(xfers, 2);
        // Flow 0 parks mid-flight; flow 1 arrives during the outage and
        // parks on arrival — both revive at the repair.
        assert_eq!(parked_spans, 2, "both flows parked across the outage");
        assert!(counters > 0, "rate counters sampled");
        for want in ["start", "down", "up", "parked", "revive"] {
            assert!(instants.iter().any(|n| n == want), "missing instant {want}");
        }
    }

    #[test]
    fn records_keep_spec_order() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let recs = sim.run(vec![
            TransferSpec::new(b, d, 100, SimTime::from_secs_f64(3.0)),
            TransferSpec::new(a, c, 100, SimTime::ZERO),
        ]);
        assert_eq!(recs[0].spec.src, b, "order preserved despite later start");
        assert_eq!(recs[1].spec.src, a);
        assert!(recs[0].started > recs[1].started);
    }
}
