//! Flow-level dynamics: transfers share the network under max-min
//! fairness, recomputed at every arrival and completion.
//!
//! This is the standard fluid approximation for long file transfers —
//! appropriate for the consortium's workload (staging input decks and
//! retrieving result fields from the Delta). An optional per-flow TCP
//! window cap (`rate ≤ window / RTT`) models the era's protocol limit,
//! which is what made "gigabit testbeds" a research program rather than
//! a procurement.

use crate::graph::{Net, Route};
use crate::link::SiteId;
use des::time::{Dur, SimTime};

/// One requested transfer.
#[derive(Debug, Clone)]
pub struct TransferSpec {
    pub src: SiteId,
    pub dst: SiteId,
    pub bytes: u64,
    pub start: SimTime,
    /// TCP window in bytes; `None` disables the protocol cap.
    pub window: Option<u64>,
}

impl TransferSpec {
    pub fn new(src: SiteId, dst: SiteId, bytes: u64, start: SimTime) -> TransferSpec {
        TransferSpec {
            src,
            dst,
            bytes,
            start,
            window: None,
        }
    }

    pub fn with_window(mut self, window: u64) -> TransferSpec {
        self.window = Some(window);
        self
    }
}

/// Outcome of one transfer.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    pub spec: TransferSpec,
    pub hops: usize,
    pub path_latency: Dur,
    pub started: SimTime,
    pub finished: SimTime,
}

impl FlowRecord {
    pub fn duration(&self) -> Dur {
        self.finished - self.started
    }

    /// Mean achieved rate, bytes/s.
    pub fn avg_rate(&self) -> f64 {
        self.spec.bytes as f64 / self.duration().as_secs_f64().max(1e-12)
    }
}

struct Active {
    id: usize,
    route: Route,
    remaining: f64,
    cap: f64,
    rate: f64,
    started: SimTime,
}

/// Max-min fair rates via progressive filling with per-flow caps.
///
/// `flows` supplies each flow's directed-link list and its rate cap.
/// Returns one rate per flow. Runs in O(iterations × links) where each
/// iteration freezes at least one flow.
pub fn maxmin_rates(net: &Net, flows: &[(&[usize], f64)]) -> Vec<f64> {
    let n = flows.len();
    let mut rate = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut residual = vec![0.0f64; net.dir_links()];
    for (d, r) in residual.iter_mut().enumerate() {
        *r = net.capacity(d);
    }
    // Flows with no links (degenerate) are frozen at their cap.
    for (i, (dirs, cap)) in flows.iter().enumerate() {
        if dirs.is_empty() {
            rate[i] = *cap;
            frozen[i] = true;
        }
    }
    let mut unfrozen = frozen.iter().filter(|&&f| !f).count();
    let mut counts = vec![0u32; net.dir_links()];
    while unfrozen > 0 {
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, (dirs, _)) in flows.iter().enumerate() {
            if !frozen[i] {
                for &d in *dirs {
                    counts[d] += 1;
                }
            }
        }
        // The uniform increment every unfrozen flow can still take.
        let mut inc = f64::INFINITY;
        for d in 0..net.dir_links() {
            if counts[d] > 0 {
                inc = inc.min(residual[d].max(0.0) / counts[d] as f64);
            }
        }
        for (i, (_, cap)) in flows.iter().enumerate() {
            if !frozen[i] {
                inc = inc.min(cap - rate[i]);
            }
        }
        if !inc.is_finite() {
            break;
        }
        let inc = inc.max(0.0);
        for (i, (dirs, _)) in flows.iter().enumerate() {
            if !frozen[i] {
                rate[i] += inc;
                for &d in *dirs {
                    residual[d] -= inc;
                }
            }
        }
        // Freeze flows at their cap or on a saturated link.
        let mut any = false;
        for (i, (dirs, cap)) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let capped = rate[i] >= cap - 1e-9 * cap.max(1.0);
            let saturated = dirs
                .iter()
                .any(|&d| residual[d] <= 1e-9 * net.capacity(d).max(1.0));
            if capped || saturated {
                frozen[i] = true;
                unfrozen -= 1;
                any = true;
            }
        }
        if !any {
            // Numerical stall: freeze everything rather than loop.
            break;
        }
    }
    rate
}

/// Network-side statistics of one simulated batch.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Bytes carried per directed link over the run.
    pub carried: Vec<f64>,
    /// Time of the last completion.
    pub makespan: des::time::SimTime,
}

impl NetStats {
    /// Mean utilisation of a directed link over the run.
    pub fn utilization(&self, net: &Net, dir: usize) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.carried[dir] / (net.capacity(dir) * secs)
    }

    /// The `k` busiest directed links as (dir, bytes), descending.
    pub fn busiest(&self, k: usize) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .carried
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, b)| *b > 0.0)
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.truncate(k);
        v
    }
}

/// Event-driven fluid simulation of a batch of transfers.
pub struct FlowSim<'a> {
    net: &'a Net,
}

impl<'a> FlowSim<'a> {
    pub fn new(net: &'a Net) -> FlowSim<'a> {
        FlowSim { net }
    }

    /// Closed-form time for a single transfer on an idle network:
    /// propagation + bytes over the (possibly window-capped) bottleneck.
    pub fn single_flow_time(&self, spec: &TransferSpec) -> Option<Dur> {
        let route = self.net.route(spec.src, spec.dst)?;
        let mut rate = self.net.bottleneck(&route);
        if let Some(w) = spec.window {
            let rtt = (route.latency * 2).as_secs_f64().max(1e-9);
            rate = rate.min(w as f64 / rtt);
        }
        Some(route.latency + Dur::from_secs_f64(spec.bytes as f64 / rate))
    }

    /// Run the transfer batch to completion; records are returned in the
    /// order the specs were given.
    pub fn run(&self, specs: Vec<TransferSpec>) -> Vec<FlowRecord> {
        self.run_with_stats(specs).0
    }

    /// Like [`FlowSim::run`], also returning per-link carriage stats.
    pub fn run_with_stats(&self, mut specs: Vec<TransferSpec>) -> (Vec<FlowRecord>, NetStats) {
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..specs.len()).collect();
            idx.sort_by_key(|&i| (specs[i].start, i));
            idx
        };
        let mut records: Vec<Option<FlowRecord>> = specs.iter().map(|_| None).collect();
        let mut active: Vec<Active> = Vec::new();
        let mut next = 0usize;
        let mut now = SimTime::ZERO;
        let mut carried = vec![0.0f64; self.net.dir_links()];

        loop {
            if active.is_empty() && next >= order.len() {
                break;
            }
            // Earliest completion under current (constant) rates.
            let finish = active
                .iter()
                .map(|f| {
                    debug_assert!(f.rate > 0.0);
                    // Clamp to >= 1 ns so virtual time always advances even
                    // when a fast flow's residue rounds below the clock tick.
                    now + Dur::from_secs_f64(f.remaining / f.rate).max(Dur(1))
                })
                .min();
            let arrival = (next < order.len()).then(|| specs[order[next]].start);

            let (t, is_arrival) = match (finish, arrival) {
                (Some(f), Some(a)) if a <= f => (a, true),
                (Some(f), _) => (f, false),
                (None, Some(a)) => (a, true),
                (None, None) => break,
            };

            // Drain all active flows up to t.
            let dt = (t - now).as_secs_f64();
            for f in &mut active {
                f.remaining -= f.rate * dt;
                for &d in &f.route.dirs {
                    carried[d] += f.rate * dt;
                }
            }
            now = t;

            if is_arrival {
                while next < order.len() && specs[order[next]].start <= now {
                    let id = order[next];
                    next += 1;
                    let spec = &specs[id];
                    let route = self.net.route(spec.src, spec.dst).unwrap_or_else(|| {
                        panic!(
                            "no route {} -> {}",
                            self.net.name(spec.src),
                            self.net.name(spec.dst)
                        )
                    });
                    assert!(spec.src != spec.dst, "transfer to self");
                    let cap = match spec.window {
                        Some(w) => {
                            let rtt = (route.latency * 2).as_secs_f64().max(1e-9);
                            w as f64 / rtt
                        }
                        None => f64::INFINITY,
                    };
                    active.push(Active {
                        id,
                        route,
                        remaining: spec.bytes as f64,
                        cap,
                        rate: 0.0,
                        started: now,
                    });
                }
            } else {
                // Record and drop finished flows (remaining ~ 0).
                let mut i = 0;
                while i < active.len() {
                    // Done when less than ~2 ns of work remains at the
                    // flow's current rate (sub-clock-tick residue).
                    let done_below = (active[i].rate * 2e-9).max(1e-6);
                    if active[i].remaining <= done_below {
                        let f = active.swap_remove(i);
                        let spec = specs[f.id].clone();
                        records[f.id] = Some(FlowRecord {
                            hops: f.route.hops(),
                            path_latency: f.route.latency,
                            started: f.started,
                            // Last byte still has to propagate.
                            finished: now + f.route.latency,
                            spec,
                        });
                    } else {
                        i += 1;
                    }
                }
            }

            // Re-solve the fair allocation.
            if !active.is_empty() {
                let flows: Vec<(&[usize], f64)> = active
                    .iter()
                    .map(|f| (f.route.dirs.as_slice(), f.cap))
                    .collect();
                let rates = maxmin_rates(self.net, &flows);
                for (f, r) in active.iter_mut().zip(rates) {
                    assert!(r > 0.0, "flow starved");
                    f.rate = r;
                }
            }
        }
        specs.clear();
        let records: Vec<FlowRecord> = records
            .into_iter()
            .map(|r| r.expect("flow finished"))
            .collect();
        let makespan = records
            .iter()
            .map(|r| r.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        (records, NetStats { carried, makespan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn dumbbell() -> (Net, SiteId, SiteId, SiteId, SiteId) {
        // a --\            /-- c
        //      m1 == T1 == m2
        // b --/            \-- d
        let mut net = Net::new();
        let a = net.add_site("a");
        let b = net.add_site("b");
        let c = net.add_site("c");
        let d = net.add_site("d");
        let m1 = net.add_site("m1");
        let m2 = net.add_site("m2");
        let fast = LinkClass::Fddi;
        net.add_link(a, m1, fast, Dur::from_millis(1));
        net.add_link(b, m1, fast, Dur::from_millis(1));
        net.add_link(c, m2, fast, Dur::from_millis(1));
        net.add_link(d, m2, fast, Dur::from_millis(1));
        net.add_link(m1, m2, LinkClass::T1, Dur::from_millis(20));
        (net, a, b, c, d)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        let (net, a, _, c, _) = dumbbell();
        let sim = FlowSim::new(&net);
        let bytes = 1_000_000;
        let recs = sim.run(vec![TransferSpec::new(a, c, bytes, SimTime::ZERO)]);
        let expect = bytes as f64 / LinkClass::T1.bytes_per_sec();
        let got = recs[0].duration().as_secs_f64();
        // duration includes path latency (22 ms both ways of measurement)
        assert!(
            (got - expect).abs() / expect < 0.02,
            "got {got} want ~{expect}"
        );
    }

    #[test]
    fn closed_form_matches_simulation_for_single_flow() {
        let (net, a, _, c, _) = dumbbell();
        let sim = FlowSim::new(&net);
        let spec = TransferSpec::new(a, c, 5_000_000, SimTime::ZERO);
        let analytic = sim.single_flow_time(&spec).unwrap();
        let recs = sim.run(vec![spec]);
        let simd = recs[0].finished - recs[0].started;
        let err = (analytic.as_secs_f64() - simd.as_secs_f64()).abs() / analytic.as_secs_f64();
        assert!(err < 0.01, "analytic {analytic} vs sim {simd}");
    }

    #[test]
    fn two_flows_share_bottleneck_equally() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let bytes = 2_000_000;
        let recs = sim.run(vec![
            TransferSpec::new(a, c, bytes, SimTime::ZERO),
            TransferSpec::new(b, d, bytes, SimTime::ZERO),
        ]);
        // Equal demands on the shared T1: both take ~2x the solo time.
        let solo = bytes as f64 / LinkClass::T1.bytes_per_sec();
        for r in &recs {
            let got = r.duration().as_secs_f64();
            assert!(
                (got - 2.0 * solo).abs() / (2.0 * solo) < 0.05,
                "got {got}, want ~{}",
                2.0 * solo
            );
        }
    }

    #[test]
    fn finished_flow_releases_bandwidth() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let small = 500_000;
        let big = 4_000_000;
        let recs = sim.run(vec![
            TransferSpec::new(a, c, small, SimTime::ZERO),
            TransferSpec::new(b, d, big, SimTime::ZERO),
        ]);
        // While both run, each gets half; after the small one drains the
        // big one speeds up. Expected drain time for big flow:
        // small drains at t1 = 2*small/C; big then has big - small left at C.
        let cap = LinkClass::T1.bytes_per_sec();
        let expect = (2.0 * small as f64 / cap) + (big - small) as f64 / cap;
        let got = recs[1].duration().as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got} want {expect}"
        );
    }

    #[test]
    fn window_cap_limits_long_fat_pipe() {
        // HIPPI coast-to-coast: 800 Mb/s but 30 ms one-way. A 64 KB TCP
        // window caps the rate at w/RTT ~= 1.09 MB/s — the era's lesson.
        let mut net = Net::new();
        let x = net.add_site("x");
        let y = net.add_site("y");
        net.add_link(x, y, LinkClass::HippiSonet800, Dur::from_millis(30));
        let sim = FlowSim::new(&net);
        let bytes = 10_000_000;
        let capped = sim.run(vec![
            TransferSpec::new(x, y, bytes, SimTime::ZERO).with_window(64 * 1024)
        ]);
        let uncapped = sim.run(vec![TransferSpec::new(x, y, bytes, SimTime::ZERO)]);
        let w_rate = 64.0 * 1024.0 / 0.060;
        let capped_expect = bytes as f64 / w_rate;
        let got = capped[0].duration().as_secs_f64();
        assert!(
            (got - capped_expect).abs() / capped_expect < 0.05,
            "got {got} want {capped_expect}"
        );
        assert!(
            capped[0].duration().as_secs_f64() > 50.0 * uncapped[0].duration().as_secs_f64(),
            "window cap must dominate on a long fat pipe"
        );
    }

    #[test]
    fn staggered_arrivals() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let cap = LinkClass::T1.bytes_per_sec();
        // Flow 1 alone for 5 s, then flow 2 joins.
        let recs = sim.run(vec![
            TransferSpec::new(a, c, (10.0 * cap) as u64, SimTime::ZERO),
            TransferSpec::new(b, d, (1.0 * cap) as u64, SimTime::from_secs_f64(5.0)),
        ]);
        // Flow 2 shares: rate cap/2 -> 2 s to move 1 s worth.
        let d2 = recs[1].duration().as_secs_f64();
        assert!((d2 - 2.0).abs() < 0.1, "flow2 {d2}");
        // Flow 1: 5 s alone (5 cap) + 2 s shared (1 cap) + 4 s alone = 11 s.
        let d1 = recs[0].duration().as_secs_f64();
        assert!((d1 - 11.0).abs() < 0.2, "flow1 {d1}");
    }

    #[test]
    fn maxmin_respects_caps_and_capacity() {
        let (net, a, b, c, d) = dumbbell();
        let ra = net.route(a, c).unwrap();
        let rb = net.route(b, d).unwrap();
        let cap_t1 = LinkClass::T1.bytes_per_sec();
        // Flow A capped well below fair share; flow B takes the rest.
        let rates = maxmin_rates(
            &net,
            &[
                (ra.dirs.as_slice(), cap_t1 * 0.1),
                (rb.dirs.as_slice(), f64::INFINITY),
            ],
        );
        assert!((rates[0] - cap_t1 * 0.1).abs() < 1.0);
        assert!((rates[1] - cap_t1 * 0.9).abs() / cap_t1 < 0.01);
        // Total never exceeds capacity.
        assert!(rates[0] + rates[1] <= cap_t1 * 1.0001);
    }

    #[test]
    fn stats_account_all_bytes() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let (recs, stats) = sim.run_with_stats(vec![
            TransferSpec::new(a, c, 1_000_000, SimTime::ZERO),
            TransferSpec::new(b, d, 500_000, SimTime::ZERO),
        ]);
        assert_eq!(recs.len(), 2);
        // Both flows cross the shared T1 in the same direction: the link
        // must have carried the sum (allowing sub-ns residue).
        let (busiest, bytes) = stats.busiest(1)[0];
        assert!((bytes - 1_500_000.0).abs() < 1.0, "carried {bytes}");
        let util = stats.utilization(&net, busiest);
        assert!(util > 0.9 && util <= 1.0001, "bottleneck util {util}");
    }

    #[test]
    fn background_traffic_slows_staging() {
        // The consortium staging story under load: background flows on
        // the shared backbone stretch a foreground transfer.
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let fg = TransferSpec::new(a, c, 2_000_000, SimTime::ZERO);
        let quiet = sim.run(vec![fg.clone()])[0].duration();
        let bg: Vec<TransferSpec> = (0..3)
            .map(|_| TransferSpec::new(b, d, 50_000_000, SimTime::ZERO))
            .collect();
        let mut all = vec![fg];
        all.extend(bg);
        let busy = sim.run(all)[0].duration();
        let ratio = busy.as_secs_f64() / quiet.as_secs_f64();
        assert!(
            (3.5..4.5).contains(&ratio),
            "4 equal flows on one pipe: expected ~4x, got {ratio}"
        );
    }

    #[test]
    fn records_keep_spec_order() {
        let (net, a, b, c, d) = dumbbell();
        let sim = FlowSim::new(&net);
        let recs = sim.run(vec![
            TransferSpec::new(b, d, 100, SimTime::from_secs_f64(3.0)),
            TransferSpec::new(a, c, 100, SimTime::ZERO),
        ]);
        assert_eq!(recs[0].spec.src, b, "order preserved despite later start");
        assert_eq!(recs[1].spec.src, a);
        assert!(recs[0].started > recs[1].started);
    }
}
