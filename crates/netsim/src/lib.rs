//! `nren-netsim` — a flow-level simulator of early-1990s research WANs.
//!
//! The paper's NREN component and the Delta Consortium figure describe a
//! network nobody can dial into anymore: 56 kb/s regional tails, the
//! NSFnet T1/T3 backbones, ESnet, and the CASA HIPPI/SONET gigabit
//! testbed. This crate reconstructs them: named sites, duplex links with
//! era-accurate line rates, latency-shortest static routing, and fluid
//! transfers sharing capacity under max-min fairness with an optional
//! TCP-window rate cap.
//!
//! ```
//! use nren_netsim::{topologies, FlowSim, TransferSpec};
//! use des::time::SimTime;
//!
//! let net = topologies::delta_consortium();
//! let delta = net.site(topologies::DELTA_SITE).unwrap();
//! let jpl = net.site("JPL").unwrap();
//! let sim = FlowSim::new(&net);
//! let recs = sim.run(vec![TransferSpec::new(jpl, delta, 100 << 20, SimTime::ZERO)]);
//! // 100 MB over HIPPI/SONET arrives in about a second.
//! assert!(recs[0].duration().as_secs_f64() < 2.0);
//! ```

pub mod engine;
pub mod flow;
pub mod graph;
pub mod link;
pub mod topologies;
pub mod workload;

pub use engine::{FlowConfig, SolverMode, SolverStats};
pub use flow::{
    maxmin_rates, FlowError, FlowOutcome, FlowRecord, FlowSim, LinkFault, NetStats, TransferSpec,
};
pub use graph::{DirLinkId, Net, Route, RouteCache};
pub use link::{Link, LinkClass, SiteId};
pub use topologies::{dragonfly, fabric_to_wan, fat_tree, Fabric};
