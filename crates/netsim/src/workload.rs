//! Workload generators: the traffic the consortium actually put on these
//! networks — staging input decks to the Delta, pulling result fields
//! back, and background Poisson traffic.

use crate::flow::TransferSpec;
use crate::graph::{Net, RouteCache};
use crate::link::SiteId;
use des::rng::Rng;
use des::time::SimTime;

/// Every partner stages `deck_bytes` to the Delta at t=0, then (modelled
/// as a second batch of specs) retrieves `result_bytes`. Returns
/// (staging, retrieval) spec lists.
pub fn stage_and_retrieve(
    partners: &[SiteId],
    delta: SiteId,
    deck_bytes: u64,
    result_bytes: u64,
) -> (Vec<TransferSpec>, Vec<TransferSpec>) {
    let staging = partners
        .iter()
        .map(|&p| TransferSpec::new(p, delta, deck_bytes, SimTime::ZERO))
        .collect();
    let retrieval = partners
        .iter()
        .map(|&p| TransferSpec::new(delta, p, result_bytes, SimTime::ZERO))
        .collect();
    (staging, retrieval)
}

/// Poisson arrivals of Pareto-sized transfers between random distinct
/// sites, over `horizon_s` seconds at `per_sec` mean arrival rate.
pub fn poisson_traffic(
    net: &Net,
    rng: &mut Rng,
    per_sec: f64,
    mean_bytes: f64,
    horizon_s: f64,
) -> Vec<TransferSpec> {
    assert!(net.sites() >= 2);
    let mut out = Vec::new();
    let mut t = 0.0;
    // Pareto with alpha=1.5 has mean xm*3, so xm = mean/3.
    let xm = mean_bytes / 3.0;
    loop {
        t += rng.exp(1.0 / per_sec);
        if t >= horizon_s {
            break;
        }
        let src = rng.below(net.sites() as u64) as SiteId;
        let mut dst = rng.below(net.sites() as u64) as SiteId;
        while dst == src {
            dst = rng.below(net.sites() as u64) as SiteId;
        }
        let bytes = rng.pareto(xm, 1.5).min(mean_bytes * 100.0) as u64;
        out.push(TransferSpec::new(
            src,
            dst,
            bytes.max(1),
            SimTime::from_secs_f64(t),
        ));
    }
    out
}

/// A visualization stream: can `frame_bytes × fps` be sustained from the
/// Delta to `viewer`? Returns (required bytes/s, achievable bytes/s,
/// feasible) using the single-flow bottleneck.
pub fn visualization_feasibility(
    net: &Net,
    delta: SiteId,
    viewer: SiteId,
    frame_bytes: u64,
    fps: f64,
) -> (f64, f64, bool) {
    let mut cache = RouteCache::new();
    visualization_feasibility_cached(net, &mut cache, delta, viewer, frame_bytes, fps)
}

/// [`visualization_feasibility`] against a shared [`RouteCache`]: the
/// route (and the bottleneck capacity memoized on it at construction)
/// is interned, so sweeping many viewer sites runs Dijkstra once per
/// pair instead of re-walking the route per query.
pub fn visualization_feasibility_cached(
    net: &Net,
    cache: &mut RouteCache,
    delta: SiteId,
    viewer: SiteId,
    frame_bytes: u64,
    fps: f64,
) -> (f64, f64, bool) {
    let required = frame_bytes as f64 * fps;
    let achievable = cache
        .route(net, delta, viewer, &[])
        .map(|r| r.bottleneck)
        .unwrap_or(0.0);
    (required, achievable, achievable >= required)
}

/// Fan-out traffic for fabric-scale runs: `flows` transfers, all
/// arriving at `start`, each from a random sender in the first
/// `senders` hosts to a random receiver in the rest. Pareto-sized
/// (alpha 1.5) around `mean_bytes`, floored at 1 byte and capped at
/// 100x the mean — the heavy tail short-flow aggregation amortizes.
pub fn fan_out_traffic(
    hosts: &[SiteId],
    senders: usize,
    rng: &mut Rng,
    flows: usize,
    mean_bytes: f64,
    start: SimTime,
) -> Vec<TransferSpec> {
    assert!(senders > 0 && senders < hosts.len());
    let xm = mean_bytes / 3.0;
    (0..flows)
        .map(|_| {
            let src = hosts[rng.below(senders as u64) as usize];
            let dst = hosts[senders + rng.below((hosts.len() - senders) as u64) as usize];
            let bytes = (rng.pareto(xm, 1.5).min(mean_bytes * 100.0) as u64).max(1);
            TransferSpec::new(src, dst, bytes, start)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSim;
    use crate::link::LinkClass;
    use crate::topologies;

    #[test]
    fn staging_covers_all_partners() {
        let net = topologies::delta_consortium();
        let delta = net.site(topologies::DELTA_SITE).unwrap();
        let partners = topologies::partner_sites(&net);
        let (stage, retr) = stage_and_retrieve(&partners, delta, 1_000_000, 2_000_000);
        assert_eq!(stage.len(), partners.len());
        assert_eq!(retr.len(), partners.len());
        assert!(stage.iter().all(|s| s.dst == delta));
        assert!(retr.iter().all(|s| s.src == delta));
        // And the whole batch actually completes.
        let sim = FlowSim::new(&net);
        let recs = sim.run(stage);
        assert_eq!(recs.len(), partners.len());
    }

    #[test]
    fn poisson_traffic_is_deterministic_per_seed() {
        let net = topologies::nsfnet(LinkClass::T3);
        let gen = |seed| {
            let mut rng = Rng::new(seed);
            poisson_traffic(&net, &mut rng, 2.0, 1e6, 30.0)
        };
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.src, x.dst, x.bytes, x.start),
                (y.src, y.dst, y.bytes, y.start)
            );
        }
        assert_ne!(a.len(), gen(8).len());
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let net = topologies::nsfnet(LinkClass::T3);
        let mut rng = Rng::new(42);
        let specs = poisson_traffic(&net, &mut rng, 5.0, 1e6, 200.0);
        let expect = 5.0 * 200.0;
        assert!(
            (specs.len() as f64 - expect).abs() < expect * 0.15,
            "{} arrivals vs ~{expect}",
            specs.len()
        );
    }

    #[test]
    fn visualization_feasible_on_hippi_not_on_t1() {
        let net = topologies::delta_consortium();
        let delta = net.site(topologies::DELTA_SITE).unwrap();
        let jpl = net.site("JPL").unwrap();
        let darpa = net.site("DARPA").unwrap();
        // 1 Mpixel x 8 bit x 24 fps = 24 MB/s.
        let (req, ach, ok) = visualization_feasibility(&net, delta, jpl, 1_000_000, 24.0);
        assert!(ok, "HIPPI handles {req} <= {ach}");
        let (_, _, ok) = visualization_feasibility(&net, delta, darpa, 1_000_000, 24.0);
        assert!(!ok, "T1 cannot carry 24 MB/s");
        // The cached form interns the route: second query is a hit.
        let mut cache = crate::graph::RouteCache::new();
        let a = visualization_feasibility_cached(&net, &mut cache, delta, jpl, 1_000_000, 24.0);
        let b = visualization_feasibility_cached(&net, &mut cache, delta, jpl, 1_000_000, 24.0);
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn fan_out_traffic_splits_senders_and_receivers() {
        let hosts: Vec<SiteId> = (10..30).collect();
        let mut rng = Rng::new(3);
        let specs = fan_out_traffic(&hosts, 5, &mut rng, 500, 1e6, SimTime::ZERO);
        assert_eq!(specs.len(), 500);
        for s in &specs {
            assert!(hosts[..5].contains(&s.src), "sender pool");
            assert!(hosts[5..].contains(&s.dst), "receiver pool");
            assert!(s.bytes >= 1);
            assert_eq!(s.start, SimTime::ZERO);
        }
        // Deterministic per seed.
        let mut rng2 = Rng::new(3);
        let again = fan_out_traffic(&hosts, 5, &mut rng2, 500, 1e6, SimTime::ZERO);
        assert!(specs
            .iter()
            .zip(&again)
            .all(|(x, y)| (x.src, x.dst, x.bytes) == (y.src, y.dst, y.bytes)));
    }
}
