//! The network graph: named sites, duplex links, and latency-shortest
//! routing (Dijkstra). Routes are computed per flow and pinned for the
//! flow's lifetime, as 1992 static routing did.

use crate::link::{Link, LinkClass, SiteId};
use des::time::Dur;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

/// Index of a *directed* capacity resource: link `i` direction a→b is
/// `2*i`, direction b→a is `2*i + 1`.
pub type DirLinkId = usize;

/// A WAN topology under construction or in use.
#[derive(Debug, Clone, Default)]
pub struct Net {
    names: Vec<String>,
    links: Vec<Link>,
    /// adjacency: per site, list of (link index, neighbour).
    adj: Vec<Vec<(usize, SiteId)>>,
}

impl Net {
    pub fn new() -> Net {
        Net::default()
    }

    /// Add a named site, returning its id.
    pub fn add_site(&mut self, name: impl Into<String>) -> SiteId {
        self.names.push(name.into());
        self.adj.push(Vec::new());
        self.names.len() - 1
    }

    /// Add a duplex link between two sites.
    pub fn add_link(&mut self, a: SiteId, b: SiteId, class: LinkClass, latency: Dur) {
        assert!(a < self.sites() && b < self.sites() && a != b);
        let idx = self.links.len();
        self.links.push(Link {
            a,
            b,
            class,
            latency,
        });
        self.adj[a].push((idx, b));
        self.adj[b].push((idx, a));
    }

    pub fn sites(&self) -> usize {
        self.names.len()
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    pub fn name(&self, s: SiteId) -> &str {
        &self.names[s]
    }

    /// Find a site by name.
    pub fn site(&self, name: &str) -> Option<SiteId> {
        self.names.iter().position(|n| n == name)
    }

    /// Capacity of a directed resource, bytes/s.
    pub fn capacity(&self, d: DirLinkId) -> f64 {
        self.links[d / 2].capacity()
    }

    /// The directed resource for traversing link `idx` out of site `from`.
    fn dir_id(&self, idx: usize, from: SiteId) -> DirLinkId {
        if self.links[idx].a == from {
            2 * idx
        } else {
            2 * idx + 1
        }
    }

    /// Total directed resources (for flat rate vectors).
    pub fn dir_links(&self) -> usize {
        2 * self.links.len()
    }

    /// Latency-shortest route from `src` to `dst`: the list of directed
    /// resources traversed, or `None` if unreachable.
    pub fn route(&self, src: SiteId, dst: SiteId) -> Option<Route> {
        self.route_avoiding(src, dst, &[])
    }

    /// Like [`Net::route`], but links whose (undirected) index is marked
    /// in `down` are treated as cut. `down` may be shorter than the link
    /// count; missing entries mean "up". Returns `None` when the outage
    /// set partitions `src` from `dst`.
    pub fn route_avoiding(&self, src: SiteId, dst: SiteId, down: &[bool]) -> Option<Route> {
        if src == dst {
            return Some(Route {
                dirs: Vec::new(),
                latency: Dur::ZERO,
                bottleneck: f64::INFINITY,
            });
        }
        // Dijkstra on propagation latency (ns), tie-broken by hop count
        // then site id for determinism.
        let n = self.sites();
        let mut dist = vec![(u64::MAX, u32::MAX); n];
        let mut prev: Vec<Option<(SiteId, usize)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src] = (0, 0);
        heap.push(std::cmp::Reverse((0u64, 0u32, src)));
        while let Some(std::cmp::Reverse((d, hops, u))) = heap.pop() {
            if (d, hops) > dist[u] {
                continue;
            }
            if u == dst {
                break;
            }
            for &(idx, v) in &self.adj[u] {
                if down.get(idx).copied().unwrap_or(false) {
                    continue;
                }
                let nd = d + self.links[idx].latency.nanos();
                let nh = hops + 1;
                if (nd, nh) < dist[v] {
                    dist[v] = (nd, nh);
                    prev[v] = Some((u, idx));
                    heap.push(std::cmp::Reverse((nd, nh, v)));
                }
            }
        }
        if dist[dst].0 == u64::MAX {
            return None;
        }
        let mut dirs = Vec::new();
        let mut bottleneck = f64::INFINITY;
        let mut cur = dst;
        while cur != src {
            let (p, idx) = prev[cur].expect("path exists");
            let d = self.dir_id(idx, p);
            bottleneck = bottleneck.min(self.capacity(d));
            dirs.push(d);
            cur = p;
        }
        dirs.reverse();
        Some(Route {
            dirs,
            latency: Dur::from_nanos(dist[dst].0),
            bottleneck,
        })
    }

    /// Single-flow achievable rate along the route (min capacity), bytes/s.
    /// The value is cached on the [`Route`] at construction, so this is a
    /// field read — no per-call walk over the route's links.
    pub fn bottleneck(&self, route: &Route) -> f64 {
        route.bottleneck
    }
}

/// A pinned path through the network.
#[derive(Debug, Clone)]
pub struct Route {
    /// Directed resources traversed, in order.
    pub dirs: Vec<DirLinkId>,
    /// End-to-end one-way propagation delay.
    pub latency: Dur,
    /// Min directed capacity along the path, bytes/s (cached at
    /// construction; `INFINITY` for the empty self-route).
    pub bottleneck: f64,
}

impl Route {
    pub fn hops(&self) -> usize {
        self.dirs.len()
    }
}

/// Memoized routing: pinned static routes are identical for every flow
/// between the same site pair under the same outage mask, so the flow
/// engine interns them here instead of re-running Dijkstra per flow.
/// Negative results (partitioned pairs) are cached too. Call
/// [`RouteCache::invalidate`] whenever the outage mask changes.
#[derive(Debug, Default)]
pub struct RouteCache {
    map: HashMap<(SiteId, SiteId), Option<Rc<Route>>>,
    /// Cache statistics: (hits, misses) since construction.
    hits: u64,
    misses: u64,
}

impl RouteCache {
    pub fn new() -> RouteCache {
        RouteCache::default()
    }

    /// The pinned route from `src` to `dst` under the current `down`
    /// mask, shared via `Rc` across every flow on the pair.
    pub fn route(
        &mut self,
        net: &Net,
        src: SiteId,
        dst: SiteId,
        down: &[bool],
    ) -> Option<Rc<Route>> {
        if let Some(r) = self.map.get(&(src, dst)) {
            self.hits += 1;
            return r.clone();
        }
        self.misses += 1;
        let r = net.route_avoiding(src, dst, down).map(Rc::new);
        self.map.insert((src, dst), r.clone());
        r
    }

    /// Drop every memoized route (the outage mask changed).
    pub fn invalidate(&mut self) {
        self.map.clear();
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Net, SiteId, SiteId, SiteId) {
        let mut net = Net::new();
        let a = net.add_site("A");
        let b = net.add_site("B");
        let c = net.add_site("C");
        net.add_link(a, b, LinkClass::T3, Dur::from_millis(5));
        net.add_link(b, c, LinkClass::T1, Dur::from_millis(5));
        (net, a, b, c)
    }

    #[test]
    fn route_follows_line() {
        let (net, a, _, c) = line3();
        let r = net.route(a, c).unwrap();
        assert_eq!(r.hops(), 2);
        assert_eq!(r.latency, Dur::from_millis(10));
    }

    #[test]
    fn bottleneck_is_slowest_link() {
        let (net, a, _, c) = line3();
        let r = net.route(a, c).unwrap();
        assert_eq!(net.bottleneck(&r), LinkClass::T1.bytes_per_sec());
    }

    #[test]
    fn self_route_is_empty() {
        let (net, a, ..) = line3();
        let r = net.route(a, a).unwrap();
        assert_eq!(r.hops(), 0);
        assert_eq!(r.latency, Dur::ZERO);
    }

    #[test]
    fn unreachable_is_none() {
        let mut net = Net::new();
        let a = net.add_site("A");
        let _b = net.add_site("island");
        let c = net.add_site("C");
        net.add_link(a, c, LinkClass::T1, Dur::from_millis(1));
        assert!(net.route(a, 1).is_none());
    }

    #[test]
    fn dijkstra_prefers_lower_latency_even_with_more_hops() {
        let mut net = Net::new();
        let a = net.add_site("A");
        let b = net.add_site("B");
        let c = net.add_site("C");
        net.add_link(a, b, LinkClass::T1, Dur::from_millis(50));
        net.add_link(a, c, LinkClass::T3, Dur::from_millis(10));
        net.add_link(c, b, LinkClass::T3, Dur::from_millis(10));
        let r = net.route(a, b).unwrap();
        assert_eq!(r.hops(), 2, "two fast hops beat one slow hop");
        assert_eq!(r.latency, Dur::from_millis(20));
    }

    #[test]
    fn directions_are_distinct_resources() {
        let (net, a, b, _) = line3();
        let fwd = net.route(a, b).unwrap();
        let back = net.route(b, a).unwrap();
        assert_ne!(fwd.dirs[0], back.dirs[0]);
        assert_eq!(fwd.dirs[0] / 2, back.dirs[0] / 2, "same physical link");
    }

    #[test]
    fn site_lookup_by_name() {
        let (net, _, b, _) = line3();
        assert_eq!(net.site("B"), Some(b));
        assert_eq!(net.site("nope"), None);
    }

    #[test]
    fn route_avoiding_takes_the_detour() {
        // Triangle: direct A-B is fast; cutting it forces A-C-B.
        let mut net = Net::new();
        let a = net.add_site("A");
        let b = net.add_site("B");
        let c = net.add_site("C");
        net.add_link(a, b, LinkClass::T3, Dur::from_millis(2)); // link 0
        net.add_link(a, c, LinkClass::T1, Dur::from_millis(5)); // link 1
        net.add_link(c, b, LinkClass::T1, Dur::from_millis(5)); // link 2
        assert_eq!(net.route(a, b).unwrap().hops(), 1);
        let detour = net.route_avoiding(a, b, &[true]).unwrap();
        assert_eq!(detour.hops(), 2);
        assert_eq!(detour.latency, Dur::from_millis(10));
        assert!(
            net.route_avoiding(a, b, &[true, true]).is_none(),
            "cutting A-B and A-C partitions A from B"
        );
    }

    #[test]
    fn route_cache_interns_and_invalidates() {
        let (net, a, _, c) = line3();
        let mut cache = RouteCache::new();
        let r1 = cache.route(&net, a, c, &[]).unwrap();
        let r2 = cache.route(&net, a, c, &[]).unwrap();
        assert!(Rc::ptr_eq(&r1, &r2), "second lookup is interned");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(r1.bottleneck, net.bottleneck(&r1));
        // Negative results are cached too.
        let mut net2 = Net::new();
        let x = net2.add_site("x");
        let y = net2.add_site("island");
        net2.add_site("z");
        let mut c2 = RouteCache::new();
        assert!(c2.route(&net2, x, y, &[]).is_none());
        assert!(c2.route(&net2, x, y, &[]).is_none());
        assert_eq!(c2.stats(), (1, 1));
        // Invalidation forgets everything.
        cache.invalidate();
        let _ = cache.route(&net, a, c, &[]).unwrap();
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn route_caches_its_bottleneck() {
        let (net, a, _, c) = line3();
        let r = net.route(a, c).unwrap();
        assert_eq!(r.bottleneck, LinkClass::T1.bytes_per_sec());
        let self_r = net.route(a, a).unwrap();
        assert!(self_r.bottleneck.is_infinite());
    }

    #[test]
    fn route_avoiding_empty_mask_matches_route() {
        let (net, a, _, c) = line3();
        let plain = net.route(a, c).unwrap();
        let masked = net.route_avoiding(a, c, &[false, false]).unwrap();
        assert_eq!(plain.dirs, masked.dirs);
        assert_eq!(plain.latency, masked.latency);
    }
}
